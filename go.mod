module github.com/archsim/fusleep

go 1.24
