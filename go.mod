module github.com/archsim/fusleep

go 1.23.0
