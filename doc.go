// Package fusleep is a library-level reproduction of "Managing Static
// Leakage Energy in Microprocessor Functional Units" (Dropsho, Kursun,
// Albonesi, Dwarkadas, Friedman; MICRO-35, 2002).
//
// The paper studies when dual threshold voltage domino logic should enter
// its low-leakage sleep mode given that the transition itself costs energy.
// This package exposes:
//
//   - the architecture-level static-energy model (Tech, Breakdown,
//     Scenario) with its breakeven-interval analysis;
//   - the four sleep-management policies (AlwaysActive, MaxSleep,
//     NoOverhead, GradualSleep) plus the OracleMinimal bound, applied
//     either to closed-form scenarios or to measured idle profiles;
//   - the circuit-level functional-unit model of Section 2 (CircuitFU);
//   - an Engine serving the trace-driven out-of-order simulation of the
//     paper's Alpha-21264-like machine over nine calibrated synthetic
//     benchmarks, every table and figure of the evaluation, and batch
//     policy × technology × FU-count grids — all as structured Artifacts.
//
// # The Engine
//
// Engine is the entry point for everything simulated. It is long-lived and
// safe for concurrent use: one instance owns a simulation cache and a
// parallelism bound, so scenario requests share work instead of repeating
// it. Construction takes functional options; every method takes a
// context.Context and aborts promptly when it is canceled.
//
//	eng := fusleep.NewEngine(
//		fusleep.WithWindow(1_000_000),  // default per-benchmark scale
//		fusleep.WithParallelism(4),     // bound concurrent simulations
//	)
//
//	// One benchmark, measured idle profiles included.
//	rep, err := eng.Simulate(ctx, "mcf", fusleep.SimFUs(2))
//
//	// Paper artifacts, machine-readable.
//	arts, err := eng.RunExperiments(ctx, "fig8a", "fig9b")
//
//	// A batch grid over the whole suite.
//	arts, err = eng.Sweep(ctx, fusleep.Grid{
//		Techs:    []fusleep.Tech{fusleep.DefaultTech(), fusleep.HighLeakTech()},
//		FUCounts: []int{2, 4},
//	})
//
// # Streaming sweeps and the sweep service
//
// A Grid expands into an ordered list of Cells — one policy × technology ×
// FU-count point each, with a stable configuration hash (Cell.Key). Engine
// exposes the incremental form of Sweep for services and progress UIs:
// SweepStream delivers a CellResult per completed cell, RunCell evaluates a
// single cell against the shared cache, and Stats reports the simulation /
// cache-hit accounting. NewSweepTable and AddSweepRow assemble streamed
// cells into the same table Sweep returns, so partial output renders
// identically to batch output.
//
//	err := eng.SweepStream(ctx, grid, func(res fusleep.CellResult) error {
//		fmt.Printf("%s: E/E_base=%.4f\n", res.Cell.Policy.Policy, res.RelEnergy)
//		return nil
//	})
//
// cmd/fusleepd serves these sweeps over HTTP as a long-lived daemon: grids
// are submitted as JSON, expanded into cells, and fed through a sharded,
// bounded job queue (cells route to worker shards by Cell.Key, so identical
// cells — across requests and clients — deduplicate through the engine's
// simulation cache); per-cell results stream back as NDJSON while the sweep
// runs. See the internal/server package comment for the endpoint contract
// and examples/sweepservice for a complete client.
//
// # Per-class configuration
//
// The machine's functional units divide into classes — FUIntALU, FUAGU,
// FUMult, FUFPALU, FUFPMult — whose idle-interval distributions and
// breakeven points differ, which is exactly why the paper separates
// integer ALUs from FP adders and multipliers. Every class pool records
// its own busy/idle profile (Simulate returns them as
// BenchmarkReport.ClassProfiles; address generation shares the IntALU
// ports unless SimAGUs provisions a dedicated pool), and an Assignment
// maps classes to sleep policies so one machine runs a heterogeneous
// policy mix:
//
//	a, _ := fusleep.ParseAssignment("intalu=GradualSleep:slices=4,fpalu=MaxSleep")
//	arts, err := eng.Sweep(ctx, fusleep.Grid{
//		Classes:     []fusleep.FUClass{fusleep.FUIntALU, fusleep.FUFPALU},
//		Assignments: []fusleep.Assignment{a},
//	})
//
// A Grid (and a Cell) carries the studied class list, per-class unit
// counts (AGUCounts, MultCounts, ...), per-class technology overrides
// (ClassTechs — each class's breakeven resolves through its own effective
// Tech; see ClassBreakeven), and assignment rows next to uniform policy
// rows. Class-aware sweeps add a per-class companion table
// (AddClassRows) splitting E/E_base by class. A uniform assignment —
// every class running one policy — reproduces the single-pool results
// exactly, which is what pins the refactor to the pre-class goldens.
//
// The tuner searches per-class assignments too: give TuneSpace a Classes
// list and each candidate assigns one class's policy (the others idle at
// the baseline), the same successive-halving driver refines every class's
// parameter axis, and a final composition round evaluates the assignment
// combining each class's best policy. From the command line:
//
//	tune -classes intalu,fpalu,fpmult -max-evals 128 -p 0.5
//
// reports the best heterogeneous mix (e.g. busy integer ALUs kept awake
// while the mostly-idle FP units sleep aggressively) and its Pareto
// frontier.
//
// # The policy auto-tuner
//
// Engine.Optimize searches the policy-parameter space — policy family ×
// SleepTimeout threshold × GradualSleep slice count × FU count ×
// technology point — for Pareto-optimal energy-delay configurations
// instead of exhaustively sweeping it, following the paper's observation
// that no single policy wins everywhere (Figures 8-10, Section 7). The
// search is a deterministic adaptive grid with successive halving: each
// round evaluates its candidates in bounded parallel through the engine's
// simulation cache (probes sharing an FU count share one suite
// simulation), keeps the top third by the objective, and bisects the
// survivors' parameter neighborhoods geometrically. Objectives are E·D,
// E·D², or leakage energy under a slowdown cap (TuneObjective), delay
// being cycles relative to the fastest AlwaysActive baseline evaluated.
//
//	res, err := eng.Optimize(ctx,
//		fusleep.WithTuneSpace(fusleep.TuneSpace{FUCounts: []int{2, 4}}),
//		fusleep.WithTuneObjective(fusleep.TuneObjective{
//			Kind: fusleep.TuneMinLeakage, SlowdownCap: 1.10}),
//		fusleep.WithTuneBudget(64),
//	)
//	// res.Best, res.Frontier (non-dominated delay × energy points),
//	// res.Evals vs. the grid cardinality it replaced.
//
// OptimizeStream additionally delivers every probe — accepted or rejected,
// with its Pareto and incumbent status — in deterministic evaluation
// order. TuneArtifacts renders a result as the usual artifacts. The same
// search runs from the command line (cmd/tune) and as a daemon endpoint
// (POST /v1/optimize on fusleepd, where tuner probes route through the
// same sharded queue as sweep cells and dedupe against them).
//
// # Artifacts and renderers
//
// Results are Artifact values: an experiment identity plus a typed payload,
// either a Table (header and string rows) or a Series (named float64
// curves over a shared x axis). Render them with RenderText, RenderJSON,
// or RenderCSV — RenderJSON output unmarshals back into []Artifact — or
// look a Renderer up by name with RendererFor("json").
//
//	arts, _ := eng.RunExperiments(ctx, "table1")
//	_ = fusleep.RenderJSON(os.Stdout, arts)
//
// # Quick start (closed-form model, no simulation)
//
//	tech := fusleep.DefaultTech()                  // p=0.05, c=0.001, e=0.01, d=0.5
//	be := tech.Breakeven(0.5)                      // ~20 cycles
//	s := fusleep.Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: 10, Alpha: 0.5}
//	rel := tech.RelativeToBase(fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, s)
//
// # Performance
//
// The cycle engine is built for sweep-scale workloads: completion runs on
// an event wheel, issue selects from a wakeup-driven ready list instead of
// scanning the reorder buffer, and the steady-state hot loop performs no
// heap allocation (see the internal/pipeline package comment for the full
// performance model). Simulation results are cycle-exact regardless of
// these optimizations, pinned by a golden determinism test: the same seed
// produces byte-identical results across runs, cache settings, and
// parallelism bounds.
//
// BenchmarkPipelineSimulation reports simulated inst/s, cycles/s, and
// allocs/op; BENCH_pipeline.json tracks those numbers across PRs, and CI
// gates on them: the bench-gate job fails the build when inst/s drops below
// 70% of the tracked baseline or allocs/op more than doubles (see
// internal/ci/benchgate and the README's CI section; refresh the baseline
// in BENCH_pipeline.json when a PR legitimately moves it). To profile the
// hot path, use cmd/simcpu's -cpuprofile and -memprofile flags.
//
// All entry points go through the Engine; the pre-Engine one-shot helpers
// (SimulateBenchmark, RunExperiment, RunExperiments, RunAll) have been
// removed. See the examples directory for complete programs.
package fusleep
