// Package fusleep is a library-level reproduction of "Managing Static
// Leakage Energy in Microprocessor Functional Units" (Dropsho, Kursun,
// Albonesi, Dwarkadas, Friedman; MICRO-35, 2002).
//
// The paper studies when dual threshold voltage domino logic should enter
// its low-leakage sleep mode given that the transition itself costs energy.
// This package exposes:
//
//   - the architecture-level static-energy model (Tech, Breakdown,
//     Scenario) with its breakeven-interval analysis;
//   - the four sleep-management policies (AlwaysActive, MaxSleep,
//     NoOverhead, GradualSleep) plus the OracleMinimal bound, applied
//     either to closed-form scenarios or to measured idle profiles;
//   - the circuit-level functional-unit model of Section 2 (CircuitFU);
//   - a trace-driven out-of-order processor simulation of the paper's
//     Alpha-21264-like machine with nine calibrated synthetic benchmarks
//     (SimulateBenchmark), producing per-functional-unit idle profiles;
//   - every table and figure of the evaluation as a runnable experiment
//     (Experiments, RunExperiment).
//
// # Quick start
//
//	tech := fusleep.DefaultTech()                  // p=0.05, c=0.001, e=0.01, d=0.5
//	be := tech.Breakeven(0.5)                      // ~20 cycles
//	rep, _ := fusleep.SimulateBenchmark("mcf", fusleep.SimOptions{Window: 1e6})
//	e := fusleep.PolicyEnergy(tech, fusleep.PolicyConfig{Policy: fusleep.MaxSleep}, 0.5, rep.FUProfiles)
//	fmt.Println(e.Total(), e.LeakageFraction(), be)
//
// See the examples directory and EXPERIMENTS.md for the full reproduction.
package fusleep
