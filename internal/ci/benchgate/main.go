// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output, compares the tracked metrics against the committed
// baseline in BENCH_pipeline.json, and exits non-zero when the build has
// regressed past the allowed envelope — by default, simulated inst/s below
// 70% of the baseline or allocs/op more than doubled.
//
// Usage (CI):
//
//	go test -run=xxx -bench=PipelineSimulation -benchtime=3x -benchmem | tee bench.txt
//	go run ./internal/ci/benchgate -bench bench.txt -baseline BENCH_pipeline.json
//
// The thresholds are deliberately loose: they absorb runner-to-runner noise
// while still catching order-of-magnitude regressions (a lost cache, a
// reintroduced per-cycle allocation). To raise the baseline legitimately
// after a real improvement, refresh the "current" entry of
// BENCH_pipeline.json in the same PR (see that file's note).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	benchPath := flag.String("bench", "-", "benchmark output file ('-' = stdin)")
	baselinePath := flag.String("baseline", "BENCH_pipeline.json", "tracked baseline JSON")
	name := flag.String("benchmark", "BenchmarkPipelineSimulation", "benchmark to gate on")
	minInstFrac := flag.Float64("min-inst-frac", 0.70, "fail when throughput drops below this fraction of baseline")
	maxAllocsMult := flag.Float64("max-allocs-mult", 2.0, "fail when allocs/op exceeds baseline times this factor")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	baseRaw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalBaseline(*baselinePath, *name, err)
	}
	baseline, err := ParseBaseline(baseRaw)
	if err != nil {
		fatalBaseline(*baselinePath, *name, err)
	}
	// The baseline names the throughput metric to gate on (inst/s for the
	// pipeline, cells/s for the tuner).
	measured, err := ParseBench(string(raw), *name, baseline.Unit)
	if err != nil {
		fatal(err)
	}

	report := Gate(measured, baseline, *minInstFrac, *maxAllocsMult)
	fmt.Print(report.Summary())
	if !report.OK() {
		fmt.Fprintln(os.Stderr, "benchgate:", report.FailureMessage())
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// fatalBaseline reports a missing or unusable baseline file together with
// the exact steps to regenerate it, then exits.
func fatalBaseline(path, benchName string, err error) {
	fmt.Fprintf(os.Stderr, "benchgate: baseline %s: %v\n", path, err)
	fmt.Fprint(os.Stderr, "benchgate: "+BaselineHelp(path, benchName))
	os.Exit(2)
}
