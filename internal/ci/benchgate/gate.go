package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Measured holds the gated metrics parsed from one benchmark's output line.
type Measured struct {
	Name    string
	NsPerOp float64
	// Throughput is the value of the benchmark's tracked throughput metric
	// (Unit names it: "inst/s" for the pipeline, "cells/s" for the tuner).
	Throughput float64
	Unit       string
	AllocsOp   float64
	hasThru    bool
	hasAlloc   bool
}

// ParseBench extracts the named benchmark's metrics from `go test -bench`
// output. Benchmark lines look like:
//
//	BenchmarkPipelineSimulation-8  3  15877023 ns/op  6298731 inst/s  894 allocs/op
//
// i.e. a name (with a -GOMAXPROCS suffix), an iteration count, then
// value/unit pairs. unit selects which pair is the gated throughput metric.
func ParseBench(out, name, unit string) (Measured, error) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		base, _, _ := strings.Cut(fields[0], "-")
		if base != name {
			continue
		}
		m := Measured{Name: name, Unit: unit}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Measured{}, fmt.Errorf("bad value %q on line %q: %w", fields[i], line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case unit:
				m.Throughput = v
				m.hasThru = true
			case "allocs/op":
				m.AllocsOp = v
				m.hasAlloc = true
			}
		}
		if !m.hasThru {
			return Measured{}, fmt.Errorf("benchmark %s reported no %s metric (line %q)", name, unit, line)
		}
		if !m.hasAlloc {
			return Measured{}, fmt.Errorf("benchmark %s reported no allocs/op — run with -benchmem (line %q)", name, line)
		}
		return m, nil
	}
	return Measured{}, fmt.Errorf("no output line for benchmark %s", name)
}

// Baseline is the tracked entry the gate compares against: a throughput
// value with the unit naming it, plus the allocation budget. PR records
// which pull request measured the entry, so a failing gate can name the
// exact baseline it held the build to.
type Baseline struct {
	PR          int
	Throughput  float64
	Unit        string
	AllocsPerOp float64
}

// ParseBaseline reads the "current" entry from a baseline JSON file. Two
// shapes are accepted: the pipeline's historical {"inst_per_s": ...}
// (unit inst/s), and the generic {"throughput": ..., "throughput_unit":
// "cells/s"}.
func ParseBaseline(raw []byte) (Baseline, error) {
	var file struct {
		Current struct {
			PR          int     `json:"pr"`
			InstPerS    float64 `json:"inst_per_s"`
			Throughput  float64 `json:"throughput"`
			Unit        string  `json:"throughput_unit"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"current"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return Baseline{}, fmt.Errorf("baseline: %w", err)
	}
	b := Baseline{
		PR:          file.Current.PR,
		Throughput:  file.Current.Throughput,
		Unit:        file.Current.Unit,
		AllocsPerOp: file.Current.AllocsPerOp,
	}
	if b.Throughput == 0 && file.Current.InstPerS > 0 {
		b.Throughput = file.Current.InstPerS
		b.Unit = "inst/s"
	}
	if b.Throughput <= 0 || b.AllocsPerOp <= 0 || b.Unit == "" {
		return Baseline{}, fmt.Errorf("baseline has no usable 'current' entry (throughput=%g unit=%q allocs_per_op=%g)",
			b.Throughput, b.Unit, b.AllocsPerOp)
	}
	return b, nil
}

// BaselineHelp renders the recovery instructions shown when the baseline
// file is missing or unusable: CI cannot gate without one, and the fix is
// always the same — rerun the gated benchmark and record its metrics.
func BaselineHelp(path, benchName string) string {
	pattern := strings.TrimPrefix(benchName, "Benchmark")
	var b strings.Builder
	fmt.Fprintf(&b, "the gate compares against the committed baseline %s, which could not be used. To regenerate it:\n", path)
	fmt.Fprintf(&b, "  1. run:  go test -run=xxx -bench=%s -benchtime=3x -benchmem\n", pattern)
	fmt.Fprintf(&b, "  2. record the metrics in %s under \"current\": {\"throughput\": <value>, \"throughput_unit\": \"<unit>\", \"allocs_per_op\": <n>}\n", path)
	fmt.Fprintf(&b, "     (the pipeline baseline's historical \"inst_per_s\" key is also accepted, with unit inst/s)\n")
	fmt.Fprintf(&b, "  3. commit the refreshed file in the same PR — see the \"note\" field in the existing BENCH_*.json files\n")
	return b.String()
}

// Check is one gated comparison.
type Check struct {
	Metric   string
	Measured float64
	Baseline float64
	Limit    float64 // the threshold the measurement is held to
	Pass     bool
}

// Report aggregates the gate's checks. BaselinePR carries the pull
// request that recorded the baseline entry into the failure output.
type Report struct {
	BaselinePR int
	Checks     []Check
}

// FailureMessage renders the one-line verdict for a failed gate, naming
// the PR whose recorded baseline the build regressed against (when the
// baseline file tracks one).
func (r Report) FailureMessage() string {
	if r.BaselinePR > 0 {
		return fmt.Sprintf("FAIL — performance regressed past the baseline recorded in PR %d (see above)", r.BaselinePR)
	}
	return "FAIL — performance regressed past the gate (see above)"
}

// OK reports whether every check passed.
func (r Report) OK() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Summary renders the checks as an aligned table with PASS/FAIL verdicts.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s   %s\n", "metric", "measured", "baseline", "limit", "verdict")
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-10s %14.0f %14.0f %14.0f   %s\n", c.Metric, c.Measured, c.Baseline, c.Limit, verdict)
	}
	return b.String()
}

// Gate compares a measurement against the baseline: throughput must stay
// at or above minThruFrac of baseline, allocs/op at or below maxAllocsMult
// times baseline.
func Gate(m Measured, base Baseline, minThruFrac, maxAllocsMult float64) Report {
	thruLimit := base.Throughput * minThruFrac
	allocLimit := base.AllocsPerOp * maxAllocsMult
	return Report{BaselinePR: base.PR, Checks: []Check{
		{Metric: base.Unit, Measured: m.Throughput, Baseline: base.Throughput, Limit: thruLimit, Pass: m.Throughput >= thruLimit},
		{Metric: "allocs/op", Measured: m.AllocsOp, Baseline: base.AllocsPerOp, Limit: allocLimit, Pass: m.AllocsOp <= allocLimit},
	}}
}
