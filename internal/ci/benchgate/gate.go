package main

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Measured holds the gated metrics parsed from one benchmark's output line.
type Measured struct {
	Name     string
	NsPerOp  float64
	InstPerS float64
	AllocsOp float64
	hasInst  bool
	hasAlloc bool
}

// ParseBench extracts the named benchmark's metrics from `go test -bench`
// output. Benchmark lines look like:
//
//	BenchmarkPipelineSimulation-8  3  15877023 ns/op  6298731 inst/s  894 allocs/op
//
// i.e. a name (with a -GOMAXPROCS suffix), an iteration count, then
// value/unit pairs.
func ParseBench(out, name string) (Measured, error) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		base, _, _ := strings.Cut(fields[0], "-")
		if base != name {
			continue
		}
		m := Measured{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Measured{}, fmt.Errorf("bad value %q on line %q: %w", fields[i], line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "inst/s":
				m.InstPerS = v
				m.hasInst = true
			case "allocs/op":
				m.AllocsOp = v
				m.hasAlloc = true
			}
		}
		if !m.hasInst {
			return Measured{}, fmt.Errorf("benchmark %s reported no inst/s metric (line %q)", name, line)
		}
		if !m.hasAlloc {
			return Measured{}, fmt.Errorf("benchmark %s reported no allocs/op — run with -benchmem (line %q)", name, line)
		}
		return m, nil
	}
	return Measured{}, fmt.Errorf("no output line for benchmark %s", name)
}

// Baseline is the tracked entry of BENCH_pipeline.json the gate compares
// against.
type Baseline struct {
	InstPerS    float64 `json:"inst_per_s"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ParseBaseline reads the "current" entry from BENCH_pipeline.json.
func ParseBaseline(raw []byte) (Baseline, error) {
	var file struct {
		Current Baseline `json:"current"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return Baseline{}, fmt.Errorf("baseline: %w", err)
	}
	if file.Current.InstPerS <= 0 || file.Current.AllocsPerOp <= 0 {
		return Baseline{}, fmt.Errorf("baseline has no usable 'current' entry (inst_per_s=%g, allocs_per_op=%g)",
			file.Current.InstPerS, file.Current.AllocsPerOp)
	}
	return file.Current, nil
}

// Check is one gated comparison.
type Check struct {
	Metric   string
	Measured float64
	Baseline float64
	Limit    float64 // the threshold the measurement is held to
	Pass     bool
}

// Report aggregates the gate's checks.
type Report struct {
	Checks []Check
}

// OK reports whether every check passed.
func (r Report) OK() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Summary renders the checks as an aligned table with PASS/FAIL verdicts.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %14s   %s\n", "metric", "measured", "baseline", "limit", "verdict")
	for _, c := range r.Checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-10s %14.0f %14.0f %14.0f   %s\n", c.Metric, c.Measured, c.Baseline, c.Limit, verdict)
	}
	return b.String()
}

// Gate compares a measurement against the baseline: inst/s must stay at or
// above minInstFrac of baseline, allocs/op at or below maxAllocsMult times
// baseline.
func Gate(m Measured, base Baseline, minInstFrac, maxAllocsMult float64) Report {
	instLimit := base.InstPerS * minInstFrac
	allocLimit := base.AllocsPerOp * maxAllocsMult
	return Report{Checks: []Check{
		{Metric: "inst/s", Measured: m.InstPerS, Baseline: base.InstPerS, Limit: instLimit, Pass: m.InstPerS >= instLimit},
		{Metric: "allocs/op", Measured: m.AllocsOp, Baseline: base.AllocsPerOp, Limit: allocLimit, Pass: m.AllocsOp <= allocLimit},
	}}
}
