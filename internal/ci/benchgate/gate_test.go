package main

import (
	"os"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: github.com/archsim/fusleep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineSimulation-8   	       3	  15877023 ns/op	   6298731 inst/s	 5930948 cycles/s	 1009154 B/op	     894 allocs/op
BenchmarkTunerSearch-8          	       5	   2200000 ns/op	     21000 cells/s	  800000 B/op	    4100 allocs/op
PASS
ok  	github.com/archsim/fusleep	1.234s
`

func TestParseBench(t *testing.T) {
	m, err := ParseBench(benchOut, "BenchmarkPipelineSimulation", "inst/s")
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput != 6298731 || m.AllocsOp != 894 || m.NsPerOp != 15877023 {
		t.Errorf("parsed %+v", m)
	}
	// A second tracked benchmark with its own throughput unit.
	m, err = ParseBench(benchOut, "BenchmarkTunerSearch", "cells/s")
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput != 21000 || m.AllocsOp != 4100 {
		t.Errorf("parsed %+v", m)
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, err := ParseBench(benchOut, "BenchmarkMissing", "inst/s"); err == nil {
		t.Error("missing benchmark parsed")
	}
	// Asking for a unit the line does not report fails loudly.
	if _, err := ParseBench(benchOut, "BenchmarkPipelineSimulation", "cells/s"); err == nil {
		t.Error("missing throughput unit accepted")
	}
	noMem := strings.ReplaceAll(benchOut, "894 allocs/op", "")
	noMem = strings.ReplaceAll(noMem, "1009154 B/op", "")
	if _, err := ParseBench(noMem, "BenchmarkPipelineSimulation", "inst/s"); err == nil {
		t.Error("output without -benchmem accepted")
	}
}

// TestGateAgainstRepoBaselines proves the committed baseline files are
// parseable by the gate, so the CI jobs cannot rot silently.
func TestGateAgainstRepoBaselines(t *testing.T) {
	cases := []struct {
		path, unit string
		minThru    float64
	}{
		{"../../../BENCH_pipeline.json", "inst/s", 1e6},
		{"../../../BENCH_tune.json", "cells/s", 1e3},
	}
	for _, tc := range cases {
		raw, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		base, err := ParseBaseline(raw)
		if err != nil {
			t.Fatal(err)
		}
		if base.Unit != tc.unit {
			t.Errorf("%s: unit = %q, want %q", tc.path, base.Unit, tc.unit)
		}
		if base.Throughput < tc.minThru {
			t.Errorf("%s: throughput = %g, implausibly low", tc.path, base.Throughput)
		}
		// The baseline's own numbers gate as a pass.
		m := Measured{Throughput: base.Throughput, Unit: base.Unit, AllocsOp: base.AllocsPerOp}
		if rep := Gate(m, base, 0.70, 2.0); !rep.OK() {
			t.Errorf("%s fails its own gate:\n%s", tc.path, rep.Summary())
		}
	}
}

// TestGateFailsOnSyntheticRegression is the gate's reason to exist: a
// throughput collapse or an alloc explosion must fail.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := Baseline{Throughput: 6_298_731, Unit: "inst/s", AllocsPerOp: 894}
	cases := []struct {
		name string
		m    Measured
		ok   bool
	}{
		{"healthy", Measured{Throughput: 6_000_000, AllocsOp: 900}, true},
		{"noise within envelope", Measured{Throughput: 4_500_000, AllocsOp: 1700}, true},
		{"throughput regression", Measured{Throughput: 3_000_000, AllocsOp: 894}, false},
		{"alloc regression", Measured{Throughput: 6_298_731, AllocsOp: 243_786}, false},
		{"exactly at limits", Measured{Throughput: base.Throughput * 0.70, AllocsOp: base.AllocsPerOp * 2}, true},
		{"just past limits", Measured{Throughput: base.Throughput*0.70 - 1, AllocsOp: base.AllocsPerOp * 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Gate(tc.m, base, 0.70, 2.0)
			if rep.OK() != tc.ok {
				t.Errorf("Gate(%+v) ok = %v, want %v\n%s", tc.m, rep.OK(), tc.ok, rep.Summary())
			}
			if len(rep.Checks) != 2 {
				t.Fatalf("checks = %d, want 2", len(rep.Checks))
			}
			if rep.Checks[0].Metric != "inst/s" {
				t.Errorf("throughput check metric = %q", rep.Checks[0].Metric)
			}
		})
	}
}

func TestParseBaselineShapes(t *testing.T) {
	// Historical pipeline shape: inst_per_s implies the inst/s unit.
	b, err := ParseBaseline([]byte(`{"current": {"inst_per_s": 5000000, "allocs_per_op": 900}}`))
	if err != nil || b.Unit != "inst/s" || b.Throughput != 5000000 {
		t.Errorf("historical shape: %+v, %v", b, err)
	}
	// Generic shape with an explicit unit.
	b, err = ParseBaseline([]byte(`{"current": {"throughput": 20000, "throughput_unit": "cells/s", "allocs_per_op": 4000}}`))
	if err != nil || b.Unit != "cells/s" || b.Throughput != 20000 {
		t.Errorf("generic shape: %+v, %v", b, err)
	}
	for _, bad := range []string{`{}`, `not json`, `{"current": {"throughput": 5, "allocs_per_op": 1}}`} {
		if _, err := ParseBaseline([]byte(bad)); err == nil {
			t.Errorf("baseline %q accepted", bad)
		}
	}
}

func TestBaselineHelp(t *testing.T) {
	help := BaselineHelp("BENCH_tune.json", "BenchmarkTunerSearch")
	for _, want := range []string{
		"BENCH_tune.json",
		"-bench=TunerSearch",
		"-benchmem",
		`"current"`,
		"throughput_unit",
		"commit the refreshed file",
	} {
		if !strings.Contains(help, want) {
			t.Errorf("BaselineHelp missing %q in:\n%s", want, help)
		}
	}
}

func TestFailureMessageNamesBaselinePR(t *testing.T) {
	// The baseline records which PR measured it; a failing gate must name
	// that PR so the report is actionable without opening the JSON file.
	b, err := ParseBaseline([]byte(`{"current": {"pr": 10, "inst_per_s": 5000000, "allocs_per_op": 900}}`))
	if err != nil {
		t.Fatal(err)
	}
	if b.PR != 10 {
		t.Fatalf("baseline PR = %d, want 10", b.PR)
	}
	rep := Gate(Measured{Throughput: 1, AllocsOp: 1}, b, 0.70, 2.0)
	if rep.OK() {
		t.Fatal("synthetic regression passed the gate")
	}
	if msg := rep.FailureMessage(); !strings.Contains(msg, "recorded in PR 10") {
		t.Errorf("failure message %q does not name the baseline PR", msg)
	}
	// Legacy baselines without a PR field still fail with a generic verdict.
	legacy := Gate(Measured{Throughput: 1, AllocsOp: 1}, Baseline{Throughput: 5, Unit: "inst/s", AllocsPerOp: 9}, 0.70, 2.0)
	if msg := legacy.FailureMessage(); strings.Contains(msg, "PR") || !strings.Contains(msg, "FAIL") {
		t.Errorf("legacy failure message %q", msg)
	}
}
