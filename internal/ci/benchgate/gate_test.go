package main

import (
	"os"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: github.com/archsim/fusleep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineSimulation-8   	       3	  15877023 ns/op	   6298731 inst/s	 5930948 cycles/s	 1009154 B/op	     894 allocs/op
PASS
ok  	github.com/archsim/fusleep	1.234s
`

func TestParseBench(t *testing.T) {
	m, err := ParseBench(benchOut, "BenchmarkPipelineSimulation")
	if err != nil {
		t.Fatal(err)
	}
	if m.InstPerS != 6298731 || m.AllocsOp != 894 || m.NsPerOp != 15877023 {
		t.Errorf("parsed %+v", m)
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, err := ParseBench(benchOut, "BenchmarkMissing"); err == nil {
		t.Error("missing benchmark parsed")
	}
	noMem := strings.ReplaceAll(benchOut, "894 allocs/op", "")
	noMem = strings.ReplaceAll(noMem, "1009154 B/op", "")
	if _, err := ParseBench(noMem, "BenchmarkPipelineSimulation"); err == nil {
		t.Error("output without -benchmem accepted")
	}
}

// TestGateAgainstRepoBaseline proves the committed BENCH_pipeline.json is
// parseable by the gate, so the CI job cannot rot silently.
func TestGateAgainstRepoBaseline(t *testing.T) {
	raw, err := os.ReadFile("../../../BENCH_pipeline.json")
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if base.InstPerS < 1e6 {
		t.Errorf("baseline inst/s = %g, implausibly low", base.InstPerS)
	}
	// The baseline's own numbers gate as a pass.
	m := Measured{InstPerS: base.InstPerS, AllocsOp: base.AllocsPerOp}
	if rep := Gate(m, base, 0.70, 2.0); !rep.OK() {
		t.Errorf("baseline fails its own gate:\n%s", rep.Summary())
	}
}

// TestGateFailsOnSyntheticRegression is the gate's reason to exist: a
// throughput collapse or an alloc explosion must fail.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	base := Baseline{InstPerS: 6_298_731, AllocsPerOp: 894}
	cases := []struct {
		name string
		m    Measured
		ok   bool
	}{
		{"healthy", Measured{InstPerS: 6_000_000, AllocsOp: 900}, true},
		{"noise within envelope", Measured{InstPerS: 4_500_000, AllocsOp: 1700}, true},
		{"throughput regression", Measured{InstPerS: 3_000_000, AllocsOp: 894}, false},
		{"alloc regression", Measured{InstPerS: 6_298_731, AllocsOp: 243_786}, false},
		{"exactly at limits", Measured{InstPerS: base.InstPerS * 0.70, AllocsOp: base.AllocsPerOp * 2}, true},
		{"just past limits", Measured{InstPerS: base.InstPerS*0.70 - 1, AllocsOp: base.AllocsPerOp * 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Gate(tc.m, base, 0.70, 2.0)
			if rep.OK() != tc.ok {
				t.Errorf("Gate(%+v) ok = %v, want %v\n%s", tc.m, rep.OK(), tc.ok, rep.Summary())
			}
			if len(rep.Checks) != 2 {
				t.Fatalf("checks = %d, want 2", len(rep.Checks))
			}
		})
	}
}

func TestParseBaselineRejectsEmpty(t *testing.T) {
	if _, err := ParseBaseline([]byte(`{}`)); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := ParseBaseline([]byte(`not json`)); err == nil {
		t.Error("garbage baseline accepted")
	}
}
