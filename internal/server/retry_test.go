package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
)

// fakeSleep records requested backoffs and returns immediately, so retry
// tests run on an injected clock instead of real timers.
type fakeSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleep) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Duration, len(f.delays))
	copy(out, f.delays)
	return out
}

// testCell resolves one valid cell from the default grid machinery.
func testCell(t *testing.T, eng *fusleep.Engine) fusleep.Cell {
	t.Helper()
	cells := eng.Cells(fusleep.Grid{Benchmarks: []string{"gcc"}, FUCounts: []int{2}, Window: testWindow})
	if len(cells) == 0 {
		t.Fatal("no cells from test grid")
	}
	return cells[0]
}

func TestEvalCellRetriesTransientThenSucceeds(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellTransient, fault.Spec{Times: 2}) // first two attempts fail
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxRetries: 3})
	defer s.Close()
	fs := &fakeSleep{}
	s.sleep = fs.sleep

	c := testCell(t, eng)
	res, err := s.evalCell(context.Background(), c)
	if err != nil {
		t.Fatalf("evalCell = %v, want success after retries", err)
	}
	if res.RelEnergy <= 0 {
		t.Fatalf("suspicious result %+v", res)
	}
	if got := s.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	delays := fs.recorded()
	want := []time.Duration{s.retry.Delay(c.Key(), 1), s.retry.Delay(c.Key(), 2)}
	if len(delays) != 2 || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", delays, want)
	}
}

func TestEvalCellExhaustsRetries(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellTransient, fault.Spec{}) // every attempt fails
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxRetries: 2})
	defer s.Close()
	fs := &fakeSleep{}
	s.sleep = fs.sleep

	_, err := s.evalCell(context.Background(), testCell(t, eng))
	if !fusleep.IsTransientCellError(err) {
		t.Fatalf("final error %v is not the transient CellError", err)
	}
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || ce.Attempt != 3 {
		t.Fatalf("final error %v, want attempt 3", err)
	}
	if got := s.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2 (MaxRetries)", got)
	}
	if hits := inj.Hits(fault.CellTransient); hits != 3 {
		t.Fatalf("attempts = %d, want 3", hits)
	}
}

func TestEvalCellPanicIsPermanent(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellPanic, fault.Spec{Times: 1})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxRetries: 5})
	defer s.Close()
	fs := &fakeSleep{}
	s.sleep = fs.sleep

	_, err := s.evalCell(context.Background(), testCell(t, eng))
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || !ce.Panicked {
		t.Fatalf("evalCell = %v, want recovered-panic CellError", err)
	}
	// A panic is permanent: no retries, no backoff, attempt 1.
	if ce.Attempt != 1 || s.retries.Load() != 0 || len(fs.recorded()) != 0 {
		t.Fatalf("panic was retried: attempt=%d retries=%d delays=%v",
			ce.Attempt, s.retries.Load(), fs.recorded())
	}
}

func TestEvalCellTimeoutIsPermanent(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellSlow, fault.Spec{Times: 1, Delay: time.Second})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxRetries: 5, CellTimeout: 5 * time.Millisecond})
	defer s.Close()

	start := time.Now()
	_, err := s.evalCell(context.Background(), testCell(t, eng))
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || !ce.Timeout {
		t.Fatalf("evalCell = %v, want timeout CellError", err)
	}
	if s.retries.Load() != 0 {
		t.Fatalf("timeout was retried %d times", s.retries.Load())
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline did not cut the stall short (%v)", elapsed)
	}
}

func TestRetryDelayDeterministicJitter(t *testing.T) {
	p := retryPolicy{MaxRetries: 4, Base: 10 * time.Millisecond, Max: 2 * time.Second, Seed: 42}
	for _, tc := range []struct {
		key     string
		attempt int
		nominal time.Duration
	}{
		{"cell-a", 1, 10 * time.Millisecond},
		{"cell-a", 2, 20 * time.Millisecond},
		{"cell-a", 3, 40 * time.Millisecond},
		{"cell-b", 1, 10 * time.Millisecond},
		{"cell-b", 9, 2 * time.Second}, // capped
	} {
		d := p.Delay(tc.key, tc.attempt)
		if d < tc.nominal/2 || d >= tc.nominal {
			t.Errorf("Delay(%s, %d) = %v outside [%v, %v)",
				tc.key, tc.attempt, d, tc.nominal/2, tc.nominal)
		}
		if again := p.Delay(tc.key, tc.attempt); again != d {
			t.Errorf("Delay(%s, %d) not deterministic: %v then %v", tc.key, tc.attempt, d, again)
		}
	}
	// Different keys and attempts must jitter differently (else every cell
	// retries in lockstep and the jitter is decorative).
	if p.Delay("cell-a", 1) == p.Delay("cell-b", 1) && p.Delay("cell-a", 2) == p.Delay("cell-b", 2) {
		t.Error("jitter is identical across keys")
	}
	if q := (retryPolicy{Seed: 43, Base: p.Base, Max: p.Max}); q.Delay("cell-a", 1) == p.Delay("cell-a", 1) {
		t.Error("jitter ignores the seed")
	}
}
