package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/store"
)

// killableTransport simulates a worker crash: once killed, every request
// fails at the transport, so the worker can neither report nor say
// goodbye — exactly the silence that forces the coordinator down the
// lease-expiry path.
type killableTransport struct {
	mu   sync.Mutex
	dead bool
}

func (k *killableTransport) kill() {
	k.mu.Lock()
	k.dead = true
	k.mu.Unlock()
}

func (k *killableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	k.mu.Lock()
	dead := k.dead
	k.mu.Unlock()
	if dead {
		return nil, errors.New("injected: worker crashed")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// startWorker runs one in-process fleet worker against the coordinator's
// public URL and returns its engine (to count simulations) and stop func.
func startWorker(t *testing.T, url string, w *fleet.Worker) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w.Coordinator = url
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

// fleetWorkers polls GET /v1/fleet/workers.
func fleetWorkers(t *testing.T, base string) []fleet.WorkerInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []fleet.WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetKillWorkerMidSweepByteIdentical is the fleet chaos acceptance
// test: a coordinator with two workers loses one mid-sweep — transport
// dead, no goodbye — and the sweep must still complete with results
// byte-identical to a standalone daemon's, no accepted cell lost, and no
// completed work duplicated (a resubmit is served entirely from the
// store).
func TestFleetKillWorkerMidSweepByteIdentical(t *testing.T) {
	// Standalone reference: the same grid on a plain single-process server.
	_, tsRef := newTestServer(t, Config{})
	subRef := decodeSubmit(t, postSweep(t, tsRef.URL, chaosGrid))
	reference, endRef := rawCellResults(t, tsRef.URL, subRef.ID)
	if endRef.State != StateDone || len(reference) != 12 {
		t.Fatalf("reference run: state=%s results=%d", endRef.State, len(reference))
	}

	// Coordinator role: owns intake, WAL, and the result store; evaluates
	// nothing locally.
	st, err := store.Open(filepath.Join(t.TempDir(), "coord"), store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	coord := fleet.NewCoordinator(fleet.Config{WorkerTTL: 500 * time.Millisecond})
	s, ts := newTestServer(t, Config{
		Engine:  fusleep.NewEngine(fusleep.WithWindow(testWindow)),
		Fleet:   coord,
		Results: st.Results,
		Jobs:    st.Jobs,
	})

	// Worker A ("doomed") stalls every evaluation on an injected 10-minute
	// delay, so it always dies holding leases. Its transport is killable.
	stallInj := fault.New(11)
	stallInj.Set(fault.CellSlow, fault.Spec{Delay: 10 * time.Minute})
	kt := &killableTransport{}
	doomed := &fleet.Worker{
		Name: "doomed",
		Exec: &fleet.Executor{
			Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow)),
			Fault:  stallInj,
		},
		Client:         &http.Client{Transport: kt},
		Parallel:       4,
		FetchBatch:     4,
		Wait:           50 * time.Millisecond,
		HeartbeatEvery: time.Hour, // only fetch/report would renew its lease
	}
	stopDoomed := startWorker(t, ts.URL, doomed)
	waitFor(t, "doomed worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 1
	})

	// Worker B ("survivor") is healthy and does all the real work.
	survivorEng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	survivor := &fleet.Worker{
		Name:     "survivor",
		Exec:     &fleet.Executor{Engine: survivorEng},
		Parallel: 2,
		Wait:     50 * time.Millisecond,
	}
	startWorker(t, ts.URL, survivor)
	waitFor(t, "survivor worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 2
	})

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	if sub.Cells != 12 {
		t.Fatalf("cells = %d, want 12", sub.Cells)
	}

	// Wait until the doomed worker actually holds leased cells, then kill
	// it: transport dead, run loop stopped, no goodbye sent.
	waitFor(t, "doomed worker to lease cells", 30*time.Second, func() bool {
		for _, w := range fleetWorkers(t, ts.URL) {
			if w.Name == "doomed" && w.Leased > 0 {
				return true
			}
		}
		return false
	})
	kt.kill()
	stopDoomed()

	// The sweep still completes: the coordinator expires the silent worker
	// after its TTL and requeues the leased cells to the survivor.
	results, end := rawCellResults(t, ts.URL, sub.ID)
	if end.State != StateDone || end.Completed != 12 || end.Failed != 0 || end.Skipped != 0 {
		t.Fatalf("fleet run end = %+v, want 12/12 done", end)
	}
	if len(results) != 12 {
		t.Fatalf("fleet run streamed %d results, want 12", len(results))
	}
	for idx, want := range reference {
		if got := results[idx]; got != want {
			t.Fatalf("cell %d differs from standalone:\n  standalone: %s\n  fleet:      %s", idx, want, got)
		}
	}
	fs := coord.Stats()
	if fs.Expired != 1 || fs.Requeues == 0 {
		t.Fatalf("fleet stats = %+v, want the doomed worker expired with requeued work", fs)
	}
	if fs.Completed != 12 {
		t.Fatalf("fleet completed %d assignments, want 12 (none lost, none duplicated)", fs.Completed)
	}
	// Every reported cell was journaled into the content-addressed store.
	if n := st.Results.Len(); n != 12 {
		t.Fatalf("store holds %d results, want 12", n)
	}
	// The job records which fleet workers computed cells.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	var poll sweepPollResponse
	if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(poll.Workers) != 1 || poll.Workers[0] != "survivor" {
		t.Fatalf("job workers = %v, want [survivor]", poll.Workers)
	}

	// Zero recomputation on resubmit: every cell short-circuits through the
	// store before it ever reaches the fleet.
	simsBefore := survivorEng.Stats().Simulations
	dispatchedBefore := coord.Stats().Dispatched
	servedBefore := s.storeServed.Load()
	sub2 := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	results2, end2 := rawCellResults(t, ts.URL, sub2.ID)
	if end2.State != StateDone || len(results2) != 12 {
		t.Fatalf("resubmit end = %+v with %d results", end2, len(results2))
	}
	for idx, want := range reference {
		if got := results2[idx]; got != want {
			t.Fatalf("resubmitted cell %d differs:\n  want: %s\n  got:  %s", idx, want, got)
		}
	}
	if sims := survivorEng.Stats().Simulations; sims != simsBefore {
		t.Fatalf("resubmit recomputed: %d -> %d simulations", simsBefore, sims)
	}
	if d := coord.Stats().Dispatched; d != dispatchedBefore {
		t.Fatalf("resubmit dispatched %d new assignments, want 0", d-dispatchedBefore)
	}
	if served := s.storeServed.Load(); served != 12 {
		t.Fatalf("storeServed = %d (was %d after run 1), want all 12 resubmitted cells (stats %+v, store len %d, end2 %+v)",
			served, servedBefore, coord.Stats(), st.Results.Len(), end2)
	}
}

// TestFleetTuneRunsThroughWorkers drives the tuner through the fleet
// dispatch path: probes evaluate on a remote worker, the run completes,
// and the job attributes the worker.
func TestFleetTuneRunsThroughWorkers(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{})
	_, ts := newTestServer(t, Config{
		Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow)),
		Fleet:  coord,
	})
	worker := &fleet.Worker{
		Name:     "tuner-worker",
		Exec:     &fleet.Executor{Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow))},
		Parallel: 2,
		Wait:     50 * time.Millisecond,
	}
	startWorker(t, ts.URL, worker)
	waitFor(t, "worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 1
	})

	sub := decodeTuneSubmit(t, postTune(t, ts.URL,
		`{"benchmarks":["gcc"],"window":20000,"maxEvals":8,"rounds":1}`))
	_, _, end := readTuneStream(t, ts.URL, sub.ID)
	if end.State != StateDone || end.Result == nil {
		t.Fatalf("tune end = %+v, want a completed result", end)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	var poll tunePollResponse
	if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(poll.Workers) != 1 || poll.Workers[0] != "tuner-worker" {
		t.Fatalf("tune job workers = %v", poll.Workers)
	}
	if fs := coord.Stats(); fs.Completed == 0 {
		t.Fatalf("fleet stats = %+v, want completed probe assignments", fs)
	}
}

// TestFleetBackpressurePropagatesTo429 fills the single worker's queue —
// the worker never fetches — until admission control sheds a submit with
// 429 and the canonical error envelope.
func TestFleetBackpressurePropagatesTo429(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{QueueDepth: 1})
	s, ts := newTestServer(t, Config{
		Engine:     fusleep.NewEngine(fusleep.WithWindow(testWindow)),
		Fleet:      coord,
		MaxPending: 12,
	})
	// Register a worker directly on the coordinator (no fetch loop), so
	// dispatched cells queue but never drain.
	coord.Register("stuck")

	// First submit fills the 1-deep queue and blocks its feeder; the cells
	// stay pending, so a submit exceeding remaining capacity sheds.
	decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	waitFor(t, "backlog to fill", 10*time.Second, func() bool {
		return s.pendingCells.Load() == 12
	})
	resp := postSweep(t, ts.URL, chaosGrid)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != fleet.CodeBacklogFull || e.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code %q", e, fleet.CodeBacklogFull)
	}
}
