package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/store"
	"github.com/archsim/fusleep/internal/telemetry"
)

// Config parameterizes a Server.
type Config struct {
	// Engine executes the cells. Required.
	Engine *fusleep.Engine
	// Shards is the worker-shard count; cells route to shards by
	// configuration hash (default: min(GOMAXPROCS, 8)).
	Shards int
	// QueueDepth bounds each shard's pending-cell queue (default 128).
	// Feeding a full shard blocks the job's feeder goroutine, not the
	// HTTP handler.
	QueueDepth int
	// MaxCells rejects sweeps that expand to more cells than this, and
	// tuner runs asking for a larger evaluation budget (default 4096).
	MaxCells int
	// MaxWindow rejects jobs asking for more than this many instructions
	// per benchmark run (default 10,000,000), bounding worst-case cell cost.
	MaxWindow uint64
	// MaxRetained bounds how many jobs (sweeps and tunes, with their
	// per-cell results) stay queryable (default 256). When a new submission
	// would exceed it, the oldest *terminal* jobs are evicted; running jobs
	// are never evicted, so a long-lived daemon's memory stays bounded.
	MaxRetained int
	// MaxPending is the load-shedding threshold: once the unsettled
	// backlog (sweep cells not yet settled plus running tune budgets)
	// reaches it, new submissions get 429 with a Retry-After hint instead
	// of queueing without bound (default: MaxCells).
	MaxPending int
	// Results, when set, is the durable content-addressed result store:
	// feed serves already-journaled cells from it without queueing them,
	// and /metrics surfaces its stats. Wire the same store into the Engine
	// (fusleep.WithResultStore) so freshly computed results are journaled.
	Results *store.ResultStore
	// Jobs, when set, is the job write-ahead log: accepted submissions are
	// fsynced to it before they are acknowledged, terminal jobs are marked
	// finished, and Recover replays the difference after a restart.
	Jobs *store.JobLog
	// CellTimeout bounds each cell evaluation attempt; a cell that exceeds
	// it fails permanently with a typed timeout CellError (default 0: no
	// per-cell deadline).
	CellTimeout time.Duration
	// MaxRetries is how many additional attempts a transiently failing
	// cell gets, with exponential deterministically jittered backoff
	// (default 0: fail fast).
	MaxRetries int
	// RetryBase is the first retry's nominal backoff (default 10ms).
	RetryBase time.Duration
	// Fault arms the server's fault-injection points for chaos tests; nil
	// (production) injects nothing.
	Fault *fault.Injector
	// Fleet, when set, runs the server as a fleet coordinator: no local
	// shard workers are started, accepted cells dispatch to registered
	// remote workers by rendezvous hashing on their cell key, and the
	// /v1/fleet wire endpoints are mounted. Nil (the default) embeds the
	// workers in-process — the standalone daemon.
	Fleet *fleet.Coordinator
	// Registry, when set, is the metrics registry the server registers
	// into; the daemon shares one registry between the server and the
	// store so /metrics is a single exposition. Nil creates a private one.
	Registry *telemetry.Registry
	// Logger receives the server's structured logs (submissions, sheds,
	// recovery, drain). Nil discards.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
	// TraceJobs and TraceEvents bound the in-memory trace ring: the last
	// TraceJobs job traces are kept, each capped at TraceEvents events
	// (defaults 64 and 512).
	TraceJobs   int
	TraceEvents int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 10_000_000
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 256
	}
	if c.MaxPending <= 0 {
		c.MaxPending = c.MaxCells
	}
	return c
}

// task is one queued cell evaluation: the cell, the context it runs under,
// and the completion callback that routes the outcome back to its job.
// done is called exactly once per task and must not block; worker names
// the fleet worker that computed the result ("" for local evaluation,
// store serves, and error outcomes).
type task struct {
	ctx  context.Context
	cell fusleep.Cell
	done func(worker string, res fusleep.CellResult, err error)
	// trace is the owning job's trace id ("" when the job is untraced).
	trace string
	// enqueued stamps when the task entered the queue; the shard worker
	// turns it into the queue-wait histogram.
	enqueued time.Time
}

// shard is one worker's bounded inbox.
type shard struct {
	ch chan task
}

// queueJob is the shared job resource: the retention registry's view of a
// submitted job — sweep or tune — and the handler set's uniform surface
// for listing, streaming, polling, and canceling either kind. The typed
// /v1/sweeps and /v1/optimize endpoints and the kind-agnostic /v1/jobs
// endpoints all go through it.
type queueJob interface {
	// jobState returns the job's lifecycle state (StateRunning, ...).
	jobState() string
	// requestCancel aborts the job; safe to call repeatedly.
	requestCancel()
	// info snapshots the job for listings and cancel responses.
	info() jobInfo
	// servePoll writes the ?poll=1 point-in-time JSON snapshot.
	servePoll(w http.ResponseWriter)
	// serveStream writes the NDJSON event stream until the job ends or the
	// client goes away.
	serveStream(w http.ResponseWriter, r *http.Request)
}

// Server is the sweep-and-tune service: a shared engine behind a sharded
// job queue plus the HTTP handlers that feed and observe it. Create with
// New, serve its Handler, and call Drain (then Close) on shutdown.
type Server struct {
	cfg   Config
	eng   *fusleep.Engine
	mux   *http.ServeMux
	start time.Time

	shards  []*shard
	workers sync.WaitGroup
	feeders sync.WaitGroup

	// exec is the role-agnostic evaluation path (fault injection, panic
	// containment, per-cell deadline, retry with deterministic jitter)
	// shared with remote fleet workers; the embedded shard workers run it
	// in-process.
	exec *fleet.Executor

	mu        sync.Mutex
	jobs      map[string]queueJob
	order     []string // submission order, for listing and eviction
	seq       uint64
	draining  bool
	drainOnce sync.Once
	drainDone chan struct{} // closed once, after the workers exit
	closing   atomic.Bool   // forced shutdown: terminal aborts stay pending in the WAL
	recovered atomic.Bool   // WAL replay finished (vacuously true without a WAL)

	// pendingCells is the admission-controlled backlog: cells of accepted
	// sweeps not yet settled plus the full evaluation budget of running
	// tune jobs. Submissions shed (429) once it reaches MaxPending.
	pendingCells atomic.Int64

	// Observability: the metrics registry every counter below registers
	// into, the cell-lifecycle trace recorder, and the structured logger.
	reg   *telemetry.Registry
	trace *telemetry.Recorder
	log   *slog.Logger

	// counters (registered; Load() keeps them readable in tests)
	requests    *telemetry.Counter
	submitted   *telemetry.Counter
	rejected    *telemetry.Counter // sweep submissions rejected
	cellsDone   *telemetry.Counter
	cellsFailed *telemetry.Counter
	tunesSubmit *telemetry.Counter
	tunesReject *telemetry.Counter
	probesDone  *telemetry.Counter
	retries     *telemetry.Counter // transient cell failures retried
	sheds       *telemetry.Counter // submissions shed with 429
	replays     *telemetry.Counter // jobs replayed from the WAL
	storeServed *telemetry.Counter // cells served from the result store at feed time
	walErrs     *telemetry.Counter // WAL appends that failed (job ran non-durably)

	// distributions
	evalSeconds  *telemetry.Histogram    // per-attempt cell evaluation latency
	httpSeconds  *telemetry.HistogramVec // request duration by route and code
	queueWait    *telemetry.Histogram    // dispatch → execution (dequeue or lease)
	roundtrip    *telemetry.Histogram    // fleet lease → report per cell
	retryBackoff *telemetry.Histogram    // backoff slept before retries
	stageSeconds *telemetry.HistogramVec // per-trace-stage durations

	// scrapeMu serializes /metrics renders over the one reused buffer, so
	// steady-state scrapes allocate nothing.
	scrapeMu  sync.Mutex
	scrapeBuf bytes.Buffer
}

// New builds a server and starts its shard workers. It panics if cfg.Engine
// is nil, since every request needs one.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		eng:       cfg.Engine,
		start:     time.Now(),
		jobs:      make(map[string]queueJob),
		drainDone: make(chan struct{}),
	}
	s.reg = cfg.Registry
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.trace = telemetry.NewRecorder(cfg.TraceJobs, cfg.TraceEvents)
	s.registerMetrics()
	// Every recorded trace stage feeds the per-stage histogram; the three
	// stages with a natural latency reading also feed their dedicated ones.
	s.trace.SetStageObserver(func(stage string, seconds float64) {
		s.stageSeconds.With(stage).Observe(seconds)
		switch stage {
		case telemetry.StageLeased:
			s.queueWait.Observe(seconds)
		case telemetry.StageEvaluated:
			s.evalSeconds.Observe(seconds)
		case telemetry.StageReported:
			s.roundtrip.Observe(seconds)
		}
	})
	s.exec = &fleet.Executor{
		Engine:      cfg.Engine,
		CellTimeout: cfg.CellTimeout,
		Fault:       cfg.Fault,
		Retry: fleet.RetryPolicy{
			MaxRetries: cfg.MaxRetries,
			Base:       cfg.RetryBase,
			Seed:       0x66_75_73_6c_65_65_70, // "fusleep"
		},
		OnRetry: func(key string, attempt int, delay time.Duration) {
			s.retries.Inc()
			s.retryBackoff.Observe(delay.Seconds())
			s.log.Debug("cell retry scheduled", "key", key, "attempt", attempt, "backoff", delay)
		},
		OnAttempt: func(key string, attempt int, seconds float64, err error) {
			ev := telemetry.Event{Stage: telemetry.StageEvaluated, Attempt: attempt, Seconds: seconds}
			if err != nil {
				ev.Err = err.Error()
			}
			s.trace.RecordKey(key, ev)
		},
	}
	// Without a WAL there is nothing to replay; with one, readiness waits
	// for Recover.
	s.recovered.Store(cfg.Jobs == nil)
	if cfg.Fleet != nil {
		// Coordinator role: remote workers execute the cells; results are
		// journaled as they are reported, and lease expiry ticks in the
		// background until drain completes.
		cfg.Fleet.SetOnResult(s.fleetResult)
		cfg.Fleet.SetTrace(s.trace)
		cfg.Fleet.SetLogger(s.log)
		go s.expiryLoop()
	} else {
		for i := 0; i < cfg.Shards; i++ {
			sh := &shard{ch: make(chan task, cfg.QueueDepth)}
			s.shards = append(s.shards, sh)
			s.workers.Add(1)
			go s.worker(sh)
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// fleetResult journals a remotely computed cell into the content-addressed
// result store, exactly where a standalone engine would have put it. This
// is what makes a requeued replay of already-reported work free: the
// dispatch path serves it from the store instead of recomputing.
func (s *Server) fleetResult(key string, res fusleep.CellResult) {
	if s.cfg.Results == nil {
		return
	}
	// Put failures surface through the store's own PutErrors metric; the
	// job still completes (it just loses the replay-for-free guarantee).
	_ = s.cfg.Results.PutCell(key, res)
	s.trace.RecordKey(key, telemetry.Event{Stage: telemetry.StageStored})
}

// expiryLoop ticks fleet lease expiry so a crashed worker's cells requeue
// even while no other fleet traffic arrives. It stops when the drain
// completes.
func (s *Server) expiryLoop() {
	tick := max(s.cfg.Fleet.TTL()/2, 10*time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.cfg.Fleet.Expire()
		case <-s.drainDone:
			return
		}
	}
}

// Handler returns the server's HTTP handler with request accounting and
// per-route duration histograms (labeled by the mux pattern that matched,
// or "unmatched"). Routes the mux does not know (404) or knows under a
// different method (405) get the canonical JSON error envelope instead of
// the mux's plain-text defaults, so every error the daemon emits has one
// shape.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		start := time.Now() //fusleepvet:nondet-ok request duration observation; never feeds results
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		route := "unmatched"
		if h, pattern := s.mux.Handler(r); pattern == "" {
			rec := &statusRecorder{header: make(http.Header)}
			h.ServeHTTP(rec, r)
			if rec.code == http.StatusMethodNotAllowed {
				if allow := rec.header.Get("Allow"); allow != "" {
					w.Header().Set("Allow", allow)
				}
				writeError(sw, http.StatusMethodNotAllowed, fleet.CodeMethod,
					"method %s not allowed for %s", r.Method, r.URL.Path)
			} else {
				writeError(sw, http.StatusNotFound, fleet.CodeNotFound,
					"no route for %s %s", r.Method, r.URL.Path)
			}
		} else {
			route = pattern
			// Serve through the mux, not h directly: only ServeHTTP binds
			// the matched pattern's path values onto the request.
			s.mux.ServeHTTP(sw, r)
		}
		s.httpSeconds.With(route, strconv.Itoa(sw.code)).Observe(time.Since(start).Seconds())
	})
}

// statusRecorder captures the status a handler would have written,
// discarding the body; Handler uses it to learn whether the mux's
// fallback is a 404 or a 405 before enveloping it.
type statusRecorder struct {
	header http.Header
	code   int
}

func (r *statusRecorder) Header() http.Header         { return r.header }
func (r *statusRecorder) WriteHeader(code int)        { r.code = code }
func (r *statusRecorder) Write(p []byte) (int, error) { return len(p), nil }

// statusWriter passes the response through while remembering the status
// code for the request-duration histogram. It forwards Flush so the
// NDJSON job streams keep flushing per event through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// shardFor routes a cell to its worker shard by simulation identity
// (SimKey), so every cell needing the same simulations — identical cells,
// and equally the policy/tech variants of one (workload, FU-mix) machine,
// whether they arrive via a sweep grid or a tuner probe — serializes on one
// shard and evaluates closed-form off the shard's warm simulation and
// profile caches instead of simulating concurrently on different shards.
// Per-cell wire results are unaffected: dispatch affinity changes the
// schedule, not the numbers.
func (s *Server) shardFor(c fusleep.Cell) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.SimKey()))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// worker drains one shard until the shard channel closes at drain time.
// Evaluation goes through the shared Executor, which contains panics,
// enforces the per-cell deadline, and retries transient failures.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for t := range sh.ch {
		if err := t.ctx.Err(); err != nil {
			t.done("", fusleep.CellResult{}, err)
			continue
		}
		if !t.enqueued.IsZero() {
			s.queueWait.Observe(time.Since(t.enqueued).Seconds())
		}
		res, err := s.exec.EvalCell(t.ctx, t.cell)
		t.done("", res, err)
	}
}

// enqueue routes one task to its executor: the cell's worker shard in
// standalone mode, the fleet coordinator in coordinator mode (where
// already-journaled cells are served from the store without dispatching —
// the short-circuit that makes requeued replays free). It blocks under
// backpressure and reports false — without calling done — when the task's
// context was canceled first; the caller settles the cell as skipped.
func (s *Server) enqueue(t task) bool {
	if fl := s.cfg.Fleet; fl != nil {
		if s.cfg.Results != nil && t.ctx.Err() == nil {
			if res, ok, err := s.cfg.Results.GetCell(t.cell.Key()); err == nil && ok {
				s.storeServed.Inc()
				if t.trace != "" {
					s.trace.Record(t.trace, telemetry.Event{Stage: telemetry.StageStoreServed, Key: t.cell.Key()})
				}
				t.done("", res, nil)
				return true
			}
		}
		return fl.Dispatch(fleet.Task{Ctx: t.ctx, Cell: t.cell, Done: t.done, TraceID: t.trace}) == nil
	}
	select {
	case s.shardFor(t.cell).ch <- t:
		return true
	case <-t.ctx.Done():
		return false
	}
}

// feed pushes a sweep job's cells into their shards, stopping early if the
// job is aborted; unfed cells settle as skipped so the job still
// terminates. Cells already in the durable result store are served from
// disk here — no queue slot, no worker, no recomputation — which is what
// makes a replayed job re-enqueue only its unfinished cells.
func (s *Server) feed(job *sweepJob) {
	defer s.feeders.Done()
	for i, c := range job.cells {
		idx := i
		key := c.Key()
		if s.cfg.Results != nil && job.ctx.Err() == nil {
			if res, ok, err := s.cfg.Results.GetCell(key); err == nil && ok {
				res.Index = idx
				// Count before completing: complete() may finish the job and
				// release its stream, and the metrics must already agree with
				// what that stream announced.
				s.cellsDone.Inc()
				s.storeServed.Inc()
				s.trace.Record(job.id, telemetry.Event{Stage: telemetry.StageStoreServed, Key: key})
				job.complete("", res)
				s.release(1)
				continue
			}
		}
		// Record dispatch before enqueueing: this binds the cell key to the
		// job's trace, so key-addressed events (evaluated attempts, stored
		// results) land on the right timeline.
		s.trace.Record(job.id, telemetry.Event{Stage: telemetry.StageDispatched, Key: key})
		t := task{ctx: job.ctx, cell: c, trace: job.id, enqueued: time.Now(), done: func(worker string, res fusleep.CellResult, err error) {
			defer s.release(1)
			if err != nil {
				s.trace.Record(job.id, telemetry.Event{Stage: telemetry.StageFailed, Key: key, Err: err.Error()})
				if job.fail(err) {
					s.cellsFailed.Inc()
				}
				return
			}
			res.Index = idx
			s.trace.Record(job.id, telemetry.Event{Stage: telemetry.StageCompleted, Key: key, Worker: worker})
			job.complete(worker, res)
			s.cellsDone.Inc()
		}}
		if !s.enqueue(t) {
			s.release(len(job.cells) - i)
			job.skip(len(job.cells) - i)
			return
		}
	}
}

// capacity is the admission-control threshold on the unsettled backlog.
func (s *Server) capacity() int { return s.cfg.MaxPending }

// admit reserves backlog room for n cells, shedding the submission when
// the pending backlog has reached MaxPending. Accepted work must release
// its reservation as it settles.
func (s *Server) admit(n int) bool {
	if pending := s.pendingCells.Load(); pending >= int64(s.capacity()) {
		s.sheds.Inc()
		s.log.Warn("submission shed", "cells", n, "pending", pending, "capacity", s.capacity())
		return false
	}
	s.pendingCells.Add(int64(n))
	return true
}

// release returns n cells of backlog reservation.
func (s *Server) release(n int) { s.pendingCells.Add(-int64(n)) }

// shedBacklog is the single admission gate for submission handlers: it
// reserves backlog room for n cells, and on overload counts the rejection
// on rejects and emits the canonical shed response — a Retry-After header
// plus the CodeBacklogFull 429 envelope — so clients see identical
// backpressure signals from every endpoint. Returns whether the
// submission was admitted.
func (s *Server) shedBacklog(w http.ResponseWriter, rejects *telemetry.Counter, n int) bool {
	if s.admit(n) {
		return true
	}
	rejects.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, fleet.CodeBacklogFull,
		"backlog full (%d pending cells); retry later", s.pendingCells.Load())
	return false
}

// retryAfterSeconds estimates how long a shed client should wait before
// resubmitting: at least a second, growing with the backlog.
func (s *Server) retryAfterSeconds() int {
	secs := 1 + int(s.pendingCells.Load())/max(s.capacity(), 1)
	return min(secs, 30)
}

// submit registers a job and starts its feeder goroutine (which pushes
// sweep cells or drives a tuner run). It fails once the server is draining.
func (s *Server) submit(id string, job queueJob, run func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	s.evictLocked()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.feeders.Add(1)
	go run()
	return nil
}

// evictLocked drops the oldest terminal jobs until the new submission fits
// under MaxRetained. Running jobs are skipped, so retention never cuts a
// live stream's state out from under it. Callers must hold s.mu.
func (s *Server) evictLocked() {
	if len(s.jobs) < s.cfg.MaxRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		job := s.jobs[id]
		if job.jobState() != StateRunning && len(s.jobs) >= s.cfg.MaxRetained {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

var errDraining = errors.New("server is draining; not accepting new jobs")

// lookupSweep finds a sweep job by id.
func (s *Server) lookupSweep(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id].(*sweepJob)
	return job, ok
}

// lookupTune finds a tune job by id.
func (s *Server) lookupTune(id string) (*tuneJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id].(*tuneJob)
	return job, ok
}

// nextID allocates a job id with the given prefix ("s" for sweeps, "t" for
// tune jobs); the sequence is shared so ids stay globally unique.
func (s *Server) nextID(prefix string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return jobID(prefix, s.seq)
}

// queueDepth sums the pending (not yet executing) cells: shard-channel
// backlogs in standalone mode, worker queues plus unrouted orphans in
// coordinator mode.
func (s *Server) queueDepth() int {
	if fl := s.cfg.Fleet; fl != nil {
		st := fl.Stats()
		return st.Queued + st.Unassigned
	}
	n := 0
	for _, sh := range s.shards {
		n += len(sh.ch)
	}
	return n
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops accepting new jobs, lets every queued and in-flight cell
// finish (tuner runs drive to completion), and stops the shard workers. If
// ctx expires first, the remaining jobs are canceled (their in-flight
// cells abort promptly and settle as skipped) and Drain returns ctx.Err
// after the workers exit. Drain is idempotent; concurrent calls — and
// Close calls racing a Drain — share the single drain goroutine, so the
// shard channels close exactly once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	s.drainOnce.Do(func() {
		go func() {
			// No new feeders can start (draining is set), so once the live
			// ones finish the queues only shrink.
			s.log.Info("drain started", "queued", s.queueDepth())
			s.feeders.Wait()
			if fl := s.cfg.Fleet; fl != nil {
				// Coordinator role: wait for the fleet to report (or a
				// forced close to cancel) every outstanding assignment. The
				// context is detached on purpose — the drain must outlast
				// the caller's ctx, and a forced close unblocks it by
				// canceling every job.
				_ = fl.Quiesce(context.Background(), 10*time.Millisecond) //fusleepvet:ctx-ok forced close cancels the jobs Quiesce waits on
			}
			for _, sh := range s.shards {
				close(sh.ch)
			}
			s.workers.Wait()
			s.log.Info("drain complete")
			close(s.drainDone)
		}()
	})

	select {
	case <-s.drainDone:
		return nil
	case <-ctx.Done():
		// Expired drains are forced shutdowns: aborted jobs stay pending in
		// the WAL so a restart replays them.
		s.closing.Store(true)
		s.cancelAll()
		<-s.drainDone
		return ctx.Err()
	}
}

// Close force-stops the server: cancel every job, then drain. For tests
// and fatal-error paths; production shutdown should Drain first. Close
// keeps the conventional no-argument signature — after cancelAll every
// worker is already unblocking, so the drain below cannot hang. Jobs
// aborted here are deliberately NOT marked finished in the WAL: a forced
// stop is the in-process stand-in for a crash, and the aborted jobs are
// exactly the replay set the next start recovers.
//
//fusleepvet:ctx-ok Close is the forced path; Drain(ctx) is the cancellable one
func (s *Server) Close() {
	s.closing.Store(true)
	s.cancelAll()
	_ = s.Drain(context.Background())
}

// cancelAll aborts every registered job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]queueJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
}

// journalSubmit write-ahead-logs an accepted job — fsynced before the
// submission is acknowledged — and arms its terminal callback. A wedged
// WAL degrades to a non-durable job (it runs, it just will not replay)
// rather than failing the submission.
func (s *Server) journalSubmit(id, kind string, req any, arm func(onTerminal func(string))) {
	if s.cfg.Jobs == nil {
		return
	}
	payload, err := json.Marshal(req)
	if err == nil {
		err = s.cfg.Jobs.Submitted(id, kind, payload)
	}
	if err != nil {
		s.walErrs.Inc()
		s.log.Warn("job WAL append failed; job runs non-durably", "job", id, "kind", kind, "err", err)
		return
	}
	s.trace.Record(id, telemetry.Event{Stage: telemetry.StageJournaled})
	arm(s.finishRecord(id))
}

// finishRecord returns the terminal callback that marks a journaled job
// finished. Shutdown aborts are excluded on purpose: a job canceled
// because the process is dying is still pending work, and leaving it
// unfinished in the WAL is what makes the next start replay it.
func (s *Server) finishRecord(id string) func(state string) {
	return func(state string) {
		if state == StateCanceled && s.closing.Load() {
			return
		}
		if err := s.cfg.Jobs.Finished(id, state); err != nil {
			s.walErrs.Inc()
		}
	}
}

// Recover replays the job WAL: every job submitted but never finished is
// re-registered under its original ID and re-run. Cells already in the
// durable result store are served from disk at feed time, so a replayed
// sweep recomputes only the cells the crash actually lost. Call Recover
// once, after New and before serving traffic; /readyz reports 503 until
// it has run (when a WAL is configured).
//
//fusleepvet:ctx-ok replayed jobs outlive the call, exactly like submissions
func (s *Server) Recover() (int, error) {
	if s.cfg.Jobs == nil {
		return 0, nil
	}
	// Keep the ID sequence monotonic past every journaled job — finished
	// ones included — so new submissions never collide with replayed IDs.
	s.mu.Lock()
	for _, id := range s.cfg.Jobs.Known() {
		if n, ok := parseJobID(id); ok && n > s.seq {
			s.seq = n
		}
	}
	s.mu.Unlock()

	replayed := 0
	var errs []error
	for _, rec := range s.cfg.Jobs.Pending() {
		if err := s.replay(rec); err != nil {
			// A payload that no longer parses (config drift across the
			// restart) is finished-failed rather than replayed forever.
			errs = append(errs, fmt.Errorf("job %s: %w", rec.ID, err))
			s.log.Warn("WAL replay failed; job marked failed", "job", rec.ID, "kind", rec.Kind, "err", err)
			if ferr := s.cfg.Jobs.Finished(rec.ID, StateFailed); ferr != nil {
				s.walErrs.Inc()
			}
			continue
		}
		replayed++
		s.replays.Inc()
	}
	s.recovered.Store(true)
	if replayed > 0 || len(errs) > 0 {
		s.log.Info("WAL recovery finished", "replayed", replayed, "failed", len(errs))
	}
	return replayed, errors.Join(errs...)
}

// replay re-submits one WAL record under its original ID.
func (s *Server) replay(rec store.JobRecord) error {
	switch rec.Kind {
	case "sweep":
		var req SweepRequest
		if err := json.Unmarshal(rec.Payload, &req); err != nil {
			return err
		}
		g, err := req.grid(s.cfg.MaxWindow)
		if err != nil {
			return err
		}
		cells := s.eng.Cells(g)
		job := newSweepJob(context.Background(), rec.ID, cells) //fusleepvet:ctx-ok replayed job outlives the call
		job.recovered = true
		job.rec = s.trace
		job.onTerminal = s.finishRecord(rec.ID)
		// Start the trace before submit: the feeder races this function, and
		// its dispatch events must find the trace already live.
		s.trace.Start(rec.ID)
		s.trace.Record(rec.ID, telemetry.Event{Stage: telemetry.StageReplayed, Detail: "sweep"})
		s.log.Info("replaying journaled job", "job", rec.ID, "kind", "sweep", "cells", len(cells))
		s.pendingCells.Add(int64(len(cells)))
		if err := s.submit(rec.ID, job, func() { s.feed(job) }); err != nil {
			s.release(len(cells))
			job.cancel()
			return err
		}
	case "tune":
		var req TuneRequest
		if err := json.Unmarshal(rec.Payload, &req); err != nil {
			return err
		}
		opts, budget, err := req.options(s.cfg)
		if err != nil {
			return err
		}
		job := newTuneJob(context.Background(), rec.ID, budget) //fusleepvet:ctx-ok replayed job outlives the call
		job.recovered = true
		job.rec = s.trace
		job.onTerminal = s.finishRecord(rec.ID)
		s.trace.Start(rec.ID)
		s.trace.Record(rec.ID, telemetry.Event{Stage: telemetry.StageReplayed, Detail: "tune"})
		s.log.Info("replaying journaled job", "job", rec.ID, "kind", "tune", "budget", budget)
		s.pendingCells.Add(int64(budget))
		if err := s.submit(rec.ID, job, func() { s.runTune(job, opts) }); err != nil {
			s.release(budget)
			job.cancel()
			return err
		}
	default:
		return fmt.Errorf("unknown job kind %q", rec.Kind)
	}
	return nil
}

// parseJobID extracts the numeric sequence from a "s-000042"-style job ID.
func parseJobID(id string) (uint64, bool) {
	i := strings.IndexByte(id, '-')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	return n, err == nil
}
