// Package server implements fusleepd, the sweep-service daemon: an
// HTTP/JSON front end over a shared fusleep.Engine. Submitted sweep grids
// are expanded into cells and fed through a sharded, bounded job queue —
// cells are routed to worker shards by their configuration hash, so
// identical cells land on the same shard and deduplicate through the
// engine's simulation cache instead of racing each other. Results stream
// back per cell as NDJSON, and the server drains in-flight cells gracefully
// on shutdown.
//
// Tuner jobs (POST /v1/optimize) share the same machinery: the tuner's
// probes are cells routed through the same shards, so tuner and sweep
// workloads dedupe against each other, and tune jobs live in the same
// bounded retention registry as sweeps.
//
// Endpoints:
//
//	POST   /v1/sweeps          submit a grid, returns {id, cells}
//	GET    /v1/sweeps          list sweep jobs
//	GET    /v1/sweeps/{id}     stream per-cell results as NDJSON (?poll=1 for
//	                           a point-in-time JSON snapshot instead)
//	DELETE /v1/sweeps/{id}     cancel a sweep; in-flight cells abort promptly
//	POST   /v1/optimize        submit a tuner run, returns {id, maxEvals}
//	GET    /v1/optimize        list tune jobs
//	GET    /v1/optimize/{id}   stream per-probe results as NDJSON (?poll=1
//	                           for a snapshot)
//	DELETE /v1/optimize/{id}   cancel a tune job
//	GET    /v1/workloads       the registered benchmark suite
//	GET    /v1/policies        the registered sleep policies and their knobs
//	GET    /healthz            liveness (503 while draining)
//	GET    /metrics            Prometheus-style counters and gauges
package server

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/archsim/fusleep"
)

// Config parameterizes a Server.
type Config struct {
	// Engine executes the cells. Required.
	Engine *fusleep.Engine
	// Shards is the worker-shard count; cells route to shards by
	// configuration hash (default: min(GOMAXPROCS, 8)).
	Shards int
	// QueueDepth bounds each shard's pending-cell queue (default 128).
	// Feeding a full shard blocks the job's feeder goroutine, not the
	// HTTP handler.
	QueueDepth int
	// MaxCells rejects sweeps that expand to more cells than this, and
	// tuner runs asking for a larger evaluation budget (default 4096).
	MaxCells int
	// MaxWindow rejects jobs asking for more than this many instructions
	// per benchmark run (default 10,000,000), bounding worst-case cell cost.
	MaxWindow uint64
	// MaxRetained bounds how many jobs (sweeps and tunes, with their
	// per-cell results) stay queryable (default 256). When a new submission
	// would exceed it, the oldest *terminal* jobs are evicted; running jobs
	// are never evicted, so a long-lived daemon's memory stays bounded.
	MaxRetained int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 10_000_000
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 256
	}
	return c
}

// task is one queued cell evaluation: the cell, the context it runs under,
// and the completion callback that routes the outcome back to its job.
// done is called exactly once per task and must not block.
type task struct {
	ctx  context.Context
	cell fusleep.Cell
	done func(fusleep.CellResult, error)
}

// shard is one worker's bounded inbox.
type shard struct {
	ch chan task
}

// queueJob is the retention registry's view of a submitted job — sweep or
// tune — just enough to list, evict, and cancel uniformly.
type queueJob interface {
	// jobState returns the job's lifecycle state (StateRunning, ...).
	jobState() string
	// requestCancel aborts the job; safe to call repeatedly.
	requestCancel()
}

// Server is the sweep-and-tune service: a shared engine behind a sharded
// job queue plus the HTTP handlers that feed and observe it. Create with
// New, serve its Handler, and call Drain (then Close) on shutdown.
type Server struct {
	cfg   Config
	eng   *fusleep.Engine
	mux   *http.ServeMux
	start time.Time

	shards  []*shard
	workers sync.WaitGroup
	feeders sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]queueJob
	order     []string // submission order, for listing and eviction
	seq       uint64
	draining  bool
	drainOnce sync.Once

	// metrics
	requests    atomic.Uint64
	submitted   atomic.Uint64
	rejected    atomic.Uint64 // sweep submissions rejected
	cellsDone   atomic.Uint64
	cellsFailed atomic.Uint64
	tunesSubmit atomic.Uint64
	tunesReject atomic.Uint64
	probesDone  atomic.Uint64
}

// New builds a server and starts its shard workers. It panics if cfg.Engine
// is nil, since every request needs one.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   cfg.Engine,
		start: time.Now(),
		jobs:  make(map[string]queueJob),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{ch: make(chan task, cfg.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.workers.Add(1)
		go s.worker(sh)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// shardFor routes a cell to its worker shard by configuration hash, so
// identical cells — whether they arrive via a sweep grid or a tuner probe —
// serialize on one shard and hit the simulation cache instead of
// simulating concurrently on different shards.
func (s *Server) shardFor(c fusleep.Cell) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.Key()))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// worker drains one shard until the shard channel closes at drain time.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for t := range sh.ch {
		if err := t.ctx.Err(); err != nil {
			t.done(fusleep.CellResult{}, err)
			continue
		}
		t.done(s.eng.RunCell(t.ctx, t.cell))
	}
}

// feed pushes a sweep job's cells into their shards, stopping early if the
// job is aborted; unfed cells settle as skipped so the job still
// terminates.
func (s *Server) feed(job *sweepJob) {
	defer s.feeders.Done()
	for i, c := range job.cells {
		idx := i
		t := task{ctx: job.ctx, cell: c, done: func(res fusleep.CellResult, err error) {
			if err != nil {
				if job.fail(err) {
					s.cellsFailed.Add(1)
				}
				return
			}
			res.Index = idx
			job.complete(res)
			s.cellsDone.Add(1)
		}}
		select {
		case s.shardFor(c).ch <- t:
		case <-job.ctx.Done():
			job.skip(len(job.cells) - i)
			return
		}
	}
}

// submit registers a job and starts its feeder goroutine (which pushes
// sweep cells or drives a tuner run). It fails once the server is draining.
func (s *Server) submit(id string, job queueJob, run func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	s.evictLocked()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.feeders.Add(1)
	go run()
	return nil
}

// evictLocked drops the oldest terminal jobs until the new submission fits
// under MaxRetained. Running jobs are skipped, so retention never cuts a
// live stream's state out from under it. Callers must hold s.mu.
func (s *Server) evictLocked() {
	if len(s.jobs) < s.cfg.MaxRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		job := s.jobs[id]
		if job.jobState() != StateRunning && len(s.jobs) >= s.cfg.MaxRetained {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

var errDraining = errors.New("server is draining; not accepting new jobs")

// lookupSweep finds a sweep job by id.
func (s *Server) lookupSweep(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id].(*sweepJob)
	return job, ok
}

// lookupTune finds a tune job by id.
func (s *Server) lookupTune(id string) (*tuneJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id].(*tuneJob)
	return job, ok
}

// nextID allocates a job id with the given prefix ("s" for sweeps, "t" for
// tune jobs); the sequence is shared so ids stay globally unique.
func (s *Server) nextID(prefix string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return jobID(prefix, s.seq)
}

// queueDepth sums the shards' pending cells.
func (s *Server) queueDepth() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.ch)
	}
	return n
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops accepting new jobs, lets every queued and in-flight cell
// finish (tuner runs drive to completion), and stops the shard workers. If
// ctx expires first, the remaining jobs are canceled (their in-flight
// cells abort promptly and settle as skipped) and Drain returns ctx.Err
// after the workers exit. Drain is idempotent; concurrent calls share one
// drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	s.drainOnce.Do(func() {
		go func() {
			// No new feeders can start (draining is set), so once the live
			// ones finish the queues only shrink.
			s.feeders.Wait()
			for _, sh := range s.shards {
				close(sh.ch)
			}
		}()
	})
	go func() {
		s.workers.Wait()
		close(done)
	}()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server: cancel every job, then drain. For tests
// and fatal-error paths; production shutdown should Drain first. Close
// keeps the conventional no-argument signature — after cancelAll every
// worker is already unblocking, so the drain below cannot hang.
//
//fusleepvet:ctx-ok Close is the forced path; Drain(ctx) is the cancellable one
func (s *Server) Close() {
	s.cancelAll()
	_ = s.Drain(context.Background())
}

// cancelAll aborts every registered job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]queueJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
}
