// Package server implements fusleepd, the sweep-service daemon: an
// HTTP/JSON front end over a shared fusleep.Engine. Submitted sweep grids
// are expanded into cells and fed through a sharded, bounded job queue —
// cells are routed to worker shards by their configuration hash, so
// identical cells land on the same shard and deduplicate through the
// engine's simulation cache instead of racing each other. Results stream
// back per cell as NDJSON, and the server drains in-flight cells gracefully
// on shutdown.
//
// Endpoints:
//
//	POST   /v1/sweeps        submit a grid, returns {id, cells}
//	GET    /v1/sweeps        list sweep jobs
//	GET    /v1/sweeps/{id}   stream per-cell results as NDJSON (?poll=1 for
//	                         a point-in-time JSON snapshot instead)
//	DELETE /v1/sweeps/{id}   cancel a sweep; in-flight cells abort promptly
//	GET    /v1/workloads     the registered benchmark suite
//	GET    /v1/policies      the registered sleep policies
//	GET    /healthz          liveness (503 while draining)
//	GET    /metrics          Prometheus-style counters and gauges
package server

import (
	"context"
	"errors"
	"hash/fnv"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/archsim/fusleep"
)

// Config parameterizes a Server.
type Config struct {
	// Engine executes the cells. Required.
	Engine *fusleep.Engine
	// Shards is the worker-shard count; cells route to shards by
	// configuration hash (default: min(GOMAXPROCS, 8)).
	Shards int
	// QueueDepth bounds each shard's pending-cell queue (default 128).
	// Feeding a full shard blocks the sweep's feeder goroutine, not the
	// HTTP handler.
	QueueDepth int
	// MaxCells rejects sweeps that expand to more cells than this
	// (default 4096).
	MaxCells int
	// MaxWindow rejects sweeps asking for more than this many instructions
	// per benchmark run (default 10,000,000), bounding worst-case cell cost.
	MaxWindow uint64
	// MaxRetained bounds how many sweep jobs (and their per-cell results)
	// stay queryable (default 256). When a new submission would exceed it,
	// the oldest *terminal* jobs are evicted; running jobs are never
	// evicted, so a long-lived daemon's memory stays bounded.
	MaxRetained int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 10_000_000
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 256
	}
	return c
}

// task is one queued cell evaluation.
type task struct {
	job  *sweepJob
	idx  int
	cell fusleep.Cell
}

// shard is one worker's bounded inbox.
type shard struct {
	ch chan task
}

// Server is the sweep service: a shared engine behind a sharded job queue
// plus the HTTP handlers that feed and observe it. Create with New, serve
// its Handler, and call Drain (then Close) on shutdown.
type Server struct {
	cfg   Config
	eng   *fusleep.Engine
	mux   *http.ServeMux
	start time.Time

	shards  []*shard
	workers sync.WaitGroup
	feeders sync.WaitGroup

	mu        sync.Mutex
	sweeps    map[string]*sweepJob
	order     []string // submission order, for listing
	seq       uint64
	draining  bool
	drainOnce sync.Once

	// metrics
	requests    atomic.Uint64
	submitted   atomic.Uint64
	rejected    atomic.Uint64
	cellsDone   atomic.Uint64
	cellsFailed atomic.Uint64
}

// New builds a server and starts its shard workers. It panics if cfg.Engine
// is nil, since every request needs one.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine,
		start:  time.Now(),
		sweeps: make(map[string]*sweepJob),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{ch: make(chan task, cfg.QueueDepth)}
		s.shards = append(s.shards, sh)
		s.workers.Add(1)
		go s.worker(sh)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// shardFor routes a cell to its worker shard by configuration hash, so
// identical cells serialize on one shard and hit the simulation cache
// instead of simulating concurrently on different shards.
func (s *Server) shardFor(c fusleep.Cell) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.Key()))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// worker drains one shard until the shard channel closes at drain time.
func (s *Server) worker(sh *shard) {
	defer s.workers.Done()
	for t := range sh.ch {
		if t.job.ctx.Err() != nil {
			t.job.skip(1)
			continue
		}
		res, err := s.eng.RunCell(t.job.ctx, t.cell)
		if err != nil {
			if t.job.fail(err) {
				s.cellsFailed.Add(1)
			}
			continue
		}
		res.Index = t.idx
		t.job.complete(res)
		s.cellsDone.Add(1)
	}
}

// feed pushes a job's cells into their shards, stopping early if the job
// is aborted; unfed cells settle as skipped so the job still terminates.
func (s *Server) feed(job *sweepJob) {
	defer s.feeders.Done()
	for i, c := range job.cells {
		select {
		case s.shardFor(c).ch <- task{job: job, idx: i, cell: c}:
		case <-job.ctx.Done():
			job.skip(len(job.cells) - i)
			return
		}
	}
}

// submit registers a job and starts feeding its cells. It fails once the
// server is draining.
func (s *Server) submit(job *sweepJob) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	s.evictLocked()
	s.sweeps[job.id] = job
	s.order = append(s.order, job.id)
	s.feeders.Add(1)
	go s.feed(job)
	s.submitted.Add(1)
	return nil
}

// evictLocked drops the oldest terminal jobs until the new submission fits
// under MaxRetained. Running jobs are skipped, so retention never cuts a
// live stream's state out from under it. Callers must hold s.mu.
func (s *Server) evictLocked() {
	if len(s.sweeps) < s.cfg.MaxRetained {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		job := s.sweeps[id]
		st, _ := job.status()
		if st.State != StateRunning && len(s.sweeps) >= s.cfg.MaxRetained {
			delete(s.sweeps, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

var errDraining = errors.New("server is draining; not accepting new sweeps")

// lookup finds a job by id.
func (s *Server) lookup(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.sweeps[id]
	return job, ok
}

// nextID allocates a sweep id.
func (s *Server) nextID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return sweepID(s.seq)
}

// queueDepth sums the shards' pending cells.
func (s *Server) queueDepth() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.ch)
	}
	return n
}

// Draining reports whether the server has stopped accepting sweeps.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops accepting new sweeps, lets every queued and in-flight cell
// finish, and stops the shard workers. If ctx expires first, the remaining
// jobs are canceled (their in-flight cells abort promptly and settle as
// skipped) and Drain returns ctx.Err after the workers exit. Drain is
// idempotent; concurrent calls share one drain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	s.drainOnce.Do(func() {
		go func() {
			// No new feeders can start (draining is set), so once the live
			// ones finish the queues only shrink.
			s.feeders.Wait()
			for _, sh := range s.shards {
				close(sh.ch)
			}
		}()
	})
	go func() {
		s.workers.Wait()
		close(done)
	}()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close force-stops the server: cancel every job, then drain. For tests
// and fatal-error paths; production shutdown should Drain first.
func (s *Server) Close() {
	s.cancelAll()
	_ = s.Drain(context.Background())
}

// cancelAll aborts every registered job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*sweepJob, 0, len(s.sweeps))
	for _, j := range s.sweeps {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
}
