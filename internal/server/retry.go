package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
)

// retryPolicy schedules bounded backoff for transiently failing cells.
// Delays are exponential with deterministic jitter: the jitter derives
// from (seed, cell key, attempt), so a replayed run backs off exactly the
// same way — no shared RNG, no wall clock — while concurrently retrying
// cells still spread out instead of thundering in lockstep.
type retryPolicy struct {
	// MaxRetries is how many additional attempts a transient failure gets
	// after the first (0 = fail fast).
	MaxRetries int
	// Base is the first retry's nominal delay (default 10ms); attempt n
	// waits Base·2^(n-1), capped at Max (default 2s).
	Base time.Duration
	Max  time.Duration
	// Seed parameterizes the jitter hash.
	Seed uint64
}

// Delay returns the backoff before the retry that follows failing attempt
// n (1-based): the nominal exponential delay scaled into [50%, 100%) by
// the deterministic jitter.
func (p retryPolicy) Delay(key string, attempt int) time.Duration {
	d := p.Base
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	ceil := p.Max
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := p.Seed ^ h.Sum64() ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := 0.5 + 0.5*float64(x>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// sleepCtx is the production sleep used between retry attempts; tests
// inject a recording fake through the Server.sleep field.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// evalCell runs one cell with full failure containment: fault injection,
// panic recovery, the optional per-cell deadline, and bounded retry with
// deterministically jittered backoff for transient failures. Permanent
// failures (validation errors, panics, deadline hits) and job-context
// cancellation return immediately.
func (s *Server) evalCell(ctx context.Context, c fusleep.Cell) (fusleep.CellResult, error) {
	attempts := s.retry.MaxRetries + 1
	var res fusleep.CellResult
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		res, err = s.runOnce(ctx, c, attempt)
		if err == nil || ctx.Err() != nil ||
			!fusleep.IsTransientCellError(err) || attempt == attempts {
			return res, err
		}
		s.retries.Add(1)
		if serr := s.sleep(ctx, s.retry.Delay(c.Key(), attempt)); serr != nil {
			return fusleep.CellResult{}, serr
		}
	}
	return res, err
}

// runOnce is a single contained evaluation attempt.
func (s *Server) runOnce(ctx context.Context, c fusleep.Cell, attempt int) (res fusleep.CellResult, err error) {
	runCtx := ctx
	if s.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, s.cfg.CellTimeout)
		defer cancel()
	}
	// A panicking evaluation must not take the worker shard down with it;
	// it becomes a typed, permanent cell failure.
	defer func() {
		if r := recover(); r != nil {
			res = fusleep.CellResult{}
			err = &fusleep.CellError{
				Key: c.Key(), Attempt: attempt, Panicked: true,
				Err: fmt.Errorf("recovered panic: %v", r),
			}
		}
	}()
	if d := s.cfg.Fault.DelayFor(fault.CellSlow); d > 0 {
		if serr := s.sleep(runCtx, d); serr != nil {
			return fusleep.CellResult{}, s.classify(ctx, runCtx, c, attempt, serr)
		}
	}
	if s.cfg.Fault.Fire(fault.CellPanic) {
		panic("injected: " + fault.CellPanic)
	}
	if s.cfg.Fault.Fire(fault.CellTransient) {
		return fusleep.CellResult{}, &fusleep.CellError{
			Key: c.Key(), Attempt: attempt, Transient: true, Err: fault.ErrTransient,
		}
	}
	res, err = s.eng.RunCell(runCtx, c)
	if err != nil {
		return fusleep.CellResult{}, s.classify(ctx, runCtx, c, attempt, err)
	}
	return res, nil
}

// classify wraps an attempt's error: when the per-cell deadline expired
// while the job's own context was still live, the cell — not the job —
// timed out, and that is a typed, permanent CellError.
func (s *Server) classify(jobCtx, runCtx context.Context, c fusleep.Cell, attempt int, err error) error {
	if jobCtx.Err() == nil && errors.Is(runCtx.Err(), context.DeadlineExceeded) {
		return &fusleep.CellError{Key: c.Key(), Attempt: attempt, Timeout: true, Err: err}
	}
	return err
}
