package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
	"github.com/archsim/fusleep/internal/store"
)

// chaosGrid is the crash-recovery workload: 12 cells (3 policies x 4 FU
// counts) on one benchmark, small enough for -race and large enough that
// a mid-sweep crash strands real work.
const chaosGrid = `{"benchmarks": ["gcc"], "window": 20000, "fuCounts": [1,2,3,4],
  "policies": [{"policy": "AlwaysActive"}, {"policy": "MaxSleep"}, {"policy": "SleepTimeout"}]}`

// rawCellResults streams a sweep to completion and returns each cell's
// result line exactly as served, keyed by grid index — the unit of the
// byte-identity contract.
func rawCellResults(t *testing.T, base, id string) (map[int]string, streamEvent) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[int]string)
	var end streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Event  string          `json:"event"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "cell":
			var idx struct {
				Index int `json:"index"`
			}
			if err := json.Unmarshal(ev.Result, &idx); err != nil {
				t.Fatal(err)
			}
			out[idx.Index] = string(ev.Result)
		case "end":
			if err := json.Unmarshal(sc.Bytes(), &end); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out, end
}

// crashServer is one daemon incarnation over a shared store directory.
func crashServer(t *testing.T, dir string, inj *fault.Injector) (*Server, *httptest.Server, *store.Store, *fusleep.Engine) {
	t.Helper()
	st, err := store.Open(dir, store.Options{SyncEvery: 1, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow), fusleep.WithResultStore(st.Results))
	s := New(Config{Engine: eng, Results: st.Results, Jobs: st.Jobs, Fault: inj})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		st.Close()
	})
	return s, ts, st, eng
}

// TestCrashRecoveryByteIdentical is the chaos acceptance test: a sweep's
// durability layer "crashes" mid-run (an injected fsync failure wedges
// both journals after 4 results landed, exactly like a dying disk; the
// job's Finished record is lost with it), the server is force-closed and
// a new incarnation opens the same store directory. Recovery must replay
// the job under its original ID, serve the 4 journaled cells from disk
// without recomputation, and stream a result set byte-identical to the
// uninterrupted run.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fusleepd")

	// Incarnation A: the fsync point is armed to survive 5 syncs — the
	// WAL's submitted record plus 4 result appends — then fail forever.
	inj := fault.New(1)
	inj.Set(fault.JournalFsync, fault.Spec{After: 5})
	sA, tsA, stA, _ := crashServer(t, dir, inj)

	sub := decodeSubmit(t, postSweep(t, tsA.URL, chaosGrid))
	if sub.Cells != 12 {
		t.Fatalf("cells = %d, want 12", sub.Cells)
	}
	// The sweep itself completes — store failures degrade to lost
	// durability, never failed cells — and its stream is the uninterrupted
	// reference.
	reference, end := rawCellResults(t, tsA.URL, sub.ID)
	if end.State != StateDone || len(reference) != 12 {
		t.Fatalf("reference run: state=%s results=%d", end.State, len(reference))
	}
	if !stA.Results.Wedged() {
		t.Fatal("results journal survived the injected fsync failures")
	}
	journaled := stA.Results.Len()
	if journaled != 4 {
		t.Fatalf("journaled %d results before the crash, want 4", journaled)
	}
	// Force-stop: the in-process stand-in for a kill. The job's Finished
	// append already hit the wedged WAL, so on disk it is still pending.
	tsA.Close()
	sA.Close()
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation B: same directory, no faults.
	sB, tsB, stB, engB := crashServer(t, dir, nil)
	if stB.Results.Len() != journaled {
		t.Fatalf("reopened store has %d results, want %d", stB.Results.Len(), journaled)
	}
	replayed, err := sB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d jobs, want 1", replayed)
	}

	// The replayed job keeps its original ID and completes.
	recovered, endB := rawCellResults(t, tsB.URL, sub.ID)
	if endB.State != StateDone || len(recovered) != 12 {
		t.Fatalf("recovered run: state=%s results=%d", endB.State, len(recovered))
	}
	// Byte-identity: every cell's served JSON matches the uninterrupted
	// run exactly.
	for idx, want := range reference {
		if got := recovered[idx]; got != want {
			t.Fatalf("cell %d differs after recovery:\n  before: %s\n  after:  %s", idx, want, got)
		}
	}
	// Zero recomputation of journaled cells: they were served at feed
	// time, straight from disk.
	if served := sB.storeServed.Load(); served != uint64(journaled) {
		t.Fatalf("storeServed = %d, want %d", served, journaled)
	}
	// And the rest really ran: the engine simulated only what the crash
	// lost.
	if sims := engB.Stats().Simulations; sims == 0 || sims > 12 {
		t.Fatalf("recovery ran %d simulations, want within (0, 12]", sims)
	}
	// A second restart replays nothing: the recovered job finished and
	// its Finished record is durable this time.
	tsB.Close()
	sB.Close()
	if err := stB.Close(); err != nil {
		t.Fatal(err)
	}
	sC, _, stC, _ := crashServer(t, dir, nil)
	if stC.Results.Len() != 12 {
		t.Fatalf("final store has %d results, want 12", stC.Results.Len())
	}
	if replayed, err := sC.Recover(); err != nil || replayed != 0 {
		t.Fatalf("second recovery replayed %d jobs (err %v), want 0", replayed, err)
	}
}

// TestFaultContainedSweepCompletes drives a sweep through injected
// transient failures and asserts retries absorb them: the job completes,
// and its results match a clean run's.
func TestFaultContainedSweepCompletes(t *testing.T) {
	inj := fault.New(3)
	// Every third evaluation attempt fails transiently, five times total.
	inj.Set(fault.CellTransient, fault.Spec{Every: 3, Times: 5})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxRetries: 2, RetryBase: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	faulted, end := rawCellResults(t, ts.URL, sub.ID)
	if end.State != StateDone || end.Failed != 0 {
		t.Fatalf("faulted run: state=%s failed=%d", end.State, end.Failed)
	}
	if s.retries.Load() == 0 {
		t.Fatal("no retries recorded despite armed transient faults")
	}

	_, cleanTS := newTestServer(t, Config{})
	cleanSub := decodeSubmit(t, postSweep(t, cleanTS.URL, chaosGrid))
	clean, _ := rawCellResults(t, cleanTS.URL, cleanSub.ID)
	for idx, want := range clean {
		if got := faulted[idx]; got != want {
			t.Fatalf("cell %d differs under fault injection:\n  clean:   %s\n  faulted: %s", idx, want, got)
		}
	}
}

// TestCellPanicFailsJobNotServer injects a panic into one cell: the job
// fails with a typed error, the worker shard survives, and the server
// keeps serving.
func TestCellPanicFailsJobNotServer(t *testing.T) {
	inj := fault.New(5)
	inj.Set(fault.CellPanic, fault.Spec{Times: 1})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	_, end := rawCellResults(t, ts.URL, sub.ID)
	if end.State != StateFailed || !strings.Contains(end.Error, "panicked") {
		t.Fatalf("panicked sweep: state=%s error=%q", end.State, end.Error)
	}
	// The shard workers survived: a fresh sweep on the same server runs
	// clean.
	sub2 := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	_, end2 := rawCellResults(t, ts.URL, sub2.ID)
	if end2.State != StateDone {
		t.Fatalf("post-panic sweep: state=%s error=%q", end2.State, end2.Error)
	}
}

// TestLoadShedAndReadyz fills the backlog with a stalled sweep and
// asserts further submissions shed with 429 + Retry-After while /readyz
// reports not ready.
func TestLoadShedAndReadyz(t *testing.T) {
	inj := fault.New(9)
	// Every cell stalls long enough for the assertions below.
	inj.Set(fault.CellSlow, fault.Spec{Delay: 30 * time.Second})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Fault: inj, MaxPending: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	sub := decodeSubmit(t, postSweep(t, ts.URL,
		`{"benchmarks": ["gcc"], "window": 20000, "fuCounts": [1,2], "policies": [{"policy": "MaxSleep"}]}`))
	if sub.Cells != 2 {
		t.Fatalf("cells = %d, want 2", sub.Cells)
	}

	resp := postSweep(t, ts.URL, chaosGrid)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over full backlog = %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	if s.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", s.sheds.Load())
	}

	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz under full backlog = %s, want 503", rz.Status)
	}
	var rd struct {
		Ready        bool  `json:"ready"`
		PendingCells int64 `json:"pendingCells"`
	}
	if err := json.NewDecoder(rz.Body).Decode(&rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || rd.PendingCells != 2 {
		t.Fatalf("/readyz = %+v", rd)
	}
	// /healthz stays green: the daemon is alive, just busy.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz under load = %s, want 200", hz.Status)
	}
}

// TestCloseDuringDrainNoDoubleClose is the Close-vs-Drain regression
// test: concurrent Drain and Close calls — with live jobs in flight —
// must share one shutdown (no double close of the shard channels, no
// send on a closed channel) and all return.
func TestCloseDuringDrainNoDoubleClose(t *testing.T) {
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng, Shards: 2, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_ = s.Drain(ctx)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent Close/Drain deadlocked")
	}
	// The server refuses new work but stays queryable.
	resp := postSweep(t, ts.URL, chaosGrid)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %s, want 503", resp.Status)
	}
}

// TestRecoveredJobVisibleInListing asserts a replayed sweep carries its
// original ID and the recovered marker through the listing API.
func TestRecoveredJobVisibleInListing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fusleepd")
	stA, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Journal a submission by hand, as if the daemon died right after the
	// ack: submitted, never finished.
	if err := stA.Jobs.Submitted("s-000007", "sweep", []byte(chaosGrid)); err != nil {
		t.Fatal(err)
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts, _, _ := crashServer(t, dir, nil)
	if replayed, err := s.Recover(); err != nil || replayed != 1 {
		t.Fatalf("recover = %d, %v", replayed, err)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "s-000007" || !list[0].Recovered {
		t.Fatalf("listing = %+v, want the recovered s-000007", list)
	}
	// New submissions continue past the replayed sequence number.
	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	if sub.ID != "s-000008" {
		t.Fatalf("next id = %s, want s-000008", sub.ID)
	}
}
