package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
)

// TestInterleavedSweepTuneSubmitCancelDrain exercises the shared queueJob
// registry the way the race detector wants to see it: sweep and optimize
// jobs — legacy and class-aware — submitted concurrently from many
// goroutines, a subset canceled mid-flight while pollers read their
// status, then a full drain. Every job must reach a terminal state, jobs
// that were never canceled must complete, and the shard workers must shut
// down cleanly. The windows are tiny so the whole interleaving stays fast
// under -race -short.
func TestInterleavedSweepTuneSubmitCancelDrain(t *testing.T) {
	eng := fusleep.NewEngine(fusleep.WithWindow(5_000))
	s, ts := newTestServer(t, Config{Engine: eng, Shards: 3, QueueDepth: 8})

	sweepBodies := []string{
		`{"benchmarks": ["gcc"], "window": 5000, "fuCounts": [2]}`,
		`{"benchmarks": ["gcc"], "window": 5000, "classes": ["intalu", "fpalu"],
		  "assignments": [{"intalu": {"policy": "GradualSleep", "slices": 4},
		                   "fpalu": {"policy": "MaxSleep"}}],
		  "policies": [{"policy": "AlwaysActive"}]}`,
		`{"benchmarks": ["gcc"], "window": 5000, "fuCounts": [4], "multCounts": [2]}`,
	}
	tuneBodies := []string{
		`{"benchmarks": ["gcc"], "window": 5000, "maxEvals": 6,
		  "policies": ["AlwaysActive", "MaxSleep"]}`,
		`{"benchmarks": ["gcc"], "window": 5000, "maxEvals": 8,
		  "classes": ["intalu", "fpalu"],
		  "policies": ["AlwaysActive", "MaxSleep"]}`,
	}

	type job struct {
		id       string
		kind     string // "sweeps" or "optimize"
		canceled bool
	}
	const rounds = 2
	jobs := make([]job, 0, rounds*(len(sweepBodies)+len(tuneBodies)))
	var mu sync.Mutex
	var wg sync.WaitGroup

	submit := func(kind, body string, cancel bool) {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/"+kind, "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := decodeBody(resp, &sub); err != nil {
			t.Errorf("%s submit: %v", kind, err)
			return
		}
		if cancel {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/"+kind+"/"+sub.ID, nil)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
		// Poll once while the system is in motion; any well-formed answer
		// is acceptable, it just has to be race-clean.
		presp, err := http.Get(ts.URL + "/v1/" + kind + "/" + sub.ID + "?poll=1")
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, presp.Body)
		presp.Body.Close()
		mu.Lock()
		jobs = append(jobs, job{id: sub.ID, kind: kind, canceled: cancel})
		mu.Unlock()
	}

	for r := 0; r < rounds; r++ {
		for i, body := range sweepBodies {
			wg.Add(1)
			go submit("sweeps", body, (r+i)%3 == 0)
		}
		for i, body := range tuneBodies {
			wg.Add(1)
			go submit("optimize", body, (r+i)%3 == 1)
		}
	}
	wg.Wait()

	ctx, stop := context.WithTimeout(context.Background(), 60*time.Second)
	defer stop()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, j := range jobs {
		var state string
		switch j.kind {
		case "sweeps":
			sw, ok := s.lookupSweep(j.id)
			if !ok {
				t.Errorf("sweep %s missing from the registry", j.id)
				continue
			}
			state = sw.jobState()
		default:
			tn, ok := s.lookupTune(j.id)
			if !ok {
				t.Errorf("tune %s missing from the registry", j.id)
				continue
			}
			state = tn.jobState()
		}
		if state == StateRunning {
			t.Errorf("%s %s still running after drain", j.kind, j.id)
		}
		if state == StateFailed {
			t.Errorf("%s %s failed", j.kind, j.id)
		}
		if !j.canceled && state != StateDone {
			t.Errorf("uncanceled %s %s ended %q, want %q", j.kind, j.id, state, StateDone)
		}
	}
}

// decodeBody decodes a 202 submit response.
func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("got %s: %s", resp.Status, b)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
