package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
)

// testWindow keeps per-cell simulation cost small enough for -race runs.
const testWindow = 20_000

// newTestServer builds a server over a small-window engine and an
// httptest front end; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = fusleep.NewEngine(fusleep.WithWindow(testWindow))
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSweep(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSubmit(t *testing.T, resp *http.Response) submitResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: got %s: %s", resp.Status, b)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// readStream consumes a sweep's NDJSON stream to the end and returns the
// events by type.
func readStream(t *testing.T, base, id string) (header streamEvent, cells []streamEvent, end streamEvent) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sawEnd := false
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "sweep":
			header = ev
		case "cell":
			cells = append(cells, ev)
		case "end":
			end = ev
			sawEnd = true
		default:
			t.Fatalf("unknown stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawEnd {
		t.Fatal("stream ended without a terminal event")
	}
	return header, cells, end
}

func TestSubmitStreamComplete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := decodeSubmit(t, postSweep(t, ts.URL,
		fmt.Sprintf(`{"ps":[0.05,0.5],"benchmarks":["gcc"],"window":%d}`, testWindow)))
	if sub.Cells != 8 { // 2 techs x 4 default policies
		t.Fatalf("cells = %d, want 8", sub.Cells)
	}

	header, cells, end := readStream(t, ts.URL, sub.ID)
	if header.ID != sub.ID || header.Cells != 8 {
		t.Errorf("header = %+v", header)
	}
	if len(cells) != 8 {
		t.Fatalf("streamed %d cells, want 8", len(cells))
	}
	seen := map[int]bool{}
	for _, ev := range cells {
		if ev.Result == nil || ev.Key == "" {
			t.Fatalf("cell event missing payload: %+v", ev)
		}
		if ev.Key != ev.Result.Cell.Key() {
			t.Errorf("event key %q != cell key %q", ev.Key, ev.Result.Cell.Key())
		}
		if ev.Result.RelEnergy <= 0 || ev.Result.RelEnergy > 1.5 {
			t.Errorf("cell %d has implausible E/E_base %g", ev.Result.Index, ev.Result.RelEnergy)
		}
		seen[ev.Result.Index] = true
	}
	for i := 0; i < 8; i++ {
		if !seen[i] {
			t.Errorf("no result for grid index %d", i)
		}
	}
	if end.State != StateDone || end.Completed != 8 || end.Failed != 0 {
		t.Errorf("end = %+v, want done 8/8", end)
	}

	// The poll view agrees with the stream.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var poll sweepPollResponse
	if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	if poll.State != StateDone || poll.Completed != 8 || len(poll.Results) != 8 {
		t.Errorf("poll = %+v", poll.jobInfo)
	}
}

func TestResubmitHitsSimulationCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"ps":[0.05],"benchmarks":["gcc"],"window":%d}`, testWindow)

	sub := decodeSubmit(t, postSweep(t, ts.URL, body))
	readStream(t, ts.URL, sub.ID)
	first := s.eng.Stats()
	if first.Simulations == 0 {
		t.Fatal("first sweep ran no simulations")
	}

	sub2 := decodeSubmit(t, postSweep(t, ts.URL, body))
	readStream(t, ts.URL, sub2.ID)
	second := s.eng.Stats()
	if second.Simulations != first.Simulations {
		t.Errorf("resubmit re-simulated: %d -> %d runs", first.Simulations, second.Simulations)
	}
	if second.CacheHits <= first.CacheHits {
		t.Errorf("resubmit did not hit the cache: hits %d -> %d", first.CacheHits, second.CacheHits)
	}

	// The /metrics cache-hit counter reflects it.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	var hits uint64
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "fusleepd_sim_cache_hits_total ") {
			fmt.Sscanf(line, "fusleepd_sim_cache_hits_total %d", &hits)
		}
	}
	if hits != second.CacheHits {
		t.Errorf("/metrics cache hits = %d, engine says %d", hits, second.CacheHits)
	}
}

func TestCancelMidSweep(t *testing.T) {
	// One shard and a long window serialize the cells, so the cancel
	// lands while most of the sweep is still queued or in flight.
	eng := fusleep.NewEngine(fusleep.WithWindow(5_000_000))
	_, ts := newTestServer(t, Config{Engine: eng, Shards: 1})
	sub := decodeSubmit(t, postSweep(t, ts.URL, `{"ps":[0.05,0.1,0.2],"benchmarks":["gcc","mcf"]}`))

	time.Sleep(50 * time.Millisecond)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	_, cells, end := readStream(t, ts.URL, sub.ID)
	if end.State != StateCanceled {
		t.Fatalf("end state = %q, want canceled (end = %+v)", end.State, end)
	}
	if end.Completed+end.Skipped+end.Failed != sub.Cells {
		t.Errorf("cells unaccounted: completed %d + skipped %d + failed %d != %d",
			end.Completed, end.Skipped, end.Failed, sub.Cells)
	}
	if len(cells) == sub.Cells {
		t.Error("cancellation completed every cell; nothing was actually canceled")
	}
}

func TestMalformedGridRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCells: 16})
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"truncated json", `{"ps":[0.05`, http.StatusBadRequest},
		{"unknown field", `{"frequencies":[1.0]}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benchmarks":["dhrystone"]}`, http.StatusBadRequest},
		{"unknown policy", `{"policies":[{"policy":"TurboSleep"}]}`, http.StatusBadRequest},
		{"leakage out of range", `{"ps":[1.5]}`, http.StatusBadRequest},
		{"alpha out of range", `{"alpha":2}`, http.StatusBadRequest},
		{"window too large", `{"window":999999999999}`, http.StatusBadRequest},
		{"too many cells", `{"ps":[0.1,0.2,0.3,0.4,0.5]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSweep(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("got %s (%s), want %d", resp.Status, b, tc.wantCode)
			}
			var e apiError
			if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && (e.Error.Message == "" || e.Error.Code == "") {
				t.Error("rejection carried no error code or message")
			}
		})
	}
	// Rejections must not leave jobs behind.
	resp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("rejected submissions registered %d jobs", len(list))
	}
}

func TestConcurrentIdenticalSubmitsDedupe(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 4})
	body := fmt.Sprintf(`{"ps":[0.05],"benchmarks":["gcc"],"window":%d}`, testWindow)

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sub submitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				t.Error(err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submit failed")
		}
		_, cells, end := readStream(t, ts.URL, id)
		if end.State != StateDone || len(cells) != 4 {
			t.Fatalf("sweep %s: state %q with %d cells", id, end.State, len(cells))
		}
	}
	// All four sweeps need exactly one gcc simulation between them:
	// identical cells share a shard (so they serialize) and the engine
	// cache or in-flight dedupe serves the rest.
	st := s.eng.Stats()
	if st.Simulations != 1 {
		t.Errorf("%d identical sweeps ran %d simulations, want 1", n, st.Simulations)
	}
	if st.CacheHits+st.InflightJoins == 0 {
		t.Error("no cache hits or in-flight joins recorded")
	}
}

func TestDrainCompletesQueuedCells(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2})
	sub := decodeSubmit(t, postSweep(t, ts.URL,
		fmt.Sprintf(`{"ps":[0.05,0.5],"benchmarks":["gcc","mcf"],"window":%d}`, testWindow)))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every queued cell completed before the workers stopped.
	_, cells, end := readStream(t, ts.URL, sub.ID)
	if end.State != StateDone || len(cells) != sub.Cells {
		t.Fatalf("after drain: state %q, %d/%d cells", end.State, len(cells), sub.Cells)
	}

	// The drained server refuses new work but still serves reads.
	resp := postSweep(t, ts.URL, `{"ps":[0.05]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: got %s, want 503", resp.Status)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: got %s, want 503", hresp.Status)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil || h.Status != "draining" {
		t.Errorf("healthz status = %q (err %v)", h.Status, err)
	}
}

// TestOversizedGridRejectedBeforeExpansion pins the pre-expansion
// cardinality bound: a small request body whose seven axes multiply into
// an astronomical grid must be a fast 413, not an expansion-then-check
// (which would allocate the cell list first).
func TestOversizedGridRejectedBeforeExpansion(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCells: 64})
	axis := make([]string, 200)
	for i := range axis {
		axis[i] = fmt.Sprintf("%d", i+1)
	}
	list := "[" + strings.Join(axis, ",") + "]"
	body := fmt.Sprintf(`{"fuCounts": %s, "multCounts": %s, "fpaluCounts": %s, "fpmultCounts": %s, "aguCounts": %s}`,
		list, list, list, list, list) // 200^5 * 4 default policies >> 64
	start := time.Now()
	resp := postSweep(t, ts.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("oversized grid: got %s: %s", resp.Status, b)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("rejection took %v; the bound must run before expansion", d)
	}
}

func TestRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var workloads []workloadInfo
	if err := json.NewDecoder(resp.Body).Decode(&workloads); err != nil {
		t.Fatal(err)
	}
	if len(workloads) != 9 {
		t.Errorf("workloads = %d, want the nine-benchmark suite", len(workloads))
	}

	presp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var policies []policyInfo
	if err := json.NewDecoder(presp.Body).Decode(&policies); err != nil {
		t.Fatal(err)
	}
	names := map[string][]string{}
	for _, p := range policies {
		names[p.Name] = p.Params
	}
	for _, want := range []string{"AlwaysActive", "MaxSleep", "NoOverhead", "GradualSleep", "SleepTimeout", "OracleMinimal"} {
		if _, ok := names[want]; !ok {
			t.Errorf("policy %q missing from /v1/policies", want)
		}
	}
	// The tuner's refinable knobs are advertised under their PolicyConfig
	// JSON names, so clients can build tune requests from the registry.
	if got := names["SleepTimeout"]; len(got) != 1 || got[0] != "timeout" {
		t.Errorf("SleepTimeout params = %v, want [timeout]", got)
	}
	if got := names["GradualSleep"]; len(got) != 1 || got[0] != "slices" {
		t.Errorf("GradualSleep params = %v, want [slices]", got)
	}

	cresp, err := http.Get(ts.URL + "/v1/classes")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var classes []classInfo
	if err := json.NewDecoder(cresp.Body).Decode(&classes); err != nil {
		t.Fatal(err)
	}
	classNames := map[string]classInfo{}
	for _, c := range classes {
		classNames[c.Name] = c
	}
	for _, want := range []string{"intalu", "agu", "mult", "fpalu", "fpmult"} {
		if _, ok := classNames[want]; !ok {
			t.Errorf("class %q missing from /v1/classes", want)
		}
	}
	if classNames["agu"].DefaultUnits != 0 {
		t.Errorf("agu advertises %d default units, want 0 (shared)", classNames["agu"].DefaultUnits)
	}

	// Unknown sweep ids are a clean 404.
	gresp, err := http.Get(ts.URL + "/v1/sweeps/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: got %s, want 404", gresp.Status)
	}
}

// TestSweepRequestGridDefaults pins the wire-level tech defaulting rule:
// partial tech points inherit the paper's default parameters.
func TestSweepRequestGridDefaults(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(`{"techs":[{"p":0.5}]}`), &req); err != nil {
		t.Fatal(err)
	}
	g, err := req.grid(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	def := fusleep.DefaultTech()
	if len(g.Techs) != 1 {
		t.Fatalf("techs = %d, want 1", len(g.Techs))
	}
	got := g.Techs[0]
	if got.P != 0.5 || got.C != def.C || got.SleepOverhead != def.SleepOverhead || got.Duty != def.Duty {
		t.Errorf("tech = %+v, want p=0.5 with default c/e_slp/duty", got)
	}

	// Explicit zeros are legal model points (free transitions, perfect
	// low-leakage state) and must not be rewritten to the defaults.
	if err := json.Unmarshal([]byte(`{"techs":[{"p":0.5,"c":0,"sleepOverhead":0}]}`), &req); err != nil {
		t.Fatal(err)
	}
	g, err = req.grid(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Techs[0]; got.C != 0 || got.SleepOverhead != 0 || got.Duty != def.Duty {
		t.Errorf("explicit zeros rewritten: %+v", got)
	}
}

// TestRetentionEvictsOldestTerminalSweeps pins the memory bound: a
// long-lived daemon must not accumulate finished sweeps forever.
func TestRetentionEvictsOldestTerminalSweeps(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRetained: 2})
	body := fmt.Sprintf(`{"ps":[0.05],"benchmarks":["gcc"],"window":%d}`, testWindow)
	var ids []string
	for i := 0; i < 3; i++ {
		sub := decodeSubmit(t, postSweep(t, ts.URL, body))
		readStream(t, ts.URL, sub.ID) // wait until terminal
		ids = append(ids, sub.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest sweep still retained: got %s, want 404", resp.Status)
	}
	for _, id := range ids[1:] {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + id + "?poll=1")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("recent sweep %s evicted: %s", id, r.Status)
		}
	}
}

// TestStreamEventRoundTrip pins the cell-event wire format the example
// client parses.
func TestStreamEventRoundTrip(t *testing.T) {
	eng := fusleep.NewEngine()
	cells := eng.Cells(fusleep.Grid{Benchmarks: []string{"gcc"}})
	res := fusleep.CellResult{Index: 3, Cell: cells[0], RelEnergy: 0.42, LeakageFraction: 0.1}
	ev := streamEvent{Event: "cell", ID: "s-000001", Key: cells[0].Key(), Result: &res}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ev); err != nil {
		t.Fatal(err)
	}
	var back streamEvent
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Result == nil || back.Result.Cell.Key() != ev.Key || back.Result.RelEnergy != 0.42 {
		t.Errorf("round trip lost data: %+v", back.Result)
	}
	if !strings.Contains(buf.String(), `"policy":"MaxSleep"`) {
		t.Errorf("policy not serialized by name: %s", buf.String())
	}
}
