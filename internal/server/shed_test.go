package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/archsim/fusleep/internal/fleet"
)

// TestShedBacklogUniformAcrossEndpoints drives every submission endpoint
// against a saturated backlog and requires the identical shed response:
// 429, the same positive Retry-After hint, and the same CodeBacklogFull
// envelope — the contract the shared shedBacklog helper centralizes. Each
// endpoint must count the rejection on its own metric and leave the
// other's untouched.
func TestShedBacklogUniformAcrossEndpoints(t *testing.T) {
	endpoints := []struct {
		name    string
		path    string
		body    string
		rejects func(s *Server) uint64
		other   func(s *Server) uint64
	}{
		{
			name:    "sweep submit",
			path:    "/v1/sweeps",
			body:    `{"benchmarks":["gcc"],"window":20000,"policies":[{"policy":"MaxSleep"}]}`,
			rejects: func(s *Server) uint64 { return s.rejected.Load() },
			other:   func(s *Server) uint64 { return s.tunesReject.Load() },
		},
		{
			name:    "tune submit",
			path:    "/v1/optimize",
			body:    `{"benchmarks":["gcc"],"window":20000,"maxEvals":8}`,
			rejects: func(s *Server) uint64 { return s.tunesReject.Load() },
			other:   func(s *Server) uint64 { return s.rejected.Load() },
		},
	}

	type shed struct {
		status     int
		retryAfter string
		code       string
		message    string
	}
	var got []shed
	for _, ep := range endpoints {
		t.Run(strings.ReplaceAll(ep.name, " ", "_"), func(t *testing.T) {
			s, ts := newTestServer(t, Config{MaxPending: 4})
			// Saturate the backlog reservation directly: admission sheds
			// once pending >= capacity, no in-flight work needed.
			s.pendingCells.Add(int64(s.capacity()))

			resp, err := http.Post(ts.URL+ep.path, "application/json", strings.NewReader(ep.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("%s over full backlog = %s, want 429", ep.name, resp.Status)
			}
			var e apiError
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("%s shed body: %v", ep.name, err)
			}
			if ep.rejects(s) != 1 {
				t.Errorf("%s reject counter = %d, want 1", ep.name, ep.rejects(s))
			}
			if ep.other(s) != 0 {
				t.Errorf("%s incremented the other endpoint's reject counter", ep.name)
			}
			got = append(got, shed{
				status:     resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"),
				code:       e.Error.Code,
				message:    e.Error.Message,
			})
		})
	}
	if len(got) != len(endpoints) {
		t.Fatalf("collected %d shed responses, want %d", len(got), len(endpoints))
	}

	want := shed{
		status:     http.StatusTooManyRequests,
		retryAfter: "2", // 1 + pending/capacity with the backlog exactly full
		code:       fleet.CodeBacklogFull,
		message:    "backlog full (4 pending cells); retry later",
	}
	for i, g := range got {
		if g != want {
			t.Errorf("%s shed response = %+v, want %+v", endpoints[i].name, g, want)
		}
	}
}
