package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleMetrics renders the service counters in the Prometheus text
// exposition format, without taking a client dependency: every metric is a
// plain counter or gauge line.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	uptime := time.Since(s.start).Seconds()
	stats := s.eng.Stats()
	done := s.cellsDone.Load()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}

	counter("fusleepd_http_requests_total", "HTTP requests served.", s.requests.Load())
	counter("fusleepd_sweeps_submitted_total", "Sweep jobs accepted.", s.submitted.Load())
	counter("fusleepd_tunes_submitted_total", "Tuner jobs accepted.", s.tunesSubmit.Load())
	counter("fusleepd_tune_probes_total", "Tuner probes evaluated.", s.probesDone.Load())
	counter("fusleepd_sweeps_rejected_total", "Sweep submissions rejected.", s.rejected.Load())
	counter("fusleepd_tunes_rejected_total", "Tuner submissions rejected.", s.tunesReject.Load())
	counter("fusleepd_cells_completed_total", "Sweep cells evaluated successfully.", done)
	counter("fusleepd_cells_failed_total", "Sweep cells that failed with a real error.", s.cellsFailed.Load())
	counter("fusleepd_cell_retries_total", "Transient cell failures retried with backoff.", s.retries.Load())
	counter("fusleepd_load_shed_total", "Submissions shed with 429 while the backlog was full.", s.sheds.Load())
	counter("fusleepd_recovery_replays_total", "Jobs replayed from the WAL at startup.", s.replays.Load())
	counter("fusleepd_store_served_total", "Cells served from the durable result store at feed time.", s.storeServed.Load())
	counter("fusleepd_wal_errors_total", "WAL appends that failed (the job ran non-durably).", s.walErrs.Load())
	if s.cfg.Results != nil {
		rs := s.cfg.Results.Stats()
		counter("fusleepd_store_hits_total", "Result-store lookups that found a journaled cell.", rs.Hits)
		counter("fusleepd_store_puts_total", "Cell results journaled to the result store.", rs.Puts)
		gauge("fusleepd_store_results", "Distinct cell results in the durable store.", "%d", rs.Results)
		gauge("fusleepd_store_journal_bytes", "On-disk size of the result journal.", "%d", rs.Bytes)
	}
	if s.cfg.Jobs != nil {
		gauge("fusleepd_wal_bytes", "On-disk size of the job WAL.", "%d", s.cfg.Jobs.Bytes())
	}
	counter("fusleepd_sim_runs_total", "Pipeline simulations executed by the engine.", stats.Simulations)
	counter("fusleepd_sim_cache_hits_total", "Simulation requests served from the cross-call cache.", stats.CacheHits)
	counter("fusleepd_sim_inflight_joins_total", "Simulation requests that joined an identical in-flight run.", stats.InflightJoins)
	gauge("fusleepd_sim_cache_hit_rate", "Fraction of simulation requests that avoided a fresh run.", "%.4f", stats.HitRate())
	sweepsActive, tunesActive := s.activeJobs()
	gauge("fusleepd_queue_depth", "Cells waiting in the shard queues.", "%d", s.queueDepth())
	gauge("fusleepd_pending_cells", "Admission-controlled backlog of unsettled cells.", "%d", s.pendingCells.Load())
	gauge("fusleepd_sweeps_active", "Sweep jobs not yet in a terminal state.", "%d", sweepsActive)
	gauge("fusleepd_tunes_active", "Tuner jobs not yet in a terminal state.", "%d", tunesActive)
	gauge("fusleepd_cells_per_second", "Completed cells per second of uptime.", "%.3f", float64(done)/max(uptime, 1e-9))
	gauge("fusleepd_uptime_seconds", "Seconds since the server started.", "%.3f", uptime)
	if fl := s.cfg.Fleet; fl != nil {
		fs := fl.Stats()
		gauge("fusleepd_fleet_workers", "Registered fleet workers.", "%d", fs.Workers)
		gauge("fusleepd_fleet_queued", "Cells queued on worker queues.", "%d", fs.Queued)
		gauge("fusleepd_fleet_leased", "Cells leased to workers awaiting reports.", "%d", fs.Leased)
		gauge("fusleepd_fleet_unassigned", "Cells orphaned while no worker was registered.", "%d", fs.Unassigned)
		counter("fusleepd_fleet_dispatched_total", "Cells dispatched into the fleet.", fs.Dispatched)
		counter("fusleepd_fleet_joins_total", "Dispatches that joined identical in-flight fleet work.", fs.Joins)
		counter("fusleepd_fleet_completed_total", "Fleet cells reported successfully.", fs.Completed)
		counter("fusleepd_fleet_failed_total", "Fleet cells reported as errors.", fs.Failed)
		counter("fusleepd_fleet_requeues_total", "Cells requeued after a worker left or expired.", fs.Requeues)
		counter("fusleepd_fleet_rebalanced_total", "Queued cells rerouted when a worker joined.", fs.Rebalanced)
		counter("fusleepd_fleet_expired_total", "Workers expired after missed heartbeats.", fs.Expired)
		counter("fusleepd_fleet_stale_reports_total", "Reports discarded because their lease had been requeued.", fs.Stale)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, b.String())
}

// activeJobs counts the still-running jobs of each kind.
func (s *Server) activeJobs() (sweeps, tunes int) {
	s.mu.Lock()
	jobs := make([]queueJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.jobState() != StateRunning {
			continue
		}
		if _, ok := j.(*tuneJob); ok {
			tunes++
		} else {
			sweeps++
		}
	}
	return sweeps, tunes
}
