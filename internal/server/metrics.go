package server

import (
	"net/http"
	"runtime"
	"time"

	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/telemetry"
)

// registerMetrics wires every server metric into s.reg: the mutation
// counters the hot paths bump directly, scrape-time funcs over engine and
// store stats, the latency histograms, and — in coordinator mode — the
// per-worker fleet collectors. Called once from New, before any traffic.
func (s *Server) registerMetrics() {
	reg := s.reg

	role := "standalone"
	if s.cfg.Fleet != nil {
		role = "coordinator"
	}
	reg.NewGaugeCollector("fusleepd_build_info",
		"Build and role metadata; the value is always 1.",
		[]string{"go_version", "role"},
		func() []telemetry.Sample {
			return []telemetry.Sample{{Labels: []string{runtime.Version(), role}, Value: 1}}
		})

	// Mutation counters. The field names and metric names predate the
	// registry; tests read them back through Counter.Load.
	s.requests = reg.NewCounter("fusleepd_http_requests_total", "HTTP requests served.")
	s.submitted = reg.NewCounter("fusleepd_sweeps_submitted_total", "Sweep jobs accepted.")
	s.tunesSubmit = reg.NewCounter("fusleepd_tunes_submitted_total", "Tuner jobs accepted.")
	s.probesDone = reg.NewCounter("fusleepd_tune_probes_total", "Tuner probes evaluated.")
	s.rejected = reg.NewCounter("fusleepd_sweeps_rejected_total", "Sweep submissions rejected.")
	s.tunesReject = reg.NewCounter("fusleepd_tunes_rejected_total", "Tuner submissions rejected.")
	s.cellsDone = reg.NewCounter("fusleepd_cells_completed_total", "Sweep cells evaluated successfully.")
	s.cellsFailed = reg.NewCounter("fusleepd_cells_failed_total", "Sweep cells that failed with a real error.")
	s.retries = reg.NewCounter("fusleepd_cell_retries_total", "Transient cell failures retried with backoff.")
	s.sheds = reg.NewCounter("fusleepd_load_shed_total", "Submissions shed with 429 while the backlog was full.")
	s.replays = reg.NewCounter("fusleepd_recovery_replays_total", "Jobs replayed from the WAL at startup.")
	s.storeServed = reg.NewCounter("fusleepd_store_served_total", "Cells served from the durable result store at feed time.")
	s.walErrs = reg.NewCounter("fusleepd_wal_errors_total", "WAL appends that failed (the job ran non-durably).")

	// Latency distributions.
	s.evalSeconds = reg.NewHistogram("fusleepd_cell_eval_seconds",
		"Cell evaluation attempt latency, local and fleet-reported.", nil)
	s.httpSeconds = reg.NewHistogramVec("fusleepd_http_request_seconds",
		"HTTP request duration by mux route and status code.", nil, "route", "code")
	s.queueWait = reg.NewHistogram("fusleepd_queue_wait_seconds",
		"Time a cell waits between dispatch and execution (shard dequeue or fleet lease).", nil)
	s.roundtrip = reg.NewHistogram("fusleepd_worker_roundtrip_seconds",
		"Fleet lease-to-report round trip per cell.", nil)
	s.retryBackoff = reg.NewHistogram("fusleepd_retry_backoff_seconds",
		"Backoff slept before transient-cell retries.", nil)
	s.stageSeconds = reg.NewHistogramVec("fusleepd_trace_stage_seconds",
		"Per-stage durations observed by the cell-lifecycle trace recorder.", nil, "stage")

	// Scrape-time values: engine, queue, and job-state gauges.
	counterFn := reg.NewCounterFunc
	gaugeFn := reg.NewGaugeFunc
	counterFn("fusleepd_sim_runs_total", "Pipeline simulations executed by the engine.",
		func() float64 { return float64(s.eng.Stats().Simulations) })
	counterFn("fusleepd_sim_cache_hits_total", "Simulation requests served from the cross-call cache.",
		func() float64 { return float64(s.eng.Stats().CacheHits) })
	counterFn("fusleepd_sim_inflight_joins_total", "Simulation requests that joined an identical in-flight run.",
		func() float64 { return float64(s.eng.Stats().InflightJoins) })
	gaugeFn("fusleepd_sim_cache_hit_rate", "Fraction of simulation requests that avoided a fresh run.",
		func() float64 { return s.eng.Stats().HitRate() })
	gaugeFn("fusleepd_queue_depth", "Cells waiting in the shard queues.",
		func() float64 { return float64(s.queueDepth()) })
	gaugeFn("fusleepd_pending_cells", "Admission-controlled backlog of unsettled cells.",
		func() float64 { return float64(s.pendingCells.Load()) })
	gaugeFn("fusleepd_sweeps_active", "Sweep jobs not yet in a terminal state.",
		func() float64 { sweeps, _ := s.activeJobs(); return float64(sweeps) })
	gaugeFn("fusleepd_tunes_active", "Tuner jobs not yet in a terminal state.",
		func() float64 { _, tunes := s.activeJobs(); return float64(tunes) })
	gaugeFn("fusleepd_cells_per_second", "Completed cells per second of uptime.",
		func() float64 { return float64(s.cellsDone.Load()) / max(time.Since(s.start).Seconds(), 1e-9) })
	gaugeFn("fusleepd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	gaugeFn("fusleepd_trace_jobs", "Job traces held in the in-memory trace ring.",
		func() float64 { return float64(s.trace.Jobs()) })

	if rs := s.cfg.Results; rs != nil {
		counterFn("fusleepd_store_hits_total", "Result-store lookups that found a journaled cell.",
			func() float64 { return float64(rs.Stats().Hits) })
		counterFn("fusleepd_store_puts_total", "Cell results journaled to the result store.",
			func() float64 { return float64(rs.Stats().Puts) })
		gaugeFn("fusleepd_store_results", "Distinct cell results in the durable store.",
			func() float64 { return float64(rs.Stats().Results) })
		gaugeFn("fusleepd_store_journal_bytes", "On-disk size of the result journal.",
			func() float64 { return float64(rs.Stats().Bytes) })
	}
	if jl := s.cfg.Jobs; jl != nil {
		gaugeFn("fusleepd_wal_bytes", "On-disk size of the job WAL.",
			func() float64 { return float64(jl.Bytes()) })
	}

	if fl := s.cfg.Fleet; fl != nil {
		gaugeFn("fusleepd_fleet_workers", "Registered fleet workers.",
			func() float64 { return float64(fl.Stats().Workers) })
		gaugeFn("fusleepd_fleet_queued", "Cells queued on worker queues.",
			func() float64 { return float64(fl.Stats().Queued) })
		gaugeFn("fusleepd_fleet_leased", "Cells leased to workers awaiting reports.",
			func() float64 { return float64(fl.Stats().Leased) })
		gaugeFn("fusleepd_fleet_unassigned", "Cells orphaned while no worker was registered.",
			func() float64 { return float64(fl.Stats().Unassigned) })
		counterFn("fusleepd_fleet_dispatched_total", "Cells dispatched into the fleet.",
			func() float64 { return float64(fl.Stats().Dispatched) })
		counterFn("fusleepd_fleet_joins_total", "Dispatches that joined identical in-flight fleet work.",
			func() float64 { return float64(fl.Stats().Joins) })
		counterFn("fusleepd_fleet_completed_total", "Fleet cells reported successfully.",
			func() float64 { return float64(fl.Stats().Completed) })
		counterFn("fusleepd_fleet_failed_total", "Fleet cells reported as errors.",
			func() float64 { return float64(fl.Stats().Failed) })
		counterFn("fusleepd_fleet_requeues_total", "Cells requeued after a worker left or expired.",
			func() float64 { return float64(fl.Stats().Requeues) })
		counterFn("fusleepd_fleet_rebalanced_total", "Queued cells rerouted when a worker joined.",
			func() float64 { return float64(fl.Stats().Rebalanced) })
		counterFn("fusleepd_fleet_expired_total", "Workers expired after missed heartbeats.",
			func() float64 { return float64(fl.Stats().Expired) })
		counterFn("fusleepd_fleet_stale_reports_total", "Reports discarded because their lease had been requeued.",
			func() float64 { return float64(fl.Stats().Stale) })

		// Per-worker breakdown, labeled by routing identity: queue/lease
		// depths from the coordinator's own books, inflight/evaluated from
		// each worker's latest heartbeat.
		workerSamples := func(pick func(fleet.WorkerInfo) float64) func() []telemetry.Sample {
			return func() []telemetry.Sample {
				ws := fl.Workers()
				out := make([]telemetry.Sample, 0, len(ws))
				for _, w := range ws {
					out = append(out, telemetry.Sample{Labels: []string{w.ID}, Value: pick(w)})
				}
				return out
			}
		}
		workerGauge := func(name, help string, pick func(fleet.WorkerInfo) float64) {
			reg.NewGaugeCollector(name, help, []string{"worker"}, workerSamples(pick))
		}
		workerCounter := func(name, help string, pick func(fleet.WorkerInfo) float64) {
			reg.NewCounterCollector(name, help, []string{"worker"}, workerSamples(pick))
		}
		workerGauge("fusleepd_fleet_worker_queued", "Cells queued for the worker.",
			func(w fleet.WorkerInfo) float64 { return float64(w.Queued) })
		workerGauge("fusleepd_fleet_worker_leased", "Cells leased to the worker awaiting reports.",
			func(w fleet.WorkerInfo) float64 { return float64(w.Leased) })
		workerGauge("fusleepd_fleet_worker_inflight", "Evaluations in flight on the worker (self-reported).",
			func(w fleet.WorkerInfo) float64 { return float64(w.Inflight) })
		workerCounter("fusleepd_fleet_worker_completed_total", "Cells the worker reported successfully.",
			func(w fleet.WorkerInfo) float64 { return float64(w.Done) })
		workerCounter("fusleepd_fleet_worker_failed_total", "Cells the worker reported as errors.",
			func(w fleet.WorkerInfo) float64 { return float64(w.Failed) })
		workerCounter("fusleepd_fleet_worker_evaluated_total", "Evaluation attempts the worker ran (self-reported).",
			func(w fleet.WorkerInfo) float64 { return float64(w.Evaluated) })
	}
}

// handleMetrics renders the registry in the Prometheus text exposition
// format from one reused buffer, so steady-state scrapes do not allocate.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapeMu.Lock()
	defer s.scrapeMu.Unlock()
	s.scrapeBuf.Reset()
	s.reg.WriteText(&s.scrapeBuf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.scrapeBuf.Bytes())
}

// activeJobs counts the still-running jobs of each kind.
func (s *Server) activeJobs() (sweeps, tunes int) {
	s.mu.Lock()
	jobs := make([]queueJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if j.jobState() != StateRunning {
			continue
		}
		if _, ok := j.(*tuneJob); ok {
			tunes++
		} else {
			sweeps++
		}
	}
	return sweeps, tunes
}
