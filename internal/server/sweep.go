package server

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/telemetry"
)

// Sweep job states.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// sweepJob is one submitted grid: its resolved cell list plus the mutable
// completion state the workers fill in and the stream handlers watch.
type sweepJob struct {
	id      string
	cells   []fusleep.Cell
	ctx     context.Context
	cancel  context.CancelFunc
	created time.Time

	// recovered marks a job replayed from the WAL after a restart.
	recovered bool
	// rec receives the job's trace events (nil-safe; nil when untraced).
	rec *telemetry.Recorder
	// onTerminal, when set, is invoked exactly once — outside j.mu — when
	// the job reaches a terminal state; the WAL uses it to mark journaled
	// jobs finished.
	onTerminal func(state string)

	mu       sync.Mutex
	results  []fusleep.CellResult // completion order, not grid order
	workers  map[string]struct{}  // fleet workers that completed cells
	settled  int                  // cells accounted for (completed + failed + skipped)
	failed   int
	skipped  int
	canceled bool // an explicit cancel request arrived
	err      error
	state    string
	updated  chan struct{} // closed and replaced on every state change
}

func newSweepJob(parent context.Context, id string, cells []fusleep.Cell) *sweepJob {
	ctx, cancel := context.WithCancel(parent)
	return &sweepJob{
		id:      id,
		cells:   cells,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		state:   StateRunning,
		updated: make(chan struct{}),
	}
}

// broadcast wakes every watcher. Callers must hold j.mu.
func (j *sweepJob) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// maybeFinish moves the job to its terminal state once every cell is
// accounted for, returning the armed terminal notification (nil when the
// job is still running or has no callback). Callers must hold j.mu and
// invoke the returned func after unlocking.
func (j *sweepJob) maybeFinish() (notify func()) {
	if j.settled < len(j.cells) || j.state != StateRunning {
		return nil
	}
	switch {
	case j.canceled:
		j.state = StateCanceled
	case j.err != nil:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	if j.onTerminal == nil {
		return nil
	}
	cb, state := j.onTerminal, j.state
	j.onTerminal = nil
	return func() { cb(state) }
}

// complete records one finished cell; worker names the fleet worker that
// computed it ("" for local evaluation and store serves).
func (j *sweepJob) complete(worker string, res fusleep.CellResult) {
	j.mu.Lock()
	j.results = append(j.results, res)
	if worker != "" {
		if j.workers == nil {
			j.workers = make(map[string]struct{})
		}
		j.workers[worker] = struct{}{}
	}
	j.settled++
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// skip accounts for n cells that will never run (job aborted before they
// were fed to a shard, or a worker dropped them after cancellation).
func (j *sweepJob) skip(n int) {
	if n == 0 {
		return
	}
	j.mu.Lock()
	j.skipped += n
	j.settled += n
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// fail records one cell's error. Cancellation-shaped errors on an already
// aborted job count as skips; a real error latches as the job's failure and
// cancels the remaining cells.
func (j *sweepJob) fail(err error) (realFailure bool) {
	cancelErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	j.mu.Lock()
	if cancelErr && (j.canceled || j.err != nil) {
		j.skipped++
	} else {
		j.failed++
		if j.err == nil {
			j.err = err
		}
		realFailure = true
	}
	j.settled++
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if realFailure {
		// Abort the job's remaining cells; their cancellation errors and
		// unfed remainders settle as skips.
		j.cancel()
	}
	if notify != nil {
		notify()
	}
	return realFailure
}

// jobState implements queueJob for the retention registry.
func (j *sweepJob) jobState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// requestCancel marks the job canceled and aborts its context. Safe to call
// repeatedly and after completion.
func (j *sweepJob) requestCancel() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// infoLocked builds the job's wire snapshot. Callers must hold j.mu.
func (j *sweepJob) infoLocked() jobInfo {
	info := jobInfo{
		ID:        j.id,
		Kind:      KindSweep,
		State:     j.state,
		Cells:     len(j.cells),
		Completed: len(j.results),
		Failed:    j.failed,
		Skipped:   j.skipped,
		Recovered: j.recovered,
		Workers:   workerList(j.workers),
		Created:   j.created,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// info implements queueJob for listings.
func (j *sweepJob) info() jobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.infoLocked()
}

// snapshot returns the job's status plus the completed cell results
// (completion order).
func (j *sweepJob) snapshot() (jobInfo, []fusleep.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	results := make([]fusleep.CellResult, len(j.results))
	copy(results, j.results)
	return j.infoLocked(), results
}

// watch returns the results that completed at or after offset, the current
// state, and the channel that closes on the next change — everything a
// streaming handler needs per iteration, under one lock acquisition.
func (j *sweepJob) watch(offset int) (fresh []fusleep.CellResult, state string, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.results) {
		fresh = make([]fusleep.CellResult, len(j.results)-offset)
		copy(fresh, j.results[offset:])
	}
	return fresh, j.state, j.updated
}

// sweepPollResponse is the ?poll=1 snapshot: status plus completed results.
type sweepPollResponse struct {
	jobInfo
	Results []fusleep.CellResult `json:"results"`
}

// servePoll implements queueJob: the point-in-time JSON snapshot.
func (j *sweepJob) servePoll(w http.ResponseWriter) {
	info, results := j.snapshot()
	writeJSON(w, http.StatusOK, sweepPollResponse{jobInfo: info, Results: results})
}

// streamEvent is one NDJSON line of a sweep stream.
type streamEvent struct {
	// Event is "sweep" (stream header), "cell" (one completed cell), or
	// "end" (terminal summary; always the last line).
	Event string `json:"event"`
	ID    string `json:"id"`
	// Header and end fields.
	State     string `json:"state,omitempty"`
	Cells     int    `json:"cells,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Failed    int    `json:"failed,omitempty"`
	Skipped   int    `json:"skipped,omitempty"`
	Error     string `json:"error,omitempty"`
	// Cell fields.
	Key    string              `json:"key,omitempty"`
	Result *fusleep.CellResult `json:"result,omitempty"`
}

// serveStream implements queueJob: a header line, one line per completed
// cell as it lands (completion order), and a terminal summary line.
func (j *sweepJob) serveStream(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := report.NewStreamEncoder(w)
	info := j.info()
	if err := enc.Encode(streamEvent{Event: "sweep", ID: j.id, State: info.State, Cells: info.Cells}); err != nil {
		return
	}
	sent := 0
	for {
		fresh, state, updated := j.watch(sent)
		for _, res := range fresh {
			ev := streamEvent{Event: "cell", ID: j.id, Key: res.Cell.Key(), Result: &res}
			if err := enc.Encode(ev); err != nil {
				return
			}
			sent++
		}
		if state != StateRunning {
			info := j.info()
			j.rec.Record(j.id, telemetry.Event{Stage: telemetry.StageStreamed, Detail: info.State})
			_ = enc.Encode(streamEvent{
				Event: "end", ID: j.id, State: info.State, Cells: info.Cells,
				Completed: info.Completed, Failed: info.Failed, Skipped: info.Skipped, Error: info.Error,
			})
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// workerList renders a worker set as a sorted slice (nil when empty, so
// the field omits cleanly for standalone runs).
func workerList(set map[string]struct{}) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
