package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/archsim/fusleep"
)

// Sweep job states.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// sweepJob is one submitted grid: its resolved cell list plus the mutable
// completion state the shard workers fill in and the stream handlers watch.
type sweepJob struct {
	id      string
	cells   []fusleep.Cell
	ctx     context.Context
	cancel  context.CancelFunc
	created time.Time

	// recovered marks a job replayed from the WAL after a restart.
	recovered bool
	// onTerminal, when set, is invoked exactly once — outside j.mu — when
	// the job reaches a terminal state; the WAL uses it to mark journaled
	// jobs finished.
	onTerminal func(state string)

	mu       sync.Mutex
	results  []fusleep.CellResult // completion order, not grid order
	settled  int                  // cells accounted for (completed + failed + skipped)
	failed   int
	skipped  int
	canceled bool // an explicit cancel request arrived
	err      error
	state    string
	updated  chan struct{} // closed and replaced on every state change
}

func newSweepJob(parent context.Context, id string, cells []fusleep.Cell) *sweepJob {
	ctx, cancel := context.WithCancel(parent)
	return &sweepJob{
		id:      id,
		cells:   cells,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		state:   StateRunning,
		updated: make(chan struct{}),
	}
}

// broadcast wakes every watcher. Callers must hold j.mu.
func (j *sweepJob) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// maybeFinish moves the job to its terminal state once every cell is
// accounted for, returning the armed terminal notification (nil when the
// job is still running or has no callback). Callers must hold j.mu and
// invoke the returned func after unlocking.
func (j *sweepJob) maybeFinish() (notify func()) {
	if j.settled < len(j.cells) || j.state != StateRunning {
		return nil
	}
	switch {
	case j.canceled:
		j.state = StateCanceled
	case j.err != nil:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	if j.onTerminal == nil {
		return nil
	}
	cb, state := j.onTerminal, j.state
	j.onTerminal = nil
	return func() { cb(state) }
}

// complete records one finished cell.
func (j *sweepJob) complete(res fusleep.CellResult) {
	j.mu.Lock()
	j.results = append(j.results, res)
	j.settled++
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// skip accounts for n cells that will never run (job aborted before they
// were fed to a shard, or a worker dropped them after cancellation).
func (j *sweepJob) skip(n int) {
	if n == 0 {
		return
	}
	j.mu.Lock()
	j.skipped += n
	j.settled += n
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// fail records one cell's error. Cancellation-shaped errors on an already
// aborted job count as skips; a real error latches as the job's failure and
// cancels the remaining cells.
func (j *sweepJob) fail(err error) (realFailure bool) {
	cancelErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	j.mu.Lock()
	if cancelErr && (j.canceled || j.err != nil) {
		j.skipped++
	} else {
		j.failed++
		if j.err == nil {
			j.err = err
		}
		realFailure = true
	}
	j.settled++
	notify := j.maybeFinish()
	j.broadcast()
	j.mu.Unlock()
	if realFailure {
		// Abort the job's remaining cells; their cancellation errors and
		// unfed remainders settle as skips.
		j.cancel()
	}
	if notify != nil {
		notify()
	}
	return realFailure
}

// jobState implements queueJob for the retention registry.
func (j *sweepJob) jobState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// requestCancel marks the job canceled and aborts its context. Safe to call
// repeatedly and after completion.
func (j *sweepJob) requestCancel() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// sweepStatus is the wire snapshot of a job.
type sweepStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Cells     int       `json:"cells"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed,omitempty"`
	Skipped   int       `json:"skipped,omitempty"`
	Error     string    `json:"error,omitempty"`
	Recovered bool      `json:"recovered,omitempty"`
	Created   time.Time `json:"created"`
}

// status snapshots the job; when withResults is set the completed cell
// results (completion order) ride along.
func (j *sweepJob) status() (sweepStatus, []fusleep.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := sweepStatus{
		ID:        j.id,
		State:     j.state,
		Cells:     len(j.cells),
		Completed: len(j.results),
		Failed:    j.failed,
		Skipped:   j.skipped,
		Recovered: j.recovered,
		Created:   j.created,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	results := make([]fusleep.CellResult, len(j.results))
	copy(results, j.results)
	return st, results
}

// watch returns the results that completed at or after offset, the current
// state, and the channel that closes on the next change — everything a
// streaming handler needs per iteration, under one lock acquisition.
func (j *sweepJob) watch(offset int) (fresh []fusleep.CellResult, state string, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.results) {
		fresh = make([]fusleep.CellResult, len(j.results)-offset)
		copy(fresh, j.results[offset:])
	}
	return fresh, j.state, j.updated
}
