package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/store"
	"github.com/archsim/fusleep/internal/telemetry"
)

// scrapeMetrics fetches /metrics, asserts the exposition content type, and
// returns the body after running it through the strict format validator.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q, want the 0.0.4 exposition format", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics failed exposition validation: %v", err)
	}
	return body
}

// metricValue extracts an unlabeled sample's value from exposition text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in line %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// getTrace fetches a job's trace endpoint and decodes the NDJSON stream.
func getTrace(t *testing.T, base, id string) (traceHeader, []telemetry.Event) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		t.Fatal("trace stream empty")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("bad trace header %q: %v", sc.Text(), err)
	}
	if hdr.Event != "trace" || hdr.ID != id {
		t.Fatalf("trace header = %+v", hdr)
	}
	var events []telemetry.Event
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if hdr.Events != len(events) {
		t.Fatalf("header claims %d events, stream carried %d", hdr.Events, len(events))
	}
	return hdr, events
}

// stagesByKey indexes which stages each cell key visited ("" collects the
// job-level chain).
func stagesByKey(events []telemetry.Event) map[string]map[string]int {
	out := make(map[string]map[string]int)
	for _, ev := range events {
		m := out[ev.Key]
		if m == nil {
			m = make(map[string]int)
			out[ev.Key] = m
		}
		m[ev.Stage]++
	}
	return out
}

// TestMetricsExpositionValid runs a sweep on a store-backed server and
// asserts the scrape parses under the strict exposition validator with the
// expected counter and histogram families present.
func TestMetricsExpositionValid(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "telemetry"), store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow), fusleep.WithResultStore(st.Results))
	_, ts := newTestServer(t, Config{Engine: eng, Results: st.Results, Jobs: st.Jobs})

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	if _, end := rawCellResults(t, ts.URL, sub.ID); end.State != StateDone {
		t.Fatalf("sweep state = %s", end.State)
	}

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"fusleepd_build_info{",
		"fusleepd_http_requests_total ",
		"fusleepd_cells_completed_total 12",
		"fusleepd_cell_eval_seconds_bucket{",
		"fusleepd_cell_eval_seconds_count ",
		"fusleepd_cell_eval_seconds_sum ",
		"fusleepd_http_request_seconds_bucket{",
		"fusleepd_queue_wait_seconds_count ",
		"fusleepd_trace_stage_seconds_bucket{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if v := metricValue(t, body, "fusleepd_cell_eval_seconds_count"); v < 12 {
		t.Errorf("eval histogram observed %v cells, want >= 12", v)
	}
	if v := metricValue(t, body, "fusleepd_queue_wait_seconds_count"); v < 12 {
		t.Errorf("queue-wait histogram observed %v cells, want >= 12", v)
	}
	// HTTP histogram routes carry the mux pattern, not raw URLs.
	if !strings.Contains(body, `route="POST /v1/sweeps"`) {
		t.Error("http histogram missing the sweep-submit route label")
	}
}

// TestJobTraceEndpointTimeline submits a sweep and asserts its trace
// timeline is complete: the job-level chain and every cell's dispatched →
// evaluated → completed progression, finished by the stream delivery.
func TestJobTraceEndpointTimeline(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "trace"), store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow), fusleep.WithResultStore(st.Results))
	_, ts := newTestServer(t, Config{Engine: eng, Results: st.Results, Jobs: st.Jobs})

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	if _, end := rawCellResults(t, ts.URL, sub.ID); end.State != StateDone {
		t.Fatalf("sweep state = %s", end.State)
	}

	hdr, events := getTrace(t, ts.URL, sub.ID)
	if hdr.Dropped != 0 {
		t.Fatalf("trace dropped %d events under the default bound", hdr.Dropped)
	}
	byKey := stagesByKey(events)
	job := byKey[""]
	for _, stage := range []string{telemetry.StageSubmitted, telemetry.StageJournaled, telemetry.StageStreamed} {
		if job[stage] == 0 {
			t.Errorf("job-level trace missing %q (have %v)", stage, job)
		}
	}
	cells := 0
	for key, stages := range byKey {
		if key == "" {
			continue
		}
		cells++
		for _, stage := range []string{telemetry.StageDispatched, telemetry.StageEvaluated, telemetry.StageCompleted} {
			if stages[stage] == 0 {
				t.Errorf("cell %s missing stage %q (have %v)", key, stage, stages)
			}
		}
	}
	if cells != 12 {
		t.Fatalf("trace covers %d cells, want 12", cells)
	}
	// Sequence numbers are a contiguous 1-based chain.
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	// Unknown jobs get the canonical 404 envelope.
	resp, err := http.Get(ts.URL + "/v1/jobs/s-404404/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %s, want 404", resp.Status)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code == "" {
		t.Fatalf("404 envelope = %+v", e)
	}
}

// TestFleetTraceLeaseExpiryTimeline is the fleet trace acceptance test: a
// coordinator with two workers loses one mid-sweep, and the job's trace
// must carry every cell's full span timeline — leased, evaluated (with the
// worker attributed), reported, stored, completed — including the requeue
// event the lease expiry recorded.
func TestFleetTraceLeaseExpiryTimeline(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "coord"), store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	coord := fleet.NewCoordinator(fleet.Config{WorkerTTL: 500 * time.Millisecond})
	_, ts := newTestServer(t, Config{
		Engine:  fusleep.NewEngine(fusleep.WithWindow(testWindow)),
		Fleet:   coord,
		Results: st.Results,
		Jobs:    st.Jobs,
	})

	// Worker A stalls forever on every cell and dies without a goodbye.
	stallInj := fault.New(11)
	stallInj.Set(fault.CellSlow, fault.Spec{Delay: 10 * time.Minute})
	kt := &killableTransport{}
	doomed := &fleet.Worker{
		Name: "doomed",
		Exec: &fleet.Executor{
			Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow)),
			Fault:  stallInj,
		},
		Client:         &http.Client{Transport: kt},
		Parallel:       4,
		FetchBatch:     4,
		Wait:           50 * time.Millisecond,
		HeartbeatEvery: time.Hour,
	}
	stopDoomed := startWorker(t, ts.URL, doomed)
	waitFor(t, "doomed worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 1
	})
	survivor := &fleet.Worker{
		Name:     "survivor",
		Exec:     &fleet.Executor{Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow))},
		Parallel: 2,
		Wait:     50 * time.Millisecond,
	}
	startWorker(t, ts.URL, survivor)
	waitFor(t, "survivor worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 2
	})

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	waitFor(t, "doomed worker to lease cells", 30*time.Second, func() bool {
		for _, w := range fleetWorkers(t, ts.URL) {
			if w.Name == "doomed" && w.Leased > 0 {
				return true
			}
		}
		return false
	})
	kt.kill()
	stopDoomed()

	if _, end := rawCellResults(t, ts.URL, sub.ID); end.State != StateDone || end.Completed != 12 {
		t.Fatalf("fleet sweep end = %+v, want 12 completed", end)
	}

	_, events := getTrace(t, ts.URL, sub.ID)
	byKey := stagesByKey(events)
	cells := 0
	for key, stages := range byKey {
		if key == "" {
			continue
		}
		cells++
		for _, stage := range []string{
			telemetry.StageDispatched, telemetry.StageLeased, telemetry.StageEvaluated,
			telemetry.StageReported, telemetry.StageStored, telemetry.StageCompleted,
		} {
			if stages[stage] == 0 {
				t.Errorf("fleet cell %s missing stage %q (have %v)", key, stage, stages)
			}
		}
	}
	if cells != 12 {
		t.Fatalf("trace covers %d cells, want 12", cells)
	}
	// The lease expiry left its mark: at least one requeue with the reason.
	requeues := 0
	for _, ev := range events {
		if ev.Stage == telemetry.StageRequeued {
			requeues++
			if ev.Detail != "lease expired" {
				t.Errorf("requeue detail = %q, want \"lease expired\"", ev.Detail)
			}
			if ev.Key == "" || ev.Worker == "" {
				t.Errorf("requeue event missing cell or worker: %+v", ev)
			}
		}
	}
	if requeues == 0 {
		t.Fatal("trace has no requeued event for the expired worker's leases")
	}
	// Every evaluated span is attributed to a worker and carries a
	// remote-measured duration.
	for _, ev := range events {
		if ev.Stage == telemetry.StageEvaluated {
			if ev.Worker == "" || ev.Attempt == 0 {
				t.Fatalf("evaluated span unattributed: %+v", ev)
			}
		}
	}

	// The scrape agrees: per-worker fleet series exist and the roundtrip
	// histogram saw every reported cell.
	body := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, `fusleepd_fleet_worker_completed_total{worker=`) {
		t.Error("scrape missing per-worker completion counters")
	}
	if v := metricValue(t, body, "fusleepd_worker_roundtrip_seconds_count"); v < 12 {
		t.Errorf("roundtrip histogram observed %v cells, want >= 12", v)
	}
}

// TestFleetConcurrentScrapeAndTrace hammers /metrics and the trace
// endpoint while a fleet sweep runs — the race-detector contract for the
// observability surfaces.
func TestFleetConcurrentScrapeAndTrace(t *testing.T) {
	coord := fleet.NewCoordinator(fleet.Config{})
	_, ts := newTestServer(t, Config{
		Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow)),
		Fleet:  coord,
	})
	worker := &fleet.Worker{
		Name:     "scraped",
		Exec:     &fleet.Executor{Engine: fusleep.NewEngine(fusleep.WithWindow(testWindow))},
		Parallel: 2,
		Wait:     50 * time.Millisecond,
	}
	startWorker(t, ts.URL, worker)
	waitFor(t, "worker registration", 10*time.Second, func() bool {
		return len(fleetWorkers(t, ts.URL)) == 1
	})

	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					continue
				}
				resp.Body.Close()
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/trace")
				if err != nil {
					continue
				}
				resp.Body.Close()
			}
		}()
	}

	_, end := rawCellResults(t, ts.URL, sub.ID)
	close(stop)
	wg.Wait()
	if end.State != StateDone || end.Completed != 12 {
		t.Fatalf("sweep under scrape load = %+v", end)
	}
	// A final quiet scrape and trace still parse clean.
	scrapeMetrics(t, ts.URL)
	if _, events := getTrace(t, ts.URL, sub.ID); len(events) == 0 {
		t.Fatal("trace empty after sweep")
	}
}

// TestCrashReplayTraceShowsReplay asserts the chaos observability
// contract: a job recovered from the WAL carries the replayed event in its
// trace, and fusleepd_recovery_replays_total matches the number of
// replayed traces.
func TestCrashReplayTraceShowsReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fusleepd")
	stA, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The daemon "died" right after acking the submission.
	if err := stA.Jobs.Submitted("s-000007", "sweep", []byte(chaosGrid)); err != nil {
		t.Fatal(err)
	}
	if err := stA.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts, _, _ := crashServer(t, dir, nil)
	if replayed, err := s.Recover(); err != nil || replayed != 1 {
		t.Fatalf("recover = %d, %v", replayed, err)
	}
	if _, end := rawCellResults(t, ts.URL, "s-000007"); end.State != StateDone {
		t.Fatalf("recovered sweep state = %s", end.State)
	}

	_, events := getTrace(t, ts.URL, "s-000007")
	replays := 0
	for _, ev := range events {
		if ev.Stage == telemetry.StageReplayed {
			replays++
			if ev.Detail != "sweep" {
				t.Errorf("replayed detail = %q, want \"sweep\"", ev.Detail)
			}
		}
	}
	if replays != 1 {
		t.Fatalf("trace has %d replayed events, want 1", replays)
	}
	body := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, body, "fusleepd_recovery_replays_total"); int(v) != replays {
		t.Fatalf("fusleepd_recovery_replays_total = %v, want %d (the traced replay count)", v, replays)
	}
}

// TestMetricsScrapeAllocationBounded pins the scrape path's allocation
// budget: rendering from the reused buffer must stay within a handful of
// allocations per scrape (scrape-time snapshots, not output bytes).
func TestMetricsScrapeAllocationBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	sub := decodeSubmit(t, postSweep(t, ts.URL, chaosGrid))
	if _, end := rawCellResults(t, ts.URL, sub.ID); end.State != StateDone {
		t.Fatalf("sweep state = %s", end.State)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := nopResponseWriter{h: make(http.Header)}
	if avg := testing.AllocsPerRun(50, func() { s.handleMetrics(w, req) }); avg > 32 {
		t.Fatalf("scrape allocates %.0f objects per run, want <= 32 (buffer reuse broken?)", avg)
	}
}

// nopResponseWriter drains a response with no buffering, so the benchmark
// measures the scrape path rather than the recorder.
type nopResponseWriter struct{ h http.Header }

func (w nopResponseWriter) Header() http.Header         { return w.h }
func (w nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w nopResponseWriter) WriteHeader(int)             {}

// BenchmarkMetricsScrape measures a steady-state /metrics render on a
// server that has done real work: the reused buffer keeps per-scrape
// allocations independent of output size.
func BenchmarkMetricsScrape(b *testing.B) {
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	s := New(Config{Engine: eng})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	sub := decodeSubmitB(b, ts.URL)
	drainSweepB(b, ts.URL, sub)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleMetrics(w, req)
	}
}

// decodeSubmitB and drainSweepB are benchmark-shaped twins of the test
// helpers (testing.B cannot call t.Fatal helpers).
func decodeSubmitB(b *testing.B, base string) string {
	b.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(chaosGrid))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	return sub.ID
}

func drainSweepB(b *testing.B, base, id string) {
	b.Helper()
	resp, err := http.Get(base + "/v1/sweeps/" + id)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		b.Fatal(err)
	}
}
