// Package server implements fusleepd, the sweep-service daemon: an
// HTTP/JSON front end over a shared fusleep.Engine. Submitted sweep grids
// are expanded into cells and fed through a bounded job queue. In
// standalone mode cells are routed to worker shards by their configuration
// hash, so identical cells land on the same shard and deduplicate through
// the engine's simulation cache instead of racing each other. Results
// stream back per cell as NDJSON, and the server drains in-flight cells
// gracefully on shutdown.
//
// Tuner jobs (POST /v1/optimize) share the same machinery: the tuner's
// probes are cells routed through the same queue, so tuner and sweep
// workloads dedupe against each other. Sweeps and tune runs are two typed
// entry points over one internal job resource — listing, polling,
// streaming, and cancellation go through the shared jobs handlers, and
// GET /v1/jobs shows both kinds side by side.
//
// # Fleet mode
//
// With Config.Fleet set (a *fleet.Coordinator), the server evaluates
// nothing locally: accepted cells are dispatched to remote fusleepd
// workers by rendezvous hashing on Cell.Key over the live worker set.
// Workers dial in over the versioned /v1/fleet wire protocol (register,
// heartbeat, long-poll fetch, report); the coordinator leases cells to
// them and requeues the leases of any worker that misses its heartbeat
// TTL, so a worker crash mid-sweep loses nothing. Identical cells from
// different jobs join the same in-flight assignment fleet-wide, and when
// a result store is wired in, reported cells are journaled under their
// configuration hash and later submissions short-circuit through the
// store without redispatching. Full-queue backpressure on a worker
// propagates to submission as 429 + Retry-After. See the internal/fleet
// package for the coordinator, worker loop, and wire types.
//
// # Durability and fault tolerance
//
// With a store wired in (Config.Results + Config.Jobs, typically from one
// store.Open directory), the daemon is crash-safe: accepted jobs are
// fsynced to a write-ahead log before they are acknowledged, completed
// cells are journaled under their content-addressed configuration hash,
// and Recover replays any job the previous process never finished —
// serving its already-journaled cells from disk and recomputing only what
// the crash actually lost. Worker failures are contained per cell: panics
// become typed CellErrors, an optional per-cell deadline bounds runaway
// evaluations, and transient failures retry with deterministically
// jittered exponential backoff (fleet.Executor, shared by standalone
// shards and remote workers). When the backlog fills, submissions shed
// with 429 and a Retry-After hint instead of queueing without bound.
//
// # Lifecycle
//
// A server moves through three externally visible phases:
//
//	           New + Recover                    Drain/Close
//	recovering ─────────────────▶ accepting ─────────────────▶ draining
//	(WAL replay; /readyz 503,    (/readyz 200 while the      (/healthz and
//	 /healthz 200)                backlog has room)            /readyz 503;
//	                                                           queued cells
//	                                                           finish, then
//	                                                           workers stop)
//
// /healthz is liveness (503 only while draining); /readyz is readiness —
// it also reports 503 before WAL recovery has run and while load shedding
// is active. A forced Close (or an expired Drain deadline) is the
// in-process stand-in for a crash: aborted jobs are deliberately left
// unfinished in the WAL so the next start replays them.
//
// # Endpoints
//
// Every error response, on every endpoint, is the canonical envelope
// {"error": {"code": "...", "message": "..."}} with a machine-readable
// code (fleet.CodeBadRequest, fleet.CodeBacklogFull, ...). See API.md at
// the repository root for the full contract.
//
//	POST   /v1/sweeps          submit a grid, returns {id, cells}
//	                           (429 + Retry-After when the backlog is full)
//	GET    /v1/sweeps          list sweep jobs
//	GET    /v1/sweeps/{id}     stream per-cell results as NDJSON (?poll=1 for
//	                           a point-in-time JSON snapshot instead)
//	DELETE /v1/sweeps/{id}     cancel a sweep; in-flight cells abort promptly
//	POST   /v1/optimize        submit a tuner run, returns {id, maxEvals}
//	                           (429 + Retry-After when the backlog is full)
//	GET    /v1/optimize        list tune jobs
//	GET    /v1/optimize/{id}   stream per-probe results as NDJSON (?poll=1
//	                           for a snapshot)
//	DELETE /v1/optimize/{id}   cancel a tune job
//	GET    /v1/jobs            list all jobs (sweeps and tune runs) with
//	                           recovered/worker attribution
//	GET    /v1/jobs/{id}       stream or poll any job by id
//	DELETE /v1/jobs/{id}       cancel any job by id
//	GET    /v1/workloads       the registered benchmark suite
//	GET    /v1/policies        the registered sleep policies and their knobs
//	GET    /v1/classes         the functional-unit classes
//	GET    /healthz            liveness (503 while draining)
//	GET    /readyz             readiness (503 while draining, recovering, or
//	                           shedding load)
//	GET    /metrics            Prometheus-style counters and gauges
//
// Coordinator mode additionally serves the worker wire protocol:
//
//	POST   /v1/fleet/register   worker join; returns {id, ttlMillis}
//	POST   /v1/fleet/heartbeat  keepalive (bye=true deregisters gracefully)
//	POST   /v1/fleet/fetch      long-poll lease of queued cells
//	POST   /v1/fleet/report     deliver results/errors for held leases
//	GET    /v1/fleet/workers    the live worker set with queue/lease depths
package server
