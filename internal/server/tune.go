package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/telemetry"
)

// TuneRequest is the wire form of a tuner run: the search space (same
// conventions as SweepRequest — zero values resolve to engine defaults),
// the objective, and the evaluation budget.
type TuneRequest struct {
	// Objective selects the scalarization: "ed" (default), "ed2", or
	// "leakage".
	Objective string `json:"objective,omitempty"`
	// SlowdownCap bounds a candidate's relative delay; 0 = unconstrained.
	SlowdownCap float64 `json:"slowdownCap,omitempty"`
	// Policies selects the policy families to search by name.
	Policies []string `json:"policies,omitempty"`
	// TimeoutRange and SlicesRange bound the refinable parameter axes,
	// inclusive.
	TimeoutRange *[2]int `json:"timeoutRange,omitempty"`
	SlicesRange  *[2]int `json:"slicesRange,omitempty"`
	// FUCounts, Ps, Techs, Benchmarks, Alpha, L2Latency, Window: as in
	// SweepRequest.
	FUCounts   []int      `json:"fuCounts,omitempty"`
	Ps         []float64  `json:"ps,omitempty"`
	Techs      []TechSpec `json:"techs,omitempty"`
	Benchmarks []string   `json:"benchmarks,omitempty"`
	Alpha      float64    `json:"alpha,omitempty"`
	L2Latency  int        `json:"l2Latency,omitempty"`
	Window     uint64     `json:"window,omitempty"`
	// Classes widens the search to per-class policy assignments over the
	// named functional-unit classes (plus a final composition round);
	// empty keeps the single-pool IntALU search.
	Classes []string `json:"classes,omitempty"`
	// AGUs, Mults, FPALUs, FPMults fix the machine's per-class unit counts
	// for every candidate (0 = Table 2 defaults). A dedicated AGU pool is
	// required before "agu" is searchable.
	AGUs    int `json:"agus,omitempty"`
	Mults   int `json:"mults,omitempty"`
	FPALUs  int `json:"fpalus,omitempty"`
	FPMults int `json:"fpmults,omitempty"`
	// MaxEvals bounds distinct cell evaluations (default 64, capped by the
	// service's MaxCells); Rounds bounds refinement rounds (default 4).
	MaxEvals int `json:"maxEvals,omitempty"`
	Rounds   int `json:"rounds,omitempty"`
}

// options validates the request and resolves it into tuner options plus
// the effective evaluation budget.
func (req TuneRequest) options(cfg Config) ([]fusleep.TuneOption, int, error) {
	obj := fusleep.TuneObjective{SlowdownCap: req.SlowdownCap}
	if req.Objective != "" {
		kind, err := fusleep.ParseTuneObjective(req.Objective)
		if err != nil {
			return nil, 0, err
		}
		obj.Kind = kind
	}
	if req.SlowdownCap < 0 {
		return nil, 0, fmt.Errorf("negative slowdownCap %g", req.SlowdownCap)
	}
	sp := fusleep.TuneSpace{
		FUCounts:   req.FUCounts,
		AGUs:       req.AGUs,
		Mults:      req.Mults,
		FPALUs:     req.FPALUs,
		FPMults:    req.FPMults,
		Benchmarks: req.Benchmarks,
		Alpha:      req.Alpha,
		L2Latency:  req.L2Latency,
		Window:     req.Window,
	}
	for _, name := range req.Policies {
		p, err := fusleep.ParsePolicy(name)
		if err != nil {
			return nil, 0, err
		}
		sp.Policies = append(sp.Policies, p)
	}
	for _, name := range req.Classes {
		cl, err := fusleep.ParseFUClass(name)
		if err != nil {
			return nil, 0, err
		}
		sp.Classes = append(sp.Classes, cl)
	}
	if err := sp.WithDefaults(fusleep.DefaultTech(), 1).Validate(); err != nil {
		return nil, 0, err
	}
	if req.TimeoutRange != nil {
		sp.TimeoutRange = *req.TimeoutRange
	}
	if req.SlicesRange != nil {
		sp.SlicesRange = *req.SlicesRange
	}
	for _, r := range []*[2]int{req.TimeoutRange, req.SlicesRange} {
		if r != nil && (r[0] < 1 || r[1] < r[0]) {
			return nil, 0, fmt.Errorf("bad parameter range [%d, %d]", r[0], r[1])
		}
	}
	def := fusleep.DefaultTech()
	for _, spec := range req.Techs {
		sp.Techs = append(sp.Techs, spec.tech(def))
	}
	for _, p := range req.Ps {
		sp.Techs = append(sp.Techs, def.WithP(p))
	}
	for _, t := range sp.Techs {
		if err := t.Validate(); err != nil {
			return nil, 0, err
		}
	}
	names := map[string]bool{}
	for _, n := range fusleep.BenchmarkNames() {
		names[n] = true
	}
	for _, b := range sp.Benchmarks {
		if !names[b] {
			return nil, 0, fmt.Errorf("unknown benchmark %q (have %v)", b, fusleep.BenchmarkNames())
		}
	}
	if req.Alpha < 0 || req.Alpha > 1 {
		return nil, 0, fmt.Errorf("alpha %g out of range [0,1]", req.Alpha)
	}
	if req.L2Latency < 0 {
		return nil, 0, fmt.Errorf("negative l2Latency %d", req.L2Latency)
	}
	if req.Window > cfg.MaxWindow {
		return nil, 0, fmt.Errorf("window %d exceeds the service limit %d", req.Window, cfg.MaxWindow)
	}
	budget := req.MaxEvals
	if budget == 0 {
		budget = 64
	}
	if budget < 0 || budget > cfg.MaxCells {
		return nil, 0, fmt.Errorf("maxEvals %d outside [1, %d]", req.MaxEvals, cfg.MaxCells)
	}
	if req.Rounds < 0 {
		return nil, 0, fmt.Errorf("negative rounds %d", req.Rounds)
	}
	opts := []fusleep.TuneOption{
		fusleep.WithTuneSpace(sp),
		fusleep.WithTuneObjective(obj),
		fusleep.WithTuneBudget(budget),
	}
	if req.Rounds > 0 {
		opts = append(opts, fusleep.WithTuneRounds(req.Rounds))
	}
	return opts, budget, nil
}

// tuneJob is one submitted tuner run: its mutable probe trace, terminal
// result, and the watch machinery the stream handlers share with sweepJob.
type tuneJob struct {
	id       string
	maxEvals int
	ctx      context.Context
	cancel   context.CancelFunc
	created  time.Time

	// recovered marks a job replayed from the WAL after a restart.
	recovered bool
	// rec receives the job's trace events (nil-safe; nil when untraced).
	rec *telemetry.Recorder
	// onTerminal, when set, is invoked exactly once — outside j.mu — when
	// the job reaches a terminal state; the WAL uses it to mark journaled
	// jobs finished.
	onTerminal func(state string)

	mu       sync.Mutex
	probes   []fusleep.TuneProbe
	result   *fusleep.TuneResult
	workers  map[string]struct{} // fleet workers that evaluated probes
	state    string
	canceled bool
	err      error
	updated  chan struct{} // closed and replaced on every state change
}

func newTuneJob(parent context.Context, id string, maxEvals int) *tuneJob {
	ctx, cancel := context.WithCancel(parent)
	return &tuneJob{
		id:       id,
		maxEvals: maxEvals,
		ctx:      ctx,
		cancel:   cancel,
		created:  time.Now(),
		state:    StateRunning,
		updated:  make(chan struct{}),
	}
}

// broadcast wakes every watcher. Callers must hold j.mu.
func (j *tuneJob) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// addProbe appends one completed probe to the trace.
func (j *tuneJob) addProbe(p fusleep.TuneProbe) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.probes = append(j.probes, p)
	j.broadcast()
}

// addWorker attributes one evaluated cell to a fleet worker.
func (j *tuneJob) addWorker(worker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.workers == nil {
		j.workers = make(map[string]struct{})
	}
	j.workers[worker] = struct{}{}
}

// finish records the run's outcome and moves the job to its terminal state.
func (j *tuneJob) finish(res fusleep.TuneResult, err error) {
	cancelErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	j.mu.Lock()
	switch {
	case j.canceled && (err == nil || cancelErr):
		j.state = StateCanceled
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.result = &res
	}
	notify, state := j.onTerminal, j.state
	j.onTerminal = nil
	j.broadcast()
	j.mu.Unlock()
	if notify != nil {
		notify(state)
	}
}

// jobState implements queueJob for the retention registry.
func (j *tuneJob) jobState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// requestCancel marks the job canceled and aborts its context. Safe to call
// repeatedly and after completion.
func (j *tuneJob) requestCancel() {
	j.mu.Lock()
	if j.state == StateRunning {
		j.canceled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// infoLocked builds the job's wire snapshot. Callers must hold j.mu.
func (j *tuneJob) infoLocked() jobInfo {
	info := jobInfo{
		ID:        j.id,
		Kind:      KindTune,
		State:     j.state,
		Probes:    len(j.probes),
		MaxEvals:  j.maxEvals,
		Recovered: j.recovered,
		Workers:   workerList(j.workers),
		Created:   j.created,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// info implements queueJob for listings.
func (j *tuneJob) info() jobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.infoLocked()
}

// snapshot returns the job's status together with its terminal result
// (nil while running).
func (j *tuneJob) snapshot() (jobInfo, *fusleep.TuneResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.infoLocked(), j.result
}

// watch returns the probes recorded at or after offset, the current state,
// and the channel that closes on the next change.
func (j *tuneJob) watch(offset int) (fresh []fusleep.TuneProbe, state string, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < len(j.probes) {
		fresh = make([]fusleep.TuneProbe, len(j.probes)-offset)
		copy(fresh, j.probes[offset:])
	}
	return fresh, j.state, j.updated
}

// queueEvaluator routes tuner probes through the shared dispatch path —
// the sharded cell queue in standalone mode, the fleet in coordinator
// mode — so tune and sweep workloads share workers and identical cells
// — across job kinds, requests, and clients — dedupe through the
// simulation cache (or the fleet's duplicate-work join). jobID names the
// trace every probe's lifecycle lands on; record, when non-nil, receives
// the name of each fleet worker that evaluated a probe.
func (s *Server) queueEvaluator(jobID string, record func(worker string)) fusleep.TuneEvaluator {
	return func(ctx context.Context, c fusleep.Cell) (fusleep.CellResult, error) {
		type outcome struct {
			res fusleep.CellResult
			err error
		}
		key := c.Key()
		ch := make(chan outcome, 1) // buffered: the worker's done never blocks
		t := task{ctx: ctx, cell: c, trace: jobID, enqueued: time.Now(), done: func(worker string, res fusleep.CellResult, err error) {
			if err != nil {
				s.trace.Record(jobID, telemetry.Event{Stage: telemetry.StageFailed, Key: key, Err: err.Error()})
			} else {
				if worker != "" && record != nil {
					record(worker)
				}
				s.trace.Record(jobID, telemetry.Event{Stage: telemetry.StageCompleted, Key: key, Worker: worker})
			}
			ch <- outcome{res, err}
		}}
		// Record dispatch before enqueueing: this binds the cell key to the
		// job's trace for key-addressed events.
		s.trace.Record(jobID, telemetry.Event{Stage: telemetry.StageDispatched, Key: key})
		if !s.enqueue(t) {
			if err := ctx.Err(); err != nil {
				return fusleep.CellResult{}, err
			}
			return fusleep.CellResult{}, context.Canceled
		}
		select {
		case o := <-ch:
			return o.res, o.err
		case <-ctx.Done():
			return fusleep.CellResult{}, ctx.Err()
		}
	}
}

// runTune drives one tuner run to completion. It runs on the job's feeder
// goroutine: every probe it enqueues lands on the shard queues before the
// feeder exits, which is what makes Drain's close-after-feeders ordering
// safe.
func (s *Server) runTune(job *tuneJob, opts []fusleep.TuneOption) {
	defer s.feeders.Done()
	// Tune jobs reserve their full evaluation budget at admission; the
	// whole reservation releases when the run terminates.
	defer s.release(job.maxEvals)
	opts = append(opts, fusleep.WithTuneEvaluator(s.queueEvaluator(job.id, job.addWorker)))
	res, err := s.eng.OptimizeStream(job.ctx, func(p fusleep.TuneProbe) error {
		job.addProbe(p)
		s.probesDone.Add(1)
		return nil
	}, opts...)
	job.finish(res, err)
}

// tuneSubmitResponse acknowledges an accepted tuner run.
type tuneSubmitResponse struct {
	ID       string `json:"id"`
	MaxEvals int    `json:"maxEvals"`
	URL      string `json:"url"`
}

func (s *Server) handleTuneSubmit(w http.ResponseWriter, r *http.Request) {
	var req TuneRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.tunesReject.Add(1)
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad tune request: %v", err)
		return
	}
	opts, budget, err := req.options(s.cfg)
	if err != nil {
		s.tunesReject.Add(1)
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad tune request: %v", err)
		return
	}
	if !s.shedBacklog(w, s.tunesReject, budget) {
		return
	}
	// Accepted tune jobs outlive the submitting request; the queue owns
	// their lifecycle.
	job := newTuneJob(context.Background(), s.nextID("t"), budget) //fusleepvet:ctx-ok job outlives the HTTP request
	job.rec = s.trace
	// Start the trace before submit: the tuner's evaluator races the rest
	// of this handler, and its dispatch events must find the trace live.
	s.trace.Start(job.id)
	s.trace.Record(job.id, telemetry.Event{
		Stage: telemetry.StageSubmitted, Detail: fmt.Sprintf("budget %d", budget),
	})
	s.journalSubmit(job.id, "tune", req, func(cb func(string)) { job.onTerminal = cb })
	s.log.Info("tune accepted", "job", job.id, "budget", budget)
	if err := s.submit(job.id, job, func() { s.runTune(job, opts) }); err != nil {
		s.tunesReject.Add(1)
		s.release(budget)
		job.cancel()
		// The client gets an error, so the journaled submission must not
		// replay as if it had been acknowledged.
		if s.cfg.Jobs != nil {
			_ = s.cfg.Jobs.Finished(job.id, StateCanceled)
		}
		writeError(w, http.StatusServiceUnavailable, fleet.CodeDraining, "%v", err)
		return
	}
	s.tunesSubmit.Add(1)
	writeJSON(w, http.StatusAccepted, tuneSubmitResponse{
		ID: job.id, MaxEvals: budget, URL: "/v1/optimize/" + job.id,
	})
}

// handleTuneList is GET /v1/optimize: the shared jobs listing filtered to
// tune jobs.
func (s *Server) handleTuneList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listJobs(KindTune))
}

// tunePollResponse is the ?poll=1 snapshot: status, the probe trace so
// far, and the terminal result once present.
type tunePollResponse struct {
	jobInfo
	Trace  []fusleep.TuneProbe `json:"trace"`
	Result *fusleep.TuneResult `json:"result,omitempty"`
}

// servePoll implements queueJob: the point-in-time JSON snapshot.
func (j *tuneJob) servePoll(w http.ResponseWriter) {
	info, res := j.snapshot()
	trace, _, _ := j.watch(0)
	if trace == nil {
		trace = []fusleep.TuneProbe{}
	}
	writeJSON(w, http.StatusOK, tunePollResponse{jobInfo: info, Trace: trace, Result: res})
}

// tuneStreamEvent is one NDJSON line of a tune stream.
type tuneStreamEvent struct {
	// Event is "tune" (stream header), "probe" (one evaluated candidate),
	// or "end" (terminal summary; always the last line).
	Event string `json:"event"`
	ID    string `json:"id"`
	// Header and end fields.
	State    string `json:"state,omitempty"`
	MaxEvals int    `json:"maxEvals,omitempty"`
	Probes   int    `json:"probes,omitempty"`
	Error    string `json:"error,omitempty"`
	// Probe is set on "probe" events; Result on the "end" event of a
	// completed run.
	Probe  *fusleep.TuneProbe  `json:"probe,omitempty"`
	Result *fusleep.TuneResult `json:"result,omitempty"`
}

// serveStream implements queueJob: a header line, one line per probe as it
// lands (evaluation order), and a terminal summary line carrying the result.
func (j *tuneJob) serveStream(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := report.NewStreamEncoder(w)
	info := j.info()
	if err := enc.Encode(tuneStreamEvent{Event: "tune", ID: j.id, State: info.State, MaxEvals: info.MaxEvals}); err != nil {
		return
	}
	sent := 0
	for {
		fresh, state, updated := j.watch(sent)
		for i := range fresh {
			if err := enc.Encode(tuneStreamEvent{Event: "probe", ID: j.id, Probe: &fresh[i]}); err != nil {
				return
			}
			sent++
		}
		if state != StateRunning {
			info, res := j.snapshot()
			j.rec.Record(j.id, telemetry.Event{Stage: telemetry.StageStreamed, Detail: info.State})
			_ = enc.Encode(tuneStreamEvent{
				Event: "end", ID: j.id, State: info.State, MaxEvals: info.MaxEvals,
				Probes: info.Probes, Error: info.Error, Result: res,
			})
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTune is GET /v1/optimize/{id}: stream or poll one tune job.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"), KindTune)
	if !ok {
		writeNotFound(w, "tune job", r.PathValue("id"))
		return
	}
	serveJob(w, r, job)
}

// handleTuneCancel is DELETE /v1/optimize/{id}.
func (s *Server) handleTuneCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"), KindTune)
	if !ok {
		writeNotFound(w, "tune job", r.PathValue("id"))
		return
	}
	cancelJob(w, job)
}
