package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/archsim/fusleep/internal/fleet"
)

// decodeFleet decodes one fleet wire request and enforces the protocol
// version; it reports false after writing the error response itself.
func decodeFleet(w http.ResponseWriter, r *http.Request, v interface {
	version() int
}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad fleet request: %v", err)
		return false
	}
	if got := v.version(); got != fleet.ProtocolVersion {
		writeError(w, http.StatusBadRequest, fleet.CodeVersion,
			"fleet protocol version %d; this coordinator speaks %d", got, fleet.ProtocolVersion)
		return false
	}
	return true
}

// Wire request wrappers so decodeFleet can check the version uniformly.
type registerReq struct{ fleet.RegisterRequest }
type heartbeatReq struct{ fleet.HeartbeatRequest }
type fetchReq struct{ fleet.FetchRequest }
type reportReq struct{ fleet.ReportRequest }

func (r *registerReq) version() int  { return r.V }
func (r *heartbeatReq) version() int { return r.V }
func (r *fetchReq) version() int     { return r.V }
func (r *reportReq) version() int    { return r.V }

// writeUnknownWorker is the uniform 404 for requests naming an expired or
// never-registered worker; the worker client maps it to ErrUnknownWorker
// and re-registers.
func writeUnknownWorker(w http.ResponseWriter, id string) {
	writeError(w, http.StatusNotFound, fleet.CodeUnknownWorker, "unknown worker %q", id)
}

// handleFleetRegister is POST /v1/fleet/register: admit a worker into the
// rendezvous ring and grant its heartbeat lease.
func (s *Server) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decodeFleet(w, r, &req) {
		return
	}
	id, ttl := s.cfg.Fleet.Register(req.Name)
	writeJSON(w, http.StatusOK, fleet.RegisterResponse{
		V: fleet.ProtocolVersion, ID: id, TTLMillis: ttl.Milliseconds(),
	})
}

// handleFleetHeartbeat is POST /v1/fleet/heartbeat: renew a worker's lease,
// or with bye=true deregister it gracefully.
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatReq
	if !decodeFleet(w, r, &req) {
		return
	}
	var err error
	if req.Bye {
		err = s.cfg.Fleet.Deregister(req.ID)
	} else {
		err = s.cfg.Fleet.Heartbeat(req.ID, req.Stats)
	}
	if errors.Is(err, fleet.ErrUnknownWorker) {
		writeUnknownWorker(w, req.ID)
		return
	}
	writeJSON(w, http.StatusOK, fleet.HeartbeatResponse{V: fleet.ProtocolVersion, OK: true})
}

// handleFleetFetch is POST /v1/fleet/fetch: lease up to max queued cells to
// the worker, long-polling while its queue is empty.
func (s *Server) handleFleetFetch(w http.ResponseWriter, r *http.Request) {
	var req fetchReq
	if !decodeFleet(w, r, &req) {
		return
	}
	cells, err := s.cfg.Fleet.Fetch(r.Context(), req.ID, req.Max, time.Duration(req.WaitMillis)*time.Millisecond)
	if errors.Is(err, fleet.ErrUnknownWorker) {
		writeUnknownWorker(w, req.ID)
		return
	}
	if err != nil {
		// The client went away mid-poll; the response is best-effort.
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "fetch: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, fleet.FetchResponse{V: fleet.ProtocolVersion, Cells: cells})
}

// handleFleetReport is POST /v1/fleet/report: accept evaluation outcomes;
// stale leases (requeued while the worker was partitioned) are counted but
// discarded.
func (s *Server) handleFleetReport(w http.ResponseWriter, r *http.Request) {
	var req reportReq
	if !decodeFleet(w, r, &req) {
		return
	}
	accepted, err := s.cfg.Fleet.Report(req.ID, req.Results)
	if errors.Is(err, fleet.ErrUnknownWorker) {
		writeUnknownWorker(w, req.ID)
		return
	}
	writeJSON(w, http.StatusOK, fleet.ReportResponse{V: fleet.ProtocolVersion, Accepted: accepted})
}

// handleFleetWorkers is GET /v1/fleet/workers: the live membership with
// per-worker queue depths and completion counts.
func (s *Server) handleFleetWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Fleet.Workers())
}
