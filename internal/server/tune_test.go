package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/archsim/fusleep"
)

func postTune(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeTuneSubmit(t *testing.T, resp *http.Response) tuneSubmitResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("tune submit: got %s: %s", resp.Status, b)
	}
	var sub tuneSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// readTuneStream consumes a tune job's NDJSON stream to the end.
func readTuneStream(t *testing.T, base, id string) (header tuneStreamEvent, probes []tuneStreamEvent, end tuneStreamEvent) {
	t.Helper()
	resp, err := http.Get(base + "/v1/optimize/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	sawEnd := false
	for sc.Scan() {
		var ev tuneStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "tune":
			header = ev
		case "probe":
			probes = append(probes, ev)
		case "end":
			end = ev
			sawEnd = true
		default:
			t.Fatalf("unknown stream event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawEnd {
		t.Fatal("stream ended without a terminal event")
	}
	return header, probes, end
}

func TestTuneSubmitStreamComplete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"objective":"ed","benchmarks":["gcc"],"window":%d,
		"policies":["AlwaysActive","SleepTimeout"],"timeoutRange":[1,64],
		"fuCounts":[2,4],"maxEvals":20}`, testWindow)
	sub := decodeTuneSubmit(t, postTune(t, ts.URL, body))
	if sub.MaxEvals != 20 || !strings.HasPrefix(sub.ID, "t-") {
		t.Fatalf("submit = %+v", sub)
	}

	header, probes, end := readTuneStream(t, ts.URL, sub.ID)
	if header.ID != sub.ID || header.MaxEvals != 20 {
		t.Errorf("header = %+v", header)
	}
	if end.State != StateDone || end.Result == nil {
		t.Fatalf("end = %+v", end)
	}
	if len(probes) == 0 || len(probes) != end.Result.Probes {
		t.Errorf("streamed %d probes, result says %d", len(probes), end.Result.Probes)
	}
	if end.Result.Evals > 20 {
		t.Errorf("evals = %d exceeds budget", end.Result.Evals)
	}
	for i, ev := range probes {
		if ev.Probe == nil || ev.Probe.Seq != i {
			t.Fatalf("probe %d malformed: %+v", i, ev)
		}
	}
	if len(end.Result.Frontier) == 0 || !end.Result.Best.Feasible {
		t.Errorf("result = %+v", end.Result)
	}
	// The best point must not be dominated by any frontier point.
	for _, p := range end.Result.Frontier {
		if p.Delay < end.Result.Best.Delay && p.Energy < end.Result.Best.Energy {
			t.Errorf("best %+v dominated by frontier point %+v", end.Result.Best, p)
		}
	}
}

func TestTunePollAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"benchmarks":["gcc"],"window":%d,"policies":["MaxSleep"],"maxEvals":4}`, testWindow)
	sub := decodeTuneSubmit(t, postTune(t, ts.URL, body))
	// Wait for completion via the stream, then poll.
	_, _, end := readTuneStream(t, ts.URL, sub.ID)
	if end.State != StateDone {
		t.Fatalf("end state = %s", end.State)
	}
	resp, err := http.Get(ts.URL + "/v1/optimize/" + sub.ID + "?poll=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var poll tunePollResponse
	if err := json.NewDecoder(resp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	if poll.State != StateDone || poll.Result == nil || len(poll.Trace) != poll.Probes {
		t.Errorf("poll = %+v", poll)
	}

	resp, err = http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestTuneCancelMidRun(t *testing.T) {
	// A big window and budget keep the run alive long enough to cancel.
	_, ts := newTestServer(t, Config{})
	body := `{"benchmarks":["gcc","mcf","twolf"],"window":2000000,"maxEvals":200}`
	sub := decodeTuneSubmit(t, postTune(t, ts.URL, body))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/optimize/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The stream must terminate with a canceled state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, end := readTuneStream(t, ts.URL, sub.ID)
		if end.State == StateCanceled {
			if end.Result != nil {
				t.Errorf("canceled run carried a result: %+v", end.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled canceled; state = %s", end.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTuneBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWindow: 100_000, MaxCells: 64})
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"nope":1}`, http.StatusBadRequest},
		{"unknown objective", `{"objective":"speed"}`, http.StatusBadRequest},
		{"unknown policy", `{"policies":["TurboSleep"]}`, http.StatusBadRequest},
		{"bad range", `{"timeoutRange":[0,10]}`, http.StatusBadRequest},
		{"inverted range", `{"slicesRange":[9,3]}`, http.StatusBadRequest},
		{"unknown benchmark", `{"benchmarks":["nosuch"]}`, http.StatusBadRequest},
		{"window too big", `{"window":200000}`, http.StatusBadRequest},
		{"budget too big", `{"maxEvals":1000}`, http.StatusBadRequest},
		{"negative cap", `{"slowdownCap":-1}`, http.StatusBadRequest},
		{"bad tech", `{"ps":[2.0]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postTune(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("got %s: %s", resp.Status, b)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/optimize/t-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: got %s", resp.Status)
	}
}

// TestTuneSharesCacheWithSweeps proves the queue reuse pays off: a sweep
// that covers the tuner's FU configuration first means the tuner's probes
// hit the simulation cache instead of re-simulating.
func TestTuneSharesCacheWithSweeps(t *testing.T) {
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	_, ts := newTestServer(t, Config{Engine: eng})

	sub := decodeSubmit(t, postSweep(t, ts.URL,
		fmt.Sprintf(`{"benchmarks":["gcc"],"fuCounts":[2],"window":%d}`, testWindow)))
	readStream(t, ts.URL, sub.ID)
	simsAfterSweep := eng.Stats().Simulations

	tsub := decodeTuneSubmit(t, postTune(t, ts.URL, fmt.Sprintf(
		`{"benchmarks":["gcc"],"fuCounts":[2],"window":%d,"policies":["SleepTimeout"],"maxEvals":12}`, testWindow)))
	_, _, end := readTuneStream(t, ts.URL, tsub.ID)
	if end.State != StateDone {
		t.Fatalf("tune end = %+v", end)
	}
	if sims := eng.Stats().Simulations; sims != simsAfterSweep {
		t.Errorf("tuner re-simulated: %d -> %d pipeline runs", simsAfterSweep, sims)
	}
}

func TestTuneRejectedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp := postTune(t, ts.URL, `{"benchmarks":["gcc"],"maxEvals":4}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit: got %s", resp.Status)
	}
}
