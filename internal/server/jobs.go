package server

import (
	"net/http"
	"time"
)

// Job kinds as they appear on the wire.
const (
	KindSweep = "sweep"
	KindTune  = "tune"
)

// jobInfo is the wire form of one job — sweep or tune — in listings
// (GET /v1/jobs, GET /v1/sweeps, GET /v1/optimize), poll snapshots, and
// cancel responses. Kind-specific fields omit when empty: sweeps carry
// cells/completed/failed/skipped, tunes carry probes/maxEvals. Workers
// lists the fleet workers that computed cells for the job (omitted for
// standalone runs and store-served replays), and Recovered marks jobs
// replayed from the WAL after a restart.
type jobInfo struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	State     string    `json:"state"`
	Cells     int       `json:"cells,omitempty"`
	Completed int       `json:"completed,omitempty"`
	Failed    int       `json:"failed,omitempty"`
	Skipped   int       `json:"skipped,omitempty"`
	Probes    int       `json:"probes,omitempty"`
	MaxEvals  int       `json:"maxEvals,omitempty"`
	Error     string    `json:"error,omitempty"`
	Recovered bool      `json:"recovered,omitempty"`
	Workers   []string  `json:"workers,omitempty"`
	Created   time.Time `json:"created"`
}

// listJobs snapshots the registry in submission order, optionally
// filtered by kind ("" = all).
func (s *Server) listJobs(kind string) []jobInfo {
	s.mu.Lock()
	jobs := make([]queueJob, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]jobInfo, 0, len(jobs))
	for _, j := range jobs {
		if info := j.info(); kind == "" || info.Kind == kind {
			out = append(out, info)
		}
	}
	return out
}

// lookupJob finds any job by id; kind "" matches both.
func (s *Server) lookupJob(id, kind string) (queueJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if kind != "" && j.info().Kind != kind {
		return nil, false
	}
	return j, true
}

// serveJob answers GET on a single job: the NDJSON stream by default, a
// point-in-time snapshot with ?poll=1.
func serveJob(w http.ResponseWriter, r *http.Request, j queueJob) {
	if r.URL.Query().Get("poll") != "" {
		j.servePoll(w)
		return
	}
	j.serveStream(w, r)
}

// cancelJob answers DELETE on a single job.
func cancelJob(w http.ResponseWriter, j queueJob) {
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobs is GET /v1/jobs: every retained job, sweeps and tunes alike,
// in submission order.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listJobs(""))
}

// handleJob is GET /v1/jobs/{id}: stream or poll either job kind.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"), "")
	if !ok {
		writeNotFound(w, "job", r.PathValue("id"))
		return
	}
	serveJob(w, r, j)
}

// handleJobCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"), "")
	if !ok {
		writeNotFound(w, "job", r.PathValue("id"))
		return
	}
	cancelJob(w, j)
}
