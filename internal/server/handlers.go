package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fleet"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/telemetry"
)

// jobID formats the n-th accepted job's identifier under its kind prefix
// ("s" for sweeps, "t" for tune jobs).
func jobID(prefix string, n uint64) string { return fmt.Sprintf("%s-%06d", prefix, n) }

// SweepRequest is the wire form of a sweep grid. Every field is optional;
// zero values resolve to the engine's defaults exactly like fusleep.Grid
// (all four paper policies, the engine's technology, paper FU counts, the
// full nine-benchmark suite, alpha 0.5, 12-cycle L2, the engine's window).
type SweepRequest struct {
	// Policies selects policy configurations by name, e.g.
	// {"policy": "GradualSleep", "slices": 4}.
	Policies []fusleep.PolicyConfig `json:"policies,omitempty"`
	// Ps lists leakage factors; each becomes the default technology with p
	// replaced — the common one-knob technology sweep.
	Ps []float64 `json:"ps,omitempty"`
	// Techs lists technology points. Omitted fields inherit from the
	// paper's default technology, so {"p": 0.5} is valid; explicit zeros
	// (e.g. "sleepOverhead": 0 for free transitions) are honored.
	Techs []TechSpec `json:"techs,omitempty"`
	// FUCounts lists integer-ALU counts; 0 means the paper's per-benchmark
	// Table 3 counts.
	FUCounts []int `json:"fuCounts,omitempty"`
	// AGUCounts, MultCounts, FPALUCounts, FPMultCounts are the per-class
	// unit-count axes; 0 in a list means the Table 2 default for that
	// class.
	AGUCounts    []int `json:"aguCounts,omitempty"`
	MultCounts   []int `json:"multCounts,omitempty"`
	FPALUCounts  []int `json:"fpaluCounts,omitempty"`
	FPMultCounts []int `json:"fpmultCounts,omitempty"`
	// Classes lists the functional-unit classes every cell accounts energy
	// for, by name ("intalu", "agu", "mult", "fpalu", "fpmult"); empty
	// keeps the paper's single-pool IntALU view.
	Classes []string `json:"classes,omitempty"`
	// Assignments lists per-class policy assignments to score, each an
	// object keyed by class name, e.g.
	// {"intalu": {"policy": "GradualSleep", "slices": 4},
	//  "fpalu":  {"policy": "MaxSleep"}}.
	Assignments []fusleep.Assignment `json:"assignments,omitempty"`
	// ClassTechs overrides the technology point per class in every cell,
	// keyed by class name.
	ClassTechs map[string]TechSpec `json:"classTechs,omitempty"`
	// Benchmarks restricts the suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Alpha is the activity factor.
	Alpha float64 `json:"alpha,omitempty"`
	// L2Latency is the L2 hit latency in cycles.
	L2Latency int `json:"l2Latency,omitempty"`
	// Window is the per-benchmark instruction count.
	Window uint64 `json:"window,omitempty"`
}

// TechSpec is one technology point on the wire. Pointer fields distinguish
// "omitted — use the paper default" from an explicit zero, which the model
// domain allows for c and e_slp (Tech.Validate accepts both at 0).
type TechSpec struct {
	P             float64  `json:"p"`
	C             *float64 `json:"c,omitempty"`
	SleepOverhead *float64 `json:"sleepOverhead,omitempty"`
	Duty          *float64 `json:"duty,omitempty"`
}

// tech resolves the spec against the default technology point.
func (s TechSpec) tech(def fusleep.Tech) fusleep.Tech {
	t := def
	if s.P != 0 {
		t.P = s.P
	}
	if s.C != nil {
		t.C = *s.C
	}
	if s.SleepOverhead != nil {
		t.SleepOverhead = *s.SleepOverhead
	}
	if s.Duty != nil {
		t.Duty = *s.Duty
	}
	return t
}

// grid resolves the request into an engine grid, validating everything the
// cell evaluator would otherwise only reject after simulation started.
func (req SweepRequest) grid(maxWindow uint64) (fusleep.Grid, error) {
	g := fusleep.Grid{
		Policies:     req.Policies,
		Assignments:  req.Assignments,
		FUCounts:     req.FUCounts,
		AGUCounts:    req.AGUCounts,
		MultCounts:   req.MultCounts,
		FPALUCounts:  req.FPALUCounts,
		FPMultCounts: req.FPMultCounts,
		Benchmarks:   req.Benchmarks,
		Alpha:        req.Alpha,
		L2Latency:    req.L2Latency,
		Window:       req.Window,
	}
	def := fusleep.DefaultTech()
	for _, name := range req.Classes {
		cl, err := fusleep.ParseFUClass(name)
		if err != nil {
			return fusleep.Grid{}, err
		}
		g.Classes = append(g.Classes, cl)
	}
	for _, a := range req.Assignments {
		if err := a.Validate(); err != nil {
			return fusleep.Grid{}, err
		}
	}
	if len(req.ClassTechs) > 0 {
		g.ClassTechs = make(map[fusleep.FUClass]fusleep.Tech, len(req.ClassTechs))
		for name, spec := range req.ClassTechs {
			cl, err := fusleep.ParseFUClass(name)
			if err != nil {
				return fusleep.Grid{}, err
			}
			t := spec.tech(def)
			if err := t.Validate(); err != nil {
				return fusleep.Grid{}, err
			}
			g.ClassTechs[cl] = t
		}
	}
	for _, spec := range req.Techs {
		g.Techs = append(g.Techs, spec.tech(def))
	}
	for _, p := range req.Ps {
		g.Techs = append(g.Techs, def.WithP(p))
	}
	for _, t := range g.Techs {
		if err := t.Validate(); err != nil {
			return fusleep.Grid{}, err
		}
	}
	names := map[string]bool{}
	for _, n := range fusleep.BenchmarkNames() {
		names[n] = true
	}
	for _, b := range g.Benchmarks {
		if !names[b] {
			return fusleep.Grid{}, fmt.Errorf("unknown benchmark %q (have %v)", b, fusleep.BenchmarkNames())
		}
	}
	if req.Alpha < 0 || req.Alpha > 1 {
		return fusleep.Grid{}, fmt.Errorf("alpha %g out of range [0,1]", req.Alpha)
	}
	if req.L2Latency < 0 {
		return fusleep.Grid{}, fmt.Errorf("negative l2Latency %d", req.L2Latency)
	}
	if req.Window > maxWindow {
		return fusleep.Grid{}, fmt.Errorf("window %d exceeds the service limit %d", req.Window, maxWindow)
	}
	return g, nil
}

// apiError is the canonical error envelope, shared with the fleet wire
// protocol: {"error": {"code": "...", "message": "..."}}.
type apiError = fleet.APIError

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the canonical envelope with a machine-readable code and
// a formatted human-readable message.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, fleet.NewAPIError(code, fmt.Sprintf(format, args...)))
}

// writeNotFound is the uniform 404 body for missing resources.
func writeNotFound(w http.ResponseWriter, what, id string) {
	writeError(w, http.StatusNotFound, fleet.CodeNotFound, "no %s %q", what, id)
}

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/optimize", s.handleTuneSubmit)
	s.mux.HandleFunc("GET /v1/optimize", s.handleTuneList)
	s.mux.HandleFunc("GET /v1/optimize/{id}", s.handleTune)
	s.mux.HandleFunc("DELETE /v1/optimize/{id}", s.handleTuneCancel)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/classes", s.handleClasses)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Fleet != nil {
		s.mux.HandleFunc("POST /v1/fleet/register", s.handleFleetRegister)
		s.mux.HandleFunc("POST /v1/fleet/heartbeat", s.handleFleetHeartbeat)
		s.mux.HandleFunc("POST /v1/fleet/fetch", s.handleFleetFetch)
		s.mux.HandleFunc("POST /v1/fleet/report", s.handleFleetReport)
		s.mux.HandleFunc("GET /v1/fleet/workers", s.handleFleetWorkers)
	}
	if s.cfg.Pprof {
		// Explicit registration instead of the package's init side effect on
		// DefaultServeMux: the profiles mount only when the flag asks.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// submitResponse acknowledges an accepted sweep.
type submitResponse struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
	URL   string `json:"url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.rejected.Add(1)
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad sweep request: %v", err)
		return
	}
	g, err := req.grid(s.cfg.MaxWindow)
	if err != nil {
		s.rejected.Add(1)
		writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad sweep grid: %v", err)
		return
	}
	// Bound the grid's cardinality BEFORE expansion: the seven axes
	// multiply, so a small request body can describe an astronomically
	// large grid, and expanding it first would allocate (or overflow the
	// preallocation size) before the limit check ever ran. The product is
	// checked axis by axis, so it is rejected long before it can overflow.
	bound := 1
	for _, n := range []int{
		len(req.Policies) + len(req.Assignments), len(req.Techs) + len(req.Ps),
		len(req.FUCounts), len(req.AGUCounts), len(req.MultCounts),
		len(req.FPALUCounts), len(req.FPMultCounts),
	} {
		bound *= max(n, 1)
		if bound > s.cfg.MaxCells {
			s.rejected.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, fleet.CodeGridTooLarge,
				"grid describes at least %d cells; the service limit is %d", bound, s.cfg.MaxCells)
			return
		}
	}
	cells := s.eng.Cells(g)
	if len(cells) > s.cfg.MaxCells {
		s.rejected.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, fleet.CodeGridTooLarge,
			"grid expands to %d cells; the service limit is %d", len(cells), s.cfg.MaxCells)
		return
	}
	// Validate every cell up front so a bad class/assignment combination
	// (e.g. studying the AGU class on a shared-port machine point) is a 400
	// at submit instead of a failed job after simulation started.
	for i, c := range cells {
		if err := c.Validate(); err != nil {
			s.rejected.Add(1)
			writeError(w, http.StatusBadRequest, fleet.CodeBadRequest, "bad sweep grid: cell %d: %v", i, err)
			return
		}
	}
	if !s.shedBacklog(w, s.rejected, len(cells)) {
		return
	}
	// Accepted jobs outlive the submitting request by design; their
	// lifecycle is owned by the queue (s.submit/cancelAll), not the
	// client connection.
	job := newSweepJob(context.Background(), s.nextID("s"), cells) //fusleepvet:ctx-ok job outlives the HTTP request
	job.rec = s.trace
	// Start the trace before submit: the feeder races the rest of this
	// handler, and its dispatch events must find the trace already live.
	s.trace.Start(job.id)
	s.trace.Record(job.id, telemetry.Event{
		Stage: telemetry.StageSubmitted, Detail: fmt.Sprintf("%d cells", len(cells)),
	})
	s.journalSubmit(job.id, "sweep", req, func(cb func(string)) { job.onTerminal = cb })
	s.log.Info("sweep accepted", "job", job.id, "cells", len(cells))
	if err := s.submit(job.id, job, func() { s.feed(job) }); err != nil {
		s.rejected.Add(1)
		s.release(len(cells))
		job.cancel()
		// The client gets an error, so the journaled submission must not
		// replay as if it had been acknowledged.
		if s.cfg.Jobs != nil {
			_ = s.cfg.Jobs.Finished(job.id, StateCanceled)
		}
		writeError(w, http.StatusServiceUnavailable, fleet.CodeDraining, "%v", err)
		return
	}
	s.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: job.id, Cells: len(cells), URL: "/v1/sweeps/" + job.id,
	})
}

// traceHeader is the first NDJSON line of a job-trace response.
type traceHeader struct {
	Event   string `json:"event"` // always "trace"
	ID      string `json:"id"`
	Events  int    `json:"events"`
	Dropped int    `json:"dropped"`
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's cell-lifecycle
// span timeline as NDJSON — one header line, then one line per event in
// recording order (each with seq, stage, key, worker, attempt, seconds).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	events, dropped, ok := s.trace.Snapshot(id)
	if !ok {
		writeNotFound(w, "trace for job", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	_ = enc.Encode(traceHeader{Event: "trace", ID: id, Events: len(events), Dropped: dropped})
	for _, ev := range events {
		_ = enc.Encode(ev)
	}
}

// handleList is GET /v1/sweeps: the shared jobs listing filtered to sweeps.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listJobs(KindSweep))
}

// handleSweep is GET /v1/sweeps/{id}: stream or poll one sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"), KindSweep)
	if !ok {
		writeNotFound(w, "sweep", r.PathValue("id"))
		return
	}
	serveJob(w, r, job)
}

// handleCancel is DELETE /v1/sweeps/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(r.PathValue("id"), KindSweep)
	if !ok {
		writeNotFound(w, "sweep", r.PathValue("id"))
		return
	}
	cancelJob(w, job)
}

// workloadInfo describes one registered benchmark on the wire.
type workloadInfo struct {
	Name        string  `json:"name"`
	Suite       string  `json:"suite"`
	PaperFUs    int     `json:"paperFUs"`
	PaperIPC    float64 `json:"paperIPC"`
	PaperMaxIPC float64 `json:"paperMaxIPC"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, b := range fusleep.Benchmarks() {
		out = append(out, workloadInfo{
			Name: b.Name, Suite: b.Suite,
			PaperFUs: b.PaperFUs, PaperIPC: b.PaperIPC, PaperMaxIPC: b.PaperMaxIPC,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// policyInfo describes one registered sleep policy on the wire.
type policyInfo struct {
	Name string `json:"name"`
	// Causal reports whether the policy is implementable cycle by cycle
	// (OracleMinimal is offline-only).
	Causal bool   `json:"causal"`
	Desc   string `json:"desc"`
	// Params names the policy's tuning knobs as they appear in PolicyConfig
	// JSON (and in the tuner's search axes); zero values select the paper's
	// breakeven-derived defaults.
	Params []string `json:"params,omitempty"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	out := []policyInfo{
		{Name: fusleep.AlwaysActive.String(), Causal: true, Desc: "never sleep; clock-gated idle only (baseline)"},
		{Name: fusleep.MaxSleep.String(), Causal: true, Desc: "assert Sleep on every idle cycle"},
		{Name: fusleep.NoOverhead.String(), Causal: true, Desc: "MaxSleep with free transitions (lower bound)"},
		{Name: fusleep.GradualSleep.String(), Causal: true, Desc: "stagger Sleep across K slices per idle cycle",
			Params: []string{"slices"}},
		{Name: fusleep.SleepTimeout.String(), Causal: true, Desc: "sleep after a threshold idle timeout (breakeven default)",
			Params: []string{"timeout"}},
		{Name: fusleep.OracleMinimal.String(), Causal: false, Desc: "per-interval oracle: cheaper of sleeping or idling"},
	}
	writeJSON(w, http.StatusOK, out)
}

// classInfo describes one functional-unit class on the wire.
type classInfo struct {
	Name string `json:"name"`
	// DefaultUnits is the Table 2 unit count; 0 means the class has no
	// dedicated pool by default (AGU shares the integer ALU ports until a
	// positive aguCounts/agus provisions one).
	DefaultUnits int    `json:"defaultUnits"`
	Desc         string `json:"desc"`
}

func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	// Counts come from the simulator's actual defaults so the endpoint
	// cannot drift from the Table 2 machine.
	def := pipeline.DefaultConfig()
	out := []classInfo{
		{Name: fusleep.FUIntALU.String(), DefaultUnits: def.IntALUs, Desc: "single-cycle integer ALUs (the units under study)"},
		{Name: fusleep.FUAGU.String(), DefaultUnits: def.AGUs, Desc: "address generation; shares the IntALU ports unless provisioned"},
		{Name: fusleep.FUMult.String(), DefaultUnits: def.IntMults, Desc: "integer multiply/divide"},
		{Name: fusleep.FUFPALU.String(), DefaultUnits: def.FPALUs, Desc: "FP add/compare"},
		{Name: fusleep.FUFPMult.String(), DefaultUnits: def.FPMults, Desc: "FP multiply/divide"},
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		Uptime   float64 `json:"uptimeSeconds"`
	}
	h := health{Status: "ok", Draining: s.Draining(), Uptime: time.Since(s.start).Seconds()}
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleReadyz is the readiness probe, distinct from /healthz liveness: a
// live daemon is not ready while it is draining, before WAL recovery has
// replayed pending jobs, or while the backlog is shedding submissions.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Ready        bool  `json:"ready"`
		Draining     bool  `json:"draining"`
		Recovered    bool  `json:"recovered"`
		PendingCells int64 `json:"pendingCells"`
		Capacity     int   `json:"capacity"`
	}
	rd := readiness{
		Draining:     s.Draining(),
		Recovered:    s.recovered.Load(),
		PendingCells: s.pendingCells.Load(),
		Capacity:     s.capacity(),
	}
	rd.Ready = !rd.Draining && rd.Recovered && rd.PendingCells < int64(rd.Capacity)
	code := http.StatusOK
	if !rd.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rd)
}
