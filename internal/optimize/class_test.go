package optimize

import (
	"context"
	"math"
	"testing"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/fu"
)

// classSynthEnergy is a closed-form per-class landscape with different
// optima per class: the IntALU class wants GradualSleep near K=16, the
// FPALU class wants SleepTimeout near T=32, and leaving either class at the
// AlwaysActive baseline costs 1.0. A composed assignment is therefore
// strictly better than any single-class deviation, which is exactly what
// the composition round must find.
func classSynthEnergy(cl fu.Class, pc core.PolicyConfig) float64 {
	gradual := func(k int, opt float64, floor float64) float64 {
		d := math.Log2(float64(k)) - math.Log2(opt)
		return floor + 0.02*d*d
	}
	switch cl {
	case fu.IntALU:
		switch pc.Policy {
		case core.GradualSleep:
			return gradual(max(pc.Slices, 1), 16, 0.30)
		case core.SleepTimeout:
			return gradual(max(pc.Timeout, 1), 16, 0.45)
		case core.MaxSleep:
			return 0.80
		default:
			return 1.0
		}
	default: // FPALU in these tests
		switch pc.Policy {
		case core.SleepTimeout:
			return gradual(max(pc.Timeout, 1), 32, 0.40)
		case core.GradualSleep:
			return gradual(max(pc.Slices, 1), 32, 0.55)
		case core.MaxSleep:
			return 0.75
		default:
			return 1.0
		}
	}
}

func classSynthEvaluator() Evaluator {
	return func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error) {
		if err := ctx.Err(); err != nil {
			return experiments.CellResult{}, err
		}
		var rel float64
		classes := c.StudiedClasses()
		for _, cl := range classes {
			rel += classSynthEnergy(cl, c.PolicyFor(cl))
		}
		rel /= float64(len(classes))
		return experiments.CellResult{Cell: c, RelEnergy: rel, LeakageFraction: 0.4, MeanCycles: 1000}, nil
	}
}

func classSpace() Space {
	return Space{
		Policies:     []core.Policy{core.AlwaysActive, core.MaxSleep, core.GradualSleep, core.SleepTimeout},
		TimeoutRange: [2]int{1, 256},
		SlicesRange:  [2]int{1, 128},
		FUCounts:     []int{4},
		Classes:      []fu.Class{fu.IntALU, fu.FPALU},
		Benchmarks:   []string{"gcc"},
	}
}

// TestClassSearchComposesPerClassBest drives the widened driver end to
// end: per-class candidates probe each class's axis, and the composition
// round assembles the heterogeneous assignment that beats every
// single-class deviation.
func TestClassSearchComposesPerClassBest(t *testing.T) {
	var probes []Probe
	res, err := Run(context.Background(), Config{
		Space: classSpace(), Eval: classSynthEvaluator(), MaxEvals: 96,
	}, func(p Probe) error { probes = append(probes, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best
	if len(best.Cell.Assignment) != 2 {
		t.Fatalf("best is not a composed assignment: %s", best.Label())
	}
	intPC, _ := best.Cell.Assignment.For(fu.IntALU)
	fpPC, _ := best.Cell.Assignment.For(fu.FPALU)
	if intPC.Policy != core.GradualSleep {
		t.Errorf("IntALU best policy = %v, want GradualSleep", intPC)
	}
	if fpPC.Policy != core.SleepTimeout {
		t.Errorf("FPALU best policy = %v, want SleepTimeout", fpPC)
	}
	// The composed score beats the best single-class deviation: one class
	// at its floor, the other at the 1.0 baseline, averaged.
	singleBest := (0.30 + 1.0) / 2
	if !(best.Score < singleBest) {
		t.Errorf("composed score %.4f did not beat the single-deviation bound %.4f", best.Score, singleBest)
	}
	// The floor of the composed landscape is (0.30 + 0.40) / 2 = 0.35;
	// refinement should land within a few percent of it.
	if best.Score > 0.35*1.05 {
		t.Errorf("composed score %.4f misses the landscape floor 0.35 by more than 5%%", best.Score)
	}
	// The composition probe is observed in the final round.
	last := probes[len(probes)-1]
	if len(last.Point.Cell.Assignment) != 2 || last.Round != res.Rounds-1 {
		t.Errorf("composition probe not streamed last: %+v", last)
	}
}

// TestClassSearchDeterministic re-runs the class-wide search and asserts
// the probe sequence and result are identical.
func TestClassSearchDeterministic(t *testing.T) {
	runOnce := func() Result {
		res, err := Run(context.Background(), Config{
			Space: classSpace(), Eval: classSynthEvaluator(), MaxEvals: 64, Parallel: 5,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.Best.Cell.Key() != b.Best.Cell.Key() || a.Best.Score != b.Best.Score {
		t.Errorf("best diverged: %s (%.6f) vs %s (%.6f)", a.Best.Label(), a.Best.Score, b.Best.Label(), b.Best.Score)
	}
	if a.Evals != b.Evals || a.Probes != b.Probes || a.Rounds != b.Rounds {
		t.Errorf("accounting diverged: %+v vs %+v", a, b)
	}
}

// TestClassSpaceValidate covers the widened validation surface.
func TestClassSpaceValidate(t *testing.T) {
	sp := classSpace().WithDefaults(core.DefaultTech(), 1000)
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid class space rejected: %v", err)
	}
	bad := sp
	bad.Classes = []fu.Class{fu.AGU}
	if err := bad.Validate(); err == nil {
		t.Error("AGU class without a dedicated pool accepted")
	}
	bad.AGUs = 2
	if err := bad.Validate(); err != nil {
		t.Errorf("AGU class with a dedicated pool rejected: %v", err)
	}
	bad = sp
	bad.Classes = []fu.Class{fu.IntALU, fu.IntALU}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate class accepted")
	}
	bad = sp
	bad.Mults = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative unit count accepted")
	}
}
