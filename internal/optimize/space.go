package optimize

import (
	"fmt"
	"math"
	"sort"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/workload"
)

// Space is the tuner's search domain: the cross product of discrete axes
// (policy family, technology point, FU count) with the refinable parameter
// axes of the parameterized policies (SleepTimeout threshold, GradualSleep
// slice count). Zero-valued fields select defaults, so Space{} searches the
// paper's causal policies over the full suite at the caller's technology.
type Space struct {
	// Policies are the policy families to search (default: AlwaysActive,
	// MaxSleep, GradualSleep, SleepTimeout — every causal policy plus the
	// do-nothing baseline).
	Policies []core.Policy
	// TimeoutRange bounds the SleepTimeout threshold axis in idle cycles,
	// inclusive (default [1, 256]).
	TimeoutRange [2]int
	// SlicesRange bounds the GradualSleep slice-count axis K, inclusive
	// (default [1, 128]).
	SlicesRange [2]int
	// FUCounts are the integer-ALU candidates; 0 in the list means the
	// paper's per-benchmark Table 3 counts (default: [0]).
	FUCounts []int
	// Techs are the technology points to search (default: the caller's
	// technology).
	Techs []core.Tech
	// Benchmarks restricts the suite (default: all nine).
	Benchmarks []string
	// Alpha is the activity factor (default 0.5).
	Alpha float64
	// L2Latency is the L2 hit latency in cycles (default 12).
	L2Latency int
	// Window is the per-benchmark instruction count (default: the
	// caller's window).
	Window uint64
}

// WithDefaults resolves zero-valued fields against the given default
// technology point and instruction window. It is idempotent.
func (s Space) WithDefaults(tech core.Tech, window uint64) Space {
	if len(s.Policies) == 0 {
		s.Policies = []core.Policy{core.AlwaysActive, core.MaxSleep, core.GradualSleep, core.SleepTimeout}
	}
	if s.TimeoutRange == [2]int{} {
		s.TimeoutRange = [2]int{1, 256}
	}
	if s.SlicesRange == [2]int{} {
		s.SlicesRange = [2]int{1, 128}
	}
	if len(s.FUCounts) == 0 {
		s.FUCounts = []int{0}
	}
	if len(s.Techs) == 0 {
		s.Techs = []core.Tech{tech}
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = workload.Names()
	}
	if s.Alpha == 0 {
		s.Alpha = 0.5
	}
	if s.L2Latency == 0 {
		s.L2Latency = 12
	}
	if s.Window == 0 {
		s.Window = window
	}
	return s
}

// Validate rejects spaces outside the model's domain before any simulation
// is paid for. Call after WithDefaults.
func (s Space) Validate() error {
	if len(s.Policies) == 0 {
		return fmt.Errorf("optimize: space has no policies")
	}
	for _, p := range s.Policies {
		if _, err := core.ParsePolicy(p.String()); err != nil {
			return err
		}
	}
	for _, r := range [][2]int{s.TimeoutRange, s.SlicesRange} {
		if r[0] < 1 || r[1] < r[0] {
			return fmt.Errorf("optimize: bad parameter range [%d, %d]", r[0], r[1])
		}
	}
	for _, t := range s.Techs {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if !core.ValidAlpha(s.Alpha) {
		return core.ErrAlpha
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("optimize: space has no benchmarks")
	}
	for _, name := range s.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return err
		}
	}
	return nil
}

// family identifies one refinable slot of the space: a policy at one
// technology × FU coordinate. Parameterless policies have no axis and are
// probed exactly once per slot.
type family struct {
	policy  core.Policy
	techIdx int
	fuIdx   int
}

// paramRange returns a policy's refinable parameter range, if it has one.
func (s Space) paramRange(p core.Policy) ([2]int, bool) {
	switch p {
	case core.SleepTimeout:
		return s.TimeoutRange, true
	case core.GradualSleep:
		return s.SlicesRange, true
	}
	return [2]int{}, false
}

// policyConfig binds a parameter value to its policy's knob.
func policyConfig(p core.Policy, param int) core.PolicyConfig {
	switch p {
	case core.SleepTimeout:
		return core.PolicyConfig{Policy: p, Timeout: param}
	case core.GradualSleep:
		return core.PolicyConfig{Policy: p, Slices: param}
	}
	return core.PolicyConfig{Policy: p}
}

// cell materializes one candidate as an evaluable sweep cell.
func (s Space) cell(fam family, param int) experiments.Cell {
	return experiments.Cell{
		Policy:     policyConfig(fam.policy, param),
		Tech:       s.Techs[fam.techIdx],
		FUs:        s.FUCounts[fam.fuIdx],
		Benchmarks: s.Benchmarks,
		Alpha:      s.Alpha,
		L2Latency:  s.L2Latency,
		Window:     s.Window,
	}
}

// candidate is one point the driver may evaluate.
type candidate struct {
	fam   family
	param int
}

// references returns the delay-reference candidates: the AlwaysActive
// baseline at the first technology point for every FU count. Their minimum
// mean cycle count anchors Delay = 1.
func (s Space) references() []candidate {
	refs := make([]candidate, 0, len(s.FUCounts))
	for fi := range s.FUCounts {
		refs = append(refs, candidate{fam: family{policy: core.AlwaysActive, techIdx: 0, fuIdx: fi}})
	}
	return refs
}

// seeds returns the round-0 candidate list: for every technology × FU ×
// policy slot, either the single parameterless candidate or points points
// log-spaced across the policy's parameter range (endpoints included).
func (s Space) seeds(points int) []candidate {
	var out []candidate
	for ti := range s.Techs {
		for fi := range s.FUCounts {
			for _, pol := range s.Policies {
				fam := family{policy: pol, techIdx: ti, fuIdx: fi}
				r, ok := s.paramRange(pol)
				if !ok {
					out = append(out, candidate{fam: fam})
					continue
				}
				for _, v := range logSpacedInts(r[0], r[1], points) {
					out = append(out, candidate{fam: fam, param: v})
				}
			}
		}
	}
	return out
}

// logSpacedInts returns up to n distinct integers covering [lo, hi]
// inclusive, geometrically spaced (so small thresholds get the resolution
// the breakeven analysis says matters).
func logSpacedInts(lo, hi, n int) []int {
	if n < 2 || hi <= lo {
		if hi > lo {
			return []int{lo, hi}
		}
		return []int{lo}
	}
	ratio := float64(hi) / float64(lo)
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v := int(math.Round(float64(lo) * math.Pow(ratio, float64(i)/float64(n-1))))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// geomMid returns the geometric midpoint of two positive integers, rounded;
// the bisection step of the refinement loop.
func geomMid(a, b int) int {
	return int(math.Round(math.Sqrt(float64(a) * float64(b))))
}
