package optimize

import (
	"fmt"
	"math"
	"sort"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/workload"
)

// Space is the tuner's search domain: the cross product of discrete axes
// (policy family, functional-unit class, technology point, FU count) with
// the refinable parameter axes of the parameterized policies (SleepTimeout
// threshold, GradualSleep slice count). Zero-valued fields select defaults,
// so Space{} searches the paper's causal policies over the full suite at
// the caller's technology.
//
// With Classes set, the search widens to per-class policy assignments: each
// candidate assigns one class's policy (the others idle at the baseline),
// the same successive-halving driver refines every class's parameter axis,
// and a final composition round evaluates the assignment that combines each
// class's best policy per machine coordinate.
type Space struct {
	// Policies are the policy families to search (default: AlwaysActive,
	// MaxSleep, GradualSleep, SleepTimeout — every causal policy plus the
	// do-nothing baseline).
	Policies []core.Policy
	// TimeoutRange bounds the SleepTimeout threshold axis in idle cycles,
	// inclusive (default [1, 256]).
	TimeoutRange [2]int
	// SlicesRange bounds the GradualSleep slice-count axis K, inclusive
	// (default [1, 128]).
	SlicesRange [2]int
	// FUCounts are the integer-ALU candidates; 0 in the list means the
	// paper's per-benchmark Table 3 counts (default: [0]).
	FUCounts []int
	// Classes are the functional-unit classes to assign policies over.
	// Empty keeps the paper's single-pool view: candidates are uniform
	// policies for the IntALU class alone, exactly the pre-class search.
	Classes []fu.Class
	// AGUs, Mults, FPALUs, FPMults fix the machine's per-class unit counts
	// for every candidate (0 = Table 2 defaults). A dedicated AGU pool
	// (AGUs > 0) is required before the AGU class is searchable.
	AGUs    int
	Mults   int
	FPALUs  int
	FPMults int
	// Techs are the technology points to search (default: the caller's
	// technology).
	Techs []core.Tech
	// Benchmarks restricts the suite (default: all nine).
	Benchmarks []string
	// Alpha is the activity factor (default 0.5).
	Alpha float64
	// L2Latency is the L2 hit latency in cycles (default 12).
	L2Latency int
	// Window is the per-benchmark instruction count (default: the
	// caller's window).
	Window uint64
}

// WithDefaults resolves zero-valued fields against the given default
// technology point and instruction window. It is idempotent.
func (s Space) WithDefaults(tech core.Tech, window uint64) Space {
	if len(s.Policies) == 0 {
		s.Policies = []core.Policy{core.AlwaysActive, core.MaxSleep, core.GradualSleep, core.SleepTimeout}
	}
	if s.TimeoutRange == [2]int{} {
		s.TimeoutRange = [2]int{1, 256}
	}
	if s.SlicesRange == [2]int{} {
		s.SlicesRange = [2]int{1, 128}
	}
	if len(s.FUCounts) == 0 {
		s.FUCounts = []int{0}
	}
	if len(s.Techs) == 0 {
		s.Techs = []core.Tech{tech}
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = workload.Names()
	}
	if s.Alpha == 0 {
		s.Alpha = 0.5
	}
	if s.L2Latency == 0 {
		s.L2Latency = 12
	}
	if s.Window == 0 {
		s.Window = window
	}
	return s
}

// Validate rejects spaces outside the model's domain before any simulation
// is paid for. Call after WithDefaults.
func (s Space) Validate() error {
	if len(s.Policies) == 0 {
		return fmt.Errorf("optimize: space has no policies")
	}
	for _, p := range s.Policies {
		if _, err := core.ParsePolicy(p.String()); err != nil {
			return err
		}
	}
	for _, r := range [][2]int{s.TimeoutRange, s.SlicesRange} {
		if r[0] < 1 || r[1] < r[0] {
			return fmt.Errorf("optimize: bad parameter range [%d, %d]", r[0], r[1])
		}
	}
	for _, t := range s.Techs {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if !core.ValidAlpha(s.Alpha) {
		return core.ErrAlpha
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("optimize: space has no benchmarks")
	}
	for _, name := range s.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return err
		}
	}
	seen := map[fu.Class]bool{}
	for _, cl := range s.Classes {
		if !cl.Valid() {
			return fmt.Errorf("optimize: invalid class %d", uint8(cl))
		}
		if seen[cl] {
			return fmt.Errorf("optimize: class %s listed twice", cl)
		}
		seen[cl] = true
		if cl == fu.AGU && s.AGUs <= 0 {
			return fmt.Errorf("optimize: class agu needs a dedicated pool (set AGUs > 0)")
		}
	}
	for _, n := range []int{s.AGUs, s.Mults, s.FPALUs, s.FPMults} {
		if n < 0 {
			return fmt.Errorf("optimize: negative unit count %d", n)
		}
	}
	return nil
}

// family identifies one refinable slot of the space: a policy at one
// technology × FU × class coordinate. Parameterless policies have no axis
// and are probed exactly once per slot. classIdx indexes Space.Classes and
// is 0 for a class-less (single-pool) space.
type family struct {
	policy   core.Policy
	techIdx  int
	fuIdx    int
	classIdx int
}

// paramRange returns a policy's refinable parameter range, if it has one.
func (s Space) paramRange(p core.Policy) ([2]int, bool) {
	switch p {
	case core.SleepTimeout:
		return s.TimeoutRange, true
	case core.GradualSleep:
		return s.SlicesRange, true
	}
	return [2]int{}, false
}

// policyConfig binds a parameter value to its policy's knob.
func policyConfig(p core.Policy, param int) core.PolicyConfig {
	switch p {
	case core.SleepTimeout:
		return core.PolicyConfig{Policy: p, Timeout: param}
	case core.GradualSleep:
		return core.PolicyConfig{Policy: p, Slices: param}
	}
	return core.PolicyConfig{Policy: p}
}

// baseCell materializes the machine coordinate shared by every candidate
// at one technology × FU point: the per-class unit mix, studied classes,
// benchmarks, and scale parameters, with no policy bound yet.
func (s Space) baseCell(techIdx, fuIdx int) experiments.Cell {
	return experiments.Cell{
		Tech:       s.Techs[techIdx],
		FUs:        s.FUCounts[fuIdx],
		AGUs:       s.AGUs,
		Mults:      s.Mults,
		FPALUs:     s.FPALUs,
		FPMults:    s.FPMults,
		Classes:    s.Classes,
		Benchmarks: s.Benchmarks,
		Alpha:      s.Alpha,
		L2Latency:  s.L2Latency,
		Window:     s.Window,
	}
}

// cell materializes one candidate as an evaluable sweep cell. In a
// class-less space the policy binds uniformly (the pre-class cell shape,
// preserving cache keys); with classes, the candidate's class gets the
// policy and every other studied class idles at the AlwaysActive baseline.
func (s Space) cell(fam family, param int) experiments.Cell {
	c := s.baseCell(fam.techIdx, fam.fuIdx)
	pc := policyConfig(fam.policy, param)
	if len(s.Classes) == 0 {
		c.Policy = pc
		return c
	}
	c.Assignment = core.Assignment{s.Classes[fam.classIdx]: pc}
	return c
}

// composed materializes a full per-class assignment at one technology × FU
// coordinate — the composition round's cell.
func (s Space) composed(techIdx, fuIdx int, a core.Assignment) experiments.Cell {
	c := s.baseCell(techIdx, fuIdx)
	c.Assignment = a
	return c
}

// candidate is one point the driver may evaluate.
type candidate struct {
	fam   family
	param int
}

// references returns the delay-reference candidates: the AlwaysActive
// baseline at the first technology point for every FU count. Their minimum
// mean cycle count anchors Delay = 1.
func (s Space) references() []candidate {
	refs := make([]candidate, 0, len(s.FUCounts))
	for fi := range s.FUCounts {
		refs = append(refs, candidate{fam: family{policy: core.AlwaysActive, techIdx: 0, fuIdx: fi}})
	}
	return refs
}

// classCount returns the number of class slots the search iterates: one
// per studied class, or a single class-less slot.
func (s Space) classCount() int {
	if len(s.Classes) == 0 {
		return 1
	}
	return len(s.Classes)
}

// seeds returns the round-0 candidate list: for every technology × FU ×
// class × policy slot, either the single parameterless candidate or points
// points log-spaced across the policy's parameter range (endpoints
// included).
func (s Space) seeds(points int) []candidate {
	var out []candidate
	for ti := range s.Techs {
		for fi := range s.FUCounts {
			for ci := 0; ci < s.classCount(); ci++ {
				for _, pol := range s.Policies {
					// In class mode, assigning AlwaysActive to class ci is
					// the all-baseline machine regardless of ci (unassigned
					// classes already idle at AlwaysActive): the cells have
					// distinct keys but identical results, so seed that
					// configuration once instead of once per class.
					if len(s.Classes) > 0 && ci > 0 && pol == core.AlwaysActive {
						continue
					}
					fam := family{policy: pol, techIdx: ti, fuIdx: fi, classIdx: ci}
					r, ok := s.paramRange(pol)
					if !ok {
						out = append(out, candidate{fam: fam})
						continue
					}
					for _, v := range logSpacedInts(r[0], r[1], points) {
						out = append(out, candidate{fam: fam, param: v})
					}
				}
			}
		}
	}
	return out
}

// logSpacedInts returns up to n distinct integers covering [lo, hi]
// inclusive, geometrically spaced (so small thresholds get the resolution
// the breakeven analysis says matters).
func logSpacedInts(lo, hi, n int) []int {
	if n < 2 || hi <= lo {
		if hi > lo {
			return []int{lo, hi}
		}
		return []int{lo}
	}
	ratio := float64(hi) / float64(lo)
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v := int(math.Round(float64(lo) * math.Pow(ratio, float64(i)/float64(n-1))))
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// geomMid returns the geometric midpoint of two positive integers, rounded;
// the bisection step of the refinement loop.
func geomMid(a, b int) int {
	return int(math.Round(math.Sqrt(float64(a) * float64(b))))
}
