package optimize

import (
	"fmt"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/report"
)

// Label renders a point's configuration for tables and traces, e.g.
// "SleepTimeout T=24 @ p=0.05, 2 FUs" — or, for a per-class candidate, the
// canonical assignment string ("intalu=GradualSleep:slices=4,fpalu=MaxSleep").
func (p Point) Label() string {
	var s string
	if len(p.Cell.Assignment) > 0 {
		s = p.Cell.Assignment.String()
	} else {
		pc := p.Cell.Policy
		s = pc.Policy.String()
		switch pc.Policy {
		case core.GradualSleep:
			if pc.Slices > 0 {
				s += fmt.Sprintf(" K=%d", pc.Slices)
			}
		case core.SleepTimeout:
			if pc.Timeout > 0 {
				s += fmt.Sprintf(" T=%d", pc.Timeout)
			}
		}
	}
	fus := fmt.Sprintf("%d FUs", p.Cell.FUs)
	if p.Cell.FUs == 0 {
		fus = "paper FUs"
	}
	return fmt.Sprintf("%s @ p=%s, %s", s, report.F(p.Cell.Tech.P, 4), fus)
}

// frontierPoints converts the result's frontier into the report package's
// renderable form, with leakage fraction and objective score as extra
// columns.
func (r Result) frontierPoints() []report.FrontierPoint {
	out := make([]report.FrontierPoint, 0, len(r.Frontier))
	for _, p := range r.Frontier {
		leakFrac := 0.0
		if p.Energy > 0 {
			leakFrac = p.LeakEnergy / p.Energy
		}
		out = append(out, report.FrontierPoint{
			Label:  p.Label(),
			Delay:  p.Delay,
			Energy: p.Energy,
			Extra:  []string{report.F(leakFrac, 4), report.F(p.Score, 4)},
		})
	}
	return out
}

// Artifacts renders a completed run as structured artifacts: the best
// point, the Pareto frontier (table and series forms), all renderable as
// text, JSON, CSV, or NDJSON through the report package.
func (r Result) Artifacts() []report.Artifact {
	best := report.NewTable(
		fmt.Sprintf("Tuner best point [%s]", r.Objective),
		"configuration", "score", "delay", "E/E_base", "leak E", "feasible")
	best.AddRow(r.Best.Label(), report.F(r.Best.Score, 4), report.F(r.Best.Delay, 4),
		report.F(r.Best.Energy, 4), report.F(r.Best.LeakEnergy, 4), fmt.Sprintf("%v", r.Best.Feasible))
	best.AddNote("%d cells evaluated in %d rounds over %d benchmarks at window %d (delay ref: %.0f cycles)",
		r.Evals, r.Rounds, len(r.Space.Benchmarks), r.Space.Window, r.RefCycles)

	title := fmt.Sprintf("Energy-delay Pareto frontier [%s, %d points from %d probes]",
		r.Objective, len(r.Frontier), r.Probes)
	pts := r.frontierPoints()
	ft := report.FrontierTable(title, []string{"leak frac", "score"}, pts)
	ft.AddNote("probe score p50 %s / p90 %s; delay-weighted frontier energy p50 %s / p90 %s",
		report.F(r.Summary.ScoreP50, 4), report.F(r.Summary.ScoreP90, 4),
		report.F(r.Summary.FrontierEnergyP50, 4), report.F(r.Summary.FrontierEnergyP90, 4))

	return []report.Artifact{
		report.TableArtifact("tune-best", best),
		report.TableArtifact("tune-frontier", ft),
		report.SeriesArtifact("tune-frontier-curve", report.FrontierSeries(title, pts)),
	}
}
