package optimize

import (
	"fmt"
	"strings"

	"github.com/archsim/fusleep/internal/experiments"
)

// Kind names one scalarization of the energy-delay trade-off.
type Kind string

const (
	// KindED minimizes the energy-delay product E·D: relative energy
	// (E/E_base) times relative delay (cycles over the fastest evaluated
	// baseline). The default.
	KindED Kind = "ed"
	// KindED2 minimizes E·D², weighting delay more heavily — the metric the
	// nanometer-cache Pareto studies favor for performance-critical parts.
	KindED2 Kind = "ed2"
	// KindLeakage minimizes the leakage share of energy (RelEnergy ×
	// LeakageFraction) alone; combine with Objective.SlowdownCap to keep the
	// tuner from simply under-provisioning functional units.
	KindLeakage Kind = "leakage"
)

// Kinds lists the objective kinds accepted by ParseKind.
func Kinds() []Kind { return []Kind{KindED, KindED2, KindLeakage} }

// ParseKind maps an objective name (case-insensitively) to its Kind.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(name, string(k)) {
			return k, nil
		}
	}
	return "", fmt.Errorf("optimize: unknown objective %q (have %v)", name, Kinds())
}

// Objective is the tuner's scoring function: a scalarization kind plus an
// optional feasibility constraint on delay. Lower scores are better; an
// infeasible point never outranks a feasible one.
type Objective struct {
	Kind Kind `json:"kind"`
	// SlowdownCap bounds a candidate's relative delay (cycles over the
	// fastest evaluated baseline): points with Delay > SlowdownCap are
	// infeasible. Zero means unconstrained.
	SlowdownCap float64 `json:"slowdownCap,omitempty"`
}

// withDefaults resolves the zero value to the E·D objective.
func (o Objective) withDefaults() Objective {
	if o.Kind == "" {
		o.Kind = KindED
	}
	return o
}

// Validate rejects unknown kinds and negative caps.
func (o Objective) Validate() error {
	o = o.withDefaults()
	if _, err := ParseKind(string(o.Kind)); err != nil {
		return err
	}
	if o.SlowdownCap < 0 {
		return fmt.Errorf("optimize: negative slowdown cap %g", o.SlowdownCap)
	}
	return nil
}

// String renders the objective for titles and traces.
func (o Objective) String() string {
	o = o.withDefaults()
	var s string
	switch o.Kind {
	case KindED2:
		s = "min E·D²"
	case KindLeakage:
		s = "min leakage energy"
	default:
		s = "min E·D"
	}
	if o.SlowdownCap > 0 {
		s += fmt.Sprintf(" s.t. D ≤ %.3g", o.SlowdownCap)
	}
	return s
}

// Point is one evaluated configuration with its derived metrics: the
// coordinates the frontier and the objective work in.
type Point struct {
	Cell experiments.Cell `json:"cell"`
	// Energy is E/E_base averaged over the cell's benchmarks.
	Energy float64 `json:"energy"`
	// Delay is MeanCycles normalized to the fastest evaluated baseline
	// configuration, so 1.0 is "no slowdown".
	Delay float64 `json:"delay"`
	// LeakEnergy is the leakage share of relative energy
	// (Energy × LeakageFraction).
	LeakEnergy float64 `json:"leakEnergy"`
	// MeanCycles is the un-normalized delay axis from the cell result.
	MeanCycles float64 `json:"meanCycles"`
	// Score is the objective's scalarization of this point.
	Score float64 `json:"score"`
	// Feasible reports whether the point satisfies the objective's
	// slowdown cap.
	Feasible bool `json:"feasible"`
}

// point derives a Point from a cell result under this objective, given the
// run's reference cycle count.
func (o Objective) point(res experiments.CellResult, refCycles float64) Point {
	p := Point{
		Cell:       res.Cell,
		Energy:     res.RelEnergy,
		LeakEnergy: res.RelEnergy * res.LeakageFraction,
		MeanCycles: res.MeanCycles,
		Delay:      1,
	}
	if refCycles > 0 {
		p.Delay = res.MeanCycles / refCycles
	}
	p.Score = o.score(p)
	p.Feasible = o.feasible(p)
	return p
}

// score scalarizes a point; lower is better.
func (o Objective) score(p Point) float64 {
	switch o.withDefaults().Kind {
	case KindED2:
		return p.Energy * p.Delay * p.Delay
	case KindLeakage:
		return p.LeakEnergy
	default:
		return p.Energy * p.Delay
	}
}

// feasible applies the slowdown cap.
func (o Objective) feasible(p Point) bool {
	return o.SlowdownCap <= 0 || p.Delay <= o.SlowdownCap*(1+1e-12)
}

// better reports whether a outranks b: feasible before infeasible, then by
// ascending score. Ties keep b (the earlier point), so the probe order
// breaks ties deterministically.
func better(a, b Point) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Score < b.Score
}
