// Package optimize searches the sleep-policy parameter space for
// Pareto-optimal energy-delay configurations instead of exhaustively
// sweeping it.
//
// The paper's central result is that no single leakage policy wins
// everywhere: the best choice of policy, SleepTimeout threshold,
// GradualSleep slice count, and functional-unit provisioning shifts with
// benchmark, FU count, and technology point (Figures 8-10), and Section 7
// speculates about "more complex control strategies" tuned per
// configuration. This package is that tuner. It trades the exhaustive grid
// of experiments.RunSweep for a deterministic adaptive search:
//
//   - An objective layer (Objective) scores evaluated cells: minimize the
//     energy-delay product E·D, the delay-emphasizing E·D², or the leakage
//     energy alone subject to a slowdown cap.
//   - A search driver (Run) seeds a coarse logarithmic grid over the
//     parameterized policy axes (SleepTimeout threshold, GradualSleep K)
//     crossed with the discrete axes (policy family, FU count, technology
//     point), then applies successive halving: each round keeps the
//     top 1/Eta candidates and refines their parameter neighborhoods by
//     geometric bisection. Probes evaluate through the caller-supplied
//     Evaluator — the engine routes them through experiments.EvalCell, so
//     repeated probes deduplicate through the simulation cache for free —
//     and run in bounded parallel within a round.
//   - A Pareto-frontier accumulator (Frontier) keeps every non-dominated
//     (delay, energy) point seen, with dominance pruning, and the driver
//     streams a trace of accepted and rejected probes to its observer.
//
// Everything is deterministic: the same Space, Objective, and budget
// produce the same probe sequence, the same frontier, and the same best
// point on every run, which is what makes the golden tuner test possible.
package optimize
