package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
	"github.com/archsim/fusleep/internal/stats"
)

// Evaluator scores one candidate cell. The engine supplies its cached cell
// runner (experiments.EvalCell through the shared simulation cache); the
// sweep service supplies an evaluator that routes through its sharded job
// queue. Evaluators must be deterministic for the tuner to be.
type Evaluator func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error)

// BatchEvaluator scores one round's candidate cells in a single call,
// returning results in input order. A batch evaluator sees the whole round
// at once, so it can simulate each (workload, FU-mix) group exactly once
// and evaluate the policy/tech variants closed-form off the recorded
// profiles (experiments.EvalCells). It must be deterministic and must
// produce exactly the results the per-cell Evaluator would.
type BatchEvaluator func(ctx context.Context, cells []experiments.Cell) ([]experiments.CellResult, error)

// Config parameterizes one tuner run.
type Config struct {
	// Space is the search domain; zero-valued fields resolve to defaults.
	Space Space
	// Objective scores candidates (default: minimize E·D).
	Objective Objective
	// MaxEvals bounds the number of distinct cells evaluated (default 64).
	MaxEvals int
	// Rounds bounds the refinement rounds after the seed round (default 4).
	Rounds int
	// Eta is the successive-halving keep divisor: each round the top
	// ceil(n/Eta) candidates survive into refinement (default 3).
	Eta int
	// InitialPoints is the number of log-spaced seed points per refinable
	// parameter axis (default 5).
	InitialPoints int
	// Parallel bounds concurrent candidate evaluations within a round
	// (default 4).
	Parallel int
	// Eval evaluates candidates one at a time. Required unless BatchEval
	// is set.
	Eval Evaluator
	// BatchEval, when set, evaluates whole rounds in one call and takes
	// precedence over Eval; Parallel then bounds nothing the tuner controls
	// (the batch evaluator schedules its own simulations).
	BatchEval BatchEvaluator
}

// withDefaults resolves the scalar knobs. Space and Objective defaults are
// resolved separately in Run, so callers can pre-resolve Space against an
// engine's technology and window.
func (cfg Config) withDefaults() Config {
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 64
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if cfg.Eta < 2 {
		cfg.Eta = 3
	}
	if cfg.InitialPoints <= 0 {
		cfg.InitialPoints = 5
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	return cfg
}

// Probe is one evaluated candidate in the tuner's trace, in evaluation
// order.
type Probe struct {
	// Seq is the probe's position in the run (0-based).
	Seq int `json:"seq"`
	// Round is the search round that issued the probe (0 = seed round).
	Round int `json:"round"`
	// Point is the evaluated configuration with its metrics and score.
	Point Point `json:"point"`
	// Accepted reports that the point joined the Pareto frontier when it
	// was evaluated (it may be evicted by later probes).
	Accepted bool `json:"accepted"`
	// Improved reports that the point became the objective's new incumbent.
	Improved bool `json:"improved"`
}

// Summary condenses a run's trace for reports: probe-score and
// delay-weighted frontier-energy quantiles.
type Summary struct {
	// ScoreP50 and ScoreP90 are quantiles of the objective score over every
	// probe issued.
	ScoreP50 float64 `json:"scoreP50"`
	ScoreP90 float64 `json:"scoreP90"`
	// FrontierEnergyP50 and FrontierEnergyP90 are frontier-energy
	// quantiles weighted by the delay span each frontier point covers.
	FrontierEnergyP50 float64 `json:"frontierEnergyP50"`
	FrontierEnergyP90 float64 `json:"frontierEnergyP90"`
}

// Result is a completed tuner run.
type Result struct {
	// Objective and Space echo the resolved run parameters.
	Objective Objective `json:"objective"`
	Space     Space     `json:"-"`
	// Best is the top-ranked point: the best-scoring feasible point, or the
	// best-scoring point overall when nothing satisfied the slowdown cap
	// (check Best.Feasible).
	Best Point `json:"best"`
	// Frontier is the non-dominated (delay, energy) set, ascending delay.
	Frontier []Point `json:"frontier"`
	// Evals counts distinct cells evaluated; Probes counts trace entries
	// (equal to Evals — duplicates are skipped before evaluation).
	Evals  int `json:"evals"`
	Probes int `json:"probes"`
	// Rounds is the number of rounds actually run (seed round included).
	Rounds int `json:"rounds"`
	// RefCycles is the delay normalization: the minimum mean cycle count
	// among the AlwaysActive reference baselines.
	RefCycles float64 `json:"refCycles"`
	// Summary condenses the trace for frontier reports.
	Summary Summary `json:"summary"`
}

// Run executes the search: seed the candidate grid, evaluate in bounded
// parallel, rank, keep the top 1/Eta, refine their parameter neighborhoods
// by geometric bisection, and repeat until the budget, the round limit, or
// the refinement fixpoint stops it. observe (optional) receives every probe
// in deterministic evaluation order; a non-nil error from it aborts the run.
func Run(ctx context.Context, cfg Config, observe func(Probe) error) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Eval == nil && cfg.BatchEval == nil {
		return Result{}, fmt.Errorf("optimize: Config.Eval or Config.BatchEval is required")
	}
	sp := cfg.Space.WithDefaults(core.DefaultTech(), experiments.DefaultOptions().Window)
	if err := sp.Validate(); err != nil {
		return Result{}, err
	}
	obj := cfg.Objective.withDefaults()
	if err := obj.Validate(); err != nil {
		return Result{}, err
	}

	var (
		evaluated = make(map[string]bool)  // cell key -> probed
		probed    = make(map[family][]int) // sorted probed params per refinable family
		frontier  Frontier
		best      Point
		haveBest  bool
		scores    []float64
		refCycles float64
		seq       int
		rounds    int
	)

	// slotBest tracks the best policy found per (tech, FU, class) slot, the
	// raw material of the composition round in a class-wide search.
	type slotKey struct{ techIdx, fuIdx, classIdx int }
	type slotPick struct {
		pc core.PolicyConfig
		pt Point
		ok bool
	}
	slots := make(map[slotKey]slotPick)

	markProbed := func(fam family, v int) {
		if _, refinable := sp.paramRange(fam.policy); !refinable {
			return
		}
		vs := probed[fam]
		i := sort.SearchInts(vs, v)
		if i < len(vs) && vs[i] == v {
			return
		}
		vs = append(vs, 0)
		copy(vs[i+1:], vs[i:])
		vs[i] = v
		probed[fam] = vs
	}

	current := dedupeCandidates(sp, append(sp.references(), sp.seeds(cfg.InitialPoints)...), evaluated)
	for round := 0; len(current) > 0; round++ {
		remaining := cfg.MaxEvals - len(evaluated)
		if remaining <= 0 {
			break
		}
		if len(current) > remaining {
			current = current[:remaining]
		}
		cells := make([]experiments.Cell, len(current))
		for i, c := range current {
			cells[i] = sp.cell(c.fam, c.param)
			evaluated[cells[i].Key()] = true
		}
		results, err := evalBatch(ctx, cfg, cells)
		if err != nil {
			return Result{}, err
		}
		rounds = round + 1
		if round == 0 {
			refCycles = math.Inf(1)
			for _, res := range results {
				refCycles = math.Min(refCycles, res.MeanCycles)
			}
		}
		points := make([]Point, len(results))
		for i, res := range results {
			p := obj.point(res, refCycles)
			points[i] = p
			accepted := frontier.Add(p)
			improved := !haveBest || better(p, best)
			if improved {
				best, haveBest = p, true
			}
			markProbed(current[i].fam, current[i].param)
			// An AlwaysActive candidate is the all-baseline machine whatever
			// class it nominally belongs to (it is seeded once, not per
			// class), so it competes for every class's slot; other policies
			// compete only for their own class.
			pc := policyConfig(current[i].fam.policy, current[i].param)
			slotClasses := []int{current[i].fam.classIdx}
			if len(sp.Classes) > 0 && current[i].fam.policy == core.AlwaysActive {
				slotClasses = slotClasses[:0]
				for ci := range sp.Classes {
					slotClasses = append(slotClasses, ci)
				}
			}
			for _, ci := range slotClasses {
				sk := slotKey{current[i].fam.techIdx, current[i].fam.fuIdx, ci}
				if cur := slots[sk]; !cur.ok || better(p, cur.pt) {
					slots[sk] = slotPick{pc: pc, pt: p, ok: true}
				}
			}
			scores = append(scores, p.Score)
			if observe != nil {
				if err := observe(Probe{Seq: seq, Round: round, Point: p, Accepted: accepted, Improved: improved}); err != nil {
					return Result{}, err
				}
			}
			seq++
		}
		if round >= cfg.Rounds {
			break
		}
		current = refine(sp, current, points, probed, evaluated, cfg.Eta)
	}
	if !haveBest {
		return Result{}, fmt.Errorf("optimize: no candidates evaluated (budget %d)", cfg.MaxEvals)
	}

	// Composition round: in a class-wide search, combine each class's best
	// policy per machine coordinate into one full assignment and evaluate
	// it — the heterogeneous mix the per-class probing was for. Runs under
	// the same budget and streams through observe like any other round.
	if len(sp.Classes) > 1 {
		var composedCells []experiments.Cell
		for ti := range sp.Techs {
			for fi := range sp.FUCounts {
				a := make(core.Assignment, len(sp.Classes))
				complete := true
				for ci, cl := range sp.Classes {
					pick, ok := slots[slotKey{ti, fi, ci}]
					if !ok {
						complete = false
						break
					}
					a[cl] = pick.pc
				}
				if !complete {
					continue
				}
				c := sp.composed(ti, fi, a)
				if key := c.Key(); !evaluated[key] && len(evaluated) < cfg.MaxEvals {
					evaluated[key] = true
					composedCells = append(composedCells, c)
				}
			}
		}
		if len(composedCells) > 0 {
			results, err := evalBatch(ctx, cfg, composedCells)
			if err != nil {
				return Result{}, err
			}
			for _, res := range results {
				p := obj.point(res, refCycles)
				accepted := frontier.Add(p)
				improved := better(p, best)
				if improved {
					best = p
				}
				scores = append(scores, p.Score)
				if observe != nil {
					if err := observe(Probe{Seq: seq, Round: rounds, Point: p, Accepted: accepted, Improved: improved}); err != nil {
						return Result{}, err
					}
				}
				seq++
			}
			rounds++
		}
	}

	res := Result{
		Objective: obj,
		Space:     sp,
		Best:      best,
		Frontier:  frontier.Points(),
		Evals:     len(evaluated),
		Probes:    seq,
		Rounds:    rounds,
		RefCycles: refCycles,
	}
	res.Summary = summarize(scores, res.Frontier)
	return res, nil
}

// evalBatch evaluates one round's cells and returns their results in input
// order. With a BatchEvaluator configured the whole round goes down in one
// call — shared-pass batching decides how to schedule its simulations —
// otherwise the cells are evaluated concurrently (bounded by cfg.Parallel)
// through the per-cell Evaluator; the first error in input order wins and
// cancels the rest.
func evalBatch(ctx context.Context, cfg Config, cells []experiments.Cell) ([]experiments.CellResult, error) {
	if cfg.BatchEval != nil {
		results, err := cfg.BatchEval(ctx, cells)
		if err != nil {
			return nil, fmt.Errorf("optimize: %w", err)
		}
		if len(results) != len(cells) {
			return nil, fmt.Errorf("optimize: batch evaluator returned %d results for %d cells", len(results), len(cells))
		}
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]experiments.CellResult, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int, cell experiments.Cell) {
			defer wg.Done()
			//fusleepvet:nondet-ok semaphore-vs-cancel race: results land at fixed indices and the first error in input order wins regardless of arrival
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			results[i], errs[i] = cfg.Eval(ctx, cell)
			if errs[i] != nil {
				cancel()
			}
		}(i, cells[i])
	}
	wg.Wait()
	// A real evaluation error cancels the rest of the batch, so sibling
	// candidates settle with context errors; report the real cause.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("optimize: %w", err)
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}

// refine ranks the round's candidates (feasible first, then ascending
// score, ties by probe order) and returns the next round's candidates: for
// each of the top ceil(n/Eta) survivors with a refinable axis, the
// geometric midpoints between its parameter and the nearest already-probed
// values on each side.
func refine(sp Space, cands []candidate, points []Point, probed map[family][]int, evaluated map[string]bool, eta int) []candidate {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return better(points[order[a]], points[order[b]]) })
	keep := (len(order) + eta - 1) / eta

	var next []candidate
	pending := make(map[string]bool)
	for _, idx := range order[:keep] {
		c := cands[idx]
		if _, refinable := sp.paramRange(c.fam.policy); !refinable {
			continue
		}
		vs := probed[c.fam]
		pos := sort.SearchInts(vs, c.param)
		for _, side := range [2]int{pos - 1, pos + 1} {
			if side < 0 || side >= len(vs) {
				continue
			}
			mid := geomMid(c.param, vs[side])
			if mid == c.param || mid == vs[side] {
				continue
			}
			key := sp.cell(c.fam, mid).Key()
			if evaluated[key] || pending[key] {
				continue
			}
			pending[key] = true
			next = append(next, candidate{fam: c.fam, param: mid})
		}
	}
	return next
}

// dedupeCandidates drops candidates whose cell already appeared earlier in
// the list or was evaluated in a previous round, preserving order.
func dedupeCandidates(sp Space, cands []candidate, evaluated map[string]bool) []candidate {
	seen := make(map[string]bool, len(cands))
	out := cands[:0:0]
	for _, c := range cands {
		key := sp.cell(c.fam, c.param).Key()
		if seen[key] || evaluated[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// summarize condenses the trace: probe-score quantiles plus frontier-energy
// quantiles weighted by the delay span each frontier point covers (its gap
// to the next-slower point; the slowest point gets the mean gap, or weight
// 1 on a single-point frontier).
func summarize(scores []float64, frontier []Point) Summary {
	var s Summary
	if p, err := stats.Quantile(scores, 0.5); err == nil {
		s.ScoreP50 = p
	}
	if p, err := stats.Quantile(scores, 0.9); err == nil {
		s.ScoreP90 = p
	}
	energies := make([]float64, len(frontier))
	weights := make([]float64, len(frontier))
	var gapSum float64
	for i, p := range frontier {
		energies[i] = p.Energy
		if i < len(frontier)-1 {
			weights[i] = frontier[i+1].Delay - p.Delay
			gapSum += weights[i]
		}
	}
	if n := len(frontier); n > 0 {
		if n == 1 || gapSum == 0 {
			for i := range weights {
				weights[i] = 1
			}
		} else {
			weights[n-1] = gapSum / float64(n-1)
		}
	}
	if p, err := stats.WeightedQuantile(energies, weights, 0.5); err == nil {
		s.FrontierEnergyP50 = p
	}
	if p, err := stats.WeightedQuantile(energies, weights, 0.9); err == nil {
		s.FrontierEnergyP90 = p
	}
	return s
}
