package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
)

func pt(delay, energy float64) Point { return Point{Delay: delay, Energy: energy} }

func TestFrontierDominance(t *testing.T) {
	var f Frontier
	if !f.Add(pt(1.0, 0.8)) {
		t.Fatal("first point rejected")
	}
	if f.Add(pt(1.1, 0.9)) {
		t.Error("dominated point (slower and hungrier) accepted")
	}
	if f.Add(pt(1.0, 0.8)) {
		t.Error("exact duplicate accepted")
	}
	if !f.Add(pt(1.5, 0.5)) {
		t.Error("trade-off point rejected")
	}
	if !f.Add(pt(0.9, 0.95)) {
		t.Error("faster point rejected")
	}
	if f.Len() != 3 {
		t.Fatalf("frontier size = %d, want 3", f.Len())
	}
	// A point dominating the middle evicts it but keeps the ends.
	if !f.Add(pt(0.95, 0.7)) {
		t.Error("dominating point rejected")
	}
	pts := f.Points()
	if len(pts) != 3 {
		t.Fatalf("after eviction size = %d, want 3 (%v)", len(pts), pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Delay <= pts[i-1].Delay || pts[i].Energy >= pts[i-1].Energy {
			t.Errorf("frontier invariant broken at %d: %v", i, pts)
		}
	}
	// Equal delay, lower energy replaces.
	before := f.Len()
	if !f.Add(pt(1.5, 0.4)) {
		t.Error("equal-delay improvement rejected")
	}
	if f.Len() != before {
		t.Errorf("equal-delay improvement changed size: %d -> %d", before, f.Len())
	}
}

func TestLogSpacedInts(t *testing.T) {
	got := logSpacedInts(1, 256, 5)
	want := []int{1, 4, 16, 64, 256}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("logSpacedInts(1,256,5) = %v, want %v", got, want)
	}
	if got := logSpacedInts(3, 3, 5); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("degenerate range = %v", got)
	}
	got = logSpacedInts(1, 4, 8) // more points than integers: dedupe, keep ends
	if got[0] != 1 || got[len(got)-1] != 4 {
		t.Errorf("endpoints missing: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("not strictly ascending: %v", got)
		}
	}
}

func TestObjectiveScoringAndParse(t *testing.T) {
	p := Point{Energy: 0.5, Delay: 2, LeakEnergy: 0.1}
	if s := (Objective{}).score(p); s != 1.0 {
		t.Errorf("default ED score = %g, want 1", s)
	}
	if s := (Objective{Kind: KindED2}).score(p); s != 2.0 {
		t.Errorf("ED2 score = %g, want 2", s)
	}
	if s := (Objective{Kind: KindLeakage}).score(p); s != 0.1 {
		t.Errorf("leakage score = %g, want 0.1", s)
	}
	if !(Objective{}).feasible(p) {
		t.Error("uncapped objective infeasible")
	}
	if (Objective{SlowdownCap: 1.5}).feasible(p) {
		t.Error("cap 1.5 accepted delay 2")
	}
	for _, name := range []string{"ed", "ED", "Ed2", "LEAKAGE"} {
		if _, err := ParseKind(name); err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
		}
	}
	if _, err := ParseKind("speed"); err == nil {
		t.Error("unknown kind parsed")
	}
	if err := (Objective{Kind: "bogus"}).Validate(); err == nil {
		t.Error("bogus kind validated")
	}
	if err := (Objective{SlowdownCap: -1}).Validate(); err == nil {
		t.Error("negative cap validated")
	}
}

// synthEnergy is the synthetic landscape: a V shape in log-parameter space
// with a known optimum per policy, scaled by the FU count so fewer units
// mean less energy but more delay.
func synthEnergy(pc core.PolicyConfig, fus int) float64 {
	var base float64
	switch pc.Policy {
	case core.SleepTimeout:
		d := math.Log2(float64(pc.Timeout)) - math.Log2(37)
		base = 0.50 + 0.02*d*d
	case core.GradualSleep:
		d := math.Log2(float64(pc.Slices)) - math.Log2(16)
		base = 0.60 + 0.02*d*d
	case core.MaxSleep:
		base = 0.90
	default: // AlwaysActive
		base = 1.00
	}
	return base * float64(fus) / 4
}

func synthCycles(fus int) float64 {
	if fus == 2 {
		return 1800
	}
	return 1000
}

// synthEvaluator scores cells from the closed-form landscape, recording
// every key so tests can assert dedupe and budget behavior.
func synthEvaluator(t *testing.T) (Evaluator, *sync.Map) {
	var seen sync.Map
	return func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error) {
		if err := ctx.Err(); err != nil {
			return experiments.CellResult{}, err
		}
		if _, dup := seen.LoadOrStore(c.Key(), true); dup {
			t.Errorf("cell %s evaluated twice", c.Key())
		}
		return experiments.CellResult{
			Cell:            c,
			RelEnergy:       synthEnergy(c.Policy, c.FUs),
			LeakageFraction: 0.4,
			MeanCycles:      synthCycles(c.FUs),
		}, nil
	}, &seen
}

func synthSpace() Space {
	return Space{
		Policies:     []core.Policy{core.AlwaysActive, core.MaxSleep, core.GradualSleep, core.SleepTimeout},
		TimeoutRange: [2]int{1, 256},
		SlicesRange:  [2]int{1, 128},
		FUCounts:     []int{2, 4},
		Benchmarks:   []string{"gcc"},
	}
}

// exhaustiveBestED scans the full integer grid of the synthetic landscape.
func exhaustiveBestED(sp Space) float64 {
	best := math.Inf(1)
	ref := math.Min(synthCycles(2), synthCycles(4))
	for _, fus := range sp.FUCounts {
		delay := synthCycles(fus) / ref
		check := func(pc core.PolicyConfig) {
			if ed := synthEnergy(pc, fus) * delay; ed < best {
				best = ed
			}
		}
		check(core.PolicyConfig{Policy: core.AlwaysActive})
		check(core.PolicyConfig{Policy: core.MaxSleep})
		for T := sp.TimeoutRange[0]; T <= sp.TimeoutRange[1]; T++ {
			check(core.PolicyConfig{Policy: core.SleepTimeout, Timeout: T})
		}
		for k := sp.SlicesRange[0]; k <= sp.SlicesRange[1]; k++ {
			check(core.PolicyConfig{Policy: core.GradualSleep, Slices: k})
		}
	}
	return best
}

func TestRunConvergesWithinBudget(t *testing.T) {
	eval, _ := synthEvaluator(t)
	sp := synthSpace()
	var probes []Probe
	res, err := Run(context.Background(), Config{Space: sp, Eval: eval, MaxEvals: 48},
		func(p Probe) error { probes = append(probes, p); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals > 48 {
		t.Errorf("evals = %d exceeds budget 48", res.Evals)
	}
	if res.Probes != len(probes) || res.Probes != res.Evals {
		t.Errorf("probes = %d, observed %d, evals %d", res.Probes, len(probes), res.Evals)
	}
	gridBest := exhaustiveBestED(sp)
	if res.Best.Score > gridBest*1.02 {
		t.Errorf("best score %.6f not within 2%% of exhaustive optimum %.6f", res.Best.Score, gridBest)
	}
	// The synthetic optimum is SleepTimeout near T=37 at 2 FUs.
	if res.Best.Cell.Policy.Policy != core.SleepTimeout || res.Best.Cell.FUs != 2 {
		t.Errorf("best = %s", res.Best.Label())
	}
	// Two distinct delays -> a two-point frontier.
	if len(res.Frontier) != 2 {
		t.Errorf("frontier size = %d, want 2: %+v", len(res.Frontier), res.Frontier)
	}
	if res.RefCycles != 1000 {
		t.Errorf("refCycles = %g, want 1000", res.RefCycles)
	}
	if res.Summary.ScoreP50 <= 0 || res.Summary.FrontierEnergyP50 <= 0 {
		t.Errorf("summary not populated: %+v", res.Summary)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() (Result, []Probe) {
		eval, _ := synthEvaluator(t)
		var probes []Probe
		res, err := Run(context.Background(), Config{Space: synthSpace(), Eval: eval, MaxEvals: 40, Parallel: 7},
			func(p Probe) error { probes = append(probes, p); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return res, probes
	}
	a, pa := run()
	b, pb := run()
	if a.Best.Cell.Key() != b.Best.Cell.Key() || a.Best.Score != b.Best.Score {
		t.Errorf("best differs across runs: %s/%.9f vs %s/%.9f",
			a.Best.Label(), a.Best.Score, b.Best.Label(), b.Best.Score)
	}
	if len(pa) != len(pb) {
		t.Fatalf("probe counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Point.Cell.Key() != pb[i].Point.Cell.Key() || pa[i].Round != pb[i].Round {
			t.Fatalf("probe %d differs: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestRunSlowdownCap(t *testing.T) {
	eval, _ := synthEvaluator(t)
	res, err := Run(context.Background(), Config{
		Space:     synthSpace(),
		Objective: Objective{Kind: KindLeakage, SlowdownCap: 1.0},
		Eval:      eval, MaxEvals: 48,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 FUs means delay 1.8: infeasible under the cap, so the best point
	// must be a 4-FU configuration.
	if !res.Best.Feasible || res.Best.Cell.FUs != 4 {
		t.Errorf("best = %s feasible=%v, want a feasible 4-FU point", res.Best.Label(), res.Best.Feasible)
	}
}

func TestRunPropagatesEvalError(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	eval := func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error) {
		n++
		if n > 3 {
			return experiments.CellResult{}, boom
		}
		return experiments.CellResult{Cell: c, RelEnergy: 1, MeanCycles: 1000}, nil
	}
	if _, err := Run(context.Background(), Config{Space: synthSpace(), Eval: eval, Parallel: 1}, nil); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRunObserverAborts(t *testing.T) {
	eval, _ := synthEvaluator(t)
	stop := errors.New("stop")
	_, err := Run(context.Background(), Config{Space: synthSpace(), Eval: eval},
		func(p Probe) error { return stop })
	if !errors.Is(err, stop) {
		t.Errorf("err = %v, want stop", err)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eval := func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error) {
		return experiments.CellResult{}, ctx.Err()
	}
	if _, err := Run(ctx, Config{Space: synthSpace(), Eval: eval}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunRequiresEvaluator(t *testing.T) {
	if _, err := Run(context.Background(), Config{Space: synthSpace()}, nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestSpaceValidate(t *testing.T) {
	bad := []Space{
		{TimeoutRange: [2]int{0, 10}},
		{TimeoutRange: [2]int{10, 2}},
		{SlicesRange: [2]int{-1, 4}},
		{Benchmarks: []string{"nosuch"}},
		{Alpha: 2},
		{Techs: []core.Tech{{P: -1}}},
	}
	for i, s := range bad {
		if err := s.WithDefaults(core.DefaultTech(), 1000).Validate(); err == nil {
			t.Errorf("bad space %d validated", i)
		}
	}
	if err := (Space{}).WithDefaults(core.DefaultTech(), 1000).Validate(); err != nil {
		t.Errorf("default space invalid: %v", err)
	}
}

func TestResultArtifacts(t *testing.T) {
	eval, _ := synthEvaluator(t)
	res, err := Run(context.Background(), Config{Space: synthSpace(), Eval: eval, MaxEvals: 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	arts := res.Artifacts()
	if len(arts) != 3 {
		t.Fatalf("artifacts = %d, want 3", len(arts))
	}
	ids := fmt.Sprintf("%s %s %s", arts[0].ID, arts[1].ID, arts[2].ID)
	if ids != "tune-best tune-frontier tune-frontier-curve" {
		t.Errorf("artifact ids = %s", ids)
	}
	if got := len(arts[1].Table.Rows); got != len(res.Frontier) {
		t.Errorf("frontier table rows = %d, want %d", got, len(res.Frontier))
	}
}
