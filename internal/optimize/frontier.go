package optimize

import "sort"

// Frontier accumulates the non-dominated set of evaluated points on the
// (delay, energy) plane: a point belongs to the frontier when no other
// evaluated point is at least as fast and at least as efficient. The
// invariant after every Add: points sorted by ascending Delay with strictly
// descending Energy, no duplicates.
type Frontier struct {
	pts []Point
}

// Add offers a point to the frontier. It returns true when the point is
// non-dominated (it joins the frontier, evicting any points it dominates)
// and false when an existing point dominates it — including exact ties on
// both axes, so re-probing a configuration never grows the frontier.
func (f *Frontier) Add(p Point) bool {
	// Find the first kept point with Delay >= p.Delay.
	i := sort.Search(len(f.pts), func(i int) bool { return f.pts[i].Delay >= p.Delay })
	// Energy strictly descends left to right on a frontier of two minimized
	// axes, so among the strictly faster points pts[:i] the one at i-1 has
	// the lowest energy: p is dominated by a faster point iff that energy
	// already matches or beats p's.
	if i > 0 && f.pts[i-1].Energy <= p.Energy {
		return false
	}
	if i < len(f.pts) && f.pts[i].Delay == p.Delay && f.pts[i].Energy <= p.Energy {
		return false
	}
	// p joins: evict every point at >= its delay with >= its energy.
	j := i
	for j < len(f.pts) && f.pts[j].Energy >= p.Energy {
		j++
	}
	kept := make([]Point, 0, len(f.pts)-(j-i)+1)
	kept = append(kept, f.pts[:i]...)
	kept = append(kept, p)
	kept = append(kept, f.pts[j:]...)
	f.pts = kept
	return true
}

// Len returns the number of frontier points.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns a copy of the frontier sorted by ascending delay.
func (f *Frontier) Points() []Point {
	out := make([]Point, len(f.pts))
	copy(out, f.pts)
	return out
}
