package telemetry

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading so deltas are predictable.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestRecorder(maxJobs, maxEvents int) (*Recorder, *fakeClock) {
	r := NewRecorder(maxJobs, maxEvents)
	c := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	r.SetClock(c.now)
	return r, c
}

func TestRecorderPerKeyDeltas(t *testing.T) {
	r, _ := newTestRecorder(4, 16)
	r.Start("s-000001")
	r.Record("s-000001", Event{Stage: StageSubmitted, Detail: "2 cells"})
	r.Record("s-000001", Event{Stage: StageDispatched, Key: "cell-a"})
	r.Record("s-000001", Event{Stage: StageDispatched, Key: "cell-b"})
	r.Record("s-000001", Event{Stage: StageCompleted, Key: "cell-a"})

	evs, dropped, ok := r.Snapshot("s-000001")
	if !ok || dropped != 0 || len(evs) != 4 {
		t.Fatalf("snapshot = %d events, dropped %d, ok %v", len(evs), dropped, ok)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// submitted: 1s after trace start (job-level chain).
	if evs[0].Seconds != 1 {
		t.Fatalf("submitted delta = %v", evs[0].Seconds)
	}
	// cell-a dispatched: first event for that key, 2s after start.
	if evs[1].Seconds != 2 {
		t.Fatalf("cell-a dispatched delta = %v", evs[1].Seconds)
	}
	// cell-a completed: 2s after its own dispatch, not 1s after cell-b's.
	if evs[3].Seconds != 2 {
		t.Fatalf("cell-a completed delta = %v", evs[3].Seconds)
	}
}

func TestRecorderExplicitSecondsDoNotAdvanceTimeline(t *testing.T) {
	r, _ := newTestRecorder(4, 16)
	r.Start("s-000001")
	r.Record("s-000001", Event{Stage: StageLeased, Key: "k"})
	// Remote-measured attempt duration: carried through verbatim.
	r.Record("s-000001", Event{Stage: StageEvaluated, Key: "k", Attempt: 1, Seconds: 0.25})
	r.Record("s-000001", Event{Stage: StageReported, Key: "k"})

	evs, _, _ := r.Snapshot("s-000001")
	if evs[1].Seconds != 0.25 {
		t.Fatalf("evaluated seconds = %v, want 0.25", evs[1].Seconds)
	}
	// reported measures from leased (2 clock reads in between), not from
	// the evaluated event.
	if evs[2].Seconds != 2 {
		t.Fatalf("reported delta = %v, want 2", evs[2].Seconds)
	}
}

func TestRecorderRecordKey(t *testing.T) {
	r, _ := newTestRecorder(4, 16)
	r.Start("s-000001")
	r.Record("s-000001", Event{Stage: StageDispatched, Key: "k1"})
	r.RecordKey("k1", Event{Stage: StageStored})
	r.RecordKey("unbound", Event{Stage: StageStored})

	evs, _, _ := r.Snapshot("s-000001")
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[1].Stage != StageStored || evs[1].Key != "k1" {
		t.Fatalf("RecordKey event = %+v", evs[1])
	}
}

func TestRecorderEviction(t *testing.T) {
	r, _ := newTestRecorder(2, 16)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s-%06d", i)
		r.Start(id)
		r.Record(id, Event{Stage: StageDispatched, Key: fmt.Sprintf("k%d", i)})
	}
	if _, _, ok := r.Snapshot("s-000000"); ok {
		t.Fatalf("oldest trace should be evicted")
	}
	if _, _, ok := r.Snapshot("s-000002"); !ok {
		t.Fatalf("newest trace missing")
	}
	if r.Jobs() != 2 {
		t.Fatalf("Jobs = %d, want 2", r.Jobs())
	}
	// Evicted job's key binding is gone: RecordKey is a no-op.
	r.RecordKey("k0", Event{Stage: StageStored})
	if evs, _, ok := r.Snapshot("s-000001"); ok {
		for _, ev := range evs {
			if ev.Key == "k0" {
				t.Fatalf("stale key binding leaked: %+v", ev)
			}
		}
	}
}

func TestRecorderEventCap(t *testing.T) {
	r, _ := newTestRecorder(2, 3)
	r.Start("s-000001")
	for i := 0; i < 5; i++ {
		r.Record("s-000001", Event{Stage: StageDispatched, Key: fmt.Sprintf("k%d", i)})
	}
	evs, dropped, ok := r.Snapshot("s-000001")
	if !ok || len(evs) != 3 || dropped != 2 {
		t.Fatalf("got %d events dropped %d", len(evs), dropped)
	}
}

func TestRecorderStageObserver(t *testing.T) {
	r, _ := newTestRecorder(2, 16)
	var stages []string
	var secs []float64
	r.SetStageObserver(func(stage string, s float64) {
		stages = append(stages, stage)
		secs = append(secs, s)
	})
	r.Start("s-000001")
	r.Record("s-000001", Event{Stage: StageSubmitted})
	r.Record("s-000001", Event{Stage: StageEvaluated, Key: "k", Seconds: 0.5})
	if len(stages) != 2 || stages[0] != StageSubmitted || stages[1] != StageEvaluated {
		t.Fatalf("observer stages = %v", stages)
	}
	if secs[1] != 0.5 {
		t.Fatalf("observer seconds = %v", secs)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Start("x")
	r.Record("x", Event{Stage: StageSubmitted})
	r.RecordKey("k", Event{Stage: StageStored})
	r.SetClock(time.Now)
	r.SetStageObserver(nil)
	if _, _, ok := r.Snapshot("x"); ok {
		t.Fatalf("nil recorder returned a snapshot")
	}
	if r.Jobs() != 0 {
		t.Fatalf("nil recorder has jobs")
	}
}

func TestRecorderUnknownJobDropped(t *testing.T) {
	r, _ := newTestRecorder(2, 16)
	r.Record("never-started", Event{Stage: StageSubmitted})
	if _, _, ok := r.Snapshot("never-started"); ok {
		t.Fatalf("unknown job grew a trace")
	}
}
