// Package telemetry is fusleepd's stdlib-only observability kit: a typed
// metrics registry (counters, gauges, histograms, with optional labels)
// that renders the Prometheus text exposition format in deterministic
// order, plus a bounded cell-lifecycle trace recorder that follows one
// job's cells from submission through dispatch, lease, evaluation, and
// report.
//
// Hot paths are lock-free: counters and histogram buckets are atomics, so
// recording a sample never contends with a scrape. Rendering takes the
// registry lock only to walk the (registration-sorted) family list; two
// scrapes serialize, samples never wait.
//
// The package deliberately implements the subset of the Prometheus data
// model the daemon needs — no summaries, no exemplars, no push — and
// ValidateExposition is the strict parser the tests use to guarantee a
// malformed metric can never ship.
package telemetry
