package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition strictly parses a Prometheus text-format payload and
// returns the first violation found, or nil. It enforces the invariants
// the tests pin down so a malformed metric can never ship:
//
//   - every family has exactly one `# HELP` immediately followed by one
//     `# TYPE` (counter, gauge, or histogram), and appears only once
//   - metric and label names match the exposition charset
//   - label values use only the legal escapes (\\, \", \n)
//   - sample names belong to their family (bare name, or _bucket/_sum/
//     _count for histograms) and every value parses as a float
//   - histogram buckets are sorted by `le`, cumulative counts are
//     non-decreasing, the final bucket is le="+Inf", and its count equals
//     the series' `_count`, which is present alongside `_sum`
func ValidateExposition(text string) error {
	p := &expoParser{
		families: make(map[string]string),
		hists:    make(map[string]map[string]*histSeries),
	}
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if p.curFamily != "" && p.curType == "" {
		return fmt.Errorf("family %q: HELP without TYPE", p.curFamily)
	}
	return p.finishHistograms()
}

// histSeries accumulates one histogram child's buckets for the final
// cumulative/count checks.
type histSeries struct {
	les    []float64
	counts []float64
	sum    *float64
	count  *float64
}

type expoParser struct {
	families  map[string]string // name -> type
	curFamily string
	curType   string
	hists     map[string]map[string]*histSeries // family -> child key -> series
}

func (p *expoParser) line(line string) error {
	if strings.HasPrefix(line, "#") {
		return p.comment(line)
	}
	return p.sample(line)
}

func (p *expoParser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	kind, name := fields[1], fields[2]
	switch kind {
	case "HELP":
		if p.curFamily != "" && p.curType == "" {
			return fmt.Errorf("family %q: HELP without TYPE", p.curFamily)
		}
		if _, dup := p.families[name]; dup {
			return fmt.Errorf("family %q declared twice", name)
		}
		if err := checkExpoName(name); err != nil {
			return err
		}
		if len(fields) < 4 || fields[3] == "" {
			return fmt.Errorf("family %q: empty HELP text", name)
		}
		p.curFamily, p.curType = name, ""
	case "TYPE":
		if name != p.curFamily || p.curType != "" {
			return fmt.Errorf("TYPE %q not immediately after its HELP", name)
		}
		if len(fields) < 4 {
			return fmt.Errorf("family %q: TYPE missing kind", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			return fmt.Errorf("family %q: unknown type %q", name, typ)
		}
		p.curType = typ
		p.families[name] = typ
	default:
		return fmt.Errorf("unknown comment kind %q", kind)
	}
	return nil
}

func (p *expoParser) sample(line string) error {
	if p.curFamily == "" || p.curType == "" {
		return fmt.Errorf("sample %q before any HELP/TYPE", line)
	}
	name, rest, err := splitSampleName(line)
	if err != nil {
		return err
	}
	labels, rest, err := parseLabels(rest)
	if err != nil {
		return fmt.Errorf("sample %s: %w", name, err)
	}
	val := strings.TrimSpace(rest)
	if val == "" || strings.ContainsAny(val, " \t") {
		return fmt.Errorf("sample %s: malformed value %q", name, val)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, val)
	}

	fam, typ := p.curFamily, p.curType
	switch typ {
	case "counter", "gauge":
		if name != fam {
			return fmt.Errorf("sample %s does not belong to family %s", name, fam)
		}
		if _, ok := labels["le"]; ok && typ == "gauge" {
			// "le" on a plain gauge is legal per the format, but this
			// registry never emits it — treat as a rendering bug.
			return fmt.Errorf("sample %s: unexpected le label on gauge", name)
		}
		if typ == "counter" && (f < 0 || math.IsNaN(f)) {
			return fmt.Errorf("sample %s: counter value %v not a non-negative number", name, f)
		}
	case "histogram":
		return p.histSample(fam, name, labels, f)
	}
	return nil
}

func (p *expoParser) histSample(fam, name string, labels map[string]string, f float64) error {
	key := childKey(labels)
	children := p.hists[fam]
	if children == nil {
		children = make(map[string]*histSeries)
		p.hists[fam] = children
	}
	hs := children[key]
	if hs == nil {
		hs = &histSeries{}
		children[key] = hs
	}
	switch name {
	case fam + "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("sample %s: bucket without le label", name)
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("sample %s: bad le %q", name, le)
		}
		hs.les = append(hs.les, bound)
		hs.counts = append(hs.counts, f)
	case fam + "_sum":
		if hs.sum != nil {
			return fmt.Errorf("sample %s: duplicate _sum", name)
		}
		hs.sum = &f
	case fam + "_count":
		if hs.count != nil {
			return fmt.Errorf("sample %s: duplicate _count", name)
		}
		hs.count = &f
	default:
		return fmt.Errorf("sample %s does not belong to histogram %s", name, fam)
	}
	return nil
}

// finishHistograms runs the cross-line invariants once the whole payload
// is parsed.
func (p *expoParser) finishHistograms() error {
	fams := make([]string, 0, len(p.hists))
	for fam := range p.hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		keys := make([]string, 0, len(p.hists[fam]))
		for k := range p.hists[fam] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hs := p.hists[fam][k]
			if len(hs.les) == 0 {
				return fmt.Errorf("histogram %s{%s}: no buckets", fam, k)
			}
			for i := 1; i < len(hs.les); i++ {
				if !(hs.les[i] > hs.les[i-1]) {
					return fmt.Errorf("histogram %s{%s}: le bounds not increasing", fam, k)
				}
				if hs.counts[i] < hs.counts[i-1] {
					return fmt.Errorf("histogram %s{%s}: bucket counts not cumulative", fam, k)
				}
			}
			if !math.IsInf(hs.les[len(hs.les)-1], 1) {
				return fmt.Errorf("histogram %s{%s}: final bucket is not le=\"+Inf\"", fam, k)
			}
			if hs.count == nil {
				return fmt.Errorf("histogram %s{%s}: missing _count", fam, k)
			}
			if hs.sum == nil {
				return fmt.Errorf("histogram %s{%s}: missing _sum", fam, k)
			}
			if inf := hs.counts[len(hs.counts)-1]; inf != *hs.count {
				return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", fam, k, inf, *hs.count)
			}
		}
	}
	return nil
}

// splitSampleName peels the metric name off a sample line and validates
// its charset; rest starts at '{' or the value.
func splitSampleName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name, rest = line[:i], line[i:]
	if err := checkExpoName(name); err != nil {
		return "", "", err
	}
	return name, rest, nil
}

// parseLabels consumes an optional {k="v",...} block, validating label
// name charset and escape sequences, and returns the remaining text.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	if !strings.HasPrefix(rest, "{") {
		return labels, rest, nil
	}
	rest = rest[1:]
	for {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label block near %q", rest)
		}
		lname := rest[:eq]
		if err := checkExpoLabel(lname); err != nil {
			return nil, "", err
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", lname)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: illegal escape \\%c", lname, rest[i])
				}
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("label %s: raw newline in value", lname)
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, "", fmt.Errorf("label %s: unterminated value", lname)
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("label %s repeated", lname)
		}
		labels[lname] = val.String()
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("label block not closed after %s", lname)
	}
}

// childKey canonicalizes a label set minus "le" so all series of one
// histogram child group together.
func childKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func checkExpoName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metric name %q: illegal character %q", name, c)
		}
	}
	return nil
}

func checkExpoLabel(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("label name %q: illegal character %q", name, c)
		}
	}
	return nil
}
