package telemetry

import (
	"sync"
	"time"
)

// Cell-lifecycle stages, in the order a healthy fleet cell visits them.
// Standalone cells skip the fleet stages (leased, reported); store-served
// cells skip straight from dispatch to store_served.
const (
	StageSubmitted   = "submitted"    // job accepted by the HTTP layer
	StageJournaled   = "journaled"    // job fsynced to the WAL
	StageReplayed    = "replayed"     // job re-registered from the WAL after a restart
	StageDispatched  = "dispatched"   // cell routed to a shard or fleet worker
	StageStoreServed = "store_served" // cell served from the durable result store
	StageLeased      = "leased"       // cell fetched by a fleet worker
	StageEvaluated   = "evaluated"    // one evaluation attempt finished (attempt=N)
	StageReported    = "reported"     // fleet worker's report accepted
	StageRequeued    = "requeued"     // cell requeued off a dead or departing worker
	StageStored      = "stored"       // result journaled to the content-addressed store
	StageCompleted   = "completed"    // cell settled successfully in its job
	StageFailed      = "failed"       // cell settled as a real failure
	StageStreamed    = "streamed"     // a client stream delivered the job's end event
)

// Event is one span of a job's trace: what happened, to which cell, where,
// and how long since the previous event for that cell.
type Event struct {
	// Seq is the event's 1-based ordinal within its job trace (dropped
	// events still consume ordinals, so gaps reveal truncation).
	Seq int `json:"seq"`
	// Time is the coordinator-side wall time the event was recorded.
	Time time.Time `json:"t"`
	// Stage is one of the Stage constants.
	Stage string `json:"stage"`
	// Key is the cell's configuration hash; empty for job-level events.
	Key string `json:"key,omitempty"`
	// Worker is the fleet worker involved, when any.
	Worker string `json:"worker,omitempty"`
	// Attempt numbers evaluation attempts (1-based).
	Attempt int `json:"attempt,omitempty"`
	// Seconds is the stage's duration: remote-measured for evaluated
	// events, otherwise the time since the cell's previous local event.
	Seconds float64 `json:"seconds,omitempty"`
	// Detail carries free-form context ("12 cells", "lease expired").
	Detail string `json:"detail,omitempty"`
	// Err is the error message for failed stages.
	Err string `json:"err,omitempty"`
}

// jobTrace is one job's bounded event list.
type jobTrace struct {
	id      string
	start   time.Time
	events  []Event
	dropped int
	// lastByKey is the per-cell local timeline: the time of the last
	// locally stamped event for each key ("" is the job-level chain).
	lastByKey map[string]time.Time
}

// Recorder keeps the last N job traces in a bounded ring. All methods are
// safe for concurrent use and no-ops on a nil receiver, so call sites need
// no guards. Events recorded for unknown (never started or evicted) jobs
// are dropped silently.
type Recorder struct {
	mu        sync.Mutex
	maxJobs   int
	maxEvents int
	now       func() time.Time
	onStage   func(stage string, seconds float64)
	jobs      map[string]*jobTrace
	order     []string          // insertion order, oldest first
	byKey     map[string]string // cell key -> owning job id
}

// NewRecorder builds a recorder keeping up to maxJobs traces of up to
// maxEvents events each (defaults 64 and 512).
func NewRecorder(maxJobs, maxEvents int) *Recorder {
	if maxJobs <= 0 {
		maxJobs = 64
	}
	if maxEvents <= 0 {
		maxEvents = 512
	}
	return &Recorder{
		maxJobs:   maxJobs,
		maxEvents: maxEvents,
		now:       time.Now,
		jobs:      make(map[string]*jobTrace),
		byKey:     make(map[string]string),
	}
}

// SetClock injects the recorder's clock (tests).
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// SetStageObserver arms a hook invoked once per recorded event with the
// stage name and its duration; the server feeds per-stage histograms
// through it. The hook runs under the recorder lock and must not call
// back into the recorder.
func (r *Recorder) SetStageObserver(fn func(stage string, seconds float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onStage = fn
	r.mu.Unlock()
}

// Start begins (or restarts) a job's trace, evicting the oldest trace
// when the ring is full.
func (r *Recorder) Start(jobID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobs[jobID]; ok {
		r.evictLocked(jobID)
	}
	for len(r.jobs) >= r.maxJobs && len(r.order) > 0 {
		r.evictLocked(r.order[0])
	}
	r.jobs[jobID] = &jobTrace{
		id:        jobID,
		start:     r.now(),
		lastByKey: make(map[string]time.Time),
	}
	r.order = append(r.order, jobID)
}

// evictLocked drops one trace and its cell-key bindings. Callers hold r.mu.
func (r *Recorder) evictLocked(jobID string) {
	jt, ok := r.jobs[jobID]
	if !ok {
		return
	}
	delete(r.jobs, jobID)
	for i, id := range r.order {
		if id == jobID {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	for k := range jt.lastByKey {
		if r.byKey[k] == jobID {
			delete(r.byKey, k)
		}
	}
}

// Record appends one event to a job's trace, stamping its sequence
// number, time, and — when Seconds is unset — the elapsed time since the
// cell's previous event (or the trace start). Events carrying a cell key
// bind that key to the job, so later RecordKey calls resolve it.
func (r *Recorder) Record(jobID string, ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	jt, ok := r.jobs[jobID]
	if !ok {
		return
	}
	now := r.now()
	ev.Time = now
	if ev.Key != "" {
		r.byKey[ev.Key] = jobID
	}
	if ev.Seconds == 0 {
		// Locally timed stage: delta since the cell's previous local event.
		prev, ok := jt.lastByKey[ev.Key]
		if !ok {
			prev = jt.start
		}
		ev.Seconds = now.Sub(prev).Seconds()
		jt.lastByKey[ev.Key] = now
	}
	// Remote-measured durations (evaluated spans from workers) do not
	// advance the local timeline; the next local delta still measures
	// from the last coordinator-side event.
	ev.Seq = len(jt.events) + jt.dropped + 1
	if len(jt.events) < r.maxEvents {
		jt.events = append(jt.events, ev)
	} else {
		jt.dropped++
	}
	if r.onStage != nil {
		r.onStage(ev.Stage, ev.Seconds)
	}
}

// RecordKey records an event against whichever job currently owns the
// cell key — for call sites (executor attempts, store journaling) that
// know the cell but not the job.
func (r *Recorder) RecordKey(key string, ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	jobID, ok := r.byKey[key]
	r.mu.Unlock()
	if !ok {
		return
	}
	ev.Key = key
	r.Record(jobID, ev)
}

// Snapshot returns a copy of a job's events plus how many were dropped to
// the per-job bound; ok is false when the trace was never started or has
// been evicted.
func (r *Recorder) Snapshot(jobID string) (events []Event, dropped int, ok bool) {
	if r == nil {
		return nil, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	jt, found := r.jobs[jobID]
	if !found {
		return nil, 0, false
	}
	events = make([]Event, len(jt.events))
	copy(events, jt.events)
	return events, jt.dropped, true
}

// Jobs returns how many traces the ring currently holds.
func (r *Recorder) Jobs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}
