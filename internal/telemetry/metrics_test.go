package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var buf bytes.Buffer
	r.WriteText(&buf)
	return buf.String()
}

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("fusleepd_widgets_total", "Widgets made.")
	c.Inc()
	c.Add(4)
	r.NewGaugeFunc("fusleepd_depth", "Queue depth.", func() float64 { return 3.5 })

	out := render(r)
	for _, want := range []string{
		"# HELP fusleepd_widgets_total Widgets made.\n# TYPE fusleepd_widgets_total counter\nfusleepd_widgets_total 5\n",
		"# HELP fusleepd_depth Queue depth.\n# TYPE fusleepd_depth gauge\nfusleepd_depth 3.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if c.Load() != 5 {
		t.Fatalf("Load = %d, want 5", c.Load())
	}
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("fusleepd_zeta_total", "Z.")
	r.NewCounter("fusleepd_alpha_total", "A.")
	r.NewGaugeFunc("fusleepd_mid", "M.", func() float64 { return 0 })

	out := render(r)
	za := strings.Index(out, "fusleepd_alpha_total")
	zm := strings.Index(out, "fusleepd_mid")
	zz := strings.Index(out, "fusleepd_zeta_total")
	if !(za < zm && zm < zz) {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"dup", func(r *Registry) {
			r.NewCounter("fusleepd_x_total", "X.")
			r.NewCounter("fusleepd_x_total", "X.")
		}},
		{"badname", func(r *Registry) { r.NewCounter("9bad", "X.") }},
		{"hyphen", func(r *Registry) { r.NewCounter("fusleepd-x", "X.") }},
		{"newline help", func(r *Registry) { r.NewCounter("fusleepd_x_total", "a\nb") }},
		{"badlabel", func(r *Registry) {
			r.NewGaugeCollector("fusleepd_x", "X.", []string{"bad-label"}, func() []Sample { return nil })
		}},
		{"nolabels", func(r *Registry) { r.NewHistogramVec("fusleepd_x_seconds", "X.", nil) }},
		{"unsorted buckets", func(r *Registry) {
			r.NewHistogram("fusleepd_x_seconds", "X.", []float64{1, 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("fusleepd_lat_seconds", "Latency.", []float64{0.25, 1, 10})
	// Power-of-two fractions keep the sum exact in float64.
	for _, v := range []float64{0.125, 0.25, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	out := render(r)
	for _, want := range []string{
		`fusleepd_lat_seconds_bucket{le="0.25"} 2`, // 0.125 and 0.25 (le is inclusive)
		`fusleepd_lat_seconds_bucket{le="1"} 3`,
		`fusleepd_lat_seconds_bucket{le="10"} 4`,
		`fusleepd_lat_seconds_bucket{le="+Inf"} 5`,
		`fusleepd_lat_seconds_sum 55.875`,
		`fusleepd_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestHistogramVecChildrenSorted(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("fusleepd_req_seconds", "Request latency.", []float64{0.5}, "route", "code")
	v.With("/v1/sweeps", "202").Observe(0.1)
	v.With("/metrics", "200").Observe(0.2)
	v.With("/metrics", "200").Observe(0.9)

	out := render(r)
	first := strings.Index(out, `route="/metrics",code="200"`)
	second := strings.Index(out, `route="/v1/sweeps",code="202"`)
	if first < 0 || second < 0 || first > second {
		t.Fatalf("vec children not sorted:\n%s", out)
	}
	if !strings.Contains(out, `fusleepd_req_seconds_count{route="/metrics",code="200"} 2`) {
		t.Fatalf("wrong child count:\n%s", out)
	}
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestHistogramVecWithArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("fusleepd_x_seconds", "X.", nil, "route")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	v.With("a", "b")
}

func TestCollectorSortsAndEscapes(t *testing.T) {
	r := NewRegistry()
	r.NewGaugeCollector("fusleepd_worker_queued", "Per-worker queue depth.", []string{"worker"}, func() []Sample {
		return []Sample{
			{Labels: []string{"w-b"}, Value: 2},
			{Labels: []string{`w"\` + "\n"}, Value: 1},
			{Labels: []string{"w-a", "extra"}, Value: 9}, // wrong arity: dropped
		}
	})
	out := render(r)
	if !strings.Contains(out, `fusleepd_worker_queued{worker="w\"\\\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
	if strings.Contains(out, "extra") {
		t.Fatalf("wrong-arity sample emitted:\n%s", out)
	}
	esc := strings.Index(out, `w\"`)
	wb := strings.Index(out, `w-b`)
	if esc < 0 || wb < 0 || esc > wb {
		t.Fatalf("collector samples not sorted:\n%s", out)
	}
	if err := ValidateExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestHistogramInfObservation(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("fusleepd_x_seconds", "X.", []float64{1})
	h.Observe(math.Inf(1))
	out := render(r)
	if !strings.Contains(out, `fusleepd_x_seconds_bucket{le="+Inf"} 1`+"\n") {
		t.Fatalf("+Inf observation lost:\n%s", out)
	}
	if !strings.Contains(out, "fusleepd_x_seconds_sum +Inf\n") {
		t.Fatalf("sum should be +Inf:\n%s", out)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("fusleepd_n_total", "N.")
	h := r.NewHistogram("fusleepd_l_seconds", "L.", nil)
	v := r.NewHistogramVec("fusleepd_lv_seconds", "LV.", nil, "k")

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) / 1000)
				v.With("abc"[g%3 : g%3+1]).Observe(0.001)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if err := ValidateExposition(render(r)); err != nil {
			t.Fatalf("scrape %d invalid under concurrency: %v", i, err)
		}
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("lost increments: %d", c.Load())
	}
	if h.Count() != 4000 {
		t.Fatalf("lost observations: %d", h.Count())
	}
}

// TestWriteTextAllocFree pins the scrape hot path: rendering into a
// warmed, reused buffer must not allocate.
func TestWriteTextAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("fusleepd_n_total", "N.")
	c.Add(12345)
	h := r.NewHistogram("fusleepd_l_seconds", "L.", nil)
	h.Observe(0.42)
	r.NewGaugeFunc("fusleepd_g", "G.", func() float64 { return 1.5 })
	v := r.NewHistogramVec("fusleepd_lv_seconds", "LV.", nil, "k")
	v.With("a").Observe(0.1)

	var buf bytes.Buffer
	r.WriteText(&buf) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		r.WriteText(&buf)
	})
	if allocs > 0 {
		t.Fatalf("WriteText allocates %v times per scrape, want 0", allocs)
	}
}

func BenchmarkRegistryWriteText(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		c := r.NewCounter("fusleepd_"+n+"_total", "Bench counter.")
		c.Add(7)
	}
	h := r.NewHistogram("fusleepd_l_seconds", "L.", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		r.WriteText(&buf)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("fusleepd_l_seconds", "L.", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) / 1000)
			i++
		}
	})
}
