package telemetry

import (
	"strings"
	"testing"
)

func TestValidateExpositionAccepts(t *testing.T) {
	good := strings.Join([]string{
		`# HELP fusleepd_a_total A counter.`,
		`# TYPE fusleepd_a_total counter`,
		`fusleepd_a_total 5`,
		`# HELP fusleepd_g A gauge.`,
		`# TYPE fusleepd_g gauge`,
		`fusleepd_g -3.25`,
		`# HELP fusleepd_l_seconds A histogram.`,
		`# TYPE fusleepd_l_seconds histogram`,
		`fusleepd_l_seconds_bucket{route="/v1/sweeps",le="0.1"} 1`,
		`fusleepd_l_seconds_bucket{route="/v1/sweeps",le="1"} 3`,
		`fusleepd_l_seconds_bucket{route="/v1/sweeps",le="+Inf"} 4`,
		`fusleepd_l_seconds_sum{route="/v1/sweeps"} 2.5`,
		`fusleepd_l_seconds_count{route="/v1/sweeps"} 4`,
		`fusleepd_l_seconds_bucket{route="esc\"aped\\x\n",le="+Inf"} 0`,
		`fusleepd_l_seconds_sum{route="esc\"aped\\x\n"} 0`,
		`fusleepd_l_seconds_count{route="esc\"aped\\x\n"} 0`,
		``,
	}, "\n")
	if err := ValidateExposition(good); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{
			"type before help",
			"# TYPE fusleepd_x counter\nfusleepd_x 1\n",
			"not immediately after its HELP",
		},
		{
			"help without type",
			"# HELP fusleepd_x X.\nfusleepd_x 1\n",
			"before any HELP/TYPE",
		},
		{
			"trailing help without type",
			"# HELP fusleepd_x X.\n",
			"HELP without TYPE",
		},
		{
			"duplicate family",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\n# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\n",
			"declared twice",
		},
		{
			"unknown type",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x summary\n",
			"unknown type",
		},
		{
			"bad metric name",
			"# HELP fusleepd-x X.\n# TYPE fusleepd-x gauge\n",
			"illegal character",
		},
		{
			"leading digit name",
			"# HELP 9x X.\n# TYPE 9x gauge\n",
			"illegal character",
		},
		{
			"bad label name",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\nfusleepd_x{bad-label=\"v\"} 1\n",
			"illegal character",
		},
		{
			"illegal escape",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\nfusleepd_x{l=\"a\\tb\"} 1\n",
			`illegal escape`,
		},
		{
			"unterminated label value",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\nfusleepd_x{l=\"v} 1\n",
			"unterminated",
		},
		{
			"repeated label",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\nfusleepd_x{l=\"a\",l=\"b\"} 1\n",
			"repeated",
		},
		{
			"sample from wrong family",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x counter\nfusleepd_y 1\n",
			"does not belong",
		},
		{
			"bad value",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x gauge\nfusleepd_x pizza\n",
			"bad value",
		},
		{
			"negative counter",
			"# HELP fusleepd_x X.\n# TYPE fusleepd_x counter\nfusleepd_x -1\n",
			"non-negative",
		},
		{
			"stray histogram series",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\nfusleepd_h_quantile 1\n",
			"does not belong to histogram",
		},
		{
			"bucket without le",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\nfusleepd_h_bucket 1\n",
			"without le",
		},
		{
			"non-increasing bounds",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"1\"} 1\nfusleepd_h_bucket{le=\"1\"} 2\n" +
				"fusleepd_h_bucket{le=\"+Inf\"} 2\nfusleepd_h_sum 1\nfusleepd_h_count 2\n",
			"not increasing",
		},
		{
			"non-cumulative buckets",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"1\"} 3\nfusleepd_h_bucket{le=\"2\"} 2\n" +
				"fusleepd_h_bucket{le=\"+Inf\"} 3\nfusleepd_h_sum 1\nfusleepd_h_count 3\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"1\"} 1\nfusleepd_h_sum 1\nfusleepd_h_count 1\n",
			"+Inf",
		},
		{
			"missing count",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"+Inf\"} 1\nfusleepd_h_sum 1\n",
			"missing _count",
		},
		{
			"missing sum",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"+Inf\"} 1\nfusleepd_h_count 1\n",
			"missing _sum",
		},
		{
			"count disagrees with +Inf",
			"# HELP fusleepd_h X.\n# TYPE fusleepd_h histogram\n" +
				"fusleepd_h_bucket{le=\"+Inf\"} 1\nfusleepd_h_sum 1\nfusleepd_h_count 2\n",
			"!= _count",
		},
		{
			"malformed comment",
			"# NOPE fusleepd_x X.\n",
			"unknown comment kind",
		},
		{
			"empty help",
			"# HELP fusleepd_x\n",
			"empty HELP text",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition(tc.text)
			if err == nil {
				t.Fatalf("accepted invalid payload:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
