package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout, in seconds: 100µs to
// 10s in a 1-2.5-5 progression. It covers everything the daemon times —
// sub-millisecond store appends through multi-second cell evaluations.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Sample is one collector-produced sample: label values (matching the
// collector's label names, in order) and the current value.
type Sample struct {
	Labels []string
	Value  float64
}

// family is one registered metric name: its metadata plus the emitter
// that renders its samples.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", or "histogram"
	emit func(f *family, buf *bytes.Buffer)
}

// Registry holds registered metrics and renders them in deterministic
// order: families sorted by name (maintained at registration, so scrapes
// do not sort), labeled children sorted by label values.
type Registry struct {
	mu       sync.Mutex
	families []*family // sorted by name
	names    map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register validates and inserts one family in name order. Registration
// is programmer-driven (names are compile-time constants, checked by the
// fusleepvet metricnames analyzer), so violations panic.
func (r *Registry) register(f *family) {
	if err := checkMetricName(f.name); err != nil {
		panic("telemetry: " + err.Error())
	}
	if strings.ContainsAny(f.help, "\n") {
		panic("telemetry: help for " + f.name + " contains a newline")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[f.name] {
		panic("telemetry: duplicate metric " + f.name)
	}
	r.names[f.name] = true
	at := sort.Search(len(r.families), func(i int) bool { return r.families[i].name >= f.name })
	r.families = append(r.families, nil)
	copy(r.families[at+1:], r.families[at:])
	r.families[at] = f
}

// WriteText renders every registered family into buf in the Prometheus
// text exposition format (version 0.0.4), deterministically ordered.
// Callers reuse buf across scrapes to keep the path allocation-free.
func (r *Registry) WriteText(buf *bytes.Buffer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		buf.WriteString("# HELP ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(f.help)
		buf.WriteString("\n# TYPE ")
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		buf.WriteString(f.typ)
		buf.WriteByte('\n')
		f.emit(f, buf)
	}
}

// checkMetricName enforces the exposition format's metric-name charset.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("bad metric name %q", name)
	}
	return nil
}

// checkLabelName enforces the exposition format's label-name charset.
func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i, c := range name {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("bad label name %q", name)
	}
	return nil
}

// writeEscaped writes a label value with the format's escapes
// (backslash, double quote, newline).
func writeEscaped(buf *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf.WriteString(`\\`)
		case '"':
			buf.WriteString(`\"`)
		case '\n':
			buf.WriteString(`\n`)
		default:
			buf.WriteByte(s[i])
		}
	}
}

// writeLabels writes a {name="value",...} block; names and values run in
// parallel and extra, when non-empty, appends one more pair (histograms
// use it for le).
func writeLabels(buf *bytes.Buffer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	buf.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(n)
		buf.WriteString(`="`)
		if i < len(values) {
			writeEscaped(buf, values[i])
		}
		buf.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(extraName)
		buf.WriteString(`="`)
		writeEscaped(buf, extraValue)
		buf.WriteByte('"')
	}
	buf.WriteByte('}')
}

// writeFloat appends a float sample value without allocating.
func writeFloat(buf *bytes.Buffer, v float64) {
	switch {
	case math.IsInf(v, 1):
		buf.WriteString("+Inf")
	case math.IsInf(v, -1):
		buf.WriteString("-Inf")
	default:
		buf.Write(strconv.AppendFloat(buf.AvailableBuffer(), v, 'g', -1, 64))
	}
}

// writeUint appends an unsigned sample value without allocating.
func writeUint(buf *bytes.Buffer, v uint64) {
	buf.Write(strconv.AppendUint(buf.AvailableBuffer(), v, 10))
}

// atomicFloat is a lock-free float64 accumulator (CAS over the bits).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing counter with a lock-free hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", emit: func(f *family, buf *bytes.Buffer) {
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		writeUint(buf, c.Load())
		buf.WriteByte('\n')
	}})
	return c
}

// NewCounterFunc registers a counter whose value is read at scrape time —
// for monotone counts owned elsewhere (engine statistics, fleet totals).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", emit: func(f *family, buf *bytes.Buffer) {
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		writeFloat(buf, fn())
		buf.WriteByte('\n')
	}})
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", emit: func(f *family, buf *bytes.Buffer) {
		buf.WriteString(f.name)
		buf.WriteByte(' ')
		writeFloat(buf, fn())
		buf.WriteByte('\n')
	}})
}

// collector registers a scrape-time multi-sample family (typ counter or
// gauge): fn returns one sample per label tuple, rendered sorted so the
// exposition stays deterministic. Samples with the wrong label arity are
// dropped rather than emitting malformed lines.
func (r *Registry) collector(name, help, typ string, labels []string, fn func() []Sample) {
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic("telemetry: " + name + ": " + err.Error())
		}
	}
	r.register(&family{name: name, help: help, typ: typ, emit: func(f *family, buf *bytes.Buffer) {
		samples := fn()
		sort.Slice(samples, func(i, j int) bool {
			return lessLabels(samples[i].Labels, samples[j].Labels)
		})
		for _, s := range samples {
			if len(s.Labels) != len(labels) {
				continue
			}
			buf.WriteString(f.name)
			writeLabels(buf, labels, s.Labels, "", "")
			buf.WriteByte(' ')
			writeFloat(buf, s.Value)
			buf.WriteByte('\n')
		}
	}})
}

// NewGaugeCollector registers a labeled gauge family collected at scrape
// time (e.g. per-worker fleet depths).
func (r *Registry) NewGaugeCollector(name, help string, labels []string, fn func() []Sample) {
	r.collector(name, help, "gauge", labels, fn)
}

// NewCounterCollector registers a labeled counter family collected at
// scrape time (e.g. per-worker completion totals).
func (r *Registry) NewCounterCollector(name, help string, labels []string, fn func() []Sample) {
	r.collector(name, help, "counter", labels, fn)
}

// lessLabels orders label tuples lexicographically.
func lessLabels(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Histogram is a fixed-bucket latency distribution with a lock-free
// Observe: per-bucket atomic counts plus a CAS-accumulated sum.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	les    []string  // bounds preformatted for the le label
	counts []atomic.Uint64
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram buckets not strictly increasing")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	for _, b := range h.bounds {
		h.les = append(h.les, strconv.FormatFloat(b, 'g', -1, 64))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// emit renders the histogram's bucket/sum/count lines under the family
// name with the given (possibly empty) base labels.
func (h *Histogram) emit(name string, buf *bytes.Buffer, labelNames, labelValues []string) {
	var cum uint64
	for i, le := range h.les {
		cum += h.counts[i].Load()
		buf.WriteString(name)
		buf.WriteString("_bucket")
		writeLabels(buf, labelNames, labelValues, "le", le)
		buf.WriteByte(' ')
		writeUint(buf, cum)
		buf.WriteByte('\n')
	}
	cum += h.counts[len(h.counts)-1].Load()
	buf.WriteString(name)
	buf.WriteString("_bucket")
	writeLabels(buf, labelNames, labelValues, "le", "+Inf")
	buf.WriteByte(' ')
	writeUint(buf, cum)
	buf.WriteByte('\n')
	buf.WriteString(name)
	buf.WriteString("_sum")
	writeLabels(buf, labelNames, labelValues, "", "")
	buf.WriteByte(' ')
	writeFloat(buf, h.sum.load())
	buf.WriteByte('\n')
	buf.WriteString(name)
	buf.WriteString("_count")
	writeLabels(buf, labelNames, labelValues, "", "")
	buf.WriteByte(' ')
	writeUint(buf, cum)
	buf.WriteByte('\n')
}

// NewHistogram registers an unlabeled histogram. Nil buckets select
// DefBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: "histogram", emit: func(f *family, buf *bytes.Buffer) {
		h.emit(f.name, buf, nil, nil)
	}})
	return h
}

// histChild is one labeled histogram series.
type histChild struct {
	key    string
	values []string
	h      *Histogram
}

// HistogramVec is a histogram family keyed by label values. With caches
// children, so steady-state observation is one RLock'd map hit plus the
// child's lock-free Observe.
type HistogramVec struct {
	labels   []string
	buckets  []float64
	mu       sync.RWMutex
	children map[string]*histChild
	order    []*histChild // sorted by key, maintained at insertion
}

// NewHistogramVec registers a labeled histogram family. Nil buckets
// select DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("telemetry: NewHistogramVec " + name + " needs at least one label")
	}
	for _, l := range labels {
		if err := checkLabelName(l); err != nil {
			panic("telemetry: " + name + ": " + err.Error())
		}
	}
	v := &HistogramVec{
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]*histChild),
	}
	r.register(&family{name: name, help: help, typ: "histogram", emit: func(f *family, buf *bytes.Buffer) {
		v.mu.RLock()
		defer v.mu.RUnlock()
		for _, c := range v.order {
			c.h.emit(f.name, buf, v.labels, c.values)
		}
	}})
	return v
}

// With returns the child histogram for the given label values, creating
// it on first use. The value count must match the registered label names.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: histogram wants %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.h
	}
	c = &histChild{key: key, values: append([]string(nil), values...), h: newHistogram(v.buckets)}
	v.children[key] = c
	at := sort.Search(len(v.order), func(i int) bool { return v.order[i].key >= key })
	v.order = append(v.order, nil)
	copy(v.order[at+1:], v.order[at:])
	v.order[at] = c
	return c.h
}
