package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                    Class
		mem, ctrl, fp, intFU bool
	}{
		{Nop, false, false, false, false},
		{IntALU, false, false, false, true},
		{IntMult, false, false, false, false},
		{IntDiv, false, false, false, false},
		{Load, true, false, false, false},
		{Store, true, false, false, false},
		{Branch, false, true, false, true},
		{Jump, false, true, false, true},
		{Call, false, true, false, true},
		{Return, false, true, false, true},
		{FPALU, false, false, true, false},
		{FPMult, false, false, true, false},
		{FPDiv, false, false, true, false},
	}
	for _, c := range cases {
		if c.c.IsMem() != c.mem || c.c.IsCtrl() != c.ctrl || c.c.IsFP() != c.fp || c.c.UsesIntFU() != c.intFU {
			t.Errorf("%v: predicates mem=%v ctrl=%v fp=%v intFU=%v",
				c.c, c.c.IsMem(), c.c.IsCtrl(), c.c.IsFP(), c.c.UsesIntFU())
		}
	}
}

func TestClassStrings(t *testing.T) {
	if IntALU.String() != "ialu" || Load.String() != "load" {
		t.Error("mnemonics wrong")
	}
	if Class(200).String() != "class(200)" {
		t.Errorf("unknown class string: %q", Class(200).String())
	}
}

func TestRegisters(t *testing.T) {
	r := IntReg(5)
	if !r.Valid() || !r.IsInt() || r.IsFP() || r.String() != "r5" {
		t.Errorf("IntReg(5) = %v", r)
	}
	f := FPReg(3)
	if !f.Valid() || f.IsInt() || !f.IsFP() || f.String() != "f3" {
		t.Errorf("FPReg(3) = %v", f)
	}
	if RegNone.Valid() || RegNone.String() != "-" {
		t.Error("RegNone misbehaves")
	}
	if Reg(99).Valid() {
		t.Error("register 99 should be invalid")
	}
	defer func() {
		if recover() == nil {
			t.Error("IntReg(32) should panic")
		}
	}()
	IntReg(32)
}

func TestNextPC(t *testing.T) {
	seq := Inst{PC: 100, Class: IntALU}
	if seq.NextPC() != 104 {
		t.Errorf("fall-through NextPC = %d", seq.NextPC())
	}
	br := Inst{PC: 100, Class: Branch, Taken: true, Target: 64}
	if br.NextPC() != 64 {
		t.Errorf("taken NextPC = %d", br.NextPC())
	}
	nt := Inst{PC: 100, Class: Branch, Taken: false, Target: 64}
	if nt.NextPC() != 104 {
		t.Errorf("not-taken NextPC = %d", nt.NextPC())
	}
}

func TestInstValidate(t *testing.T) {
	good := []Inst{
		{Class: IntALU, Dest: IntReg(1), Src1: IntReg(2), Src2: RegNone},
		{Class: Load, Dest: IntReg(1), Src1: IntReg(2), Src2: RegNone, Addr: 0x1000},
		{Class: Branch, Src1: IntReg(1), Src2: RegNone, Dest: RegNone, Taken: true, Target: 0x40},
		{Class: Jump, Src1: RegNone, Src2: RegNone, Dest: RegNone, Taken: true, Target: 0x40},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Inst{
		{Class: IntALU, Dest: Reg(77), Src1: RegNone, Src2: RegNone},
		{Class: Branch, Src1: RegNone, Src2: RegNone, Dest: RegNone, Taken: true, Target: 0},
		{Class: Jump, Src1: RegNone, Src2: RegNone, Dest: RegNone, Taken: false},
		{Class: Load, Dest: IntReg(1), Src1: RegNone, Src2: RegNone, Addr: 0},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, in)
		}
	}
}

func TestSliceStream(t *testing.T) {
	s := NewSliceStream([]Inst{
		{Class: IntALU, Src1: RegNone, Src2: RegNone, Dest: RegNone},
		{Class: Nop, Src1: RegNone, Src2: RegNone, Dest: RegNone},
	})
	in, ok := s.Next()
	if !ok || in.Seq != 0 || in.Class != IntALU {
		t.Errorf("first = %+v ok=%v", in, ok)
	}
	in, ok = s.Next()
	if !ok || in.Seq != 1 {
		t.Errorf("second = %+v ok=%v", in, ok)
	}
	if _, ok := s.Next(); ok {
		t.Error("stream should be exhausted")
	}
	s.Close() // no-op, must not panic
}
