// Package isa defines the instruction representation consumed by the timing
// simulator. The simulator is trace-consuming: workload kernels execute
// benchmark-like algorithms and emit a dynamic instruction stream carrying
// actual effective addresses and branch outcomes, which the pipeline model
// times against the Table 2 machine of Dropsho et al. (MICRO 2002).
package isa

import "fmt"

// Class is the functional class of an instruction, which determines the
// execution resource it needs and its latency.
type Class uint8

const (
	// Nop occupies front-end slots but no functional unit.
	Nop Class = iota
	// IntALU is a single-cycle integer operation (add, logic, shift,
	// compare); executes on an integer functional unit.
	IntALU
	// IntMult is a pipelined multi-cycle integer multiply on the dedicated
	// multiplier.
	IntMult
	// IntDiv is a long-latency unpipelined integer divide on the multiplier
	// unit.
	IntDiv
	// Load reads memory: address generation on a memory port, then a data
	// cache access.
	Load
	// Store writes memory at commit after address generation on a memory
	// port.
	Store
	// Branch is a conditional direct branch resolved on an integer unit.
	Branch
	// Jump is an unconditional direct jump (always taken, target known).
	Jump
	// Call is a direct call; pushes the return address on the RAS.
	Call
	// Return is an indirect return; target predicted via the RAS.
	Return
	// FPALU is a floating-point add/compare on an FP unit.
	FPALU
	// FPMult is a floating-point multiply.
	FPMult
	// FPDiv is a long-latency floating-point divide.
	FPDiv

	numClasses
)

var classNames = [numClasses]string{
	"nop", "ialu", "imult", "idiv", "load", "store",
	"branch", "jump", "call", "return", "fpalu", "fpmult", "fpdiv",
}

// String returns a short mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the instruction accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCtrl reports whether the instruction redirects control flow.
func (c Class) IsCtrl() bool { return c == Branch || c == Jump || c == Call || c == Return }

// IsFP reports whether the instruction executes on a floating-point unit.
func (c Class) IsFP() bool { return c == FPALU || c == FPMult || c == FPDiv }

// UsesIntFU reports whether the instruction class executes entirely on one
// of the integer functional units under study (single-cycle ALU work and
// branch resolution). Memory operations additionally occupy an integer unit
// for their address-generation cycle, which the pipeline models separately.
func (c Class) UsesIntFU() bool {
	return c == IntALU || c == Branch || c == Jump || c == Call || c == Return
}

// Reg names an architectural register: integer registers r0-r31 and
// floating-point registers f0-f31. The zero value is RegNone ("no operand").
type Reg int16

// RegNone marks an absent operand.
const RegNone Reg = -1

// NumIntRegs and NumFPRegs size the architectural register files.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// IntReg returns the i-th integer architectural register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i-th floating-point architectural register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// Valid reports whether the register names a real operand.
func (r Reg) Valid() bool { return r >= 0 && int(r) < NumIntRegs+NumFPRegs }

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r >= 0 && int(r) < NumIntRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return int(r) >= NumIntRegs && int(r) < NumIntRegs+NumFPRegs }

// String renders the register name.
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg(%d)", int(r))
	}
}

// InstBytes is the fixed encoding size (Alpha-style RISC).
const InstBytes = 4

// Inst is one dynamic instruction.
type Inst struct {
	// Seq is the dynamic sequence number (assigned by the stream).
	Seq uint64
	// PC is the instruction's address. Static instruction sites keep
	// stable PCs across dynamic executions so predictors can learn.
	PC uint64
	// Class selects the execution resource.
	Class Class
	// Src1, Src2 are source operands (RegNone if unused).
	Src1, Src2 Reg
	// Dest is the destination operand (RegNone if none).
	Dest Reg
	// Addr is the effective address for Load/Store.
	Addr uint64
	// Taken is the actual outcome for control instructions (always true
	// for Jump/Call/Return).
	Taken bool
	// Target is the actual control-flow target when Taken.
	Target uint64
}

// NextPC returns the address of the dynamically-next instruction.
func (in Inst) NextPC() uint64 {
	if in.Class.IsCtrl() && in.Taken {
		return in.Target
	}
	return in.PC + InstBytes
}

// Validate performs structural checks used by tests and stream adapters.
func (in Inst) Validate() error {
	for _, r := range []Reg{in.Src1, in.Src2, in.Dest} {
		if r != RegNone && !r.Valid() {
			return fmt.Errorf("isa: inst %d: bad register %d", in.Seq, int(r))
		}
	}
	if in.Class.IsCtrl() {
		if in.Taken && in.Target == 0 {
			return fmt.Errorf("isa: inst %d: taken %v without target", in.Seq, in.Class)
		}
		if (in.Class == Jump || in.Class == Call || in.Class == Return) && !in.Taken {
			return fmt.Errorf("isa: inst %d: %v must be taken", in.Seq, in.Class)
		}
	}
	if in.Class.IsMem() && in.Addr == 0 {
		return fmt.Errorf("isa: inst %d: memory op without address", in.Seq)
	}
	return nil
}

// Stream supplies a dynamic instruction trace to the simulator.
type Stream interface {
	// Next returns the next instruction; ok is false at end of trace.
	Next() (in Inst, ok bool)
	// Close releases generator resources. It is safe to call more than
	// once and after exhaustion.
	Close()
}

// SliceStream adapts a pre-built trace to the Stream interface, mainly for
// tests.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream wraps insts, assigning sequence numbers.
func NewSliceStream(insts []Inst) *SliceStream {
	for i := range insts {
		insts[i].Seq = uint64(i)
	}
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Close implements Stream.
func (s *SliceStream) Close() {}
