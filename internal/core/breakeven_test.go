package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBreakevenClosedFormMatchesSearch(t *testing.T) {
	f := func(pRaw, alphaRaw float64) bool {
		tech := DefaultTech().WithP(0.01 + math.Mod(math.Abs(pRaw), 0.99))
		alpha := math.Mod(math.Abs(alphaRaw), 0.999)
		formula := tech.Breakeven(alpha)
		search := tech.BreakevenSearch(alpha)
		return almostEqual(formula, search, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakevenNearTermCircuit(t *testing.T) {
	// With the Table 1 circuit parameters (p~0.063, c~5e-4, e_slp~0.006) the
	// paper's Figure 3 finds a breakeven of about 17 cycles at alpha=0.1.
	tech := Tech{P: 1.4 / 22.2, C: 7.1e-4 / 1.4, SleepOverhead: 0.14 / 22.2, Duty: 0.5}
	be := tech.Breakeven(0.1)
	if be < 14 || be > 20 {
		t.Errorf("breakeven = %.2f cycles, want ~17 per Figure 3", be)
	}
	// The paper notes the breakeven is relatively insensitive to alpha over
	// [0.1, 0.9] because both transition cost and uncontrolled-idle leakage
	// scale as (1-alpha).
	be9 := tech.Breakeven(0.9)
	if math.Abs(be9-be) > 0.15*be {
		t.Errorf("breakeven alpha-sensitivity too high: %.2f at 0.1 vs %.2f at 0.9", be, be9)
	}
}

func TestBreakevenScalesInverseP(t *testing.T) {
	// Figure 4a: n_BE falls approximately as 1/p.
	tech := DefaultTech()
	alpha := 0.5
	b1 := tech.WithP(0.1).Breakeven(alpha)
	b2 := tech.WithP(0.2).Breakeven(alpha)
	b4 := tech.WithP(0.4).Breakeven(alpha)
	if !almostEqual(b1/b2, 2, 1e-9) || !almostEqual(b2/b4, 2, 1e-9) {
		t.Errorf("breakeven not ~1/p: %.3f %.3f %.3f", b1, b2, b4)
	}
}

func TestBreakevenDegenerate(t *testing.T) {
	// alpha=1 with zero overhead: nothing to discharge, transition free,
	// but idle leakage already equals sleep leakage, so breakeven is 0/0 ->
	// the saved-energy denominator is 0 and the result must be +Inf (there
	// is nothing to save by sleeping).
	tech := Tech{P: 0.5, C: 0.001, SleepOverhead: 0, Duty: 0.5}
	if got := tech.Breakeven(1); !math.IsInf(got, 1) {
		t.Errorf("Breakeven(alpha=1) = %g, want +Inf", got)
	}
	// c=1: sleep state leaks exactly like the high state; never worth it.
	tech = Tech{P: 0.5, C: 0.999999, SleepOverhead: 0.01, Duty: 0.5}
	if got := tech.Breakeven(0); got < 1e5 {
		t.Errorf("Breakeven with c~1 = %g, want very large", got)
	}
}

func TestBreakevenSlices(t *testing.T) {
	tech := DefaultTech() // p=0.05, alpha=0.5 -> n_BE ~ 20.4
	k := tech.BreakevenSlices(0.5)
	if k < 18 || k > 23 {
		t.Errorf("BreakevenSlices = %d, want ~20", k)
	}
	// Degenerate technologies clamp instead of overflowing.
	inf := Tech{P: 0.5, C: 0.999999, SleepOverhead: 0.01, Duty: 0.5}
	if k := inf.BreakevenSlices(0); k < 1 {
		t.Errorf("clamped slice count = %d, want >= 1", k)
	}
}

func TestBreakevenIsEnergyIndifferencePoint(t *testing.T) {
	// At exactly n_BE cycles, an uncontrolled idle and a sleep transition
	// cost the same; one cycle later, sleep is strictly cheaper.
	tech := DefaultTech().WithP(0.3)
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		be := tech.Breakeven(alpha)
		ui := be * tech.UIRate(alpha)
		slp := tech.TransitionCost(alpha) + be*tech.SleepRate()
		if !almostEqual(ui, slp, 1e-9) {
			t.Errorf("alpha=%g: at n_BE=%.3f, UI=%g sleep=%g", alpha, be, ui, slp)
		}
		uiAfter := (be + 1) * tech.UIRate(alpha)
		slpAfter := tech.TransitionCost(alpha) + (be+1)*tech.SleepRate()
		if slpAfter >= uiAfter {
			t.Errorf("alpha=%g: sleep not cheaper past breakeven", alpha)
		}
	}
}
