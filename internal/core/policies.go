package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Policy identifies a sleep-mode management strategy.
type Policy int

const (
	// AlwaysActive never asserts the Sleep signal; idle cycles are
	// clock-gated only ("uncontrolled idle"). It is the do-nothing baseline.
	AlwaysActive Policy = iota

	// MaxSleep asserts the Sleep signal on every idle cycle, paying the
	// transition cost at the start of every idle interval.
	MaxSleep

	// NoOverhead is MaxSleep with free transitions: an unachievable lower
	// bound on energy (equivalently, an upper bound on possible savings).
	NoOverhead

	// GradualSleep staggers the Sleep signal across K circuit slices via a
	// shift register, putting one K-th of the unit to sleep on each
	// successive idle cycle (Section 3.2 of the paper).
	GradualSleep

	// OracleMinimal chooses, for each idle interval independently and with
	// perfect knowledge of its length, the cheaper of sleeping immediately
	// or staying in uncontrolled idle. It is the min(E_MS, E_AA) hybrid the
	// paper describes as "the best combination of the two policies".
	OracleMinimal
)

// Policies lists the four policies evaluated in the paper's result figures,
// in the bar order of Figure 8.
var Policies = []Policy{MaxSleep, GradualSleep, AlwaysActive, NoOverhead}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case AlwaysActive:
		return "AlwaysActive"
	case MaxSleep:
		return "MaxSleep"
	case NoOverhead:
		return "NoOverhead"
	case GradualSleep:
		return "GradualSleep"
	case OracleMinimal:
		return "OracleMinimal"
	case SleepTimeout:
		return "SleepTimeout"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy's paper name (as produced by String) back to its
// value. Matching is case-insensitive.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range []Policy{AlwaysActive, MaxSleep, NoOverhead, GradualSleep, OracleMinimal, SleepTimeout} {
		if strings.EqualFold(name, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q (have AlwaysActive, MaxSleep, NoOverhead, GradualSleep, OracleMinimal, SleepTimeout)", name)
}

// MarshalJSON encodes the policy by name, so wire formats stay readable and
// stable if the enum values ever shift.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts a policy name.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	got, err := ParsePolicy(name)
	if err != nil {
		return err
	}
	*p = got
	return nil
}

// PolicyConfig pairs a policy with its tuning knobs.
type PolicyConfig struct {
	Policy Policy `json:"policy"`
	// Slices is the GradualSleep slice count K. Zero selects the paper's
	// recommendation of one slice per breakeven-interval cycle.
	Slices int `json:"slices,omitempty"`
	// Timeout is the SleepTimeout threshold in idle cycles before the
	// Sleep signal asserts. Zero selects the breakeven interval, which
	// makes the policy 2-competitive.
	Timeout int `json:"timeout,omitempty"`
}

// slices resolves the effective slice count for GradualSleep.
func (pc PolicyConfig) slices(t Tech, alpha float64) int {
	if pc.Slices > 0 {
		return pc.Slices
	}
	return t.BreakevenSlices(alpha)
}

// Scenario is the abstract workload of Section 3.1: totalCycles T split by a
// usage factor f_A into active and idle time, with idle time arriving in
// intervals of a fixed mean length. It exists to reproduce the model-space
// explorations of Figure 4 before any simulation is run.
type Scenario struct {
	TotalCycles float64 // T
	Usage       float64 // f_A in [0,1]: fraction of cycles that are active
	MeanIdle    float64 // L_idle: average idle interval duration, cycles
	Alpha       float64 // activity factor
}

// Validate reports whether the scenario parameters are in-domain.
func (s Scenario) Validate() error {
	switch {
	case s.TotalCycles <= 0:
		return fmt.Errorf("core: scenario needs positive TotalCycles, got %g", s.TotalCycles)
	case s.Usage < 0 || s.Usage > 1:
		return fmt.Errorf("core: usage factor %g out of range [0,1]", s.Usage)
	case s.MeanIdle <= 0 && s.Usage < 1:
		return fmt.Errorf("core: scenario needs positive MeanIdle, got %g", s.MeanIdle)
	case !ValidAlpha(s.Alpha):
		return ErrAlpha
	default:
		return nil
	}
}

// Counts returns the cycle-count aggregate (equations (6)-(8)) for policy pc
// under scenario s: N_A = f_A*T; AlwaysActive spends all idle cycles
// uncontrolled; MaxSleep and NoOverhead spend them asleep with
// N_tr = min(N_A, idle/L) transitions (each transition must follow at least
// one active cycle); GradualSleep splits each mean-length interval between
// uncontrolled and sleep cycles according to the staggered slice schedule.
func (s Scenario) Counts(t Tech, pc PolicyConfig) CycleCounts {
	active := s.Usage * s.TotalCycles
	idle := (1 - s.Usage) * s.TotalCycles
	if idle == 0 {
		return CycleCounts{Active: active}
	}
	nIntervals := idle / s.MeanIdle
	if nIntervals > active && active > 0 {
		nIntervals = active
	}
	switch pc.Policy {
	case AlwaysActive:
		return CycleCounts{Active: active, UncontrolledIdle: idle}
	case MaxSleep:
		return CycleCounts{Active: active, Sleep: idle, Transitions: nIntervals}
	case NoOverhead:
		return CycleCounts{Active: active, Sleep: idle}
	case GradualSleep:
		k := pc.slices(t, s.Alpha)
		ui, slp, trans := gradualSplit(s.MeanIdle, k)
		return CycleCounts{
			Active:           active,
			UncontrolledIdle: nIntervals * ui,
			Sleep:            nIntervals * slp,
			Transitions:      nIntervals * trans,
		}
	case OracleMinimal:
		if s.MeanIdle >= t.Breakeven(s.Alpha) {
			return CycleCounts{Active: active, Sleep: idle, Transitions: nIntervals}
		}
		return CycleCounts{Active: active, UncontrolledIdle: idle}
	case SleepTimeout:
		ui, slp, trans := timeoutSplit(s.MeanIdle, pc.timeout(t, s.Alpha))
		return CycleCounts{
			Active:           active,
			UncontrolledIdle: nIntervals * ui,
			Sleep:            nIntervals * slp,
			Transitions:      nIntervals * trans,
		}
	default:
		panic(fmt.Sprintf("core: unknown policy %v", pc.Policy))
	}
}

// PolicyEnergy evaluates equation (3) for policy pc under scenario s.
func (t Tech) PolicyEnergy(pc PolicyConfig, s Scenario) Breakdown {
	return t.Energy(s.Alpha, s.Counts(t, pc))
}

// RelativeToBase returns E_policy / E_base, the normalization used in
// Figures 4b-4d and 8: the policy's energy relative to a unit that computes
// on 100% of the cycles.
func (t Tech) RelativeToBase(pc PolicyConfig, s Scenario) float64 {
	return t.PolicyEnergy(pc, s).Total() / t.BaseEnergy(s.Alpha, s.TotalCycles)
}

// gradualSplit returns, for one idle interval of (possibly fractional)
// length l under a K-slice GradualSleep unit, the expected uncontrolled-idle
// cycles, sleep cycles, and transition-equivalents (fraction of a full-unit
// transition paid). Slice i (1-based) enters sleep mode at the i-th idle
// cycle, so over the interval it spends min(i-1, l) cycles uncontrolled and
// max(l-(i-1), 0) cycles asleep, and pays 1/K of the transition cost if it
// slept at all.
func gradualSplit(l float64, k int) (ui, sleep, trans float64) {
	if l <= 0 {
		return 0, 0, 0
	}
	kf := float64(k)
	m := math.Min(math.Ceil(l), kf) // number of slices that enter sleep
	// Slices 1..m wait (i-1) cycles uncontrolled before sleeping; the
	// remaining k-m slices stay uncontrolled for the whole interval.
	ui = (m*(m-1)/2 + (kf-m)*l) / kf
	sleep = l - ui
	trans = m / kf
	return ui, sleep, trans
}
