package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol || diff <= tol*scale
}

func TestDefaultTechMatchesTable4(t *testing.T) {
	tech := DefaultTech()
	if tech.C != 0.001 {
		t.Errorf("c = %g, want 0.001", tech.C)
	}
	if tech.SleepOverhead != 0.01 {
		t.Errorf("e_slp = %g, want 0.01", tech.SleepOverhead)
	}
	if tech.Duty != 0.5 {
		t.Errorf("d = %g, want 0.5", tech.Duty)
	}
	if tech.P != 0.05 {
		t.Errorf("p = %g, want 0.05", tech.P)
	}
	if err := tech.Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
	if err := HighLeakTech().Validate(); err != nil {
		t.Fatalf("high-leak tech invalid: %v", err)
	}
}

func TestValidateRejectsOutOfDomain(t *testing.T) {
	cases := []Tech{
		{P: 0, C: 0.001, SleepOverhead: 0.01, Duty: 0.5},
		{P: -0.1, C: 0.001, SleepOverhead: 0.01, Duty: 0.5},
		{P: 1.5, C: 0.001, SleepOverhead: 0.01, Duty: 0.5},
		{P: 0.05, C: -0.2, SleepOverhead: 0.01, Duty: 0.5},
		{P: 0.05, C: 1.0, SleepOverhead: 0.01, Duty: 0.5},
		{P: 0.05, C: 0.001, SleepOverhead: -1, Duty: 0.5},
		{P: 0.05, C: 0.001, SleepOverhead: 0.01, Duty: 0},
		{P: 0.05, C: 0.001, SleepOverhead: 0.01, Duty: 1.1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, c)
		}
	}
}

func TestRateOrdering(t *testing.T) {
	// For any in-domain parameters: sleep leaks least, uncontrolled idle
	// leaks more, and an active cycle costs the most.
	f := func(p, c, e, d, alpha float64) bool {
		tech := Tech{
			P:             0.01 + math.Mod(math.Abs(p), 0.99),
			C:             math.Mod(math.Abs(c), 0.9),
			SleepOverhead: math.Mod(math.Abs(e), 0.1),
			Duty:          0.1 + math.Mod(math.Abs(d), 0.9),
		}
		a := math.Mod(math.Abs(alpha), 1)
		return tech.SleepRate() <= tech.UIRate(a)+1e-15 &&
			tech.UIRate(a) <= tech.ActiveRate(a)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestActiveRateComposition(t *testing.T) {
	// active = dynamic + precharge leakage + post-eval leakage, term by term.
	tech := Tech{P: 0.3, C: 0.01, SleepOverhead: 0.02, Duty: 0.4}
	alpha := 0.6
	want := alpha + (1-0.4)*0.3 + 0.4*0.3*(alpha*0.01+(1-alpha))
	if got := tech.ActiveRate(alpha); !almostEqual(got, want, 1e-12) {
		t.Errorf("ActiveRate = %g, want %g", got, want)
	}
}

func TestEnergyComponents(t *testing.T) {
	tech := DefaultTech()
	alpha := 0.5
	cc := CycleCounts{Active: 100, UncontrolledIdle: 50, Sleep: 30, Transitions: 4}
	b := tech.Energy(alpha, cc)

	if want := 100 * alpha; !almostEqual(b.Dynamic, want, 1e-12) {
		t.Errorf("Dynamic = %g, want %g", b.Dynamic, want)
	}
	if want := 100 * (tech.ActiveRate(alpha) - alpha); !almostEqual(b.ActiveLeak, want, 1e-12) {
		t.Errorf("ActiveLeak = %g, want %g", b.ActiveLeak, want)
	}
	if want := 50 * tech.UIRate(alpha); !almostEqual(b.IdleLeak, want, 1e-12) {
		t.Errorf("IdleLeak = %g, want %g", b.IdleLeak, want)
	}
	if want := 30 * tech.SleepRate(); !almostEqual(b.SleepLeak, want, 1e-12) {
		t.Errorf("SleepLeak = %g, want %g", b.SleepLeak, want)
	}
	if want := 4 * tech.TransitionCost(alpha); !almostEqual(b.Transition, want, 1e-12) {
		t.Errorf("Transition = %g, want %g", b.Transition, want)
	}
	sum := b.Dynamic + b.ActiveLeak + b.IdleLeak + b.SleepLeak + b.Transition
	if !almostEqual(b.Total(), sum, 1e-12) {
		t.Errorf("Total = %g, want %g", b.Total(), sum)
	}
	if !almostEqual(b.Leakage(), b.ActiveLeak+b.IdleLeak+b.SleepLeak, 1e-12) {
		t.Errorf("Leakage mismatch")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{1, 2, 3, 4, 5}
	b := Breakdown{10, 20, 30, 40, 50}
	sum := a.Add(b)
	if sum != (Breakdown{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %+v", sum)
	}
	if got := a.Scale(2); got != (Breakdown{2, 4, 6, 8, 10}) {
		t.Errorf("Scale = %+v", got)
	}
	if got := (Breakdown{}).LeakageFraction(); got != 0 {
		t.Errorf("empty LeakageFraction = %g, want 0", got)
	}
	if got := a.LeakageFraction(); !almostEqual(got, 9.0/15.0, 1e-12) {
		t.Errorf("LeakageFraction = %g, want %g", got, 9.0/15.0)
	}
}

func TestCycleCountsTotalAndAdd(t *testing.T) {
	a := CycleCounts{Active: 5, UncontrolledIdle: 3, Sleep: 2, Transitions: 9}
	if a.Total() != 10 {
		t.Errorf("Total = %g, want 10 (transitions are events, not cycles)", a.Total())
	}
	b := a.Add(CycleCounts{Active: 1, UncontrolledIdle: 1, Sleep: 1, Transitions: 1})
	if b != (CycleCounts{Active: 6, UncontrolledIdle: 4, Sleep: 3, Transitions: 10}) {
		t.Errorf("Add = %+v", b)
	}
}

func TestBaseEnergyIsAllActive(t *testing.T) {
	tech := DefaultTech()
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		got := tech.BaseEnergy(alpha, 1000)
		want := tech.Energy(alpha, CycleCounts{Active: 1000}).Total()
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("alpha=%g: BaseEnergy = %g, want %g", alpha, got, want)
		}
	}
}

func TestTable1DerivedParameters(t *testing.T) {
	// Section 3 derives the technology parameters from the Table 1 circuit:
	// p = 1.4/22.2 ~ 0.063, c = 7.1e-4/1.4 ~ 5.1e-4, e_slp ~ 0.006.
	p := 1.4 / 22.2
	if p < 0.05 || p > 0.08 {
		t.Errorf("derived p = %g outside the paper's near-term band", p)
	}
	c := 7.1e-4 / 1.4
	if c > 0.001 {
		t.Errorf("derived c = %g should be below the pessimistic 0.001", c)
	}
	e := 0.14 / 22.2
	if e > 0.01 {
		t.Errorf("derived e_slp = %g should be below the pessimistic 0.01", e)
	}
}

func TestWithP(t *testing.T) {
	tech := DefaultTech().WithP(0.42)
	if tech.P != 0.42 || tech.C != 0.001 {
		t.Errorf("WithP altered unrelated fields: %+v", tech)
	}
}
