package core

import (
	"math/rand"
	"testing"
)

func randomStream(rng *rand.Rand, n int, pActive float64) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = rng.Float64() < pActive
	}
	return s
}

func TestProfileFromStream(t *testing.T) {
	stream := []bool{false, false, true, true, false, true, false, false, false}
	prof := ProfileFromStream(stream)
	if prof.ActiveCycles != 3 {
		t.Errorf("active = %d, want 3", prof.ActiveCycles)
	}
	// intervals: leading 2, middle 1, trailing 3
	want := map[int]uint64{2: 1, 1: 1, 3: 1}
	for l, c := range want {
		if prof.Intervals[l] != c {
			t.Errorf("interval[%d] = %d, want %d", l, prof.Intervals[l], c)
		}
	}
	if prof.IntervalCount() != 3 {
		t.Errorf("interval count = %d", prof.IntervalCount())
	}
}

func TestControllersAgreeWithIntervalAccounting(t *testing.T) {
	// The cycle-level controllers and the offline interval accounting are
	// two implementations of the same policies; they must produce the same
	// energies on arbitrary activity streams.
	rng := rand.New(rand.NewSource(123))
	techs := []Tech{DefaultTech(), HighLeakTech(), {P: 0.9, C: 0.01, SleepOverhead: 0.05, Duty: 0.3}}
	policies := []PolicyConfig{
		{Policy: AlwaysActive},
		{Policy: MaxSleep},
		{Policy: NoOverhead},
		{Policy: GradualSleep, Slices: 1},
		{Policy: GradualSleep, Slices: 7},
		{Policy: GradualSleep, Slices: 64},
		{Policy: GradualSleep}, // auto slices
	}
	for trial := 0; trial < 40; trial++ {
		tech := techs[trial%len(techs)]
		alpha := rng.Float64()
		stream := randomStream(rng, 2000, 0.2+0.6*rng.Float64())
		prof := ProfileFromStream(stream)
		for _, pc := range policies {
			ctrl, err := NewController(pc, tech, alpha)
			if err != nil {
				t.Fatalf("NewController(%v): %v", pc, err)
			}
			online := tech.RunStream(alpha, ctrl, stream)
			offline := tech.EvalProfile(pc, alpha, prof)
			if !almostEqual(online.Total(), offline.Total(), 1e-9) {
				t.Fatalf("trial %d %v slices=%d alpha=%.3f: online %.9f offline %.9f",
					trial, pc.Policy, pc.Slices, alpha, online.Total(), offline.Total())
			}
			// Component-wise agreement, not just totals.
			if !almostEqual(online.IdleLeak, offline.IdleLeak, 1e-9) ||
				!almostEqual(online.SleepLeak, offline.SleepLeak, 1e-9) ||
				!almostEqual(online.Transition, offline.Transition, 1e-9) {
				t.Fatalf("trial %d %v: component mismatch\nonline  %+v\noffline %+v",
					trial, pc.Policy, online, offline)
			}
		}
	}
}

func TestOracleControllerRejected(t *testing.T) {
	if _, err := NewController(PolicyConfig{Policy: OracleMinimal}, DefaultTech(), 0.5); err == nil {
		t.Error("OracleMinimal controller should not be constructible")
	}
	if _, err := NewController(PolicyConfig{Policy: Policy(77)}, DefaultTech(), 0.5); err == nil {
		t.Error("unknown policy should be rejected")
	}
}

func TestMaxSleepControllerTransitionsOncePerInterval(t *testing.T) {
	c := &maxSleepController{}
	var transitions float64
	for _, active := range []bool{true, false, false, false, true, false, true} {
		st := c.Step(active)
		transitions += st.TransFrac
	}
	if transitions != 2 {
		t.Errorf("transitions = %g, want 2", transitions)
	}
}

func TestGradualControllerRampsAndClears(t *testing.T) {
	c := &gradualController{k: 4}
	// Four idle cycles ramp sleep fraction 1/4, 2/4, 3/4, 1; a fifth stays 1.
	want := []float64{0.25, 0.5, 0.75, 1, 1}
	for i, w := range want {
		st := c.Step(false)
		if !almostEqual(st.SleepFrac, w, 1e-12) {
			t.Errorf("idle cycle %d: sleepFrac = %g, want %g", i+1, st.SleepFrac, w)
		}
		if i < 4 && !almostEqual(st.TransFrac, 0.25, 1e-12) {
			t.Errorf("idle cycle %d: transFrac = %g, want 0.25", i+1, st.TransFrac)
		}
		if i >= 4 && st.TransFrac != 0 {
			t.Errorf("idle cycle %d: transFrac = %g, want 0", i+1, st.TransFrac)
		}
	}
	// Activity clears the shift register.
	if st := c.Step(true); st.SleepFrac != 0 || st.TransFrac != 0 {
		t.Error("active cycle should clear sleep state")
	}
	if st := c.Step(false); !almostEqual(st.SleepFrac, 0.25, 1e-12) {
		t.Errorf("ramp should restart after activity, got %g", st.SleepFrac)
	}
	c.Reset()
	if c.idleRun != 0 {
		t.Error("Reset did not clear idle run")
	}
}

func TestRunStreamAllActiveMatchesBase(t *testing.T) {
	tech := DefaultTech()
	stream := make([]bool, 500)
	for i := range stream {
		stream[i] = true
	}
	ctrl, _ := NewController(PolicyConfig{Policy: MaxSleep}, tech, 0.5)
	got := tech.RunStream(0.5, ctrl, stream).Total()
	want := tech.BaseEnergy(0.5, 500)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("all-active stream energy %g != base energy %g", got, want)
	}
}
