package core

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/archsim/fusleep/internal/fu"
)

func TestAssignmentStringParseRoundTrip(t *testing.T) {
	a := Assignment{
		fu.IntALU: {Policy: GradualSleep, Slices: 4},
		fu.FPALU:  {Policy: MaxSleep},
		fu.Mult:   {Policy: SleepTimeout, Timeout: 32},
	}
	s := a.String()
	got, err := ParseAssignment(s)
	if err != nil {
		t.Fatalf("ParseAssignment(%q): %v", s, err)
	}
	if len(got) != len(a) {
		t.Fatalf("round trip lost classes: %q -> %v", s, got)
	}
	for c, pc := range a {
		if got[c] != pc {
			t.Errorf("class %s: %+v -> %+v", c, pc, got[c])
		}
	}
	// Canonical: class-enum order regardless of map iteration.
	if want := "intalu=GradualSleep:slices=4,mult=SleepTimeout:timeout=32,fpalu=MaxSleep"; s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}

func TestParseAssignmentErrors(t *testing.T) {
	for _, bad := range []string{
		"intalu",                              // no policy
		"warp=MaxSleep",                       // unknown class
		"intalu=Turbo",                        // unknown policy
		"intalu=MaxSleep,intalu=AlwaysActive", // duplicate class
		"intalu=GradualSleep:slices=0",        // non-positive knob
		"intalu=GradualSleep:slices",          // malformed knob
		"intalu=SleepTimeout:threshold=3",     // unknown knob
		"intalu=GradualSleep:slices=two",      // non-integer knob
	} {
		if _, err := ParseAssignment(bad); err == nil {
			t.Errorf("ParseAssignment(%q) accepted", bad)
		}
	}
	if a, err := ParseAssignment("  "); err != nil || a != nil {
		t.Errorf("blank assignment = %v, %v", a, err)
	}
}

func TestUniformAssignment(t *testing.T) {
	pc := PolicyConfig{Policy: GradualSleep, Slices: 8}
	a := UniformAssignment(pc)
	if len(a) != fu.NumClasses {
		t.Fatalf("uniform assignment covers %d classes, want %d", len(a), fu.NumClasses)
	}
	for _, c := range fu.Classes() {
		if got, ok := a.For(c); !ok || got != pc {
			t.Errorf("class %s = %+v, %v", c, got, ok)
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("uniform assignment invalid: %v", err)
	}
}

func TestAssignmentValidate(t *testing.T) {
	if err := (Assignment{fu.Class(99): {Policy: MaxSleep}}).Validate(); err == nil {
		t.Error("invalid class accepted")
	}
	if err := (Assignment{fu.IntALU: {Policy: Policy(77)}}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Assignment{fu.IntALU: {Policy: GradualSleep, Slices: -1}}).Validate(); err == nil {
		t.Error("negative slices accepted")
	}
	if err := (Assignment{fu.IntALU: {Policy: SleepTimeout, Timeout: -2}}).Validate(); err == nil {
		t.Error("negative timeout accepted")
	}
}

func TestAssignmentJSON(t *testing.T) {
	a := Assignment{
		fu.IntALU: {Policy: SleepTimeout, Timeout: 12},
		fu.FPMult: {Policy: NoOverhead},
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var got Assignment
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[fu.IntALU] != a[fu.IntALU] || got[fu.FPMult] != a[fu.FPMult] {
		t.Errorf("JSON round trip: %s -> %v", data, got)
	}
	if err := json.Unmarshal([]byte(`{"quantum": {"policy": "MaxSleep"}}`), &got); err == nil {
		t.Error("unknown class key unmarshaled")
	}
}

// TestClassBreakevenAcrossTechs is the per-class form of the breakeven
// tests: every class resolves its breakeven through its own effective
// technology point, and the degenerate limits (alpha = 1 infinite
// breakeven, zero-idle profiles) behave per class exactly as they do for a
// single unit.
func TestClassBreakevenAcrossTechs(t *testing.T) {
	techs := map[string]Tech{
		"default":   DefaultTech(),
		"high-leak": HighLeakTech(),
		"p=1":       DefaultTech().WithP(1),
		"free-slp":  {P: 0.2, C: 0.001, SleepOverhead: 0, Duty: 0.5},
		"c=0":       {P: 0.1, C: 0, SleepOverhead: 0.01, Duty: 0.5},
	}
	overrides := map[fu.Class]Tech{
		fu.Mult:   HighLeakTech(),
		fu.FPMult: DefaultTech().WithP(0.8),
	}
	for name, def := range techs {
		for _, alpha := range []float64{0, 0.25, 0.5, 0.75} {
			for _, c := range fu.Classes() {
				want := TechFor(def, overrides, c).Breakeven(alpha)
				got := ClassBreakeven(def, overrides, c, alpha)
				if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
					t.Errorf("%s alpha=%g class %s: breakeven %g, want %g", name, alpha, c, got, want)
				}
				if got <= 0 {
					t.Errorf("%s alpha=%g class %s: non-positive breakeven %g", name, alpha, c, got)
				}
				// Cross-check against the numeric search under the same
				// effective tech, like the single-unit breakeven tests.
				search := TechFor(def, overrides, c).BreakevenSearch(alpha)
				if !math.IsInf(got, 1) && math.Abs(got-search) > 1e-6*got {
					t.Errorf("%s alpha=%g class %s: analytic %g vs search %g", name, alpha, c, got, search)
				}
			}
		}
	}

	// Overridden classes must differ from the default-tech breakeven when
	// their technology differs.
	def := DefaultTech()
	if ClassBreakeven(def, overrides, fu.Mult, 0.5) == def.Breakeven(0.5) {
		t.Error("Mult override did not change the breakeven")
	}
	if ClassBreakeven(def, overrides, fu.IntALU, 0.5) != def.Breakeven(0.5) {
		t.Error("unoverridden class diverged from the default tech")
	}
}

// TestClassBreakevenDegenerate pins the per-class degenerate limits: at
// alpha = 1 every class's breakeven is +Inf regardless of overrides, and a
// class whose profile has zero idle spends nothing on idle handling under
// any assigned policy.
func TestClassBreakevenDegenerate(t *testing.T) {
	overrides := map[fu.Class]Tech{fu.FPALU: HighLeakTech()}
	for _, c := range fu.Classes() {
		if be := ClassBreakeven(DefaultTech(), overrides, c, 1); !math.IsInf(be, 1) {
			t.Errorf("class %s: breakeven at alpha=1 = %g, want +Inf", c, be)
		}
	}

	// Zero idle: every policy in a uniform assignment yields identical
	// (active-only) cycle counts for that class's profile.
	prof := NewIdleProfile()
	prof.ActiveCycles = 4096
	for _, pol := range []Policy{AlwaysActive, MaxSleep, NoOverhead, GradualSleep, OracleMinimal, SleepTimeout} {
		a := UniformAssignment(PolicyConfig{Policy: pol})
		for _, c := range fu.Classes() {
			pc, _ := a.For(c)
			tech := TechFor(DefaultTech(), overrides, c)
			cc, err := tech.ProfileCounts(pc, 0.5, prof)
			if err != nil {
				t.Fatal(err)
			}
			if cc.UncontrolledIdle != 0 || cc.Sleep != 0 || cc.Transitions != 0 || cc.Active != 4096 {
				t.Errorf("policy %v class %s zero-idle counts: %+v", pol, c, cc)
			}
		}
	}
}
