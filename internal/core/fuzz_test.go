package core

import (
	"encoding/json"
	"testing"
)

// FuzzParsePolicy asserts the parser never panics and stays consistent
// with Policy.String: any accepted name round-trips to the same value, and
// every canonical name is accepted.
func FuzzParsePolicy(f *testing.F) {
	for _, p := range []Policy{AlwaysActive, MaxSleep, NoOverhead, GradualSleep, OracleMinimal, SleepTimeout} {
		f.Add(p.String())
	}
	f.Add("maxsleep")
	f.Add("MAXSLEEP")
	f.Add("Policy(3)")
	f.Add("")
	f.Add("gradual sleep")
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParsePolicy(name)
		if err != nil {
			return
		}
		again, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("accepted %q as %v but canonical name %q rejected: %v", name, p, p.String(), err)
		}
		if again != p {
			t.Fatalf("%q parsed to %v, canonical %q to %v", name, p, p.String(), again)
		}
	})
}

// FuzzPolicyConfigJSON asserts PolicyConfig's wire form never panics and
// that every accepted document re-marshals to a stable fixpoint: marshal
// and re-unmarshal yield the identical configuration, and the term syntax
// (ParsePolicyConfig/String) agrees with it.
func FuzzPolicyConfigJSON(f *testing.F) {
	for _, seed := range []string{
		`{"policy": "AlwaysActive"}`,
		`{"policy": "GradualSleep", "slices": 4}`,
		`{"policy": "SleepTimeout", "timeout": 128}`,
		`{"policy": "maxsleep"}`,
		`{"policy": "Unknown"}`,
		`{"policy": 3}`,
		`{}`,
		`null`,
		`{"policy": "NoOverhead", "slices": -1}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var pc PolicyConfig
		if err := json.Unmarshal(data, &pc); err != nil {
			return
		}
		out, err := json.Marshal(pc)
		if err != nil {
			t.Fatalf("unmarshaled %q but cannot re-marshal %+v: %v", data, pc, err)
		}
		var again PolicyConfig
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("own output %s rejected: %v", out, err)
		}
		if again != pc {
			t.Fatalf("JSON round trip drifted: %+v -> %s -> %+v", pc, out, again)
		}
		if pc.Validate() == nil {
			term, err := ParsePolicyConfig(pc.String())
			if err != nil {
				t.Fatalf("valid config %+v renders unparseable term %q: %v", pc, pc.String(), err)
			}
			if term != pc {
				t.Fatalf("term round trip drifted: %+v -> %q -> %+v", pc, pc.String(), term)
			}
		}
	})
}
