package core

import "fmt"

// StepState describes, for one cycle, what fraction of the functional unit a
// controller holds in sleep mode and what fraction of a full-unit transition
// cost it incurred this cycle. Whole-unit policies report 0 or 1; the sliced
// GradualSleep controller reports intermediate fractions.
type StepState struct {
	SleepFrac float64
	TransFrac float64
}

// Controller is the cycle-by-cycle view of a sleep-management policy: the
// hardware sees only whether the unit computes this cycle and must decide
// the Sleep signal causally. It exists both as the executable specification
// of the policies and to cross-validate the closed-form interval accounting
// (the two are proven equivalent by property tests).
type Controller interface {
	// Reset returns the controller to the all-awake state.
	Reset()
	// Step advances one cycle. active reports whether the unit evaluates
	// this cycle; the returned state applies to this cycle.
	Step(active bool) StepState
}

// NewController builds the cycle-level controller for pc. OracleMinimal is
// rejected: it requires knowledge of the future idle length and exists only
// in the offline interval accounting.
func NewController(pc PolicyConfig, t Tech, alpha float64) (Controller, error) {
	switch pc.Policy {
	case AlwaysActive:
		return &constController{}, nil
	case NoOverhead:
		return &constController{sleep: true}, nil
	case MaxSleep:
		return &maxSleepController{}, nil
	case GradualSleep:
		return &gradualController{k: pc.slices(t, alpha)}, nil
	case SleepTimeout:
		return &timeoutController{threshold: pc.timeout(t, alpha)}, nil
	case OracleMinimal:
		return nil, fmt.Errorf("core: %v is not causally implementable", pc.Policy)
	default:
		return nil, fmt.Errorf("core: unknown policy %v", pc.Policy)
	}
}

// constController implements AlwaysActive (sleep=false) and the NoOverhead
// bound (sleep=true: idle cycles are free-transition sleep cycles).
type constController struct{ sleep bool }

func (c *constController) Reset() {}

func (c *constController) Step(active bool) StepState {
	if active || !c.sleep {
		return StepState{}
	}
	return StepState{SleepFrac: 1}
}

// maxSleepController asserts Sleep on the first cycle of every idle
// interval, paying one full transition.
type maxSleepController struct{ asleep bool }

func (c *maxSleepController) Reset() { c.asleep = false }

func (c *maxSleepController) Step(active bool) StepState {
	if active {
		c.asleep = false
		return StepState{}
	}
	if c.asleep {
		return StepState{SleepFrac: 1}
	}
	c.asleep = true
	return StepState{SleepFrac: 1, TransFrac: 1}
}

// gradualController models the shift register of Figure 5a: each idle cycle
// shifts the Sleep signal into one more of the k slices; any activity clears
// the register, waking all slices simultaneously.
type gradualController struct {
	k       int
	idleRun int // consecutive idle cycles so far in the current interval
}

func (c *gradualController) Reset() { c.idleRun = 0 }

func (c *gradualController) Step(active bool) StepState {
	if active {
		c.idleRun = 0
		return StepState{}
	}
	c.idleRun++
	kf := float64(c.k)
	var st StepState
	if c.idleRun <= c.k {
		st.SleepFrac = float64(c.idleRun) / kf
		st.TransFrac = 1 / kf
	} else {
		st.SleepFrac = 1
	}
	return st
}

// RunStream integrates equation (3) cycle by cycle over an activity stream
// (true = the unit evaluates) under the given controller. The result is
// bit-identical in spirit to EvalProfile over the stream's idle profile;
// property tests assert their numerical agreement.
func (t Tech) RunStream(alpha float64, ctrl Controller, stream []bool) Breakdown {
	var b Breakdown
	activeRate := t.ActiveRate(alpha)
	uiRate := t.UIRate(alpha)
	sleepRate := t.SleepRate()
	trans := t.TransitionCost(alpha)
	for _, active := range stream {
		st := ctrl.Step(active)
		if active {
			b.Dynamic += alpha
			b.ActiveLeak += activeRate - alpha
			continue
		}
		b.SleepLeak += st.SleepFrac * sleepRate
		b.IdleLeak += (1 - st.SleepFrac) * uiRate
		b.Transition += st.TransFrac * trans
	}
	return b
}

// ProfileFromStream converts an activity stream into the idle profile used
// by the offline accounting. Leading and trailing idle runs count as
// intervals, matching the cycle-level controllers' behavior.
func ProfileFromStream(stream []bool) *IdleProfile {
	prof := NewIdleProfile()
	run := 0
	for _, active := range stream {
		if active {
			prof.ActiveCycles++
			if run > 0 {
				prof.AddIdle(run, 1)
				run = 0
			}
			continue
		}
		run++
	}
	if run > 0 {
		prof.AddIdle(run, 1)
	}
	return prof
}
