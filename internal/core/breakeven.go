package core

import "math"

// Breakeven returns the breakeven idle interval n_BE of equation (5): the
// idle duration, in cycles, at which the leakage saved by sleeping exactly
// offsets the energy of the transition into sleep mode. For idle intervals
// longer than n_BE, MaxSleep beats AlwaysActive on that interval; for
// shorter intervals, AlwaysActive wins.
//
//	n_BE = ((1-alpha) + e_slp) / (p * (1-alpha) * (1-c))
//
// The result is +Inf when the uncontrolled-idle and sleep leakage rates
// coincide (alpha = 1 with c < 1 has zero transition discharge cost but the
// model's denominator also collapses; the formula handles it continuously).
func (t Tech) Breakeven(alpha float64) float64 {
	saved := t.UIRate(alpha) - t.SleepRate() // per-cycle leakage avoided by sleeping
	if saved <= 0 {
		return math.Inf(1)
	}
	return t.TransitionCost(alpha) / saved
}

// BreakevenSlices returns the GradualSleep slice count recommended by the
// paper: the number of cycles in the breakeven interval, rounded to the
// nearest integer and clamped to at least 1. With K = n_BE slices, one
// K-th of the circuit enters the sleep mode on each successive idle cycle.
func (t Tech) BreakevenSlices(alpha float64) int {
	be := t.Breakeven(alpha)
	if math.IsInf(be, 1) || be > 1<<20 {
		return 1 << 20
	}
	k := int(math.Round(be))
	if k < 1 {
		k = 1
	}
	return k
}

// BreakevenSearch locates the breakeven interval numerically by comparing
// the energy of an uncontrolled idle of length n against a single sleep
// transition followed by n sleep cycles, returning the smallest positive n
// (possibly fractional, found by bisection) at which sleeping is no more
// expensive. It exists to cross-check Breakeven and as a hook for models
// whose rates are not closed-form.
func (t Tech) BreakevenSearch(alpha float64) float64 {
	idle := func(n float64) float64 { return n * t.UIRate(alpha) }
	sleep := func(n float64) float64 { return t.TransitionCost(alpha) + n*t.SleepRate() }

	lo, hi := 0.0, 1.0
	for sleep(hi) > idle(hi) {
		hi *= 2
		if hi > 1e12 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if sleep(mid) > idle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
