package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolicyStrings(t *testing.T) {
	names := map[Policy]string{
		AlwaysActive:  "AlwaysActive",
		MaxSleep:      "MaxSleep",
		NoOverhead:    "NoOverhead",
		GradualSleep:  "GradualSleep",
		OracleMinimal: "OracleMinimal",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if got := Policy(99).String(); got != "Policy(99)" {
		t.Errorf("unknown policy String() = %q", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	good := Scenario{TotalCycles: 1000, Usage: 0.5, MeanIdle: 10, Alpha: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []Scenario{
		{TotalCycles: 0, Usage: 0.5, MeanIdle: 10, Alpha: 0.5},
		{TotalCycles: 1000, Usage: -0.1, MeanIdle: 10, Alpha: 0.5},
		{TotalCycles: 1000, Usage: 1.1, MeanIdle: 10, Alpha: 0.5},
		{TotalCycles: 1000, Usage: 0.5, MeanIdle: 0, Alpha: 0.5},
		{TotalCycles: 1000, Usage: 0.5, MeanIdle: 10, Alpha: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, s)
		}
	}
	// Usage = 1 needs no MeanIdle.
	full := Scenario{TotalCycles: 10, Usage: 1, Alpha: 0.5}
	if err := full.Validate(); err != nil {
		t.Errorf("fully-active scenario rejected: %v", err)
	}
}

func TestScenarioCountsConservation(t *testing.T) {
	// Cycle categories must partition the total for every policy.
	tech := DefaultTech()
	f := func(usageRaw, idleRaw, alphaRaw float64, slices uint8) bool {
		s := Scenario{
			TotalCycles: 1e6,
			Usage:       math.Mod(math.Abs(usageRaw), 1),
			MeanIdle:    1 + math.Mod(math.Abs(idleRaw), 500),
			Alpha:       math.Mod(math.Abs(alphaRaw), 1),
		}
		for _, pc := range []PolicyConfig{
			{Policy: AlwaysActive},
			{Policy: MaxSleep},
			{Policy: NoOverhead},
			{Policy: GradualSleep, Slices: 1 + int(slices)},
			{Policy: GradualSleep},
			{Policy: OracleMinimal},
		} {
			cc := s.Counts(tech, pc)
			if !almostEqual(cc.Total(), s.TotalCycles, 1e-9) {
				return false
			}
			if cc.Active < 0 || cc.UncontrolledIdle < -1e-9 || cc.Sleep < -1e-9 || cc.Transitions < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoOverheadIsLowerBound(t *testing.T) {
	tech := DefaultTech()
	f := func(pRaw, usageRaw, idleRaw, alphaRaw float64) bool {
		tc := tech.WithP(0.01 + math.Mod(math.Abs(pRaw), 0.99))
		s := Scenario{
			TotalCycles: 1e6,
			Usage:       math.Mod(math.Abs(usageRaw), 1),
			MeanIdle:    1 + math.Mod(math.Abs(idleRaw), 500),
			Alpha:       math.Mod(math.Abs(alphaRaw), 1),
		}
		no := tc.PolicyEnergy(PolicyConfig{Policy: NoOverhead}, s).Total()
		for _, p := range []Policy{AlwaysActive, MaxSleep, GradualSleep, OracleMinimal} {
			if tc.PolicyEnergy(PolicyConfig{Policy: p}, s).Total() < no-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleIsMinOfExtremes(t *testing.T) {
	// OracleMinimal picks, per scenario, the cheaper of MaxSleep and
	// AlwaysActive (uniform interval lengths).
	tech := DefaultTech()
	f := func(pRaw, usageRaw, idleRaw float64) bool {
		tc := tech.WithP(0.01 + math.Mod(math.Abs(pRaw), 0.99))
		s := Scenario{
			TotalCycles: 1e6,
			Usage:       math.Mod(math.Abs(usageRaw), 1),
			MeanIdle:    1 + math.Mod(math.Abs(idleRaw), 500),
			Alpha:       0.5,
		}
		orc := tc.PolicyEnergy(PolicyConfig{Policy: OracleMinimal}, s).Total()
		ms := tc.PolicyEnergy(PolicyConfig{Policy: MaxSleep}, s).Total()
		aa := tc.PolicyEnergy(PolicyConfig{Policy: AlwaysActive}, s).Total()
		return orc <= ms+1e-9 && orc <= aa+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGradualSleepLimits(t *testing.T) {
	tech := DefaultTech()
	s := Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: 25, Alpha: 0.5}

	// K = 1 reduces exactly to MaxSleep.
	g1 := tech.PolicyEnergy(PolicyConfig{Policy: GradualSleep, Slices: 1}, s)
	ms := tech.PolicyEnergy(PolicyConfig{Policy: MaxSleep}, s)
	if !almostEqual(g1.Total(), ms.Total(), 1e-9) {
		t.Errorf("GradualSleep(K=1) = %g, MaxSleep = %g", g1.Total(), ms.Total())
	}

	// K -> infinity approaches AlwaysActive from above.
	gBig := tech.PolicyEnergy(PolicyConfig{Policy: GradualSleep, Slices: 1 << 20}, s)
	aa := tech.PolicyEnergy(PolicyConfig{Policy: AlwaysActive}, s)
	if rel := math.Abs(gBig.Total()-aa.Total()) / aa.Total(); rel > 1e-3 {
		t.Errorf("GradualSleep(K=2^20) = %g vs AlwaysActive %g (rel %g)", gBig.Total(), aa.Total(), rel)
	}
}

func TestGradualSplitSmallCases(t *testing.T) {
	// Hand-computed: l=2, k=4. Slice1 sleeps cycles 1-2, slice2 sleeps
	// cycle 2, slices 3-4 stay uncontrolled both cycles.
	ui, sleep, trans := gradualSplit(2, 4)
	if !almostEqual(ui, 5.0/4.0, 1e-12) || !almostEqual(sleep, 3.0/4.0, 1e-12) || !almostEqual(trans, 2.0/4.0, 1e-12) {
		t.Errorf("gradualSplit(2,4) = %g,%g,%g want 1.25,0.75,0.5", ui, sleep, trans)
	}
	// l >= k: all slices asleep eventually.
	ui, sleep, trans = gradualSplit(10, 2)
	// slice1: 0 ui, 10 sleep; slice2: 1 ui, 9 sleep.
	if !almostEqual(ui, 0.5, 1e-12) || !almostEqual(sleep, 9.5, 1e-12) || trans != 1 {
		t.Errorf("gradualSplit(10,2) = %g,%g,%g want 0.5,9.5,1", ui, sleep, trans)
	}
	// Zero-length intervals contribute nothing.
	if ui, sleep, trans = gradualSplit(0, 8); ui != 0 || sleep != 0 || trans != 0 {
		t.Errorf("gradualSplit(0,8) nonzero")
	}
}

func TestGradualSplitConservesCycles(t *testing.T) {
	f := func(lRaw float64, kRaw uint8) bool {
		l := math.Mod(math.Abs(lRaw), 1000)
		k := 1 + int(kRaw)
		ui, sleep, trans := gradualSplit(l, k)
		if !almostEqual(ui+sleep, l, 1e-9) {
			return false
		}
		return ui >= -1e-12 && sleep >= -1e-12 && trans >= 0 && trans <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4bShape(t *testing.T) {
	// Figure 4b (mean idle 10, alpha 0.5): at low p and low usage, MaxSleep
	// costs MORE than AlwaysActive (breakeven ~ 20 > 10); at high p the
	// ordering flips.
	tech := DefaultTech()
	s := Scenario{TotalCycles: 1e6, Usage: 0.1, MeanIdle: 10, Alpha: 0.5}

	low := tech.WithP(0.05)
	if ms, aa := low.RelativeToBase(PolicyConfig{Policy: MaxSleep}, s), low.RelativeToBase(PolicyConfig{Policy: AlwaysActive}, s); ms <= aa {
		t.Errorf("p=0.05: MaxSleep (%.4f) should exceed AlwaysActive (%.4f)", ms, aa)
	}
	high := tech.WithP(0.9)
	if ms, aa := high.RelativeToBase(PolicyConfig{Policy: MaxSleep}, s), high.RelativeToBase(PolicyConfig{Policy: AlwaysActive}, s); ms >= aa {
		t.Errorf("p=0.9: MaxSleep (%.4f) should undercut AlwaysActive (%.4f)", ms, aa)
	}
}

func TestFigure4cLongIdleFavorsSleep(t *testing.T) {
	// With 100-cycle intervals, MaxSleep is near NoOverhead at 10% usage
	// for essentially all p (the transition is amortized over 100 cycles).
	tech := DefaultTech()
	s := Scenario{TotalCycles: 1e6, Usage: 0.1, MeanIdle: 100, Alpha: 0.5}
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		tc := tech.WithP(p)
		ms := tc.RelativeToBase(PolicyConfig{Policy: MaxSleep}, s)
		no := tc.RelativeToBase(PolicyConfig{Policy: NoOverhead}, s)
		if ms-no > 0.05 {
			t.Errorf("p=%g: MaxSleep %.4f too far above NoOverhead %.4f", p, ms, no)
		}
	}
}

func TestFigure4dWorstCase(t *testing.T) {
	// Mean idle of 1 cycle at 50% usage maximizes transition overhead:
	// MaxSleep must exceed AlwaysActive dramatically at moderate p.
	tech := DefaultTech().WithP(0.2)
	s := Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: 1, Alpha: 0.5}
	ms := tech.RelativeToBase(PolicyConfig{Policy: MaxSleep}, s)
	aa := tech.RelativeToBase(PolicyConfig{Policy: AlwaysActive}, s)
	if ms < aa {
		t.Errorf("worst case: MaxSleep %.4f should exceed AlwaysActive %.4f", ms, aa)
	}
}

func TestTransitionsNeverExceedActiveCycles(t *testing.T) {
	// The min() clamp of equation (7): every sleep entry needs a prior
	// active cycle.
	tech := DefaultTech()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := Scenario{
			TotalCycles: 1e5,
			Usage:       rng.Float64() * 0.05, // tiny usage: many long idles
			MeanIdle:    1 + rng.Float64()*3,
			Alpha:       0.5,
		}
		cc := s.Counts(tech, PolicyConfig{Policy: MaxSleep})
		if cc.Transitions > cc.Active+1e-9 {
			t.Fatalf("transitions %g exceed active cycles %g", cc.Transitions, cc.Active)
		}
	}
}

func TestRelativeToBaseBounds(t *testing.T) {
	// Any policy's energy relative to 100% computation stays below ~1.4 for
	// the Figure 4 axes parameters and is positive.
	tech := DefaultTech()
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 1.0} {
		tc := tech.WithP(p)
		for _, usage := range []float64{0.1, 0.9} {
			s := Scenario{TotalCycles: 1e6, Usage: usage, MeanIdle: 10, Alpha: 0.5}
			for _, pol := range Policies {
				rel := tc.RelativeToBase(PolicyConfig{Policy: pol}, s)
				if rel <= 0 || rel > 1.5 {
					t.Errorf("p=%g usage=%g %v: relative energy %g out of plausible range", p, usage, pol, rel)
				}
			}
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{AlwaysActive, MaxSleep, NoOverhead, GradualSleep, OracleMinimal, SleepTimeout} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePolicy("maxsleep"); err != nil || got != MaxSleep {
		t.Errorf("case-insensitive parse = %v, %v", got, err)
	}
	if _, err := ParsePolicy("TurboSleep"); err == nil {
		t.Error("unknown policy parsed")
	}
}

func TestPolicyConfigJSONRoundTrip(t *testing.T) {
	in := PolicyConfig{Policy: GradualSleep, Slices: 4}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"policy":"GradualSleep","slices":4}`; string(raw) != want {
		t.Errorf("marshal = %s, want %s", raw, want)
	}
	var out PolicyConfig
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v -> %+v", in, out)
	}
	if err := json.Unmarshal([]byte(`{"policy":"NotAPolicy"}`), &out); err == nil {
		t.Error("unknown policy name unmarshaled")
	}
}

// TestSleepTimeoutJSONRoundTrip pins the wire form the daemon and tuner
// use to name the SleepTimeout policy and its threshold knob: the policy
// travels by name, the Timeout parameter survives the round trip, and the
// breakeven default (Timeout 0) stays omitted.
func TestSleepTimeoutJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   PolicyConfig
		wire string
	}{
		{PolicyConfig{Policy: SleepTimeout, Timeout: 40}, `{"policy":"SleepTimeout","timeout":40}`},
		{PolicyConfig{Policy: SleepTimeout}, `{"policy":"SleepTimeout"}`},
		{PolicyConfig{Policy: AlwaysActive}, `{"policy":"AlwaysActive"}`},
		{PolicyConfig{Policy: MaxSleep}, `{"policy":"MaxSleep"}`},
		{PolicyConfig{Policy: NoOverhead}, `{"policy":"NoOverhead"}`},
		{PolicyConfig{Policy: OracleMinimal}, `{"policy":"OracleMinimal"}`},
		{PolicyConfig{Policy: GradualSleep, Slices: 8}, `{"policy":"GradualSleep","slices":8}`},
	}
	for _, tc := range cases {
		raw, err := json.Marshal(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != tc.wire {
			t.Errorf("marshal(%+v) = %s, want %s", tc.in, raw, tc.wire)
		}
		var out PolicyConfig
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if out != tc.in {
			t.Errorf("round trip %+v -> %+v", tc.in, out)
		}
	}
	// Case-insensitive parse, so hand-written requests can say "sleeptimeout".
	var out PolicyConfig
	if err := json.Unmarshal([]byte(`{"policy":"sleeptimeout","timeout":7}`), &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != SleepTimeout || out.Timeout != 7 {
		t.Errorf("lower-case parse = %+v", out)
	}
}
