package core

import "math"

// SleepTimeout is the "more complex control strategy" the paper speculates
// about (Section 7): stay in uncontrolled idle for a threshold number of
// cycles, then assert the Sleep signal if the idle persists. With the
// threshold set to the breakeven interval this is the classic ski-rental
// policy and is 2-competitive against the per-interval oracle: no interval
// costs more than twice what OracleMinimal pays. It exists here to test the
// paper's conclusion that such machinery buys little over GradualSleep.
const SleepTimeout Policy = 100

// timeout resolves the effective threshold in whole cycles (the hardware
// counter counts cycles, so the breakeven default rounds up).
func (pc PolicyConfig) timeout(t Tech, alpha float64) float64 {
	if pc.Timeout > 0 {
		return float64(pc.Timeout)
	}
	be := t.Breakeven(alpha)
	if math.IsInf(be, 1) || be > 1e15 {
		return math.MaxFloat64 / 4
	}
	return math.Ceil(be)
}

// timeoutSplit returns the uncontrolled/sleep/transition split of one idle
// interval of length l under a timeout threshold T: intervals shorter than
// or equal to T never sleep; longer ones pay T uncontrolled cycles, one
// transition, and sleep for the remainder.
func timeoutSplit(l, T float64) (ui, sleep, trans float64) {
	if l <= T {
		return l, 0, 0
	}
	return T, l - T, 1
}

// timeoutController is the causal cycle-level form: a counter of
// consecutive idle cycles asserts Sleep once it exceeds the threshold.
type timeoutController struct {
	threshold float64
	idleRun   float64
	asleep    bool
}

func (c *timeoutController) Reset() {
	c.idleRun = 0
	c.asleep = false
}

func (c *timeoutController) Step(active bool) StepState {
	if active {
		c.idleRun = 0
		c.asleep = false
		return StepState{}
	}
	c.idleRun++
	if c.asleep {
		return StepState{SleepFrac: 1}
	}
	if c.idleRun > c.threshold {
		c.asleep = true
		return StepState{SleepFrac: 1, TransFrac: 1}
	}
	return StepState{}
}
