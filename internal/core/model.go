// Package core implements the architecture-level static-energy model and the
// sleep-mode management policies from Dropsho et al., "Managing Static
// Leakage Energy in Microprocessor Functional Units" (MICRO-35, 2002).
//
// All energies are normalized to E_A, the maximum dynamic energy dissipated
// by one evaluation of the whole functional unit (equation (3) of the paper).
// The model abstracts a dual-threshold-voltage domino-logic functional unit
// into four technology parameters (Tech) and divides run time into three
// cycle categories:
//
//   - active cycles (N_A): the unit evaluates; dynamic energy is spent and
//     the circuit leaks in a state determined by the activity factor alpha.
//   - uncontrolled idle cycles (N_UI): the clock is gated but the Sleep
//     signal is not asserted; the circuit leaks in the state left behind by
//     the last evaluation.
//   - sleep cycles (N_S): the Sleep signal forces every dynamic node into
//     the discharged, low-leakage state.
//
// Transitions into sleep mode (N_tr) cost energy because the (1-alpha)
// fraction of dynamic nodes that did not discharge during the previous
// evaluation must be discharged on entry and re-precharged on wake-up.
package core

import (
	"errors"
	"fmt"
)

// Tech holds the technology parameters of the energy model. The zero value
// is invalid; use DefaultTech or Table1Tech as starting points.
type Tech struct {
	// P is the leakage factor p: the ratio of the per-cycle leakage energy
	// in the high-leakage state (E_HI) to the maximum dynamic evaluation
	// energy (E_A). The paper varies p across (0, 1]; the 70 nm circuit of
	// Table 1 measures p = 1.4 fJ / 22.2 fJ ~= 0.063.
	P float64 `json:"p"`

	// C is the ratio c = E_LO / E_HI of per-cycle leakage energy in the
	// low-leakage (discharged) state to the high-leakage state. Dual-Vt
	// domino circuits achieve c on the order of 5e-4 (Table 1); the paper's
	// analysis pessimistically uses 0.001.
	C float64 `json:"c"`

	// SleepOverhead is the normalized energy e_slp = E_sleep / E_A of
	// asserting the sleep transistors and distributing the Sleep signal
	// across the functional unit, paid once per transition into sleep mode.
	// The paper's analysis pessimistically uses 0.01.
	SleepOverhead float64 `json:"sleepOverhead"`

	// Duty is the clock duty cycle d (fraction of the period the clock is
	// high, i.e. the evaluate phase). The paper fixes d = 0.5.
	Duty float64 `json:"duty"`
}

// DefaultTech returns the parameter values used throughout the paper's
// analysis and simulation sections (Table 4): c = 0.001, e_slp = 0.01,
// d = 0.5, and the near-term technology point p = 0.05.
func DefaultTech() Tech {
	return Tech{P: 0.05, C: 0.001, SleepOverhead: 0.01, Duty: 0.5}
}

// HighLeakTech returns the high-leakage technology point p = 0.50 used to
// demonstrate contrasting policy behavior (Figures 8b, 9).
func HighLeakTech() Tech {
	t := DefaultTech()
	t.P = 0.50
	return t
}

// WithP returns a copy of t with the leakage factor replaced, for sweeps
// across the technology space.
func (t Tech) WithP(p float64) Tech {
	t.P = p
	return t
}

// Validate reports whether the parameters are inside the model's domain.
func (t Tech) Validate() error {
	switch {
	case t.P <= 0 || t.P > 1:
		return fmt.Errorf("core: leakage factor P=%g out of range (0,1]", t.P)
	case t.C < 0 || t.C >= 1:
		return fmt.Errorf("core: leakage ratio C=%g out of range [0,1)", t.C)
	case t.SleepOverhead < 0:
		return fmt.Errorf("core: negative sleep overhead %g", t.SleepOverhead)
	case t.Duty <= 0 || t.Duty > 1:
		return fmt.Errorf("core: duty cycle %g out of range (0,1]", t.Duty)
	default:
		return nil
	}
}

// ErrAlpha is returned when an activity factor is outside [0,1].
var ErrAlpha = errors.New("core: activity factor out of range [0,1]")

// ValidAlpha reports whether alpha is a legal activity factor.
func ValidAlpha(alpha float64) bool { return alpha >= 0 && alpha <= 1 }

// ActiveRate returns the normalized energy of one active (evaluation) cycle:
// the dynamic energy alpha*E_A plus the precharge-phase leakage (the whole
// circuit sits in the high-leakage precharged state for the (1-d) fraction
// of the period) plus the post-evaluation leakage for the d fraction of the
// period (alpha of the nodes discharged to the low-leakage state, (1-alpha)
// still high).
func (t Tech) ActiveRate(alpha float64) float64 {
	return alpha + (1-t.Duty)*t.P + t.Duty*t.P*(alpha*t.C+(1-alpha))
}

// UIRate returns the normalized per-cycle leakage energy of an uncontrolled
// idle cycle: the clock gate freezes the circuit in its post-evaluation
// state, so alpha of the nodes leak at the low rate and (1-alpha) at the
// high rate for the full period.
func (t Tech) UIRate(alpha float64) float64 {
	return t.P * (alpha*t.C + (1 - alpha))
}

// SleepRate returns the normalized per-cycle leakage energy while the Sleep
// signal holds every dynamic node in the low-leakage state.
func (t Tech) SleepRate() float64 { return t.C * t.P }

// TransitionCost returns the normalized energy of one transition into sleep
// mode: the (1-alpha) fraction of nodes that the last evaluation left
// charged are discharged now and must be re-precharged on wake-up (costing
// (1-alpha)*E_A of dynamic energy), plus the sleep-signal overhead.
func (t Tech) TransitionCost(alpha float64) float64 {
	return (1 - alpha) + t.SleepOverhead
}

// CycleCounts aggregates how a run's cycles were spent. Counts are float64
// so closed-form scenarios can use fractional expectations; measured runs
// use integral values.
type CycleCounts struct {
	Active           float64 // N_A: evaluation cycles
	UncontrolledIdle float64 // N_UI: clock-gated, not asleep
	Sleep            float64 // N_S: Sleep signal asserted
	Transitions      float64 // N_tr: entries into sleep mode
}

// Total returns the number of cycles covered (transitions are events, not
// cycles, and are excluded).
func (c CycleCounts) Total() float64 {
	return c.Active + c.UncontrolledIdle + c.Sleep
}

// Add returns the element-wise sum of two cycle-count aggregates.
func (c CycleCounts) Add(o CycleCounts) CycleCounts {
	return CycleCounts{
		Active:           c.Active + o.Active,
		UncontrolledIdle: c.UncontrolledIdle + o.UncontrolledIdle,
		Sleep:            c.Sleep + o.Sleep,
		Transitions:      c.Transitions + o.Transitions,
	}
}

// Breakdown splits the total normalized energy of equation (3) into its
// physical sources, so that derived quantities such as the leakage fraction
// (Figure 9b) fall out directly.
type Breakdown struct {
	// Dynamic is the switching energy of evaluations: N_A * alpha.
	Dynamic float64
	// ActiveLeak is leakage dissipated during active cycles (precharge-phase
	// plus post-evaluation leakage).
	ActiveLeak float64
	// IdleLeak is leakage dissipated during uncontrolled idle cycles.
	IdleLeak float64
	// SleepLeak is the residual leakage while in sleep mode.
	SleepLeak float64
	// Transition is the dynamic energy of entering sleep mode (node
	// discharge/re-precharge plus sleep-signal distribution overhead).
	Transition float64
}

// Total returns the total normalized energy.
func (b Breakdown) Total() float64 {
	return b.Dynamic + b.ActiveLeak + b.IdleLeak + b.SleepLeak + b.Transition
}

// Leakage returns the leakage-only portion of the energy (everything that
// scales with the leakage factor p).
func (b Breakdown) Leakage() float64 { return b.ActiveLeak + b.IdleLeak + b.SleepLeak }

// LeakageFraction returns Leakage()/Total(), the quantity plotted in
// Figure 9b. It returns 0 for an empty breakdown.
func (b Breakdown) LeakageFraction() float64 {
	tot := b.Total()
	if tot == 0 {
		return 0
	}
	return b.Leakage() / tot
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Dynamic:    b.Dynamic + o.Dynamic,
		ActiveLeak: b.ActiveLeak + o.ActiveLeak,
		IdleLeak:   b.IdleLeak + o.IdleLeak,
		SleepLeak:  b.SleepLeak + o.SleepLeak,
		Transition: b.Transition + o.Transition,
	}
}

// Scale returns the breakdown with every component multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		Dynamic:    b.Dynamic * k,
		ActiveLeak: b.ActiveLeak * k,
		IdleLeak:   b.IdleLeak * k,
		SleepLeak:  b.SleepLeak * k,
		Transition: b.Transition * k,
	}
}

// Energy evaluates equation (3): the total energy, normalized to E_A, of a
// run whose cycles divide according to cc under activity factor alpha.
func (t Tech) Energy(alpha float64, cc CycleCounts) Breakdown {
	return Breakdown{
		Dynamic:    cc.Active * alpha,
		ActiveLeak: cc.Active * (t.ActiveRate(alpha) - alpha),
		IdleLeak:   cc.UncontrolledIdle * t.UIRate(alpha),
		SleepLeak:  cc.Sleep * t.SleepRate(),
		Transition: cc.Transitions * t.TransitionCost(alpha),
	}
}

// BaseEnergy returns E_base (equation (9)): the energy the unit would
// dissipate if it performed a computation on every one of totalCycles
// cycles. The paper normalizes its simulation results to this quantity.
func (t Tech) BaseEnergy(alpha, totalCycles float64) float64 {
	return totalCycles * t.ActiveRate(alpha)
}
