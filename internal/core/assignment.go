package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/archsim/fusleep/internal/fu"
)

// Assignment maps functional-unit classes to their sleep-policy
// configuration. The paper's classes differ in idle-interval structure and
// breakeven point, so a machine carries one policy per class instead of one
// policy for every unit. A missing class falls back to whatever default the
// evaluation context supplies (the zero PolicyConfig is AlwaysActive).
//
// Assignment JSON-encodes as an object keyed by class name, e.g.
//
//	{"intalu": {"policy": "GradualSleep", "slices": 4},
//	 "fpalu":  {"policy": "MaxSleep"}}
type Assignment map[fu.Class]PolicyConfig

// UniformAssignment assigns the same policy configuration to every class —
// the configuration that must reproduce the single-pool results.
func UniformAssignment(pc PolicyConfig) Assignment {
	a := make(Assignment, fu.NumClasses)
	for _, c := range fu.Classes() {
		a[c] = pc
	}
	return a
}

// For returns the class's policy configuration and whether it was assigned.
func (a Assignment) For(c fu.Class) (PolicyConfig, bool) {
	pc, ok := a[c]
	return pc, ok
}

// Classes returns the assigned classes in canonical (enum) order, so every
// consumer — hashes, tables, wire encodings — walks the map
// deterministically.
func (a Assignment) Classes() []fu.Class {
	out := make([]fu.Class, 0, len(a))
	for c := range a {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate rejects assignments naming unknown classes or policies, or
// carrying negative tuning knobs.
func (a Assignment) Validate() error {
	// Walk classes in canonical order so an assignment with several bad
	// entries always reports the same one first.
	for _, c := range a.Classes() {
		if !c.Valid() {
			return fmt.Errorf("core: assignment names invalid class %d", uint8(c))
		}
		if err := a[c].Validate(); err != nil {
			return fmt.Errorf("core: assignment for %s: %w", c, err)
		}
	}
	return nil
}

// String renders the assignment canonically: class=Policy[:knob=v] pairs in
// class order, e.g. "intalu=GradualSleep:slices=4,fpalu=MaxSleep". The
// output parses back via ParseAssignment and doubles as the assignment's
// stable hash text.
func (a Assignment) String() string {
	if len(a) == 0 {
		return ""
	}
	parts := make([]string, 0, len(a))
	for _, c := range a.Classes() {
		parts = append(parts, c.String()+"="+a[c].String())
	}
	return strings.Join(parts, ",")
}

// ParseAssignment parses the String form: comma-separated
// class=Policy[:slices=K][:timeout=T] terms. An empty string yields nil.
func ParseAssignment(s string) (Assignment, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	a := make(Assignment)
	for _, term := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok {
			return nil, fmt.Errorf("core: assignment term %q wants class=Policy", term)
		}
		c, err := fu.ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if _, dup := a[c]; dup {
			return nil, fmt.Errorf("core: class %s assigned twice", c)
		}
		pc, err := ParsePolicyConfig(spec)
		if err != nil {
			return nil, fmt.Errorf("core: assignment for %s: %w", c, err)
		}
		a[c] = pc
	}
	return a, nil
}

// Validate rejects unknown policies and negative tuning knobs.
func (pc PolicyConfig) Validate() error {
	if _, err := ParsePolicy(pc.Policy.String()); err != nil {
		return err
	}
	if pc.Slices < 0 {
		return fmt.Errorf("core: negative slice count %d", pc.Slices)
	}
	if pc.Timeout < 0 {
		return fmt.Errorf("core: negative timeout %d", pc.Timeout)
	}
	return nil
}

// String renders the configuration as Policy[:slices=K][:timeout=T] — the
// term syntax of ParsePolicyConfig and Assignment.String.
func (pc PolicyConfig) String() string {
	s := pc.Policy.String()
	if pc.Slices > 0 {
		s += ":slices=" + strconv.Itoa(pc.Slices)
	}
	if pc.Timeout > 0 {
		s += ":timeout=" + strconv.Itoa(pc.Timeout)
	}
	return s
}

// ParsePolicyConfig parses Policy[:slices=K][:timeout=T], the inverse of
// PolicyConfig.String.
func ParsePolicyConfig(s string) (PolicyConfig, error) {
	fields := strings.Split(strings.TrimSpace(s), ":")
	pol, err := ParsePolicy(strings.TrimSpace(fields[0]))
	if err != nil {
		return PolicyConfig{}, err
	}
	pc := PolicyConfig{Policy: pol}
	for _, f := range fields[1:] {
		knob, val, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return PolicyConfig{}, fmt.Errorf("core: policy knob %q wants name=value", f)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n <= 0 {
			return PolicyConfig{}, fmt.Errorf("core: policy knob %q wants a positive integer", f)
		}
		switch strings.ToLower(strings.TrimSpace(knob)) {
		case "slices":
			pc.Slices = n
		case "timeout":
			pc.Timeout = n
		default:
			return PolicyConfig{}, fmt.Errorf("core: unknown policy knob %q (have slices, timeout)", knob)
		}
	}
	return pc, nil
}

// TechFor resolves the effective technology point for one class: the
// per-class override when present, else the machine default. Classes built
// in different circuit styles (an FP multiplier's leakage factor differs
// from an integer ALU's) carry their own Tech, which shifts their breakeven
// interval and therefore their policy parameter defaults.
func TechFor(def Tech, overrides map[fu.Class]Tech, c fu.Class) Tech {
	if t, ok := overrides[c]; ok {
		return t
	}
	return def
}

// ClassBreakeven returns the breakeven idle interval of one class under its
// effective technology point — the per-class form of Tech.Breakeven that
// drives each class's GradualSleep slice count and SleepTimeout threshold
// defaults.
func ClassBreakeven(def Tech, overrides map[fu.Class]Tech, c fu.Class, alpha float64) float64 {
	return TechFor(def, overrides, c).Breakeven(alpha)
}
