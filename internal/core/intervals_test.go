package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdleProfileBasics(t *testing.T) {
	p := NewIdleProfile()
	p.ActiveCycles = 100
	p.AddIdle(5, 2)
	p.AddIdle(10, 1)
	p.AddIdle(0, 7)  // ignored
	p.AddIdle(3, 0)  // ignored
	p.AddIdle(-4, 1) // ignored

	if got := p.IdleCycles(); got != 20 {
		t.Errorf("IdleCycles = %d, want 20", got)
	}
	if got := p.IntervalCount(); got != 3 {
		t.Errorf("IntervalCount = %d, want 3", got)
	}
	if got := p.TotalCycles(); got != 120 {
		t.Errorf("TotalCycles = %d, want 120", got)
	}
	if got := p.Usage(); !almostEqual(got, 100.0/120.0, 1e-12) {
		t.Errorf("Usage = %g", got)
	}
	if got := p.MeanIdle(); !almostEqual(got, 20.0/3.0, 1e-12) {
		t.Errorf("MeanIdle = %g", got)
	}
	if ls := p.Lengths(); len(ls) != 2 || ls[0] != 5 || ls[1] != 10 {
		t.Errorf("Lengths = %v", ls)
	}
}

func TestIdleProfileEmpty(t *testing.T) {
	var p IdleProfile
	if p.Usage() != 0 || p.MeanIdle() != 0 || p.IdleCycles() != 0 {
		t.Errorf("empty profile should be all zeros")
	}
	// AddIdle on a zero-value profile must allocate the map.
	p.AddIdle(4, 1)
	if p.IdleCycles() != 4 {
		t.Errorf("AddIdle on zero value failed")
	}
}

func TestIdleProfileMerge(t *testing.T) {
	a := NewIdleProfile()
	a.ActiveCycles = 10
	a.AddIdle(3, 2)
	b := NewIdleProfile()
	b.ActiveCycles = 5
	b.AddIdle(3, 1)
	b.AddIdle(7, 4)
	a.Merge(b)
	if a.ActiveCycles != 15 {
		t.Errorf("merged active = %d", a.ActiveCycles)
	}
	if a.Intervals[3] != 3 || a.Intervals[7] != 4 {
		t.Errorf("merged intervals = %v", a.Intervals)
	}
}

func TestProfileCountsMatchScenarioForUniformIntervals(t *testing.T) {
	// A measured profile whose intervals all share one length must agree
	// with the closed-form Scenario of the same usage and mean idle.
	tech := DefaultTech().WithP(0.3)
	alpha := 0.5
	const nIntervals, l = 100, 25
	prof := NewIdleProfile()
	prof.ActiveCycles = 5000
	prof.AddIdle(l, nIntervals)

	s := Scenario{
		TotalCycles: float64(prof.TotalCycles()),
		Usage:       prof.Usage(),
		MeanIdle:    l,
		Alpha:       alpha,
	}
	for _, pc := range []PolicyConfig{
		{Policy: AlwaysActive},
		{Policy: MaxSleep},
		{Policy: NoOverhead},
		{Policy: GradualSleep, Slices: 10},
		{Policy: OracleMinimal},
	} {
		fromProf := tech.EvalProfile(pc, alpha, prof).Total()
		fromScen := tech.PolicyEnergy(pc, s).Total()
		if !almostEqual(fromProf, fromScen, 1e-9) {
			t.Errorf("%v: profile %g vs scenario %g", pc.Policy, fromProf, fromScen)
		}
	}
}

func TestProfileCountsValidation(t *testing.T) {
	tech := DefaultTech()
	prof := NewIdleProfile()
	prof.ActiveCycles = 10
	if _, err := tech.ProfileCounts(PolicyConfig{Policy: MaxSleep}, 2.0, prof); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := (Tech{}).ProfileCounts(PolicyConfig{Policy: MaxSleep}, 0.5, prof); err == nil {
		t.Error("invalid tech accepted")
	}
	if _, err := tech.ProfileCounts(PolicyConfig{Policy: Policy(42)}, 0.5, prof); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestOraclePerIntervalDominates(t *testing.T) {
	// On arbitrary measured profiles, OracleMinimal is at most the cost of
	// both MaxSleep and AlwaysActive (it picks per interval).
	tech := DefaultTech()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		p := 0.02 + rng.Float64()*0.9
		tc := tech.WithP(p)
		prof := NewIdleProfile()
		prof.ActiveCycles = uint64(1 + rng.Intn(100000))
		for i := 0; i < 30; i++ {
			prof.AddIdle(1+rng.Intn(500), uint64(1+rng.Intn(50)))
		}
		orc := tc.EvalProfile(PolicyConfig{Policy: OracleMinimal}, 0.5, prof).Total()
		ms := tc.EvalProfile(PolicyConfig{Policy: MaxSleep}, 0.5, prof).Total()
		aa := tc.EvalProfile(PolicyConfig{Policy: AlwaysActive}, 0.5, prof).Total()
		no := tc.EvalProfile(PolicyConfig{Policy: NoOverhead}, 0.5, prof).Total()
		if orc > ms+1e-9 || orc > aa+1e-9 {
			t.Fatalf("p=%.3f: oracle %g exceeds ms %g or aa %g", p, orc, ms, aa)
		}
		if no > orc+1e-9 {
			t.Fatalf("p=%.3f: NoOverhead %g exceeds oracle %g", p, no, orc)
		}
	}
}

func TestIntervalEnergyFigure5cShape(t *testing.T) {
	// Figure 5c (p=0.05, alpha=0.5): GradualSleep tracks AlwaysActive for
	// short intervals, tracks MaxSleep for long ones, and is the worst of
	// the three only near the breakeven point.
	tech := DefaultTech() // p = 0.05
	alpha := 0.5
	k := tech.BreakevenSlices(alpha)
	gs := PolicyConfig{Policy: GradualSleep, Slices: k}
	ms := PolicyConfig{Policy: MaxSleep}
	aa := PolicyConfig{Policy: AlwaysActive}

	// Short interval: GS within a whisker of AA, both well below MS.
	shortGS := tech.IntervalEnergy(gs, alpha, 2)
	shortAA := tech.IntervalEnergy(aa, alpha, 2)
	shortMS := tech.IntervalEnergy(ms, alpha, 2)
	if shortGS > 2*shortAA || shortGS > shortMS/2 {
		t.Errorf("short idle: GS=%.4f AA=%.4f MS=%.4f", shortGS, shortAA, shortMS)
	}

	// Long interval: GS near MS, both well below AA.
	longGS := tech.IntervalEnergy(gs, alpha, 100)
	longAA := tech.IntervalEnergy(aa, alpha, 100)
	longMS := tech.IntervalEnergy(ms, alpha, 100)
	if longGS > 1.5*longMS || longGS > longAA {
		t.Errorf("long idle: GS=%.4f AA=%.4f MS=%.4f", longGS, longAA, longMS)
	}

	// Monotone in interval length for all three.
	for _, pc := range []PolicyConfig{gs, ms, aa} {
		prev := 0.0
		for l := 1; l <= 120; l++ {
			e := tech.IntervalEnergy(pc, alpha, l)
			if e < prev-1e-12 {
				t.Fatalf("%v: interval energy not monotone at l=%d", pc.Policy, l)
			}
			prev = e
		}
	}
}

func TestEvalProfileLinearity(t *testing.T) {
	// Doubling every count doubles every energy component.
	tech := DefaultTech().WithP(0.4)
	f := func(active uint16, l1, l2 uint8, n1, n2 uint8) bool {
		p1 := NewIdleProfile()
		p1.ActiveCycles = uint64(active)
		p1.AddIdle(int(l1)+1, uint64(n1)+1)
		p1.AddIdle(int(l2)+1, uint64(n2)+1)

		p2 := NewIdleProfile()
		p2.ActiveCycles = 2 * p1.ActiveCycles
		for l, c := range p1.Intervals {
			p2.AddIdle(l, 2*c)
		}
		for _, pol := range Policies {
			e1 := tech.EvalProfile(PolicyConfig{Policy: pol}, 0.5, p1)
			e2 := tech.EvalProfile(PolicyConfig{Policy: pol}, 0.5, p2)
			if !almostEqual(e1.Total()*2, e2.Total(), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLeakageFractionRisesWithP(t *testing.T) {
	// Figure 9b: leakage fraction grows monotonically with p for every
	// policy on a fixed profile.
	prof := NewIdleProfile()
	prof.ActiveCycles = 10000
	prof.AddIdle(8, 500)
	prof.AddIdle(40, 100)
	prof.AddIdle(300, 10)
	for _, pol := range Policies {
		prev := -1.0
		for p := 0.05; p <= 1.0; p += 0.05 {
			frac := DefaultTech().WithP(p).EvalProfile(PolicyConfig{Policy: pol}, 0.5, prof).LeakageFraction()
			if frac < prev-1e-12 {
				t.Fatalf("%v: leakage fraction fell from %g to %g at p=%g", pol, prev, frac, p)
			}
			if frac < 0 || frac > 1 {
				t.Fatalf("%v: leakage fraction %g out of [0,1]", pol, frac)
			}
			prev = frac
		}
	}
}
