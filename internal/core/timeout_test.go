package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestTimeoutDegenerateLimits(t *testing.T) {
	tech := DefaultTech().WithP(0.3)
	prof := NewIdleProfile()
	prof.ActiveCycles = 10000
	prof.AddIdle(5, 100)
	prof.AddIdle(50, 40)
	prof.AddIdle(500, 5)

	// A huge threshold never sleeps: identical to AlwaysActive.
	big := tech.EvalProfile(PolicyConfig{Policy: SleepTimeout, Timeout: 1 << 30}, 0.5, prof)
	aa := tech.EvalProfile(PolicyConfig{Policy: AlwaysActive}, 0.5, prof)
	if !almostEqual(big.Total(), aa.Total(), 1e-12) {
		t.Errorf("huge timeout %g != AlwaysActive %g", big.Total(), aa.Total())
	}
}

func TestTimeoutBetweenBounds(t *testing.T) {
	// For any threshold, SleepTimeout sits between NoOverhead and
	// AlwaysActive-or-MaxSleep (it can exceed neither extreme's worst).
	tech := DefaultTech()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		tc := tech.WithP(0.02 + rng.Float64()*0.9)
		prof := NewIdleProfile()
		prof.ActiveCycles = uint64(1 + rng.Intn(50000))
		for i := 0; i < 20; i++ {
			prof.AddIdle(1+rng.Intn(300), uint64(1+rng.Intn(30)))
		}
		to := tc.EvalProfile(PolicyConfig{Policy: SleepTimeout, Timeout: 1 + rng.Intn(100)}, 0.5, prof).Total()
		no := tc.EvalProfile(PolicyConfig{Policy: NoOverhead}, 0.5, prof).Total()
		worst := tc.EvalProfile(PolicyConfig{Policy: AlwaysActive}, 0.5, prof).Total() +
			tc.EvalProfile(PolicyConfig{Policy: MaxSleep}, 0.5, prof).Total()
		if to < no-1e-9 {
			t.Fatalf("timeout %g beat the NoOverhead floor %g", to, no)
		}
		if to > worst {
			t.Fatalf("timeout %g exceeds AA+MS %g", to, worst)
		}
	}
}

func TestTimeoutTwoCompetitive(t *testing.T) {
	// Ski rental: with the threshold at breakeven, the idle-handling energy
	// of any single interval is at most 2x the oracle's plus one cycle of
	// uncontrolled-idle leakage (the discrete counter rounds the breakeven
	// up to a whole cycle).
	for _, p := range []float64{0.05, 0.2, 0.4, 0.8} {
		tech := DefaultTech().WithP(p)
		alpha := 0.5
		orc := PolicyConfig{Policy: OracleMinimal}
		to := PolicyConfig{Policy: SleepTimeout} // auto: breakeven threshold
		slack := tech.UIRate(alpha) + 1e-9
		for l := 1; l <= 400; l++ {
			e := tech.IntervalEnergy(to, alpha, l)
			opt := tech.IntervalEnergy(orc, alpha, l)
			if e > 2*opt+slack {
				t.Fatalf("p=%g interval %d: timeout %.4f > 2x oracle %.4f + slack", p, l, e, opt)
			}
		}
	}
}

func TestTimeoutControllerMatchesIntervalAccounting(t *testing.T) {
	tech := DefaultTech().WithP(0.3)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		alpha := rng.Float64()
		stream := randomStream(rng, 3000, 0.3+0.4*rng.Float64())
		prof := ProfileFromStream(stream)
		for _, pc := range []PolicyConfig{
			{Policy: SleepTimeout, Timeout: 1},
			{Policy: SleepTimeout, Timeout: 7},
			{Policy: SleepTimeout, Timeout: 64},
			{Policy: SleepTimeout}, // auto breakeven
		} {
			ctrl, err := NewController(pc, tech, alpha)
			if err != nil {
				t.Fatal(err)
			}
			online := tech.RunStream(alpha, ctrl, stream)
			offline := tech.EvalProfile(pc, alpha, prof)
			if !almostEqual(online.Total(), offline.Total(), 1e-9) {
				t.Fatalf("timeout=%d alpha=%.3f: online %.9f offline %.9f",
					pc.Timeout, alpha, online.Total(), offline.Total())
			}
		}
	}
}

func TestTimeoutScenarioConservation(t *testing.T) {
	tech := DefaultTech()
	s := Scenario{TotalCycles: 1e6, Usage: 0.4, MeanIdle: 30, Alpha: 0.5}
	cc := s.Counts(tech, PolicyConfig{Policy: SleepTimeout, Timeout: 10})
	if !almostEqual(cc.Total(), 1e6, 1e-6) {
		t.Errorf("cycle conservation broken: %g", cc.Total())
	}
	// Mean idle 30 with threshold 10: 10 UI + 20 sleep per interval.
	nIntervals := 0.6e6 / 30
	if !almostEqual(cc.UncontrolledIdle, nIntervals*10, 1e-6) ||
		!almostEqual(cc.Sleep, nIntervals*20, 1e-6) ||
		!almostEqual(cc.Transitions, nIntervals, 1e-6) {
		t.Errorf("split wrong: %+v", cc)
	}
}

// TestTimeoutControllerZeroThreshold pins the degenerate controller: with
// the threshold at 0 the counter exceeds it on the very first idle cycle,
// so the controller sleeps immediately and is cycle-for-cycle identical to
// MaxSleep.
func TestTimeoutControllerZeroThreshold(t *testing.T) {
	zero := &timeoutController{threshold: 0}
	ms := &maxSleepController{}
	rng := rand.New(rand.NewSource(42))
	stream := randomStream(rng, 2000, 0.5)
	for i, active := range stream {
		a, b := zero.Step(active), ms.Step(active)
		if a != b {
			t.Fatalf("cycle %d (active=%v): timeout{0} %+v != MaxSleep %+v", i, active, a, b)
		}
	}
	// And the energies agree through the stream integrator.
	tech := DefaultTech().WithP(0.3)
	zero.Reset()
	ms.Reset()
	to := tech.RunStream(0.5, zero, stream)
	mse := tech.RunStream(0.5, ms, stream)
	if !almostEqual(to.Total(), mse.Total(), 1e-12) {
		t.Errorf("threshold-0 energy %g != MaxSleep %g", to.Total(), mse.Total())
	}
}

// TestTimeoutThresholdResolution pins how the effective threshold resolves:
// an explicit Timeout wins regardless of the technology, and the zero
// default rounds the breakeven interval up to a whole cycle (the hardware
// counter counts cycles).
func TestTimeoutThresholdResolution(t *testing.T) {
	alpha := 0.5
	for _, p := range []float64{0.05, 0.3, 0.9} {
		tech := DefaultTech().WithP(p)
		// Explicit override: the tech's breakeven must not leak in.
		ctrl, err := NewController(PolicyConfig{Policy: SleepTimeout, Timeout: 5}, tech, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if got := ctrl.(*timeoutController).threshold; got != 5 {
			t.Errorf("p=%g: explicit threshold = %g, want 5", p, got)
		}
		// Breakeven default: ceil of the analytic breakeven.
		ctrl, err = NewController(PolicyConfig{Policy: SleepTimeout}, tech, alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Ceil(tech.Breakeven(alpha))
		if got := ctrl.(*timeoutController).threshold; got != want {
			t.Errorf("p=%g: default threshold = %g, want ceil(breakeven) = %g", p, got, want)
		}
	}
}

// TestTimeoutInfiniteBreakeven covers the technologies where sleeping never
// pays: at alpha = 1 the uncontrolled-idle and sleep leakage rates
// coincide, the breakeven interval is +Inf, and the defaulted controller
// must behave exactly like AlwaysActive instead of overflowing its counter.
func TestTimeoutInfiniteBreakeven(t *testing.T) {
	tech := DefaultTech()
	if be := tech.Breakeven(1); !math.IsInf(be, 1) {
		t.Fatalf("breakeven at alpha=1 = %g, want +Inf", be)
	}
	prof := NewIdleProfile()
	prof.ActiveCycles = 5000
	prof.AddIdle(3, 200)
	prof.AddIdle(1<<20, 2) // even million-cycle intervals must not sleep
	to := tech.EvalProfile(PolicyConfig{Policy: SleepTimeout}, 1, prof)
	aa := tech.EvalProfile(PolicyConfig{Policy: AlwaysActive}, 1, prof)
	if !almostEqual(to.Total(), aa.Total(), 1e-12) {
		t.Errorf("infinite-breakeven timeout %g != AlwaysActive %g", to.Total(), aa.Total())
	}
	if cc, err := tech.ProfileCounts(PolicyConfig{Policy: SleepTimeout}, 1, prof); err != nil || cc.Sleep != 0 || cc.Transitions != 0 {
		t.Errorf("slept under an infinite breakeven: %+v (err %v)", cc, err)
	}

	// A finite but astronomically large breakeven (alpha one ulp below 1)
	// takes the same never-sleep clamp instead of ceiling a 1e15+ float.
	alpha := math.Nextafter(1, 0)
	if be := tech.Breakeven(alpha); !(be > 1e15) || math.IsInf(be, 1) {
		t.Skipf("breakeven at alpha=%g is %g; clamp branch not reachable here", alpha, be)
	}
	ctrl, err := NewController(PolicyConfig{Policy: SleepTimeout}, tech, alpha)
	if err != nil {
		t.Fatal(err)
	}
	thr := ctrl.(*timeoutController).threshold
	if thr < math.MaxFloat64/8 {
		t.Errorf("huge-breakeven threshold = %g, want the never-sleep clamp", thr)
	}
}

func TestTimeoutStringAndReset(t *testing.T) {
	if SleepTimeout.String() != "SleepTimeout" {
		t.Errorf("String = %q", SleepTimeout.String())
	}
	c := &timeoutController{threshold: 2}
	c.Step(false)
	c.Step(false)
	if st := c.Step(false); st.TransFrac != 1 || st.SleepFrac != 1 {
		t.Error("third idle cycle should transition")
	}
	c.Reset()
	if st := c.Step(false); st.SleepFrac != 0 {
		t.Error("Reset did not clear state")
	}
}
