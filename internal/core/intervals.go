package core

import (
	"fmt"
	"sort"
)

// IdleProfile summarizes the measured activity of one functional unit: the
// total number of active (evaluation) cycles and the multiset of idle
// interval lengths observed between them. This is exactly the data the
// paper's simulation methodology records ("precise statistics on the idle
// times for each functional unit") and from which it computes total energy.
type IdleProfile struct {
	ActiveCycles uint64
	// Intervals maps idle interval length (cycles) to occurrence count.
	Intervals map[int]uint64
}

// NewIdleProfile returns an empty profile ready for recording.
func NewIdleProfile() *IdleProfile {
	return &IdleProfile{Intervals: make(map[int]uint64)}
}

// AddIdle records one idle interval of the given length.
func (p *IdleProfile) AddIdle(length int, count uint64) {
	if length <= 0 || count == 0 {
		return
	}
	if p.Intervals == nil {
		p.Intervals = make(map[int]uint64)
	}
	p.Intervals[length] += count
}

// IdleCycles returns the total idle cycles across all intervals.
func (p *IdleProfile) IdleCycles() uint64 {
	var n uint64
	for l, c := range p.Intervals {
		n += uint64(l) * c
	}
	return n
}

// IntervalCount returns the total number of idle intervals.
func (p *IdleProfile) IntervalCount() uint64 {
	var n uint64
	for _, c := range p.Intervals {
		n += c
	}
	return n
}

// TotalCycles returns active plus idle cycles.
func (p *IdleProfile) TotalCycles() uint64 { return p.ActiveCycles + p.IdleCycles() }

// Usage returns the usage factor f_A = active / total, or 0 for an empty
// profile.
func (p *IdleProfile) Usage() float64 {
	tot := p.TotalCycles()
	if tot == 0 {
		return 0
	}
	return float64(p.ActiveCycles) / float64(tot)
}

// MeanIdle returns the average idle interval length, or 0 if none.
func (p *IdleProfile) MeanIdle() float64 {
	n := p.IntervalCount()
	if n == 0 {
		return 0
	}
	return float64(p.IdleCycles()) / float64(n)
}

// Merge accumulates o into p (used to aggregate multiple functional units).
func (p *IdleProfile) Merge(o *IdleProfile) {
	p.ActiveCycles += o.ActiveCycles
	for l, c := range o.Intervals {
		p.AddIdle(l, c)
	}
}

// Lengths returns the distinct interval lengths in ascending order.
func (p *IdleProfile) Lengths() []int {
	ls := make([]int, 0, len(p.Intervals))
	for l := range p.Intervals {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	return ls
}

// EvalProfile computes the equation-(3) energy of running policy pc over the
// measured activity in prof: every idle interval is handled per the policy
// (AlwaysActive leaves it uncontrolled; MaxSleep converts all of it to sleep
// cycles plus one transition; NoOverhead omits the transition; GradualSleep
// splits it per the staggered slice schedule; OracleMinimal sleeps exactly
// when the interval is at least the breakeven length).
func (t Tech) EvalProfile(pc PolicyConfig, alpha float64, prof *IdleProfile) Breakdown {
	cc, err := t.ProfileCounts(pc, alpha, prof)
	if err != nil {
		panic(err) // validated inputs only; exported wrapper below returns errors
	}
	return t.Energy(alpha, cc)
}

// ProfileCounts returns the cycle-count aggregate that policy pc produces
// over the measured activity in prof.
func (t Tech) ProfileCounts(pc PolicyConfig, alpha float64, prof *IdleProfile) (CycleCounts, error) {
	if !ValidAlpha(alpha) {
		return CycleCounts{}, ErrAlpha
	}
	if err := t.Validate(); err != nil {
		return CycleCounts{}, err
	}
	cc := CycleCounts{Active: float64(prof.ActiveCycles)}
	switch pc.Policy {
	case AlwaysActive:
		cc.UncontrolledIdle = float64(prof.IdleCycles())
	case MaxSleep:
		cc.Sleep = float64(prof.IdleCycles())
		cc.Transitions = float64(prof.IntervalCount())
	case NoOverhead:
		cc.Sleep = float64(prof.IdleCycles())
	case GradualSleep:
		k := pc.slices(t, alpha)
		for l, n := range prof.Intervals {
			ui, slp, trans := gradualSplit(float64(l), k)
			nf := float64(n)
			cc.UncontrolledIdle += nf * ui
			cc.Sleep += nf * slp
			cc.Transitions += nf * trans
		}
	case OracleMinimal:
		be := t.Breakeven(alpha)
		for l, n := range prof.Intervals {
			nf := float64(n)
			if float64(l) >= be {
				cc.Sleep += nf * float64(l)
				cc.Transitions += nf
			} else {
				cc.UncontrolledIdle += nf * float64(l)
			}
		}
	case SleepTimeout:
		T := pc.timeout(t, alpha)
		for l, n := range prof.Intervals {
			ui, slp, trans := timeoutSplit(float64(l), T)
			nf := float64(n)
			cc.UncontrolledIdle += nf * ui
			cc.Sleep += nf * slp
			cc.Transitions += nf * trans
		}
	default:
		return CycleCounts{}, fmt.Errorf("core: unknown policy %v", pc.Policy)
	}
	return cc, nil
}

// IntervalEnergy returns the energy expended handling a single idle interval
// of length l under policy pc, excluding the preceding active cycles. This
// is the quantity plotted in Figure 5c ("energy to transition to the sleep
// mode" versus idle interval).
func (t Tech) IntervalEnergy(pc PolicyConfig, alpha float64, l int) float64 {
	prof := NewIdleProfile()
	prof.AddIdle(l, 1)
	return t.EvalProfile(pc, alpha, prof).Total()
}
