package core

import (
	"fmt"
	"sort"
)

// IdleProfile summarizes the measured activity of one functional unit: the
// total number of active (evaluation) cycles and the multiset of idle
// interval lengths observed between them. This is exactly the data the
// paper's simulation methodology records ("precise statistics on the idle
// times for each functional unit") and from which it computes total energy.
//
// An IdleProfile is not safe for concurrent use: Lengths (and the
// evaluation paths built on it) may restore the cached key order in place.
type IdleProfile struct {
	ActiveCycles uint64
	// Intervals maps idle interval length (cycles) to occurrence count.
	// Populate it through AddIdle, which keeps the sorted-key mirror below
	// in sync; a directly-assigned map (a decoded wire profile) is adopted
	// on the next Lengths call.
	Intervals map[int]uint64
	// lengths mirrors the keys of Intervals: AddIdle appends in O(1) and
	// Lengths sorts on demand, so recording stays cheap while the
	// evaluation paths that need ordered iteration (ProfileCounts
	// accumulates float64 sums, which do not associate) never re-sort an
	// already-ordered profile. unsorted marks a pending sort.
	lengths  []int
	unsorted bool
}

// NewIdleProfile returns an empty profile ready for recording.
func NewIdleProfile() *IdleProfile {
	return &IdleProfile{Intervals: make(map[int]uint64)}
}

// NewIdleProfileSized returns an empty profile preallocated for n distinct
// interval lengths, for bulk conversions that know their size up front.
func NewIdleProfileSized(n int) *IdleProfile {
	return &IdleProfile{
		Intervals: make(map[int]uint64, n),
		lengths:   make([]int, 0, n),
	}
}

// AddIdle records one idle interval of the given length.
func (p *IdleProfile) AddIdle(length int, count uint64) {
	if length <= 0 || count == 0 {
		return
	}
	if p.Intervals == nil {
		p.Intervals = make(map[int]uint64)
	}
	if _, seen := p.Intervals[length]; !seen {
		if !p.unsorted && len(p.lengths) > 0 && length < p.lengths[len(p.lengths)-1] {
			p.unsorted = true
		}
		p.lengths = append(p.lengths, length)
	}
	p.Intervals[length] += count
}

// IdleCycles returns the total idle cycles across all intervals.
func (p *IdleProfile) IdleCycles() uint64 {
	var n uint64
	for l, c := range p.Intervals {
		n += uint64(l) * c
	}
	return n
}

// IntervalCount returns the total number of idle intervals.
func (p *IdleProfile) IntervalCount() uint64 {
	var n uint64
	for _, c := range p.Intervals {
		n += c
	}
	return n
}

// TotalCycles returns active plus idle cycles.
func (p *IdleProfile) TotalCycles() uint64 { return p.ActiveCycles + p.IdleCycles() }

// Usage returns the usage factor f_A = active / total, or 0 for an empty
// profile.
func (p *IdleProfile) Usage() float64 {
	tot := p.TotalCycles()
	if tot == 0 {
		return 0
	}
	return float64(p.ActiveCycles) / float64(tot)
}

// MeanIdle returns the average idle interval length, or 0 if none.
func (p *IdleProfile) MeanIdle() float64 {
	n := p.IntervalCount()
	if n == 0 {
		return 0
	}
	return float64(p.IdleCycles()) / float64(n)
}

// Merge accumulates o into p (used to aggregate multiple functional units).
func (p *IdleProfile) Merge(o *IdleProfile) {
	p.ActiveCycles += o.ActiveCycles
	for l, c := range o.Intervals {
		p.AddIdle(l, c)
	}
}

// Lengths returns the distinct interval lengths in ascending order. The
// returned slice is shared with the profile; callers must not modify it.
func (p *IdleProfile) Lengths() []int {
	if len(p.lengths) != len(p.Intervals) {
		// The Intervals map was populated directly (a decoded wire profile
		// or a hand-built fixture) rather than through AddIdle: adopt it.
		p.lengths = make([]int, 0, len(p.Intervals))
		for l := range p.Intervals {
			p.lengths = append(p.lengths, l)
		}
		p.unsorted = true
	}
	if p.unsorted {
		sort.Ints(p.lengths)
		p.unsorted = false
	}
	return p.lengths
}

// EvalProfile computes the equation-(3) energy of running policy pc over the
// measured activity in prof: every idle interval is handled per the policy
// (AlwaysActive leaves it uncontrolled; MaxSleep converts all of it to sleep
// cycles plus one transition; NoOverhead omits the transition; GradualSleep
// splits it per the staggered slice schedule; OracleMinimal sleeps exactly
// when the interval is at least the breakeven length).
func (t Tech) EvalProfile(pc PolicyConfig, alpha float64, prof *IdleProfile) Breakdown {
	cc, err := t.ProfileCounts(pc, alpha, prof)
	if err != nil {
		panic(err) // validated inputs only; exported wrapper below returns errors
	}
	return t.Energy(alpha, cc)
}

// ProfileCounts returns the cycle-count aggregate that policy pc produces
// over the measured activity in prof.
func (t Tech) ProfileCounts(pc PolicyConfig, alpha float64, prof *IdleProfile) (CycleCounts, error) {
	if !ValidAlpha(alpha) {
		return CycleCounts{}, ErrAlpha
	}
	if err := t.Validate(); err != nil {
		return CycleCounts{}, err
	}
	cc := CycleCounts{Active: float64(prof.ActiveCycles)}
	switch pc.Policy {
	case AlwaysActive:
		cc.UncontrolledIdle = float64(prof.IdleCycles())
	case MaxSleep:
		cc.Sleep = float64(prof.IdleCycles())
		cc.Transitions = float64(prof.IntervalCount())
	case NoOverhead:
		cc.Sleep = float64(prof.IdleCycles())
	// The per-interval cases below accumulate float64 sums. FP addition does
	// not associate, so they walk Lengths() — ascending order — rather than
	// the Intervals map directly: map iteration order would make the low
	// bits of the energy model (and everything hashed from it) vary run to
	// run.
	case GradualSleep:
		k := pc.slices(t, alpha)
		for _, l := range prof.Lengths() {
			ui, slp, trans := gradualSplit(float64(l), k)
			nf := float64(prof.Intervals[l])
			cc.UncontrolledIdle += nf * ui
			cc.Sleep += nf * slp
			cc.Transitions += nf * trans
		}
	case OracleMinimal:
		be := t.Breakeven(alpha)
		for _, l := range prof.Lengths() {
			nf := float64(prof.Intervals[l])
			if float64(l) >= be {
				cc.Sleep += nf * float64(l)
				cc.Transitions += nf
			} else {
				cc.UncontrolledIdle += nf * float64(l)
			}
		}
	case SleepTimeout:
		T := pc.timeout(t, alpha)
		for _, l := range prof.Lengths() {
			ui, slp, trans := timeoutSplit(float64(l), T)
			nf := float64(prof.Intervals[l])
			cc.UncontrolledIdle += nf * ui
			cc.Sleep += nf * slp
			cc.Transitions += nf * trans
		}
	default:
		return CycleCounts{}, fmt.Errorf("core: unknown policy %v", pc.Policy)
	}
	return cc, nil
}

// IntervalEnergy returns the energy expended handling a single idle interval
// of length l under policy pc, excluding the preceding active cycles. This
// is the quantity plotted in Figure 5c ("energy to transition to the sleep
// mode" versus idle interval).
func (t Tech) IntervalEnergy(pc PolicyConfig, alpha float64, l int) float64 {
	prof := NewIdleProfile()
	prof.AddIdle(l, 1)
	return t.EvalProfile(pc, alpha, prof).Total()
}
