package workload

import (
	"testing"

	"github.com/archsim/fusleep/internal/isa"
)

func TestTraceLimitAndSequence(t *testing.T) {
	tr := NewTrace(100, 1, func(e *Emitter) {
		pc := uint64(0x1000)
		for !e.Done() {
			e.ALU(pc, isa.IntReg(1), isa.RegNone, isa.RegNone)
		}
	})
	defer tr.Close()
	var n uint64
	for {
		in, ok := tr.Next()
		if !ok {
			break
		}
		if in.Seq != n {
			t.Fatalf("seq %d at position %d", in.Seq, n)
		}
		n++
	}
	if n != 100 {
		t.Errorf("trace length %d, want 100", n)
	}
}

func TestTraceCloseUnblocksProducer(t *testing.T) {
	tr := NewTrace(0, 1, func(e *Emitter) {
		pc := uint64(0x1000)
		for !e.Done() { // unbounded until consumer closes
			e.Nop(pc)
		}
	})
	if _, ok := tr.Next(); !ok {
		t.Fatal("expected instructions")
	}
	tr.Close() // must not deadlock
	tr.Close() // idempotent
	if _, ok := tr.Next(); ok {
		t.Error("closed trace should be exhausted")
	}
}

func TestTraceDeterminism(t *testing.T) {
	read := func() []isa.Inst {
		tr := NewTrace(5000, 42, kernelGcc)
		defer tr.Close()
		var out []isa.Inst
		for {
			in, ok := tr.Next()
			if !ok {
				return out
			}
			out = append(out, in)
		}
	}
	a, b := read(), read()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEmittedInstructionsAreValid(t *testing.T) {
	for _, spec := range Benchmarks {
		tr := spec.NewTrace(20000)
		for {
			in, ok := tr.Next()
			if !ok {
				break
			}
			if err := in.Validate(); err != nil {
				t.Errorf("%s: %v", spec.Name, err)
				break
			}
		}
		tr.Close()
	}
}

func TestStablePCsAcrossIterations(t *testing.T) {
	// Every dynamic occurrence of a static site must agree on the class:
	// a PC that is sometimes a branch and sometimes an ALU would be an
	// impossible program and would corrupt predictor learning.
	for _, spec := range Benchmarks {
		classes := make(map[uint64]isa.Class)
		tr := spec.NewTrace(50000)
		for {
			in, ok := tr.Next()
			if !ok {
				break
			}
			if prev, seen := classes[in.PC]; seen && prev != in.Class {
				t.Errorf("%s: PC %#x is both %v and %v", spec.Name, in.PC, prev, in.Class)
				break
			}
			classes[in.PC] = in.Class
		}
		tr.Close()
		if len(classes) > 4096 {
			t.Errorf("%s: %d static sites — code footprint implausibly large", spec.Name, len(classes))
		}
	}
}

func TestChaseStepFullPeriod(t *testing.T) {
	// The affine walk must visit every node before repeating, for any salt.
	for _, salt := range []uint64{0, 1, 2, 7} {
		const nodes = 1 << 12
		seen := make([]bool, nodes)
		idx := uint64(0)
		for i := 0; i < nodes; i++ {
			if seen[idx] {
				t.Fatalf("salt %d: cycle after %d of %d nodes", salt, i, nodes)
			}
			seen[idx] = true
			idx = chaseStep(idx, nodes, salt)
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Benchmarks) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(Benchmarks))
	}
	if _, err := ByName("mcf"); err != nil {
		t.Errorf("ByName(mcf): %v", err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	names := Names()
	if len(names) != 9 || names[0] != "gcc" {
		t.Errorf("names = %v", names)
	}
	sorted := SortedByName()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name >= sorted[i].Name {
			t.Error("SortedByName not sorted")
		}
	}
	// Table 3 reference data sanity: FU counts in range, IPC <= max IPC.
	for _, s := range Benchmarks {
		if s.PaperFUs < 1 || s.PaperFUs > 4 {
			t.Errorf("%s: FUs %d", s.Name, s.PaperFUs)
		}
		if s.PaperIPC > s.PaperMaxIPC+1e-9 {
			t.Errorf("%s: IPC %g exceeds max %g", s.Name, s.PaperIPC, s.PaperMaxIPC)
		}
	}
}

func TestInstructionMixIsIntegerDominated(t *testing.T) {
	// The paper studies integer benchmarks; FP must be a trace amount.
	for _, spec := range Benchmarks {
		var fp, total uint64
		tr := spec.NewTrace(30000)
		for {
			in, ok := tr.Next()
			if !ok {
				break
			}
			total++
			if in.Class.IsFP() {
				fp++
			}
		}
		tr.Close()
		if frac := float64(fp) / float64(total); frac > 0.05 {
			t.Errorf("%s: FP fraction %.3f too high for an integer benchmark", spec.Name, frac)
		}
	}
}
