package workload

// The nine benchmark kernels of Table 3. Each composes the archetype phases
// (Chase/Stream/HashLookups/Branchy/CallTree) with footprints, mixes, and
// branch behavior chosen to approximate the benchmark's microarchitectural
// character and its Table 3 IPC on the Table 2 machine. Code regions start
// at distinct bases so benchmarks never alias predictor or I-cache state.

const (
	kiB = 1024
	miB = 1024 * kiB
)

// code returns the code-region base for phase k of a benchmark.
func code(bench, phase int) uint64 {
	return 0x400000 + uint64(bench)<<20 + uint64(phase)<<13
}

// data returns the data-region base for phase k of a benchmark.
func data(bench, phase int) uint64 {
	return 0x10_0000_0000 + uint64(bench)<<36 + uint64(phase)<<32
}

// kernelHealth models Olden health: hierarchical linked-list traversal
// with little computation per node. The 4 MB working set lives mostly in
// the L2, so every hop pays an L2-latency dependent load; two concurrent
// sub-lists provide slight memory-level parallelism.
func kernelHealth(e *Emitter) {
	chase := ChaseParams{
		PC: code(0, 0), Heap: data(0, 0),
		Nodes: 32 * 1024, NodeBytes: 64, // 2 MB
		Chains: 2, Hops: 256, WorkDep: 2, WorkIndep: 4,
	}
	var st ChaseState
	// A short village-update pass over a small resident array.
	stream := StreamParams{
		PC: code(0, 1), Base: data(0, 1), Bytes: 32 * kiB, Stride: 16,
		Loads: 1, WorkDep: 2, WorkIndep: 1, Stores: 1, Iters: 32,
	}
	var sst StreamState
	for !e.Done() {
		Chase(e, chase, &st)
		Stream(e, stream, &sst)
	}
}

// kernelMst models Olden mst: hash-table lookups (the dominant cost in the
// original) plus a modest pointer phase over a graph that fits in the L2.
func kernelMst(e *Emitter) {
	hash := HashParams{
		PC: code(1, 0), Table: data(1, 0),
		Buckets: 2048, NodeBytes: 32, MeanProbes: 1.04, Compute: 8, Lookups: 64, Ways: 4,
	}
	var key uint64
	chase := ChaseParams{
		PC: code(1, 1), Heap: data(1, 1),
		Nodes: 4096, NodeBytes: 64, // 256 KB: L2-resident, partially L1
		Chains: 4, Hops: 32, WorkDep: 1, WorkIndep: 5,
	}
	var st ChaseState
	for !e.Done() {
		HashLookups(e, hash, &key)
		Chase(e, chase, &st)
	}
}

// kernelGcc models SPEC95 gcc: branch-dominated tree walking over a
// megabyte-scale working set with recurring utility calls. ILP is limited
// by control flow, not functional units, which is why two integer units
// suffice in Table 3.
func kernelGcc(e *Emitter) {
	branchy := BranchyParams{
		PC: code(2, 0), Data: data(2, 0), Footprint: 512 * kiB,
		BlockALU: 4, IndepFrac: 1, RandomProb: 0.04, TakenBias: 0.75,
		LoadEvery: 2, ColdEvery: 16, StoreEvery: 5, Blocks: 64,
	}
	var bst BranchyState
	calls := CallParams{PC: code(2, 1), Depth: 4, Work: 6, Rounds: 4}
	hash := HashParams{
		PC: code(2, 2), Table: data(2, 2),
		Buckets: 2048, NodeBytes: 64, MeanProbes: 1.1, Compute: 4, Lookups: 16, Ways: 2, UseMult: true,
	}
	var key uint64
	for !e.Done() {
		Branchy(e, branchy, &bst)
		CallTree(e, calls, nil)
		HashLookups(e, hash, &key)
	}
}

// kernelGzip models SPEC2K gzip: high-ILP compression inner loops sweeping
// a window that slightly exceeds the L1, with mostly-predictable control.
func kernelGzip(e *Emitter) {
	window := StreamParams{
		PC: code(3, 0), Base: data(3, 0), Bytes: 128 * kiB, Stride: 8,
		Loads: 2, WorkDep: 2, WorkIndep: 6, Stores: 1, Iters: 96,
	}
	var wst StreamState
	match := BranchyParams{
		PC: code(3, 1), Data: data(3, 1), Footprint: 64 * kiB,
		BlockALU: 6, IndepFrac: 4, RandomProb: 0.28, TakenBias: 0.875,
		LoadEvery: 2, StoreEvery: 8, Blocks: 48,
	}
	var mst BranchyState
	for !e.Done() {
		Stream(e, window, &wst)
		Branchy(e, match, &mst)
	}
}

// kernelMcf models SPEC2K mcf: network-simplex arc scans over a working set
// far beyond the L2. Interleaved chains give the memory-level parallelism
// of the arc array sweep; the result is a memory-bound IPC near 0.5.
func kernelMcf(e *Emitter) {
	arcs := ChaseParams{
		PC: code(4, 0), Heap: data(4, 0),
		Nodes: 128 * 1024, NodeBytes: 64, // 8 MB: L2-thrashing
		Chains: 8, Hops: 64, WorkDep: 1, WorkIndep: 10,
	}
	var ast ChaseState
	nodes := ChaseParams{
		PC: code(4, 1), Heap: data(4, 1),
		Nodes: 16 * 1024, NodeBytes: 64, // 1 MB: L2-resident tail
		Chains: 3, Hops: 32, WorkDep: 2, WorkIndep: 1,
	}
	var nst ChaseState
	for !e.Done() {
		Chase(e, arcs, &ast)
		Chase(e, nodes, &nst)
	}
}

// kernelParser models SPEC2K parser: dictionary hash lookups with
// data-dependent probe loops and heavy recursion over the linkage stack.
func kernelParser(e *Emitter) {
	dict := HashParams{
		PC: code(5, 0), Table: data(5, 0),
		Buckets: 2048, NodeBytes: 64, MeanProbes: 1.06, Compute: 6, Lookups: 48, Ways: 6, UseMult: true,
	}
	var key uint64
	linkage := CallParams{PC: code(5, 1), Depth: 6, Work: 8, Rounds: 6}
	prune := BranchyParams{
		PC: code(5, 2), Data: data(5, 2), Footprint: 256 * kiB,
		BlockALU: 5, IndepFrac: 3, RandomProb: 0.04, TakenBias: 0.75,
		LoadEvery: 3, ColdEvery: 8, StoreEvery: 9, Blocks: 32,
	}
	var pst BranchyState
	for !e.Done() {
		HashLookups(e, dict, &key)
		CallTree(e, linkage, nil)
		Branchy(e, prune, &pst)
	}
}

// kernelTwolf models SPEC2K twolf: annealing sweeps with random small-table
// reads, wide cost computations (enough FU demand to need three units), a
// sprinkle of floating point, and an unpredictable accept/reject branch.
func kernelTwolf(e *Emitter) {
	anneal := BranchyParams{
		PC: code(6, 0), Data: data(6, 0), Footprint: 512 * kiB,
		BlockALU: 7, IndepFrac: 5, RandomProb: 0.34, TakenBias: 0.625,
		LoadEvery: 1, ColdEvery: 16, StoreEvery: 4, FPEvery: 10, Blocks: 64,
	}
	var ast BranchyState
	cost := StreamParams{
		PC: code(6, 1), Base: data(6, 1), Bytes: 32 * kiB, Stride: 16,
		Loads: 2, WorkDep: 3, WorkIndep: 4, Stores: 0, Iters: 24,
	}
	var cst StreamState
	for !e.Done() {
		Branchy(e, anneal, &ast)
		Stream(e, cost, &cst)
	}
}

// kernelVortex models SPEC2K vortex: object-database transactions with
// wide, independent integer work, very predictable control, and an
// L1-friendly working set — the highest IPC of the suite.
func kernelVortex(e *Emitter) {
	object := StreamParams{
		PC: code(7, 0), Base: data(7, 0), Bytes: 256 * kiB, Stride: 8,
		Loads: 2, WorkDep: 3, WorkIndep: 5, Stores: 1, Iters: 96,
	}
	var ost StreamState
	validate := BranchyParams{
		PC: code(7, 1), Data: data(7, 1), Footprint: 64 * kiB,
		BlockALU: 8, IndepFrac: 6, RandomProb: 0.12, TakenBias: 0.9,
		LoadEvery: 3, StoreEvery: 6, Blocks: 32,
	}
	var vst BranchyState
	txn := CallParams{PC: code(7, 2), Depth: 3, Work: 10, Rounds: 4}
	for !e.Done() {
		Stream(e, object, &ost)
		Branchy(e, validate, &vst)
		CallTree(e, txn, nil)
	}
}

// kernelVpr models SPEC2K vpr (place&route): like twolf with a larger,
// less cache-friendly routing graph and slightly noisier control.
func kernelVpr(e *Emitter) {
	place := BranchyParams{
		PC: code(8, 0), Data: data(8, 0), Footprint: 1 * miB,
		BlockALU: 7, IndepFrac: 5, RandomProb: 0.18, TakenBias: 0.625,
		LoadEvery: 1, ColdEvery: 12, StoreEvery: 5, FPEvery: 12, Blocks: 64,
	}
	var pst BranchyState
	route := ChaseParams{
		PC: code(8, 1), Heap: data(8, 1),
		Nodes: 2048, NodeBytes: 64, // 128 KB
		Chains: 3, Hops: 24, WorkDep: 1, WorkIndep: 4,
	}
	var rst ChaseState
	for !e.Done() {
		Branchy(e, place, &pst)
		Chase(e, route, &rst)
	}
}
