package workload

import (
	"fmt"
	"sort"

	"github.com/archsim/fusleep/internal/isa"
)

// Spec names one benchmark of the suite together with its Table 3 reference
// data from the paper.
type Spec struct {
	Name  string
	Suite string
	// PaperMaxIPC is Table 3's IPC with four integer units.
	PaperMaxIPC float64
	// PaperIPC is Table 3's IPC at the selected unit count.
	PaperIPC float64
	// PaperFUs is Table 3's selected integer-unit count (the minimum number
	// achieving >= 95% of the four-unit IPC).
	PaperFUs int
	// Seed makes the kernel's data-dependent choices deterministic.
	Seed   int64
	kernel func(*Emitter)
}

// NewTrace starts the benchmark's generator, bounded to n instructions.
func (s Spec) NewTrace(n uint64) isa.Stream { return NewTrace(n, s.Seed, s.kernel) }

// Suite lists the nine benchmarks in the paper's Figure 8 order.
var Benchmarks = []Spec{
	{Name: "gcc", Suite: "SPEC95 INT", PaperMaxIPC: 1.622, PaperIPC: 1.619, PaperFUs: 2, Seed: 1002, kernel: kernelGcc},
	{Name: "gzip", Suite: "SPEC2K INT", PaperMaxIPC: 2.120, PaperIPC: 2.120, PaperFUs: 4, Seed: 1003, kernel: kernelGzip},
	{Name: "health", Suite: "Olden", PaperMaxIPC: 0.560, PaperIPC: 0.554, PaperFUs: 2, Seed: 1000, kernel: kernelHealth},
	{Name: "mcf", Suite: "SPEC2K INT", PaperMaxIPC: 0.523, PaperIPC: 0.503, PaperFUs: 2, Seed: 1004, kernel: kernelMcf},
	{Name: "mst", Suite: "Olden", PaperMaxIPC: 1.748, PaperIPC: 1.748, PaperFUs: 4, Seed: 1001, kernel: kernelMst},
	{Name: "parser", Suite: "SPEC2K INT", PaperMaxIPC: 1.692, PaperIPC: 1.692, PaperFUs: 4, Seed: 1005, kernel: kernelParser},
	{Name: "twolf", Suite: "SPEC2K INT", PaperMaxIPC: 1.542, PaperIPC: 1.475, PaperFUs: 3, Seed: 1006, kernel: kernelTwolf},
	{Name: "vortex", Suite: "SPEC2K INT", PaperMaxIPC: 2.387, PaperIPC: 2.387, PaperFUs: 4, Seed: 1007, kernel: kernelVortex},
	{Name: "vpr", Suite: "SPEC2K INT", PaperMaxIPC: 1.481, PaperIPC: 1.431, PaperFUs: 3, Seed: 1008, kernel: kernelVpr},
}

// ByName finds a benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range Benchmarks {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Names returns the benchmark names in suite order.
func Names() []string {
	out := make([]string, len(Benchmarks))
	for i, s := range Benchmarks {
		out[i] = s.Name
	}
	return out
}

// SortedByName returns a name-sorted copy (Benchmarks is already sorted,
// but callers should not depend on that).
func SortedByName() []Spec {
	out := make([]Spec, len(Benchmarks))
	copy(out, Benchmarks)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
