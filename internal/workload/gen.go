// Package workload implements the nine-benchmark suite of Table 3 as
// synthetic kernels. Each kernel executes a benchmark-like algorithm
// (pointer chasing, stream compression loops, dictionary lookups, annealing
// sweeps, ...) against a synthetic address space and emits the dynamic
// instruction trace of that execution. Static instruction sites keep stable
// PCs so the branch predictor and instruction cache behave as they would on
// real code. Instruction mix, dependence structure, footprints, and branch
// behavior are calibrated per benchmark so the simulated IPC and
// functional-unit demand approximate the paper's Table 3 (see DESIGN.md
// Section 5 for the substitution argument).
package workload

import (
	"math/rand"
	"sync"

	"github.com/archsim/fusleep/internal/isa"
)

const batchSize = 4096

// batchPool recycles trace batches between the generator goroutine and the
// consuming simulator: a batch fully drained by Trace.Next (or discarded by
// Close) goes back to the pool, so steady-state trace generation allocates
// nothing per flush. Batches are handed off by value; every instruction is
// copied out before the batch is recycled.
var batchPool = sync.Pool{
	New: func() any { return make([]isa.Inst, 0, batchSize) },
}

func getBatch() []isa.Inst { return batchPool.Get().([]isa.Inst)[:0] }

func putBatch(b []isa.Inst) {
	if cap(b) >= batchSize {
		batchPool.Put(b[:0]) //nolint:staticcheck // slice-header boxing is one tiny alloc per 4096 insts
	}
}

// Emitter is the push-side interface kernels use to generate instructions.
// It assigns sequence numbers, batches instructions, and enforces the trace
// length limit.
type Emitter struct {
	batch []isa.Inst
	out   chan []isa.Inst
	stop  chan struct{}
	seq   uint64
	limit uint64
	done  bool
	rng   *rand.Rand
	// scratch absorbs writes after done: slot keeps handing out a valid
	// target so kernels only need to check Done at loop boundaries.
	scratch isa.Inst
}

// Done reports whether the kernel should stop generating (limit reached or
// consumer closed). Kernels must check it at loop boundaries.
func (e *Emitter) Done() bool { return e.done }

// Rand returns the kernel's deterministic random source.
func (e *Emitter) Rand() *rand.Rand { return e.rng }

// slot claims the next instruction's batch slot, zeroed with its sequence
// number assigned, and returns it for the caller to fill in place — the
// emit helpers write each instruction exactly once, into its final
// position, instead of building a literal and copying it through a call
// and an append. A full batch is flushed lazily on the next claim (the
// generator's final flush covers the tail), which delivers the identical
// batch boundaries the eager flush did.
func (e *Emitter) slot() *isa.Inst {
	if e.done {
		e.scratch = isa.Inst{}
		return &e.scratch
	}
	if len(e.batch) >= batchSize {
		e.flush()
		if e.done {
			e.scratch = isa.Inst{}
			return &e.scratch
		}
	}
	e.batch = e.batch[:len(e.batch)+1]
	in := &e.batch[len(e.batch)-1]
	*in = isa.Inst{Seq: e.seq}
	e.seq++
	if e.limit > 0 && e.seq >= e.limit {
		e.done = true
	}
	return in
}

func (e *Emitter) flush() {
	if len(e.batch) == 0 {
		return
	}
	//fusleepvet:nondet-ok delivery-vs-stop race: a stopped consumer discards the batch, so the instruction stream seen downstream is unchanged
	select {
	case e.out <- e.batch:
		e.batch = getBatch()
	case <-e.stop:
		e.done = true
		e.batch = e.batch[:0]
	}
}

// ALU emits a single-cycle integer operation.
func (e *Emitter) ALU(pc uint64, dest, s1, s2 isa.Reg) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.IntALU, dest, s1, s2
}

// Mult emits an integer multiply.
func (e *Emitter) Mult(pc uint64, dest, s1, s2 isa.Reg) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.IntMult, dest, s1, s2
}

// FPALU emits a floating-point add.
func (e *Emitter) FPALU(pc uint64, dest, s1, s2 isa.Reg) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.FPALU, dest, s1, s2
}

// Load emits a data load from addr through base register base.
func (e *Emitter) Load(pc uint64, dest, base isa.Reg, addr uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2, in.Addr = pc, isa.Load, dest, base, isa.RegNone, addr
}

// Store emits a data store of register data to addr through base.
func (e *Emitter) Store(pc uint64, base, data isa.Reg, addr uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2, in.Addr = pc, isa.Store, isa.RegNone, base, data, addr
}

// Branch emits a conditional branch with the given actual outcome. cond is
// the register the branch tests.
func (e *Emitter) Branch(pc uint64, cond isa.Reg, taken bool, target uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.Branch, isa.RegNone, cond, isa.RegNone
	in.Taken, in.Target = taken, target
}

// Jump emits an unconditional direct jump.
func (e *Emitter) Jump(pc, target uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.Jump, isa.RegNone, isa.RegNone, isa.RegNone
	in.Taken, in.Target = true, target
}

// Call emits a direct call.
func (e *Emitter) Call(pc, target uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.Call, isa.RegNone, isa.RegNone, isa.RegNone
	in.Taken, in.Target = true, target
}

// Return emits a function return to target.
func (e *Emitter) Return(pc, target uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.Return, isa.RegNone, isa.RegNone, isa.RegNone
	in.Taken, in.Target = true, target
}

// Nop emits a front-end-only instruction.
func (e *Emitter) Nop(pc uint64) {
	in := e.slot()
	in.PC, in.Class, in.Dest, in.Src1, in.Src2 = pc, isa.Nop, isa.RegNone, isa.RegNone, isa.RegNone
}

// Trace is the pull side: an isa.Stream fed by a kernel goroutine.
type Trace struct {
	ch        chan []isa.Inst
	stop      chan struct{}
	stopOnce  sync.Once
	cur       []isa.Inst
	pos       int
	exhausted bool
}

// NewTrace starts kernel in a goroutine and returns the consuming stream.
// The kernel must return promptly once Emitter.Done reports true. limit
// bounds the trace length (0 = unbounded, kernel decides); seed makes the
// trace deterministic.
func NewTrace(limit uint64, seed int64, kernel func(*Emitter)) *Trace {
	t := &Trace{
		ch:   make(chan []isa.Inst, 4),
		stop: make(chan struct{}),
	}
	e := &Emitter{
		batch: getBatch(),
		out:   t.ch,
		stop:  t.stop,
		limit: limit,
		rng:   rand.New(rand.NewSource(seed)),
	}
	go func() {
		defer close(t.ch)
		kernel(e)
		e.flush()
	}()
	return t
}

// Next implements isa.Stream.
func (t *Trace) Next() (isa.Inst, bool) {
	for t.pos >= len(t.cur) {
		if t.cur != nil {
			// Fully consumed; every instruction was copied out, so the
			// batch can be recycled for the generator.
			putBatch(t.cur)
			t.cur = nil
		}
		if t.exhausted {
			return isa.Inst{}, false
		}
		batch, ok := <-t.ch
		if !ok {
			t.exhausted = true
			return isa.Inst{}, false
		}
		t.cur = batch
		t.pos = 0
	}
	in := t.cur[t.pos]
	t.pos++
	return in, true
}

// NextBatch is the bulk counterpart of Next, implementing the simulator's
// optional batch fast path: it returns the next contiguous run of
// instructions, transferring ownership to the caller, and takes back the
// fully-consumed slice from the caller's previous call so batches keep
// recycling through the generator pool. Mixing Next and NextBatch on one
// Trace is supported; each instruction is still delivered exactly once.
func (t *Trace) NextBatch(recycle []isa.Inst) ([]isa.Inst, bool) {
	putBatch(recycle)
	if t.pos < len(t.cur) {
		b := t.cur[t.pos:]
		t.cur, t.pos = nil, 0
		return b, true
	}
	if t.cur != nil {
		putBatch(t.cur)
		t.cur, t.pos = nil, 0
	}
	if t.exhausted {
		return nil, false
	}
	// The generator only flushes non-empty batches, so one receive either
	// yields instructions or ends the stream.
	batch, ok := <-t.ch
	if !ok {
		t.exhausted = true
		return nil, false
	}
	return batch, true
}

// Close implements isa.Stream, releasing the generator goroutine and
// discarding any buffered instructions.
func (t *Trace) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	// Drain so the producer's in-flight sends complete and the goroutine
	// observes the stop channel; drained batches are recycled.
	for b := range t.ch {
		putBatch(b)
	}
	if t.cur != nil {
		putBatch(t.cur)
		t.cur = nil
	}
	t.pos = 0
	t.exhausted = true
}
