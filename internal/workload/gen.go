// Package workload implements the nine-benchmark suite of Table 3 as
// synthetic kernels. Each kernel executes a benchmark-like algorithm
// (pointer chasing, stream compression loops, dictionary lookups, annealing
// sweeps, ...) against a synthetic address space and emits the dynamic
// instruction trace of that execution. Static instruction sites keep stable
// PCs so the branch predictor and instruction cache behave as they would on
// real code. Instruction mix, dependence structure, footprints, and branch
// behavior are calibrated per benchmark so the simulated IPC and
// functional-unit demand approximate the paper's Table 3 (see DESIGN.md
// Section 5 for the substitution argument).
package workload

import (
	"math/rand"
	"sync"

	"github.com/archsim/fusleep/internal/isa"
)

const batchSize = 4096

// batchPool recycles trace batches between the generator goroutine and the
// consuming simulator: a batch fully drained by Trace.Next (or discarded by
// Close) goes back to the pool, so steady-state trace generation allocates
// nothing per flush. Batches are handed off by value; every instruction is
// copied out before the batch is recycled.
var batchPool = sync.Pool{
	New: func() any { return make([]isa.Inst, 0, batchSize) },
}

func getBatch() []isa.Inst { return batchPool.Get().([]isa.Inst)[:0] }

func putBatch(b []isa.Inst) {
	if cap(b) >= batchSize {
		batchPool.Put(b[:0]) //nolint:staticcheck // slice-header boxing is one tiny alloc per 4096 insts
	}
}

// Emitter is the push-side interface kernels use to generate instructions.
// It assigns sequence numbers, batches instructions, and enforces the trace
// length limit.
type Emitter struct {
	batch []isa.Inst
	out   chan []isa.Inst
	stop  chan struct{}
	seq   uint64
	limit uint64
	done  bool
	rng   *rand.Rand
}

// Done reports whether the kernel should stop generating (limit reached or
// consumer closed). Kernels must check it at loop boundaries.
func (e *Emitter) Done() bool { return e.done }

// Rand returns the kernel's deterministic random source.
func (e *Emitter) Rand() *rand.Rand { return e.rng }

func (e *Emitter) emit(in isa.Inst) {
	if e.done {
		return
	}
	in.Seq = e.seq
	e.seq++
	e.batch = append(e.batch, in)
	if len(e.batch) >= batchSize {
		e.flush()
	}
	if e.limit > 0 && e.seq >= e.limit {
		e.done = true
	}
}

func (e *Emitter) flush() {
	if len(e.batch) == 0 {
		return
	}
	//fusleepvet:nondet-ok delivery-vs-stop race: a stopped consumer discards the batch, so the instruction stream seen downstream is unchanged
	select {
	case e.out <- e.batch:
		e.batch = getBatch()
	case <-e.stop:
		e.done = true
		e.batch = e.batch[:0]
	}
}

// ALU emits a single-cycle integer operation.
func (e *Emitter) ALU(pc uint64, dest, s1, s2 isa.Reg) {
	e.emit(isa.Inst{PC: pc, Class: isa.IntALU, Dest: dest, Src1: s1, Src2: s2})
}

// Mult emits an integer multiply.
func (e *Emitter) Mult(pc uint64, dest, s1, s2 isa.Reg) {
	e.emit(isa.Inst{PC: pc, Class: isa.IntMult, Dest: dest, Src1: s1, Src2: s2})
}

// FPALU emits a floating-point add.
func (e *Emitter) FPALU(pc uint64, dest, s1, s2 isa.Reg) {
	e.emit(isa.Inst{PC: pc, Class: isa.FPALU, Dest: dest, Src1: s1, Src2: s2})
}

// Load emits a data load from addr through base register base.
func (e *Emitter) Load(pc uint64, dest, base isa.Reg, addr uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Load, Dest: dest, Src1: base, Src2: isa.RegNone, Addr: addr})
}

// Store emits a data store of register data to addr through base.
func (e *Emitter) Store(pc uint64, base, data isa.Reg, addr uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Store, Dest: isa.RegNone, Src1: base, Src2: data, Addr: addr})
}

// Branch emits a conditional branch with the given actual outcome. cond is
// the register the branch tests.
func (e *Emitter) Branch(pc uint64, cond isa.Reg, taken bool, target uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Branch, Src1: cond, Src2: isa.RegNone, Dest: isa.RegNone,
		Taken: taken, Target: target})
}

// Jump emits an unconditional direct jump.
func (e *Emitter) Jump(pc, target uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Jump, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
		Taken: true, Target: target})
}

// Call emits a direct call.
func (e *Emitter) Call(pc, target uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Call, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
		Taken: true, Target: target})
}

// Return emits a function return to target.
func (e *Emitter) Return(pc, target uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Return, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone,
		Taken: true, Target: target})
}

// Nop emits a front-end-only instruction.
func (e *Emitter) Nop(pc uint64) {
	e.emit(isa.Inst{PC: pc, Class: isa.Nop, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
}

// Trace is the pull side: an isa.Stream fed by a kernel goroutine.
type Trace struct {
	ch        chan []isa.Inst
	stop      chan struct{}
	stopOnce  sync.Once
	cur       []isa.Inst
	pos       int
	exhausted bool
}

// NewTrace starts kernel in a goroutine and returns the consuming stream.
// The kernel must return promptly once Emitter.Done reports true. limit
// bounds the trace length (0 = unbounded, kernel decides); seed makes the
// trace deterministic.
func NewTrace(limit uint64, seed int64, kernel func(*Emitter)) *Trace {
	t := &Trace{
		ch:   make(chan []isa.Inst, 4),
		stop: make(chan struct{}),
	}
	e := &Emitter{
		batch: getBatch(),
		out:   t.ch,
		stop:  t.stop,
		limit: limit,
		rng:   rand.New(rand.NewSource(seed)),
	}
	go func() {
		defer close(t.ch)
		kernel(e)
		e.flush()
	}()
	return t
}

// Next implements isa.Stream.
func (t *Trace) Next() (isa.Inst, bool) {
	for t.pos >= len(t.cur) {
		if t.cur != nil {
			// Fully consumed; every instruction was copied out, so the
			// batch can be recycled for the generator.
			putBatch(t.cur)
			t.cur = nil
		}
		if t.exhausted {
			return isa.Inst{}, false
		}
		batch, ok := <-t.ch
		if !ok {
			t.exhausted = true
			return isa.Inst{}, false
		}
		t.cur = batch
		t.pos = 0
	}
	in := t.cur[t.pos]
	t.pos++
	return in, true
}

// Close implements isa.Stream, releasing the generator goroutine and
// discarding any buffered instructions.
func (t *Trace) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	// Drain so the producer's in-flight sends complete and the goroutine
	// observes the stop channel; drained batches are recycled.
	for b := range t.ch {
		putBatch(b)
	}
	if t.cur != nil {
		putBatch(t.cur)
		t.cur = nil
	}
	t.pos = 0
	t.exhausted = true
}
