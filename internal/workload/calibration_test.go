package workload_test

import (
	"math"
	"testing"

	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

func runBench(t *testing.T, s workload.Spec, fus int, insts uint64) pipeline.Result {
	t.Helper()
	cfg := pipeline.DefaultConfig().WithIntALUs(fus)
	cfg.MaxInsts = insts
	cpu, err := pipeline.New(cfg, s.NewTrace(insts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return res
}

// TestCalibrationBands pins each benchmark's simulated IPC (at its paper FU
// count) to within 20% of the Table 3 value. The kernels were tuned at
// 1.5M-instruction windows; the test uses a shorter window with a wider
// band to stay fast while still catching regressions.
func TestCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full simulations")
	}
	for _, s := range workload.Benchmarks {
		res := runBench(t, s, s.PaperFUs, 1_500_000)
		got := res.IPC()
		rel := math.Abs(got-s.PaperIPC) / s.PaperIPC
		if rel > 0.20 {
			t.Errorf("%s: IPC %.3f vs paper %.3f (%.0f%% off)", s.Name, got, s.PaperIPC, rel*100)
		}
	}
}

// TestSuiteOrdering checks the qualitative IPC structure the paper's
// figures depend on: the high-ILP pair on top, the memory-bound pair at the
// bottom, the branchy middle in between.
func TestSuiteOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering runs full simulations")
	}
	ipc := map[string]float64{}
	for _, s := range workload.Benchmarks {
		ipc[s.Name] = runBench(t, s, s.PaperFUs, 1_000_000).IPC()
	}
	for _, top := range []string{"vortex", "gzip"} {
		for _, mid := range []string{"gcc", "parser", "twolf", "vpr", "mst"} {
			if ipc[top] <= ipc[mid] {
				t.Errorf("%s (%.2f) should outrun %s (%.2f)", top, ipc[top], mid, ipc[mid])
			}
		}
	}
	for _, mid := range []string{"gcc", "parser", "twolf", "vpr", "mst"} {
		for _, low := range []string{"health", "mcf"} {
			if ipc[mid] <= ipc[low] {
				t.Errorf("%s (%.2f) should outrun %s (%.2f)", mid, ipc[mid], low, ipc[low])
			}
		}
	}
}

// TestMemoryBoundCharacter checks the microarchitectural signatures that
// drive the idle-interval distribution: mcf misses in the L2, health lives
// in the L2, gzip/vortex stay near the L1.
func TestMemoryBoundCharacter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	get := func(name string) pipeline.Result {
		s, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return runBench(t, s, s.PaperFUs, 400_000)
	}
	if r := get("mcf"); r.L1D.MissRate() < 0.5 || r.L2.MissRate() < 0.3 {
		t.Errorf("mcf should thrash: L1D %.2f L2 %.2f", r.L1D.MissRate(), r.L2.MissRate())
	}
	if r := get("vortex"); r.L1D.MissRate() > 0.3 {
		t.Errorf("vortex should be cache-friendly: L1D %.2f", r.L1D.MissRate())
	}
	if r := get("gzip"); r.Bpred.DirAccuracy() < 0.85 {
		t.Errorf("gzip branches should be mostly predictable: %.3f", r.Bpred.DirAccuracy())
	}
	if r := get("twolf"); r.Bpred.DirAccuracy() > 0.95 {
		t.Errorf("twolf accept/reject should hurt prediction: %.3f", r.Bpred.DirAccuracy())
	}
}

// TestFUProfilesProduced confirms every run yields per-unit idle profiles
// covering the whole run — the raw material of the energy study.
func TestFUProfilesProduced(t *testing.T) {
	s, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	res := runBench(t, s, 2, 100_000)
	if len(res.FUs) != 2 {
		t.Fatalf("expected 2 FU profiles, got %d", len(res.FUs))
	}
	for i, fu := range res.FUs {
		if fu.ActiveCycles == 0 {
			t.Errorf("FU %d never active", i)
		}
		if len(fu.Intervals) == 0 {
			t.Errorf("FU %d has no idle intervals", i)
		}
		if tot := fu.ActiveCycles + fu.IdleCycles(); tot != res.Cycles {
			t.Errorf("FU %d covers %d of %d cycles", i, tot, res.Cycles)
		}
	}
}
