package workload

import "github.com/archsim/fusleep/internal/isa"

// Register conventions shared by the kernel archetypes. Each archetype uses
// a disjoint register set so phases can interleave without false
// dependences beyond the ones they model.
var (
	regChase = [8]isa.Reg{isa.IntReg(1), isa.IntReg(2), isa.IntReg(3), isa.IntReg(4),
		isa.IntReg(5), isa.IntReg(6), isa.IntReg(7), isa.IntReg(8)}
	regAcc   = isa.Reg(isa.IntReg(9))
	regTmp   = [6]isa.Reg{isa.IntReg(10), isa.IntReg(11), isa.IntReg(12), isa.IntReg(13), isa.IntReg(14), isa.IntReg(15)}
	regBase  = isa.Reg(isa.IntReg(16))
	regCond  = isa.Reg(isa.IntReg(17))
	regIdx   = isa.Reg(isa.IntReg(18))
	regFP    = isa.Reg(isa.FPReg(1))
	regFPTwo = isa.Reg(isa.FPReg(2))
)

// ChaseParams describes a pointer-chasing phase: the classic dependent-load
// pattern of Olden/mcf-style codes. Chains interleaved chains provide
// memory-level parallelism; the footprint (Nodes*NodeBytes) sets the miss
// level against the 64 KB L1 / 2 MB L2 hierarchy.
type ChaseParams struct {
	PC        uint64 // code region base (stable static sites)
	Heap      uint64 // data region base
	Nodes     int    // power of two
	NodeBytes int
	Chains    int // interleaved independent chains (max 8)
	Hops      int // hops per chain per invocation
	WorkDep   int // ALU ops dependent on the loaded pointer, per hop
	WorkIndep int // independent ALU ops per hop
}

// ChaseState carries chain positions across invocations.
type ChaseState struct {
	idx  []uint64
	init bool
}

// chaseStep advances a chain index through a full-period affine walk over
// [0, nodes): nodes is a power of two, the multiplier is ≡ 1 (mod 4), and
// the addend stays odd for every salt (salt contributes an even term), which
// guarantees the walk visits every node before repeating.
func chaseStep(idx uint64, nodes int, salt uint64) uint64 {
	return (idx*2862933555777941757 + 3037000493 + (salt << 1)) & uint64(nodes-1)
}

// Chase emits one invocation of the pointer-chasing phase.
func Chase(e *Emitter, p ChaseParams, st *ChaseState) {
	if !st.init {
		st.idx = make([]uint64, p.Chains)
		for i := range st.idx {
			st.idx[i] = uint64(i * 977)
		}
		st.init = true
	}
	for hop := 0; hop < p.Hops && !e.Done(); hop++ {
		site := p.PC
		for c := 0; c < p.Chains; c++ {
			r := regChase[c%len(regChase)]
			addr := p.Heap + st.idx[c]*uint64(p.NodeBytes)
			e.Load(site, r, r, addr)
			site += 4
			for w := 0; w < p.WorkDep; w++ {
				e.ALU(site, r, r, regAcc)
				site += 4
			}
			for w := 0; w < p.WorkIndep; w++ {
				e.ALU(site, regTmp[w%len(regTmp)], regAcc, isa.RegNone)
				site += 4
			}
			st.idx[c] = chaseStep(st.idx[c], p.Nodes, uint64(c))
		}
		// Loop back-edge: taken until the final hop of the invocation.
		e.Branch(site, regCond, hop != p.Hops-1, p.PC)
	}
}

// StreamParams describes a unit-stride sweep: load/compute/store loops with
// high instruction-level parallelism (gzip/vortex-style inner loops).
type StreamParams struct {
	PC        uint64
	Base      uint64
	Bytes     int // footprint per array (power of two)
	Stride    int
	Loads     int // loads per iteration (from distinct arrays)
	WorkDep   int // ALU ops dependent on the first load
	WorkIndep int // independent ALU ops
	Stores    int
	Iters     int
}

// StreamState carries the sweep position across invocations.
type StreamState struct{ off uint64 }

// Stream emits one invocation of the streaming phase.
func Stream(e *Emitter, p StreamParams, st *StreamState) {
	mask := uint64(p.Bytes - 1)
	for it := 0; it < p.Iters && !e.Done(); it++ {
		site := p.PC
		for l := 0; l < p.Loads; l++ {
			arr := p.Base + uint64(l)<<28
			e.Load(site, regTmp[l%3], regBase, arr+(st.off&mask))
			site += 4
		}
		for w := 0; w < p.WorkDep; w++ {
			e.ALU(site, regAcc, regAcc, regTmp[0])
			site += 4
		}
		for w := 0; w < p.WorkIndep; w++ {
			e.ALU(site, regTmp[3+w%3], regTmp[w%3], isa.RegNone)
			site += 4
		}
		for s := 0; s < p.Stores; s++ {
			arr := p.Base + uint64(p.Loads+s)<<28
			e.Store(site, regBase, regAcc, arr+(st.off&mask))
			site += 4
		}
		e.Branch(site, regCond, it != p.Iters-1, p.PC)
		st.off += uint64(p.Stride)
	}
}

// HashParams describes dictionary/table lookups: hashing compute, a bucket
// head load, and a data-dependent probe loop (parser/mst-style). Ways
// independent lookup streams model the natural overlap of consecutive loop
// iterations hashing unrelated keys.
type HashParams struct {
	PC         uint64
	Table      uint64
	Buckets    int // power of two
	NodeBytes  int
	MeanProbes float64 // geometric probe count (data-dependent branch)
	Compute    int     // ALU ops per lookup (hash + record handling)
	Lookups    int
	Ways       int  // independent in-flight lookup streams (default 1)
	UseMult    bool // hash mixing includes an integer multiply
}

// HashLookups emits one invocation of the lookup phase.
func HashLookups(e *Emitter, p HashParams, key *uint64) {
	rng := e.Rand()
	cont := 1 - 1/p.MeanProbes // P(probe again)
	ways := p.Ways
	if ways < 1 {
		ways = 1
	}
	for l := 0; l < p.Lookups && !e.Done(); l++ {
		site := p.PC
		// Each way uses its own key and node registers, so consecutive
		// lookups from different ways overlap in the pipeline.
		keyReg := isa.IntReg(18 + l%ways)
		nodeReg := regChase[l%ways%len(regChase)]
		// Hash compute: short dependent sequence on this way's key.
		e.ALU(site, keyReg, keyReg, regAcc)
		site += 4
		if p.UseMult {
			e.Mult(site, keyReg, keyReg, isa.RegNone)
		} else {
			e.ALU(site, keyReg, keyReg, isa.RegNone)
		}
		site += 4
		*key = chaseStep(*key, p.Buckets, 17)
		bucket := p.Table + *key*uint64(p.NodeBytes)
		e.Load(site, nodeReg, keyReg, bucket)
		site += 4
		// Probe loop: compare the key (B0), follow the chain pointer (B1),
		// and loop back (B2) while the data-dependent search continues.
		// The back-edge target B0 matches the next emitted PC on the taken
		// path, so control flow is self-consistent.
		probeSite := site
		for probe := 0; !e.Done(); probe++ {
			e.ALU(probeSite, regCond, nodeReg, keyReg)
			again := rng.Float64() < cont && probe < 8
			if !again {
				e.Branch(probeSite+8, regCond, false, probeSite)
				break
			}
			e.Load(probeSite+4, nodeReg, nodeReg,
				bucket+uint64(probe+1)*uint64(p.NodeBytes))
			e.Branch(probeSite+8, regCond, true, probeSite)
		}
		site = probeSite + 12
		for wIdx := 0; wIdx < p.Compute; wIdx++ {
			e.ALU(site, regTmp[wIdx%len(regTmp)], nodeReg, isa.RegNone)
			site += 4
		}
		e.Branch(site, regCond, l != p.Lookups-1, p.PC)
	}
}

// BranchyParams describes control-dominated compute (gcc/twolf-style):
// blocks of ALU work separated by branches, a fraction of which are
// data-dependent and unpredictable, with loads that mostly hit a hot subset
// of the working set.
type BranchyParams struct {
	PC         uint64
	Data       uint64
	Footprint  int     // power of two, bytes
	BlockALU   int     // ALU ops per block
	IndepFrac  int     // of BlockALU, how many are independent (rest chain)
	RandomProb float64 // probability a block's branch is random 50/50
	TakenBias  float64 // taken fraction of the predictable branches
	LoadEvery  int     // one load every N blocks (0 = none)
	ColdEvery  int     // every N-th load leaves the hot region (0 = never)
	StoreEvery int     // one store every N blocks (0 = none)
	FPEvery    int     // one FP op every N blocks (0 = none)
	Blocks     int
}

// BranchyState carries block position across invocations.
type BranchyState struct{ n, loads uint64 }

// Branchy emits one invocation of the branchy-compute phase. The
// predictable branches follow a deterministic period-8 pattern realizing
// TakenBias, which the two-level predictor learns essentially perfectly —
// matching real biased branches, which are patterned rather than random.
// Loads walk a hot region (1/16 of the footprint) except every ColdEvery-th
// load, which touches a random cold address.
func Branchy(e *Emitter, p BranchyParams, st *BranchyState) {
	rng := e.Rand()
	mask := uint64(p.Footprint - 1)
	hotMask := mask >> 4
	takenPer8 := int(p.TakenBias*8 + 0.5)
	for b := 0; b < p.Blocks && !e.Done(); b++ {
		st.n++
		site := p.PC
		for w := 0; w < p.BlockALU; w++ {
			if w < p.IndepFrac {
				e.ALU(site, regTmp[w%len(regTmp)], regAcc, isa.RegNone)
			} else {
				e.ALU(site, regAcc, regAcc, regTmp[0])
			}
			site += 4
		}
		// Each conditional slot owns two static sites — the operation and
		// the not-taken-path nop — so a PC never changes instruction class
		// across dynamic executions.
		if p.LoadEvery > 0 && st.n%uint64(p.LoadEvery) == 0 {
			st.loads++
			addr := p.Data + (chaseStep(st.n, 1<<30, 5) & hotMask)
			if p.ColdEvery > 0 && st.loads%uint64(p.ColdEvery) == 0 {
				addr = p.Data + (chaseStep(st.n, 1<<30, 5) & mask)
			}
			e.Load(site, regTmp[0], regBase, addr)
		} else {
			e.Nop(site + 4)
		}
		site += 8
		if p.StoreEvery > 0 && st.n%uint64(p.StoreEvery) == 0 {
			addr := p.Data + (chaseStep(st.n, 1<<30, 11) & hotMask)
			e.Store(site, regBase, regAcc, addr)
		} else {
			e.Nop(site + 4)
		}
		site += 8
		if p.FPEvery > 0 && st.n%uint64(p.FPEvery) == 0 {
			e.FPALU(site, regFP, regFP, regFPTwo)
		} else {
			e.Nop(site + 4)
		}
		site += 8
		// Control: an unpredictable fraction of blocks flips a coin; the
		// rest follow the learnable periodic pattern.
		var taken bool
		if rng.Float64() < p.RandomProb {
			taken = rng.Intn(2) == 0
		} else {
			taken = int(st.n%8) < takenPer8
		}
		e.Branch(site, regCond, taken, p.PC)
	}
}

// CallParams describes a call-tree phase exercising the RAS (parser/gcc
// style recursion).
type CallParams struct {
	PC     uint64
	Depth  int
	Work   int // ALU ops per level
	Rounds int
}

// CallTree emits rounds of call/work/return chains of the given depth.
func CallTree(e *Emitter, p CallParams, _ *struct{}) {
	frame := uint64(0x100) // code bytes per level
	for r := 0; r < p.Rounds && !e.Done(); r++ {
		// Descend.
		for d := 0; d < p.Depth; d++ {
			base := p.PC + uint64(d)*frame
			e.Call(base, base+frame)
		}
		// Work at the leaf.
		leaf := p.PC + uint64(p.Depth)*frame
		site := leaf
		for w := 0; w < p.Work; w++ {
			e.ALU(site, regTmp[w%len(regTmp)], regAcc, isa.RegNone)
			site += 4
		}
		// Unwind: each return goes back to the call site's successor.
		for d := p.Depth; d >= 1; d-- {
			retFrom := p.PC + uint64(d)*frame + 0x80
			retTo := p.PC + uint64(d-1)*frame + 4
			e.Return(retFrom, retTo)
		}
	}
}
