// Package stats provides the measurement primitives of the study: per-cycle
// busy/idle run recording for functional units and logarithmic histograms
// for the idle-interval distribution of Figure 7.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
)

// RunRecorder observes one functional unit cycle by cycle and accumulates
// its activity profile: total active cycles and the multiset of idle
// interval lengths. Call Tick once per simulated cycle and Flush at the end
// of the run to close a trailing idle interval.
type RunRecorder struct {
	active    uint64
	idleRun   int
	intervals map[int]uint64
}

// NewRunRecorder returns an empty recorder.
func NewRunRecorder() *RunRecorder {
	return &RunRecorder{intervals: make(map[int]uint64)}
}

// Tick records one cycle of observation.
func (r *RunRecorder) Tick(active bool) {
	if active {
		r.active++
		if r.idleRun > 0 {
			r.intervals[r.idleRun]++
			r.idleRun = 0
		}
		return
	}
	r.idleRun++
}

// Flush closes any open idle interval; call once when the run ends.
func (r *RunRecorder) Flush() {
	if r.idleRun > 0 {
		r.intervals[r.idleRun]++
		r.idleRun = 0
	}
}

// ActiveCycles returns the number of cycles the unit computed.
func (r *RunRecorder) ActiveCycles() uint64 { return r.active }

// Intervals returns the recorded idle intervals (length -> count). The
// returned map is the recorder's own; callers must not mutate it.
func (r *RunRecorder) Intervals() map[int]uint64 { return r.intervals }

// IdleCycles returns the total recorded idle cycles.
func (r *RunRecorder) IdleCycles() uint64 {
	var n uint64
	for l, c := range r.intervals {
		n += uint64(l) * c
	}
	return n
}

// TotalCycles returns active plus idle cycles recorded (after Flush).
func (r *RunRecorder) TotalCycles() uint64 { return r.active + r.IdleCycles() }

// IdleFraction returns idle/total, or 0 when nothing was recorded.
func (r *RunRecorder) IdleFraction() float64 {
	tot := r.TotalCycles()
	if tot == 0 {
		return 0
	}
	return float64(r.IdleCycles()) / float64(tot)
}

// Log2Bucket is one bin of a logarithmic histogram covering [Low, High].
type Log2Bucket struct {
	Low, High int
	Count     uint64
	Weight    uint64 // sum of values (e.g. idle cycles) in the bucket
}

// Log2Histogram bins positive integers into power-of-two buckets
// [1,1],[2,3],[4,7],... with everything at or above Cap accumulated into the
// final bucket, reproducing the x-axis treatment of Figure 7 ("idle
// intervals longer than 8192 cycles have the total idle time accumulated at
// the 8192 cycle marker").
type Log2Histogram struct {
	Cap     int
	counts  []uint64
	weights []uint64
}

// NewLog2Histogram builds a histogram with the given accumulation cap,
// which must be a power of two.
func NewLog2Histogram(cap int) (*Log2Histogram, error) {
	if cap < 2 || cap&(cap-1) != 0 {
		return nil, fmt.Errorf("stats: cap %d must be a power of two >= 2", cap)
	}
	n := bits.Len(uint(cap)) // bucket index of cap itself
	return &Log2Histogram{
		Cap:     cap,
		counts:  make([]uint64, n),
		weights: make([]uint64, n),
	}, nil
}

// MustNewLog2Histogram panics on bad caps.
func MustNewLog2Histogram(cap int) *Log2Histogram {
	h, err := NewLog2Histogram(cap)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *Log2Histogram) bucketIndex(v int) int {
	if v >= h.Cap {
		return len(h.counts) - 1
	}
	return bits.Len(uint(v)) - 1
}

// Add records count occurrences of value v (v must be positive). The
// bucket weight accumulates v*count, i.e. total cycles when v is an idle
// interval length.
func (h *Log2Histogram) Add(v int, count uint64) {
	if v <= 0 || count == 0 {
		return
	}
	i := h.bucketIndex(v)
	h.counts[i] += count
	h.weights[i] += uint64(v) * count
}

// AddIntervals merges an interval multiset (length -> count).
func (h *Log2Histogram) AddIntervals(intervals map[int]uint64) {
	for l, c := range intervals {
		h.Add(l, c)
	}
}

// Buckets returns the bins in ascending order of range.
func (h *Log2Histogram) Buckets() []Log2Bucket {
	out := make([]Log2Bucket, len(h.counts))
	for i := range h.counts {
		low := 1 << i
		high := 1<<(i+1) - 1
		if i == len(h.counts)-1 {
			high = -1 // open-ended accumulation bucket
		}
		out[i] = Log2Bucket{Low: low, High: high, Count: h.counts[i], Weight: h.weights[i]}
	}
	return out
}

// TotalCount returns the number of recorded values.
func (h *Log2Histogram) TotalCount() uint64 {
	var n uint64
	for _, c := range h.counts {
		n += c
	}
	return n
}

// TotalWeight returns the summed values (total idle cycles).
func (h *Log2Histogram) TotalWeight() uint64 {
	var n uint64
	for _, w := range h.weights {
		n += w
	}
	return n
}

// WeightAtOrBelow returns the fraction of total weight contributed by
// values <= v, computed from the exact bucket boundaries that contain v.
// It is used for statements like "75% of idle time occurs within the L2
// access latency". Buckets straddling v are included when their low bound
// is <= v.
func (h *Log2Histogram) WeightAtOrBelow(v int) float64 {
	tot := h.TotalWeight()
	if tot == 0 {
		return 0
	}
	var acc uint64
	for i, w := range h.weights {
		if 1<<i <= v {
			acc += w
		}
	}
	return float64(acc) / float64(tot)
}

// CumulativeWeightFraction computes the exact (not bucketed) fraction of
// weight from values <= v given the raw interval multiset.
func CumulativeWeightFraction(intervals map[int]uint64, v int) float64 {
	var acc, tot uint64
	for l, c := range intervals {
		w := uint64(l) * c
		tot += w
		if l <= v {
			acc += w
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(acc) / float64(tot)
}

// SortedLengths returns the distinct keys of an interval multiset ascending.
func SortedLengths(intervals map[int]uint64) []int {
	out := make([]int, 0, len(intervals))
	for l := range intervals {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
