package stats

import (
	"math"
	"testing"
)

func TestWeightedQuantileTable(t *testing.T) {
	cases := []struct {
		name    string
		values  []float64
		weights []float64
		q       float64
		want    float64
	}{
		{"single value", []float64{7}, []float64{3}, 0.5, 7},
		{"median of two equal weights", []float64{1, 3}, []float64{1, 1}, 0.5, 2},
		{"median pulled by weight", []float64{1, 3}, []float64{3, 1}, 0.5, 1.5},
		{"below first midpoint clamps", []float64{1, 3}, []float64{1, 1}, 0.1, 1},
		{"above last midpoint clamps", []float64{1, 3}, []float64{1, 1}, 0.9, 3},
		{"q=0 is the minimum", []float64{5, 2, 9}, []float64{1, 1, 1}, 0, 2},
		{"q=1 is the maximum", []float64{5, 2, 9}, []float64{1, 1, 1}, 1, 9},
		{"unsorted input", []float64{9, 1, 5}, []float64{1, 1, 1}, 0.5, 5},
		{"zero weights ignored", []float64{1, 100, 3}, []float64{1, 0, 1}, 0.5, 2},
		{"uniform three-point median", []float64{1, 2, 3}, []float64{1, 1, 1}, 0.5, 2},
		{"interpolated quartile", []float64{0, 10}, []float64{1, 1}, 0.25, 0},
		{"heavy tail dominates upper quantile", []float64{1, 2, 1000}, []float64{1, 1, 98}, 0.9, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := WeightedQuantile(tc.values, tc.weights, tc.q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("WeightedQuantile(%v, %v, %g) = %g, want %g",
					tc.values, tc.weights, tc.q, got, tc.want)
			}
		})
	}
}

func TestWeightedQuantileErrors(t *testing.T) {
	cases := []struct {
		name    string
		values  []float64
		weights []float64
		q       float64
	}{
		{"length mismatch", []float64{1, 2}, []float64{1}, 0.5},
		{"q below range", []float64{1}, []float64{1}, -0.1},
		{"q above range", []float64{1}, []float64{1}, 1.1},
		{"negative weight", []float64{1, 2}, []float64{1, -1}, 0.5},
		{"empty", nil, nil, 0.5},
		{"all zero weights", []float64{1, 2}, []float64{0, 0}, 0.5},
		{"NaN value", []float64{math.NaN()}, []float64{1}, 0.5},
		{"NaN weight", []float64{1}, []float64{math.NaN()}, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := WeightedQuantile(tc.values, tc.weights, tc.q); err == nil {
				t.Errorf("WeightedQuantile(%v, %v, %g) accepted", tc.values, tc.weights, tc.q)
			}
		})
	}
}

func TestQuantileMatchesWeightedWithUnitWeights(t *testing.T) {
	values := []float64{4, 1, 8, 2, 9, 3}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		unweighted, err := Quantile(values, q)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := WeightedQuantile(values, []float64{1, 1, 1, 1, 1, 1}, q)
		if err != nil {
			t.Fatal(err)
		}
		if unweighted != weighted {
			t.Errorf("q=%g: Quantile %g != unit-weight WeightedQuantile %g", q, unweighted, weighted)
		}
	}
}

func TestWeightedQuantileScaleInvariant(t *testing.T) {
	// Scaling every weight by a constant must not move any quantile.
	values := []float64{3, 1, 4, 1.5, 9}
	weights := []float64{2, 1, 0.5, 3, 1}
	scaled := make([]float64, len(weights))
	for i, w := range weights {
		scaled[i] = w * 37.5
	}
	for _, q := range []float64{0, 0.2, 0.5, 0.8, 1} {
		a, err := WeightedQuantile(values, weights, q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := WeightedQuantile(values, scaled, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("q=%g: %g != %g after weight scaling", q, a, b)
		}
	}
}

func TestPercentiles(t *testing.T) {
	values := []float64{1, 2, 3, 4, 5}
	got, err := Percentiles(values, 50, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Percentiles(values, 101); err == nil {
		t.Error("percentile 101 accepted")
	}
	if _, err := Percentiles(nil, 50); err == nil {
		t.Error("empty values accepted")
	}
}
