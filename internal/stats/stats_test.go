package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunRecorderBasics(t *testing.T) {
	r := NewRunRecorder()
	for _, a := range []bool{true, false, false, true, false, true, true} {
		r.Tick(a)
	}
	r.Flush()
	if r.ActiveCycles() != 4 {
		t.Errorf("active = %d, want 4", r.ActiveCycles())
	}
	if r.IdleCycles() != 3 {
		t.Errorf("idle = %d, want 3", r.IdleCycles())
	}
	if r.Intervals()[2] != 1 || r.Intervals()[1] != 1 {
		t.Errorf("intervals = %v", r.Intervals())
	}
	if r.TotalCycles() != 7 {
		t.Errorf("total = %d", r.TotalCycles())
	}
	if f := r.IdleFraction(); f != 3.0/7.0 {
		t.Errorf("idle fraction = %g", f)
	}
}

func TestRunRecorderTrailingIdle(t *testing.T) {
	r := NewRunRecorder()
	r.Tick(true)
	r.Tick(false)
	r.Tick(false)
	// Without Flush the trailing run is invisible...
	if r.IdleCycles() != 0 {
		t.Error("open interval should not be counted before Flush")
	}
	r.Flush()
	if r.Intervals()[2] != 1 {
		t.Errorf("trailing interval missing: %v", r.Intervals())
	}
	// Repeated Flush is harmless.
	r.Flush()
	if r.IdleCycles() != 2 {
		t.Errorf("double Flush corrupted state: %d", r.IdleCycles())
	}
}

func TestRunRecorderEmpty(t *testing.T) {
	r := NewRunRecorder()
	r.Flush()
	if r.IdleFraction() != 0 || r.TotalCycles() != 0 {
		t.Error("empty recorder should be zero")
	}
}

func TestRunRecorderConservation(t *testing.T) {
	// Active + idle cycles always equals ticks, for random streams.
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRunRecorder()
		ticks := int(n%2000) + 1
		for i := 0; i < ticks; i++ {
			r.Tick(rng.Float64() < 0.5)
		}
		r.Flush()
		return r.TotalCycles() == uint64(ticks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLog2HistogramBuckets(t *testing.T) {
	h := MustNewLog2Histogram(8192)
	h.Add(1, 10)
	h.Add(2, 5)
	h.Add(3, 5)
	h.Add(4, 2)
	h.Add(7, 1)
	h.Add(8192, 1)
	h.Add(100000, 2) // accumulates at the cap bucket
	h.Add(0, 99)     // ignored
	h.Add(-1, 99)    // ignored
	h.Add(5, 0)      // ignored

	bk := h.Buckets()
	if bk[0].Low != 1 || bk[0].High != 1 || bk[0].Count != 10 {
		t.Errorf("bucket[0] = %+v", bk[0])
	}
	if bk[1].Low != 2 || bk[1].High != 3 || bk[1].Count != 10 {
		t.Errorf("bucket[1] = %+v", bk[1])
	}
	if bk[2].Low != 4 || bk[2].High != 7 || bk[2].Count != 3 {
		t.Errorf("bucket[2] = %+v", bk[2])
	}
	last := bk[len(bk)-1]
	if last.Low != 8192 || last.High != -1 || last.Count != 3 {
		t.Errorf("cap bucket = %+v", last)
	}
	if h.TotalCount() != 26 {
		t.Errorf("total count = %d, want 26", h.TotalCount())
	}
	wantWeight := uint64(1*10 + 2*5 + 3*5 + 4*2 + 7 + 8192 + 200000)
	if h.TotalWeight() != wantWeight {
		t.Errorf("total weight = %d, want %d", h.TotalWeight(), wantWeight)
	}
}

func TestLog2HistogramCapValidation(t *testing.T) {
	if _, err := NewLog2Histogram(1000); err == nil {
		t.Error("non-power-of-two cap accepted")
	}
	if _, err := NewLog2Histogram(1); err == nil {
		t.Error("cap 1 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewLog2Histogram should panic")
		}
	}()
	MustNewLog2Histogram(3)
}

func TestWeightAtOrBelow(t *testing.T) {
	h := MustNewLog2Histogram(1024)
	h.Add(2, 1)  // bucket [2,3], weight 2
	h.Add(8, 1)  // bucket [8,15], weight 8
	h.Add(64, 1) // bucket [64,127], weight 64
	got := h.WeightAtOrBelow(15)
	want := 10.0 / 74.0
	if got != want {
		t.Errorf("WeightAtOrBelow(15) = %g, want %g", got, want)
	}
	if h.WeightAtOrBelow(0) != 0 {
		t.Error("nothing should be at or below 0")
	}
	empty := MustNewLog2Histogram(64)
	if empty.WeightAtOrBelow(10) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}

func TestCumulativeWeightFraction(t *testing.T) {
	m := map[int]uint64{3: 2, 12: 1, 50: 1}
	// weight: 6 + 12 + 50 = 68; <= 12: 18.
	if got := CumulativeWeightFraction(m, 12); got != 18.0/68.0 {
		t.Errorf("fraction = %g", got)
	}
	if CumulativeWeightFraction(nil, 5) != 0 {
		t.Error("empty multiset should give 0")
	}
}

func TestSortedLengths(t *testing.T) {
	m := map[int]uint64{9: 1, 2: 1, 5: 1}
	got := SortedLengths(m)
	if len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Errorf("sorted = %v", got)
	}
}

func TestHistogramMatchesRecorder(t *testing.T) {
	// Feeding a recorder's intervals into the histogram conserves weight.
	rng := rand.New(rand.NewSource(5))
	r := NewRunRecorder()
	for i := 0; i < 10000; i++ {
		r.Tick(rng.Float64() < 0.3)
	}
	r.Flush()
	h := MustNewLog2Histogram(8192)
	h.AddIntervals(r.Intervals())
	if h.TotalWeight() != r.IdleCycles() {
		t.Errorf("histogram weight %d != recorder idle %d", h.TotalWeight(), r.IdleCycles())
	}
	var n uint64
	for _, c := range r.Intervals() {
		n += c
	}
	if h.TotalCount() != n {
		t.Errorf("histogram count %d != interval count %d", h.TotalCount(), n)
	}
}
