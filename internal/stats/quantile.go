package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedQuantile returns the q-quantile (q in [0,1]) of values under the
// given non-negative weights, using the weighted analogue of the
// linear-interpolation estimator: each sorted value v_i sits at cumulative
// position (S_i - w_i/2) / W, where S_i is the running weight sum and W the
// total, and the quantile interpolates linearly between the two positions
// bracketing q. With unit weights this reduces to the classic type-7-like
// midpoint estimator; values with zero weight never influence the result.
// The inputs are not mutated.
func WeightedQuantile(values, weights []float64, q float64) (float64, error) {
	if len(values) != len(weights) {
		return 0, fmt.Errorf("stats: %d values but %d weights", len(values), len(weights))
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of range [0,1]", q)
	}
	vals, pos, err := cumulativePositions(values, weights)
	if err != nil {
		return 0, err
	}
	return quantileAt(vals, pos, q), nil
}

// cumulativePositions sorts the positively weighted values and returns
// them with their cumulative midpoint positions in [0,1] — the shared
// preprocessing behind WeightedQuantile and Percentiles.
func cumulativePositions(values, weights []float64) (vals, pos []float64, err error) {
	type wv struct{ v, w float64 }
	var total float64
	pts := make([]wv, 0, len(values))
	for i, v := range values {
		w := weights[i]
		if math.IsNaN(v) || math.IsNaN(w) {
			return nil, nil, fmt.Errorf("stats: NaN at index %d", i)
		}
		if w < 0 {
			return nil, nil, fmt.Errorf("stats: negative weight %g at index %d", w, i)
		}
		if w == 0 {
			continue
		}
		pts = append(pts, wv{v, w})
		total += w
	}
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("stats: no positively weighted values")
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })
	vals = make([]float64, len(pts))
	pos = make([]float64, len(pts))
	var run float64
	for i, p := range pts {
		vals[i] = p.v
		pos[i] = (run + p.w/2) / total
		run += p.w
	}
	return vals, pos, nil
}

// quantileAt interpolates the q-quantile over sorted values and their
// cumulative midpoint positions.
func quantileAt(vals, pos []float64, q float64) float64 {
	if len(vals) == 1 || q <= pos[0] {
		return vals[0]
	}
	if q >= pos[len(pos)-1] {
		return vals[len(vals)-1]
	}
	i := sort.SearchFloat64s(pos, q)
	// pos[i-1] < q <= pos[i]; interpolate between the bracketing values.
	frac := (q - pos[i-1]) / (pos[i] - pos[i-1])
	return vals[i-1] + frac*(vals[i]-vals[i-1])
}

// Quantile returns the q-quantile of values with equal weights.
func Quantile(values []float64, q float64) (float64, error) {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return WeightedQuantile(values, w, q)
}

// Percentiles evaluates several percentiles (0-100) against one shared
// sort of the value set, returning them in argument order.
func Percentiles(values []float64, ps ...float64) ([]float64, error) {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	vals, pos, err := cumulativePositions(values, w)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		q := p / 100
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: percentile %g out of range [0,100]", p)
		}
		out[i] = quantileAt(vals, pos, q)
	}
	return out, nil
}
