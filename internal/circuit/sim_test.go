package circuit

import (
	"math"
	"math/rand"
	"testing"

	"github.com/archsim/fusleep/internal/core"
)

func TestFUPowerUpState(t *testing.T) {
	fu := MustNewFU(DefaultFU())
	if fu.ChargedFraction() != 1 || fu.Asleep() {
		t.Error("unit should power up precharged and awake")
	}
	if fu.Cycles() != 0 || fu.Energy().Total() != 0 {
		t.Error("fresh unit should have zero accounting")
	}
}

func TestNewFURejectsBadConfig(t *testing.T) {
	bad := DefaultFU()
	bad.Rows = 0
	if _, err := NewFU(bad); err == nil {
		t.Error("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewFU should panic on invalid config")
		}
	}()
	MustNewFU(bad)
}

func TestEvaluateSetsChargeState(t *testing.T) {
	fu := MustNewFU(DefaultFU())
	if err := fu.Evaluate(0.3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(fu.ChargedFraction()-0.7) > 1e-12 {
		t.Errorf("charged fraction = %g, want 0.7", fu.ChargedFraction())
	}
	if err := fu.Evaluate(1.5); err == nil {
		t.Error("alpha out of range accepted")
	}
	// Dynamic energy of one evaluation at alpha: alpha * E_A.
	fu.Reset()
	_ = fu.Evaluate(0.5)
	wantDyn := 0.5 * fu.Config().MaxDynamicFJ()
	if math.Abs(fu.Energy().Dynamic-wantDyn) > 1e-9 {
		t.Errorf("dynamic = %g, want %g", fu.Energy().Dynamic, wantDyn)
	}
}

func TestSleepTransitionEnergy(t *testing.T) {
	cfg := DefaultFU()
	fu := MustNewFU(cfg)
	_ = fu.Evaluate(0.5)
	pre := fu.Energy()
	if err := fu.Sleep(); err != nil {
		t.Fatal(err)
	}
	gotTrans := fu.Energy().Transition - pre.Transition
	wantTrans := 0.5*cfg.MaxDynamicFJ() + cfg.TransitionOverheadFJ()
	if math.Abs(gotTrans-wantTrans) > 1e-9 {
		t.Errorf("transition = %g fJ, want %g", gotTrans, wantTrans)
	}
	if !fu.Asleep() || fu.ChargedFraction() != 0 {
		t.Error("unit should be asleep with all nodes discharged")
	}
	// A second sleep cycle pays no further transition energy.
	pre = fu.Energy()
	_ = fu.Sleep()
	if fu.Energy().Transition != pre.Transition {
		t.Error("repeated sleep cycles must not re-pay the transition")
	}
	// Waking via evaluation clears the sleep state.
	_ = fu.Evaluate(0.2)
	if fu.Asleep() {
		t.Error("evaluation should wake the unit")
	}
}

func TestSleepRequiresSleepMode(t *testing.T) {
	cfg := DefaultFU()
	cfg.Gate = DualVt // no sleep transistor
	cfg.SleepDriverFJ = 0
	fu := MustNewFU(cfg)
	if err := fu.Sleep(); err == nil {
		t.Error("sleep on a unit without sleep mode should fail")
	}
}

func TestIdleLeakageDependsOnState(t *testing.T) {
	cfg := DefaultFU()
	// High-activity evaluation leaves most nodes low-leakage.
	hot := MustNewFU(cfg)
	_ = hot.Evaluate(0.9)
	preHot := hot.Energy().IdleLeak
	hot.IdleGated()
	hotLeak := hot.Energy().IdleLeak - preHot

	cold := MustNewFU(cfg)
	_ = cold.Evaluate(0.1)
	preCold := cold.Energy().IdleLeak
	cold.IdleGated()
	coldLeak := cold.Energy().IdleLeak - preCold

	if hotLeak >= coldLeak {
		t.Errorf("alpha=0.9 idle leak %g should be below alpha=0.1 leak %g", hotLeak, coldLeak)
	}
	// Roughly proportional to (1-alpha): ratio ~ 0.1/0.9.
	if r := hotLeak / coldLeak; r > 0.2 {
		t.Errorf("leak ratio = %g, want ~0.11", r)
	}
}

func TestBreakevenMatchesPaperFigure3(t *testing.T) {
	// Section 2.1: "If the circuit is not idle for at least 17 cycles then
	// more energy is used than is saved" and the breakeven is relatively
	// insensitive to the activity factor.
	fu := MustNewFU(DefaultFU())
	var bes []int
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		be, err := fu.BreakevenIdle(alpha, 100)
		if err != nil {
			t.Fatal(err)
		}
		if be < 15 || be > 20 {
			t.Errorf("alpha=%g: breakeven = %d cycles, want ~17", alpha, be)
		}
		bes = append(bes, be)
	}
	if spread := bes[2] - bes[0]; spread < -3 || spread > 3 {
		t.Errorf("breakeven spread across alpha = %d, want small", spread)
	}
}

func TestFigure3CurveShapes(t *testing.T) {
	fu := MustNewFU(DefaultFU())
	un, sl, err := fu.IdleEnergyCurve(0.1, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Uncontrolled idle: straight line from the origin.
	if un[0] != 0 {
		t.Errorf("uncontrolled[0] = %g, want 0", un[0])
	}
	slope := un[1] - un[0]
	for n := 2; n <= 25; n++ {
		if math.Abs((un[n]-un[n-1])-slope) > 1e-9 {
			t.Fatalf("uncontrolled idle curve not linear at n=%d", n)
		}
	}
	// At alpha=0.1 the slope is (1-0.1)*500*1.4fJ + 0.1*500*7.1e-4 fJ ~ 0.63 pJ/cycle.
	if math.Abs(slope-0.63) > 0.01 {
		t.Errorf("uncontrolled slope = %g pJ/cycle, want ~0.63", slope)
	}
	// Sleep: committed transition cost then near-flat plateau around
	// (1-alpha)*11.1 pJ + overhead ~ 10 pJ.
	if sl[0] < 9.5 || sl[0] > 10.7 {
		t.Errorf("sleep[0] = %g pJ, want ~10", sl[0])
	}
	plateau := sl[25] - sl[1]
	if plateau > 0.05 {
		t.Errorf("sleep curve not flat: rises %g pJ over 24 cycles", plateau)
	}
	// Higher activity factors lower the transition cost (Figure 3).
	_, sl9, err := fu.IdleEnergyCurve(0.9, 25)
	if err != nil {
		t.Fatal(err)
	}
	if sl9[0] >= sl[0]/4 {
		t.Errorf("alpha=0.9 transition %g should be far below alpha=0.1's %g", sl9[0], sl[0])
	}
}

func TestFUCrossValidatesAnalyticModel(t *testing.T) {
	// Driving the circuit simulation with a MaxSleep-style activity stream
	// must reproduce the core analytical model exactly (same accounting
	// conventions), once normalized by E_A.
	cfg := DefaultFU()
	tech := cfg.ToTech()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		alpha := rng.Float64()
		stream := make([]bool, 1500)
		for i := range stream {
			stream[i] = rng.Float64() < 0.4
		}
		// Start with an evaluation so the circuit's power-up precharge state
		// (all nodes high, as if alpha were 0) is replaced by the
		// alpha-determined state the analytic model assumes.
		stream[0] = true

		fu := MustNewFU(cfg)
		for _, active := range stream {
			if active {
				if err := fu.Evaluate(alpha); err != nil {
					t.Fatal(err)
				}
			} else if err := fu.Sleep(); err != nil {
				t.Fatal(err)
			}
		}
		simNorm := fu.Energy().Total() / cfg.MaxDynamicFJ()

		ctrl, err := core.NewController(core.PolicyConfig{Policy: core.MaxSleep}, tech, alpha)
		if err != nil {
			t.Fatal(err)
		}
		analytic := tech.RunStream(alpha, ctrl, stream).Total()

		if math.Abs(simNorm-analytic) > 1e-6 {
			t.Errorf("trial %d alpha=%.3f: circuit %.6f vs analytic %.6f", trial, alpha, simNorm, analytic)
		}
	}
}

func TestStochasticConvergesToDeterministic(t *testing.T) {
	cfg := DefaultFU()
	alpha := 0.5
	det := MustNewFU(cfg)
	sto, err := NewStochasticFU(cfg, 4242)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		switch i % 5 {
		case 0, 1:
			_ = det.Evaluate(alpha)
			_ = sto.Evaluate(alpha)
		case 2:
			det.IdleGated()
			sto.IdleGated()
		default:
			_ = det.Sleep()
			_ = sto.Sleep()
		}
	}
	d, s := det.Energy().Total(), sto.Energy().Total()
	if rel := math.Abs(d-s) / d; rel > 0.02 {
		t.Errorf("stochastic %.1f fJ deviates %.1f%% from deterministic %.1f fJ", s, rel*100, d)
	}
}

func TestStochasticRejections(t *testing.T) {
	bad := DefaultFU()
	bad.Duty = 0
	if _, err := NewStochasticFU(bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
	cfg := DefaultFU()
	s, _ := NewStochasticFU(cfg, 1)
	if err := s.Evaluate(-0.5); err == nil {
		t.Error("alpha out of range accepted")
	}
	cfg.Gate = DualVt
	cfg.SleepDriverFJ = 0
	s2, _ := NewStochasticFU(cfg, 1)
	if err := s2.Sleep(); err == nil {
		t.Error("sleep without sleep mode accepted")
	}
}

func TestResetClearsEverything(t *testing.T) {
	fu := MustNewFU(DefaultFU())
	_ = fu.Evaluate(0.5)
	_ = fu.Sleep()
	fu.Reset()
	if fu.Energy().Total() != 0 || fu.Cycles() != 0 || fu.Asleep() || fu.ChargedFraction() != 1 {
		t.Error("Reset did not restore power-up state")
	}
}
