package circuit

import (
	"fmt"
	"math/rand"
)

// FU is a cycle-level simulation of the generic functional-unit circuit.
// It tracks the fraction of dynamic nodes left charged (the high-leakage
// state) and accumulates energy by physical source. The deterministic model
// treats the activity factor as an exact fraction of the gates; see
// StochasticFU for the per-gate Bernoulli variant.
//
// Energy accounting convention: the dynamic energy of a discharge/precharge
// pair is attributed at discharge time, whether the discharge happens
// through the evaluation network (Evaluate) or through the sleep transistor
// (Sleep). This matches the analytical model, where an evaluation costs
// alpha*E_A and a sleep transition costs (1-alpha)*E_A.
type FU struct {
	cfg         FUConfig
	chargedFrac float64 // fraction of dynamic nodes precharged high
	asleep      bool
	energy      EnergyFJ
	cycles      uint64
}

// NewFU builds a simulated functional unit; the circuit powers up with all
// dynamic nodes precharged (the high-leakage state).
func NewFU(cfg FUConfig) (*FU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FU{cfg: cfg, chargedFrac: 1}, nil
}

// MustNewFU is NewFU for known-good configurations.
func MustNewFU(cfg FUConfig) *FU {
	fu, err := NewFU(cfg)
	if err != nil {
		panic(err)
	}
	return fu
}

// Config returns the unit's configuration.
func (f *FU) Config() FUConfig { return f.cfg }

// Energy returns the accumulated energy by source.
func (f *FU) Energy() EnergyFJ { return f.energy }

// Cycles returns the number of simulated cycles.
func (f *FU) Cycles() uint64 { return f.cycles }

// Asleep reports whether the Sleep signal is currently asserted.
func (f *FU) Asleep() bool { return f.asleep }

// ChargedFraction returns the fraction of dynamic nodes in the charged
// (high-leakage) state.
func (f *FU) ChargedFraction() float64 { return f.chargedFrac }

// Reset returns the unit to the powered-up state with zeroed accounting.
func (f *FU) Reset() {
	f.chargedFrac = 1
	f.asleep = false
	f.energy = EnergyFJ{}
	f.cycles = 0
}

func (f *FU) gatesF() float64 { return float64(f.cfg.Gates()) }

// leakFJ returns one full cycle of leakage at the current node state.
func (f *FU) leakFJ() float64 {
	g := f.cfg.Gate
	return f.gatesF() * (f.chargedFrac*g.LeakHiFJ + (1-f.chargedFrac)*g.LeakLoFJ)
}

// Evaluate simulates one active cycle: the precharge phase recharges every
// node (waking the unit if it was asleep), then the evaluate phase
// discharges the alpha fraction of the gates. Leakage is accrued for both
// phases per the duty cycle.
func (f *FU) Evaluate(alpha float64) error {
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("circuit: activity factor %g out of range [0,1]", alpha)
	}
	g := f.cfg.Gate
	n := f.gatesF()
	f.asleep = false
	// Precharge phase: all nodes high, (1-d) of the period.
	f.energy.ActiveLeak += (1 - f.cfg.Duty) * n * g.LeakHiFJ
	// Evaluate phase: alpha discharge (paying their dynamic energy), the
	// rest stay charged.
	f.energy.Dynamic += alpha * n * g.DynamicFJ
	f.energy.ActiveLeak += f.cfg.Duty * n * (alpha*g.LeakLoFJ + (1-alpha)*g.LeakHiFJ)
	f.chargedFrac = 1 - alpha
	f.cycles++
	return nil
}

// IdleGated simulates one clock-gated idle cycle: the clock is held high,
// no precharge occurs, and the circuit leaks in whatever state the last
// evaluation (or sleep assertion) left it.
func (f *FU) IdleGated() {
	if f.asleep {
		f.energy.SleepLeak += f.leakFJ()
	} else {
		f.energy.IdleLeak += f.leakFJ()
	}
	f.cycles++
}

// Sleep simulates one cycle with the Sleep signal asserted. On the entry
// cycle the sleep transistors discharge every still-charged node (costing
// their eventual re-precharge energy plus the signal-distribution overhead);
// the unit then leaks at the low-leakage floor.
func (f *FU) Sleep() error {
	g := f.cfg.Gate
	if !g.HasSleep {
		return fmt.Errorf("circuit: gate %q has no sleep mode", g.Name)
	}
	if !f.asleep {
		f.energy.Transition += f.chargedFrac*f.gatesF()*g.DynamicFJ + f.cfg.TransitionOverheadFJ()
		f.chargedFrac = 0
		f.asleep = true
	}
	f.energy.SleepLeak += f.leakFJ()
	f.cycles++
	return nil
}

// IdleEnergyCurve supports Figure 3: it returns, for idle intervals of
// length 0..maxIdle cycles following one evaluation at activity alpha, the
// energy (in pJ) spent handling the interval under (a) uncontrolled idle
// (clock gating only) and (b) immediate sleep-mode entry. The evaluation
// itself is excluded; only the interval's cost is reported.
func (f *FU) IdleEnergyCurve(alpha float64, maxIdle int) (uncontrolled, sleep []float64, err error) {
	uncontrolled = make([]float64, maxIdle+1)
	sleep = make([]float64, maxIdle+1)
	for n := 0; n <= maxIdle; n++ {
		f.Reset()
		if err := f.Evaluate(alpha); err != nil {
			return nil, nil, err
		}
		base := f.energy
		for i := 0; i < n; i++ {
			f.IdleGated()
		}
		uncontrolled[n] = (f.energy.Total() - base.Total()) / 1000

		f.Reset()
		if err := f.Evaluate(alpha); err != nil {
			return nil, nil, err
		}
		base = f.energy
		for i := 0; i < n; i++ {
			if err := f.Sleep(); err != nil {
				return nil, nil, err
			}
		}
		// An interval of length zero still shows the committed transition
		// cost for the sleep case (the Figure 3 curves start above zero):
		// assert the Sleep signal once even if no idle cycle follows.
		if n == 0 {
			if err := f.Sleep(); err != nil {
				return nil, nil, err
			}
			f.energy.SleepLeak -= f.leakFJ() // entry energy only, no dwell cycle
		}
		sleep[n] = (f.energy.Total() - base.Total()) / 1000
	}
	f.Reset()
	return uncontrolled, sleep, nil
}

// BreakevenIdle returns the smallest idle interval, in cycles, for which
// entering the sleep mode costs no more than uncontrolled idle, found by
// direct simulation (~17 cycles for the default unit; Section 2.1).
func (f *FU) BreakevenIdle(alpha float64, limit int) (int, error) {
	un, sl, err := f.IdleEnergyCurve(alpha, limit)
	if err != nil {
		return 0, err
	}
	for n := 0; n <= limit; n++ {
		if sl[n] <= un[n] {
			return n, nil
		}
	}
	return 0, fmt.Errorf("circuit: no breakeven within %d cycles", limit)
}

// StochasticFU simulates the unit with independent per-gate Bernoulli
// discharge decisions instead of exact fractions. It exists to validate
// that the deterministic fraction model is the correct expectation.
type StochasticFU struct {
	cfg     FUConfig
	charged []bool
	asleep  bool
	energy  EnergyFJ
	rng     *rand.Rand
}

// NewStochasticFU builds a per-gate simulation seeded deterministically.
func NewStochasticFU(cfg FUConfig, seed int64) (*StochasticFU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StochasticFU{
		cfg:     cfg,
		charged: make([]bool, cfg.Gates()),
		rng:     rand.New(rand.NewSource(seed)),
	}
	for i := range s.charged {
		s.charged[i] = true
	}
	return s, nil
}

// Energy returns the accumulated energy by source.
func (s *StochasticFU) Energy() EnergyFJ { return s.energy }

// Evaluate runs one active cycle, discharging each gate independently with
// probability alpha.
func (s *StochasticFU) Evaluate(alpha float64) error {
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("circuit: activity factor %g out of range [0,1]", alpha)
	}
	g := s.cfg.Gate
	s.asleep = false
	s.energy.ActiveLeak += float64(len(s.charged)) * (1 - s.cfg.Duty) * g.LeakHiFJ
	for i := range s.charged {
		if s.rng.Float64() < alpha {
			s.charged[i] = false
			s.energy.Dynamic += g.DynamicFJ
			s.energy.ActiveLeak += s.cfg.Duty * g.LeakLoFJ
		} else {
			s.charged[i] = true
			s.energy.ActiveLeak += s.cfg.Duty * g.LeakHiFJ
		}
	}
	return nil
}

// IdleGated runs one clock-gated idle cycle.
func (s *StochasticFU) IdleGated() {
	g := s.cfg.Gate
	for _, ch := range s.charged {
		leak := g.LeakLoFJ
		if ch {
			leak = g.LeakHiFJ
		}
		if s.asleep {
			s.energy.SleepLeak += leak
		} else {
			s.energy.IdleLeak += leak
		}
	}
}

// Sleep runs one sleep-mode cycle, discharging remaining charged nodes on
// entry.
func (s *StochasticFU) Sleep() error {
	g := s.cfg.Gate
	if !g.HasSleep {
		return fmt.Errorf("circuit: gate %q has no sleep mode", g.Name)
	}
	if !s.asleep {
		for i, ch := range s.charged {
			if ch {
				s.energy.Transition += g.DynamicFJ
				s.charged[i] = false
			}
		}
		s.energy.Transition += s.cfg.TransitionOverheadFJ()
		s.asleep = true
	}
	s.energy.SleepLeak += float64(len(s.charged)) * g.LeakLoFJ
	return nil
}
