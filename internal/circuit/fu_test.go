package circuit

import (
	"math"
	"testing"
)

func TestDefaultFUShape(t *testing.T) {
	cfg := DefaultFU()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default FU invalid: %v", err)
	}
	if cfg.Gates() != 500 {
		t.Errorf("gates = %d, want 500", cfg.Gates())
	}
	if cfg.Rows != 100 || cfg.StagesPerRow != 5 {
		t.Errorf("layout = %dx%d, want 100x5", cfg.Rows, cfg.StagesPerRow)
	}
	// E_A for the unit: 500 * 22.2 fJ = 11.1 pJ.
	if got := cfg.MaxDynamicFJ(); math.Abs(got-11100) > 1e-9 {
		t.Errorf("E_A = %g fJ, want 11100", got)
	}
}

func TestFUSleepOverheadCalibration(t *testing.T) {
	// The whole-unit sleep overhead must equal the paper's per-gate ratio
	// 0.14/22.2 of E_A, split between the row sleep transistors and the
	// distribution drivers.
	cfg := DefaultFU()
	wantRatio := 0.14 / 22.2
	got := cfg.TransitionOverheadFJ() / cfg.MaxDynamicFJ()
	if math.Abs(got-wantRatio) > 1e-12 {
		t.Errorf("overhead ratio = %g, want %g", got, wantRatio)
	}
	if cfg.SleepDriverFJ <= 0 {
		t.Errorf("driver energy %g should be positive", cfg.SleepDriverFJ)
	}
}

func TestFUValidateRejections(t *testing.T) {
	good := DefaultFU()
	cases := []func(*FUConfig){
		func(c *FUConfig) { c.Rows = 0 },
		func(c *FUConfig) { c.StagesPerRow = -1 },
		func(c *FUConfig) { c.SleepDriverFJ = -5 },
		func(c *FUConfig) { c.Duty = 0 },
		func(c *FUConfig) { c.Duty = 2 },
		func(c *FUConfig) { c.Gate.DynamicFJ = 0 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestToTechMatchesPaperDerivation(t *testing.T) {
	tech := DefaultFU().ToTech()
	if err := tech.Validate(); err != nil {
		t.Fatalf("derived tech invalid: %v", err)
	}
	if math.Abs(tech.P-1.4/22.2) > 1e-12 {
		t.Errorf("p = %g, want %g", tech.P, 1.4/22.2)
	}
	if math.Abs(tech.C-7.1e-4/1.4) > 1e-12 {
		t.Errorf("c = %g, want %g", tech.C, 7.1e-4/1.4)
	}
	if math.Abs(tech.SleepOverhead-0.14/22.2) > 1e-12 {
		t.Errorf("e_slp = %g, want %g", tech.SleepOverhead, 0.14/22.2)
	}
	// The paper's pessimistic analysis values bound the derived ones.
	if tech.C > 0.001 || tech.SleepOverhead > 0.01 {
		t.Errorf("derived c=%g e=%g exceed the pessimistic Table 4 values", tech.C, tech.SleepOverhead)
	}
}

func TestEnergyFJArithmetic(t *testing.T) {
	a := EnergyFJ{1, 2, 3, 4, 5}
	if a.Total() != 15 {
		t.Errorf("Total = %g", a.Total())
	}
	if a.TotalPJ() != 0.015 {
		t.Errorf("TotalPJ = %g", a.TotalPJ())
	}
	b := a.Add(EnergyFJ{10, 20, 30, 40, 50})
	if b != (EnergyFJ{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %+v", b)
	}
}
