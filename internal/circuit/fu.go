package circuit

import (
	"fmt"

	"github.com/archsim/fusleep/internal/core"
)

// FUConfig describes the generic functional-unit circuit of Section 2.1: an
// array of cascaded domino gates with sleep transistors on the first stage
// of each row and a driver tree distributing the Sleep signal.
type FUConfig struct {
	// Gate is the domino design point used for every gate in the unit.
	Gate GateParams
	// Rows is the number of independent cascaded sequences (100 in the
	// paper); each row's first stage carries a sleep transistor.
	Rows int
	// StagesPerRow is the cascade depth (5 in the paper).
	StagesPerRow int
	// SleepDriverFJ is the energy of the buffer tree that distributes the
	// Sleep signal across the unit, paid once per whole-unit transition.
	SleepDriverFJ float64
	// Duty is the clock duty cycle (fraction of the period spent in the
	// evaluate phase); 0.5 throughout the paper.
	Duty float64
}

// DefaultFU returns the paper's generic functional unit: 500 dual-Vt OR8
// gates with sleep support, arranged as 100 rows of five cascaded gates.
// The sleep driver energy is sized so the whole-unit sleep-assert overhead
// matches the 0.006*E_A ratio measured for the Table 1 circuit.
func DefaultFU() FUConfig {
	cfg := FUConfig{
		Gate:         DualVtSleep,
		Rows:         100,
		StagesPerRow: 5,
		Duty:         0.5,
	}
	// Whole-unit overhead target: (SleepFJ/DynamicFJ) * E_A(FU). The sleep
	// transistors themselves cover Rows*SleepFJ of it; the driver tree
	// accounts for the rest.
	target := cfg.Gate.SleepFJ / cfg.Gate.DynamicFJ * cfg.MaxDynamicFJ()
	cfg.SleepDriverFJ = target - float64(cfg.Rows)*cfg.Gate.SleepFJ
	return cfg
}

// Validate reports whether the configuration is usable.
func (c FUConfig) Validate() error {
	if err := c.Gate.Validate(); err != nil {
		return err
	}
	switch {
	case c.Rows <= 0 || c.StagesPerRow <= 0:
		return fmt.Errorf("circuit: FU needs positive dimensions, got %dx%d", c.Rows, c.StagesPerRow)
	case c.SleepDriverFJ < 0:
		return fmt.Errorf("circuit: negative sleep driver energy %g", c.SleepDriverFJ)
	case c.Duty <= 0 || c.Duty > 1:
		return fmt.Errorf("circuit: duty cycle %g out of range (0,1]", c.Duty)
	default:
		return nil
	}
}

// Gates returns the total gate count of the unit.
func (c FUConfig) Gates() int { return c.Rows * c.StagesPerRow }

// MaxDynamicFJ returns E_A for the whole unit: the dynamic energy of an
// evaluation in which every gate discharges.
func (c FUConfig) MaxDynamicFJ() float64 {
	return float64(c.Gates()) * c.Gate.DynamicFJ
}

// TransitionOverheadFJ returns the fixed energy of asserting the Sleep
// signal: one sleep-transistor activation per row plus the driver tree.
// The state-dependent discharge energy is separate (see FU.Sleep).
func (c FUConfig) TransitionOverheadFJ() float64 {
	return float64(c.Rows)*c.Gate.SleepFJ + c.SleepDriverFJ
}

// ToTech derives the normalized architecture-level model parameters
// (core.Tech) from the circuit characterization. This is the bridge between
// Table 1 and the Section 3 analytical model.
func (c FUConfig) ToTech() core.Tech {
	return core.Tech{
		P:             c.Gate.LeakageFactor(),
		C:             c.Gate.LeakageRatio(),
		SleepOverhead: c.TransitionOverheadFJ() / c.MaxDynamicFJ(),
		Duty:          c.Duty,
	}
}

// EnergyFJ is the circuit-level analogue of core.Breakdown, in femtojoules.
type EnergyFJ struct {
	Dynamic    float64 // evaluation switching energy
	ActiveLeak float64 // leakage during evaluation cycles
	IdleLeak   float64 // leakage during clock-gated idle cycles
	SleepLeak  float64 // leakage while asleep
	Transition float64 // node discharge + sleep signal energy on sleep entry
}

// Total returns the summed energy in fJ.
func (e EnergyFJ) Total() float64 {
	return e.Dynamic + e.ActiveLeak + e.IdleLeak + e.SleepLeak + e.Transition
}

// TotalPJ returns the summed energy in picojoules (the unit of Figure 3).
func (e EnergyFJ) TotalPJ() float64 { return e.Total() / 1000 }

// Add returns the element-wise sum.
func (e EnergyFJ) Add(o EnergyFJ) EnergyFJ {
	return EnergyFJ{
		Dynamic:    e.Dynamic + o.Dynamic,
		ActiveLeak: e.ActiveLeak + o.ActiveLeak,
		IdleLeak:   e.IdleLeak + o.IdleLeak,
		SleepLeak:  e.SleepLeak + o.SleepLeak,
		Transition: e.Transition + o.Transition,
	}
}
