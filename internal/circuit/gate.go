// Package circuit models the dual threshold voltage (dual-Vt) domino logic
// circuits of Section 2 of Dropsho et al. (MICRO 2002) at the level needed
// for architectural energy studies: per-gate energies by charge state, the
// generic 500-gate functional-unit circuit, and cycle-accurate simulation of
// active / clock-gated / sleep operation.
//
// All energies are femtojoules (fJ); delays are picoseconds (ps). The gate
// characterization constants reproduce Table 1 of the paper (8-input domino
// OR gates in a 70 nm technology, Vdd = 1.0 V, Vt_low = 0.20 V, Vt_high =
// 0.45 V, 4 GHz clock, 250 ps period).
package circuit

import "fmt"

// ClockPeriodPS is the clock period of the Table 1 characterization (4 GHz).
const ClockPeriodPS = 250.0

// GateParams characterizes one domino gate design point, one row of Table 1.
type GateParams struct {
	Name string

	// EvalDelayPS is the evaluation (critical path) propagation delay.
	EvalDelayPS float64
	// SleepDelayPS is the time to force the dynamic node low via the sleep
	// transistor; zero when the design has no sleep mode.
	SleepDelayPS float64

	// DynamicFJ is the energy of one evaluation that discharges the dynamic
	// node (the maximum per-cycle dynamic energy of the gate). It accounts
	// for the discharge and the subsequent precharge of the node.
	DynamicFJ float64

	// LeakLoFJ is the per-cycle subthreshold leakage energy with the
	// dynamic node discharged (the low-leakage state; Table 1 "Vector LO").
	LeakLoFJ float64
	// LeakHiFJ is the per-cycle leakage with the dynamic node charged
	// (the high-leakage state; Table 1 "Vector HI").
	LeakHiFJ float64

	// SleepFJ is the energy of activating the sleep transistor, per sleep
	// transistor (the first gate in each cascaded sequence carries one);
	// zero when the design has no sleep mode.
	SleepFJ float64

	// HasSleep reports whether the design includes the sleep transistor.
	HasSleep bool
}

// The three circuit design points of Table 1.
var (
	// LowVt is the conventional all-low-Vt domino gate: fastest keeper
	// contention profile of the three but high leakage in both states.
	LowVt = GateParams{
		Name:        "low-Vt",
		EvalDelayPS: 19.3,
		DynamicFJ:   26.7,
		LeakLoFJ:    1.2,
		LeakHiFJ:    1.4,
	}

	// DualVt places high-Vt devices off the critical evaluation path:
	// faster and lower energy than LowVt, with a 2000x leakage asymmetry
	// between the discharged and charged states.
	DualVt = GateParams{
		Name:        "dual-Vt",
		EvalDelayPS: 15.0,
		DynamicFJ:   22.2,
		LeakLoFJ:    7.1e-4,
		LeakHiFJ:    1.4,
	}

	// DualVtSleep adds the minimally-sized high-Vt sleep transistor of
	// Figure 2b to the first stage: no evaluation delay penalty, one-cycle
	// sleep entry, and a 0.14 fJ activation energy.
	DualVtSleep = GateParams{
		Name:         "dual-Vt w/sleep",
		EvalDelayPS:  15.0,
		SleepDelayPS: 16.0,
		DynamicFJ:    22.2,
		LeakLoFJ:     7.1e-4,
		LeakHiFJ:     1.4,
		SleepFJ:      0.14,
		HasSleep:     true,
	}
)

// Table1 lists the three design points in the paper's row order.
var Table1 = []GateParams{LowVt, DualVt, DualVtSleep}

// Validate reports whether the parameters are physically sensible.
func (g GateParams) Validate() error {
	switch {
	case g.DynamicFJ <= 0:
		return fmt.Errorf("circuit: gate %q: non-positive dynamic energy", g.Name)
	case g.LeakLoFJ < 0 || g.LeakHiFJ < 0:
		return fmt.Errorf("circuit: gate %q: negative leakage", g.Name)
	case g.LeakLoFJ > g.LeakHiFJ:
		return fmt.Errorf("circuit: gate %q: low-leakage state leaks more than high", g.Name)
	case g.HasSleep && g.SleepDelayPS <= 0:
		return fmt.Errorf("circuit: gate %q: sleep mode without sleep delay", g.Name)
	case !g.HasSleep && g.SleepFJ != 0:
		return fmt.Errorf("circuit: gate %q: sleep energy without sleep mode", g.Name)
	default:
		return nil
	}
}

// LeakageFactor returns p = E_HI / E_A for the gate (~0.063 for the dual-Vt
// designs of Table 1).
func (g GateParams) LeakageFactor() float64 { return g.LeakHiFJ / g.DynamicFJ }

// LeakageRatio returns c = E_LO / E_HI (~5.1e-4 for dual-Vt).
func (g GateParams) LeakageRatio() float64 {
	if g.LeakHiFJ == 0 {
		return 0
	}
	return g.LeakLoFJ / g.LeakHiFJ
}

// SleepEntryWithinCycle reports whether the sleep transistor can force the
// low-leakage state within a single clock phase, i.e. whether sleep entry
// completes in one cycle (the paper requires the ~16 ps sleep delay to be
// comparable to the 15 ps evaluation delay).
func (g GateParams) SleepEntryWithinCycle() bool {
	return g.HasSleep && g.SleepDelayPS <= ClockPeriodPS/2
}
