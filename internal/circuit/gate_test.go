package circuit

import (
	"math"
	"testing"
)

func TestTable1Rows(t *testing.T) {
	if len(Table1) != 3 {
		t.Fatalf("Table1 has %d rows, want 3", len(Table1))
	}
	for _, g := range Table1 {
		if err := g.Validate(); err != nil {
			t.Errorf("gate %q invalid: %v", g.Name, err)
		}
	}
	// The dual-Vt designs must be faster than low-Vt (keeper overdrive
	// argument of Section 2) and lower dynamic energy.
	if DualVt.EvalDelayPS >= LowVt.EvalDelayPS {
		t.Error("dual-Vt should be faster than low-Vt")
	}
	if DualVt.DynamicFJ >= LowVt.DynamicFJ {
		t.Error("dual-Vt should have lower dynamic energy than low-Vt")
	}
	// Sleep support adds no evaluation delay (the transistor is off the
	// evaluation path).
	if DualVtSleep.EvalDelayPS != DualVt.EvalDelayPS {
		t.Error("sleep transistor must not slow evaluation")
	}
}

func TestLeakageAsymmetry(t *testing.T) {
	// Section 2: the dual-Vt leakage differs by a factor of ~2000 between
	// the discharged and charged states.
	ratio := DualVt.LeakHiFJ / DualVt.LeakLoFJ
	if ratio < 1500 || ratio > 2500 {
		t.Errorf("leakage asymmetry = %.0f, want ~2000", ratio)
	}
	// Low-Vt has nearly symmetric leakage.
	if r := LowVt.LeakHiFJ / LowVt.LeakLoFJ; r > 1.5 {
		t.Errorf("low-Vt asymmetry = %.2f, want near 1", r)
	}
}

func TestDerivedModelParameters(t *testing.T) {
	// Section 3's derivation from Table 1: p ~ 0.063, c ~ 5.1e-4.
	p := DualVtSleep.LeakageFactor()
	if math.Abs(p-1.4/22.2) > 1e-12 {
		t.Errorf("p = %g, want %g", p, 1.4/22.2)
	}
	c := DualVtSleep.LeakageRatio()
	if math.Abs(c-7.1e-4/1.4) > 1e-12 {
		t.Errorf("c = %g, want %g", c, 7.1e-4/1.4)
	}
	// Sleep activation is negligible relative to switching: 0.14 vs 22.2.
	if r := DualVtSleep.SleepFJ / DualVtSleep.DynamicFJ; r > 0.01 {
		t.Errorf("sleep/dynamic ratio = %g, want < 0.01", r)
	}
	// Degenerate zero-leakage gate doesn't divide by zero.
	g := GateParams{Name: "ideal", DynamicFJ: 1}
	if g.LeakageRatio() != 0 {
		t.Error("zero-leakage ratio should be 0")
	}
}

func TestSleepEntryWithinCycle(t *testing.T) {
	if !DualVtSleep.SleepEntryWithinCycle() {
		t.Error("16 ps sleep delay must fit in a 125 ps clock phase")
	}
	if DualVt.SleepEntryWithinCycle() {
		t.Error("design without sleep mode cannot enter sleep")
	}
	slow := DualVtSleep
	slow.SleepDelayPS = 200
	if slow.SleepEntryWithinCycle() {
		t.Error("200 ps sleep delay exceeds the clock phase")
	}
}

func TestGateValidateRejections(t *testing.T) {
	cases := []GateParams{
		{Name: "no-dyn", DynamicFJ: 0},
		{Name: "neg-leak", DynamicFJ: 1, LeakLoFJ: -1},
		{Name: "inverted", DynamicFJ: 1, LeakLoFJ: 2, LeakHiFJ: 1},
		{Name: "sleep-no-delay", DynamicFJ: 1, HasSleep: true},
		{Name: "sleep-energy-no-mode", DynamicFJ: 1, SleepFJ: 0.1},
	}
	for _, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("gate %q: invalid parameters accepted", g.Name)
		}
	}
}
