package tlb

import "testing"

func TestDefaultConfigs(t *testing.T) {
	it := DefaultITLB()
	if it.Entries != 256 || it.Assoc != 4 || it.PageBits != 13 || it.MissPenalty != 30 {
		t.Errorf("ITLB config = %+v", it)
	}
	dt := DefaultDTLB()
	if dt.Entries != 512 || dt.Assoc != 4 {
		t.Errorf("DTLB config = %+v", dt)
	}
	for _, c := range []Config{it, dt} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Config{
		{Name: "zero", Entries: 0, Assoc: 1, PageBits: 13, MissPenalty: 30},
		{Name: "div", Entries: 10, Assoc: 4, PageBits: 13, MissPenalty: 30},
		{Name: "sets", Entries: 24, Assoc: 4, PageBits: 13, MissPenalty: 30},
		{Name: "page", Entries: 256, Assoc: 4, PageBits: 0, MissPenalty: 30},
		{Name: "pen", Entries: 256, Assoc: 4, PageBits: 13, MissPenalty: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted %q", c.Name)
		}
	}
}

func TestHitAndMiss(t *testing.T) {
	tb := MustNew(DefaultITLB())
	// Cold miss.
	if pen := tb.Access(0x10000); pen != 30 {
		t.Errorf("cold access penalty = %d, want 30", pen)
	}
	// Same page: hit, even at a different offset.
	if pen := tb.Access(0x10000 + 8191); pen != 0 {
		t.Errorf("same-page penalty = %d, want 0", pen)
	}
	// Different page: miss.
	if pen := tb.Access(0x10000 + 8192); pen != 30 {
		t.Errorf("next-page penalty = %d, want 30", pen)
	}
	st := tb.Stats()
	if st.Accesses != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRate() != 2.0/3.0 {
		t.Errorf("miss rate = %g", st.MissRate())
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := Config{Name: "tiny", Entries: 2, Assoc: 2, PageBits: 13, MissPenalty: 30}
	tb := MustNew(cfg)
	p := func(i int) uint64 { return uint64(i) << 13 }
	tb.Access(p(0))
	tb.Access(p(1))
	tb.Access(p(0)) // p1 LRU
	tb.Access(p(2)) // evicts p1
	if pen := tb.Access(p(0)); pen != 0 {
		t.Error("p0 should be resident")
	}
	if pen := tb.Access(p(2)); pen != 0 {
		t.Error("p2 should be resident")
	}
	if pen := tb.Access(p(1)); pen != 30 {
		t.Error("p1 should have been evicted")
	}
}

func TestCapacityCoversTable2Reach(t *testing.T) {
	// A 512-entry DTLB with 8KB pages maps 4MB; a 4MB sweep with page
	// stride should hit after warm-up.
	tb := MustNew(DefaultDTLB())
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4*1024*1024; a += 8192 {
			tb.Access(a)
		}
	}
	st := tb.Stats()
	if st.Misses != 512 {
		t.Errorf("misses = %d, want 512 (cold only)", st.Misses)
	}
}

func TestZeroStats(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle TLB miss rate should be 0")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}
