// Package tlb models the translation lookaside buffers of Table 2:
// set-associative page-granular lookup with a fixed miss penalty serviced
// by a hardware walker (no instruction overhead).
package tlb

import (
	"fmt"
	"math/bits"
)

// Config describes one TLB.
type Config struct {
	Name        string
	Entries     int
	Assoc       int
	PageBits    int // log2 page size; Table 2 uses 8 KB pages (13 bits)
	MissPenalty int // cycles added on a miss
}

// DefaultITLB returns the Table 2 instruction TLB: 256 entries, 4-way,
// 8 KB pages, 30-cycle miss.
func DefaultITLB() Config {
	return Config{Name: "ITLB", Entries: 256, Assoc: 4, PageBits: 13, MissPenalty: 30}
}

// DefaultDTLB returns the Table 2 data TLB: 512 entries, 4-way, 8 KB pages,
// 30-cycle miss.
func DefaultDTLB() Config {
	return Config{Name: "DTLB", Entries: 512, Assoc: 4, PageBits: 13, MissPenalty: 30}
}

// Sets returns the set count.
func (c Config) Sets() int { return c.Entries / c.Assoc }

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0 || c.Assoc <= 0:
		return fmt.Errorf("tlb %s: non-positive geometry", c.Name)
	case c.Entries%c.Assoc != 0:
		return fmt.Errorf("tlb %s: entries %d not divisible by assoc %d", c.Name, c.Entries, c.Assoc)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, c.Sets())
	case c.PageBits < 1 || c.PageBits > 30:
		return fmt.Errorf("tlb %s: page bits %d out of range", c.Name, c.PageBits)
	case c.MissPenalty < 0:
		return fmt.Errorf("tlb %s: negative miss penalty", c.Name)
	default:
		return nil
	}
}

// Stats counts TLB events.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type entry struct {
	tag   uint64
	valid bool
	tick  uint64
}

// TLB is one translation buffer with LRU replacement. Validate guarantees a
// power-of-two set count, so index geometry is precomputed as shifts and
// masks at construction and Access never divides.
type TLB struct {
	cfg     Config
	entries []entry
	tick    uint64
	stats   Stats

	pageShift uint   // log2 page size: addr -> page number
	setShift  uint   // log2(Sets): page number -> tag
	setMask   uint64 // Sets - 1: page number -> set index
	assoc     int
}

// New builds a TLB.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	return &TLB{
		cfg:       cfg,
		entries:   make([]entry, cfg.Entries),
		pageShift: uint(cfg.PageBits),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// Access translates addr and returns the added latency: 0 on a hit, the
// miss penalty on a miss (the mapping is filled, evicting LRU).
func (t *TLB) Access(addr uint64) int {
	t.tick++
	t.stats.Accesses++
	page := addr >> t.pageShift
	setIdx := int(page & t.setMask)
	tag := page >> t.setShift
	base := setIdx * t.assoc
	set := t.entries[base : base+t.assoc]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].tick = t.tick
			return 0
		}
	}
	t.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].tick < set[victim].tick {
			victim = i
		}
	}
	set[victim] = entry{tag: tag, valid: true, tick: t.tick}
	return t.cfg.MissPenalty
}
