package store

import (
	"path/filepath"
	"testing"
)

func openTestJobLog(t *testing.T, path string) *JobLog {
	t.Helper()
	l, err := OpenJobLog(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestJobLogPendingAfterReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), JobsFile)
	l := openTestJobLog(t, path)
	if err := l.Submitted("s-000001", "sweep", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Submitted("t-000002", "tune", []byte(`{"b":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Submitted("s-000003", "sweep", []byte(`{"c":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Finished("t-000002", "done"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestJobLog(t, path)
	defer l2.Close()
	p := l2.Pending()
	if len(p) != 2 {
		t.Fatalf("pending = %d jobs, want 2", len(p))
	}
	// Submission order is preserved.
	if p[0].ID != "s-000001" || p[1].ID != "s-000003" {
		t.Fatalf("pending order = %s, %s", p[0].ID, p[1].ID)
	}
	if p[0].Kind != "sweep" || string(p[0].Payload) != `{"a":1}` {
		t.Fatalf("replayed record mangled: %+v", p[0])
	}
	known := l2.Known()
	if len(known) != 3 {
		t.Fatalf("known = %v, want all three submitted IDs", known)
	}
}

func TestJobLogFinishedAllLeavesNothingPending(t *testing.T) {
	path := filepath.Join(t.TempDir(), JobsFile)
	l := openTestJobLog(t, path)
	for _, id := range []string{"s-1", "s-2"} {
		if err := l.Submitted(id, "sweep", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := l.Finished(id, "done"); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTestJobLog(t, path)
	defer l2.Close()
	if p := l2.Pending(); len(p) != 0 {
		t.Fatalf("pending = %+v, want none", p)
	}
}

func TestJobLogFinishedForUnknownIDIsIgnored(t *testing.T) {
	// A Finished frame without its Submitted frame can only result from a
	// compaction bug or manual edits; recovery must not crash on it.
	path := filepath.Join(t.TempDir(), JobsFile)
	l := openTestJobLog(t, path)
	if err := l.Finished("ghost", "done"); err != nil {
		t.Fatal(err)
	}
	if err := l.Submitted("real", "sweep", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTestJobLog(t, path)
	defer l2.Close()
	p := l2.Pending()
	if len(p) != 1 || p[0].ID != "real" {
		t.Fatalf("pending = %+v", p)
	}
}
