package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/archsim/fusleep/internal/experiments"
)

// kindResult is the journal record kind of one cell result.
const kindResult byte = 1

// ResultStore is the durable, content-addressed cell-result store: an
// append-only journal of encoded experiments.CellResult records keyed by
// the stable Cell.Key configuration hash, with an in-memory index for
// reads. Two cells with the same key are the same computation, so Put is
// idempotent and the store doubles as a cross-restart dedupe substrate.
// It implements experiments.CellStore and is safe for concurrent use.
type ResultStore struct {
	mu    sync.Mutex
	j     *Journal
	index map[string][]byte // key -> encoded CellResult (last write wins)
	order []string          // first-seen key order, for deterministic compaction

	hits    uint64
	puts    uint64
	putErrs uint64
}

// OpenResults opens (or creates) the result journal at path and rebuilds
// the index from its intact records.
func OpenResults(path string, opt JournalOptions) (*ResultStore, error) {
	j, recs, err := OpenJournal(path, opt)
	if err != nil {
		return nil, err
	}
	s := &ResultStore{j: j, index: make(map[string][]byte, len(recs))}
	for _, rec := range recs {
		if rec.Kind != kindResult {
			continue
		}
		if _, seen := s.index[rec.Key]; !seen {
			s.order = append(s.order, rec.Key)
		}
		s.index[rec.Key] = rec.Data
	}
	return s, nil
}

// GetCell returns the journaled result for a cell key. The stored bytes
// decode into exactly the CellResult that was computed (Index zeroed, as
// EvalCell returns it), so a served result is byte-identical to a
// recomputed one when re-encoded.
func (s *ResultStore) GetCell(key string) (experiments.CellResult, bool, error) {
	s.mu.Lock()
	data, ok := s.index[key]
	if ok {
		s.hits++
	}
	s.mu.Unlock()
	if !ok {
		return experiments.CellResult{}, false, nil
	}
	var res experiments.CellResult
	if err := json.Unmarshal(data, &res); err != nil {
		return experiments.CellResult{}, false, fmt.Errorf("store: decode result %s: %w", key, err)
	}
	return res, true, nil
}

// PutCell journals one completed cell under its key. Results are
// content-addressed — a key already present is the same computation, so
// the put is a no-op. The result's Index is not persisted (it is a
// per-grid position, not part of the cell's identity).
func (s *ResultStore) PutCell(key string, res experiments.CellResult) error {
	res.Index = 0
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encode result %s: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return nil
	}
	if err := s.j.Append(Record{Kind: kindResult, Key: key, Data: data}); err != nil {
		s.putErrs++
		return err
	}
	s.index[key] = data
	s.order = append(s.order, key)
	s.puts++
	return nil
}

// Has reports whether the store holds a result for key without decoding
// it or counting a hit.
func (s *ResultStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns the stored cell keys in first-journaled order.
func (s *ResultStore) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Compact rewrites the journal with one record per key (first-journaled
// order), dropping superseded duplicates and reclaiming their bytes. The
// rewrite goes to a temporary file that replaces the journal atomically,
// so a crash mid-compaction leaves either the old or the new journal
// intact, never a mix.
func (s *ResultStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j.Wedged() {
		return ErrWedged
	}
	tmpPath := s.j.path + ".compact"
	tmp, _, err := OpenJournal(tmpPath, JournalOptions{SyncEvery: len(s.order) + 1})
	if err != nil {
		return err
	}
	for _, key := range s.order {
		if err := tmp.Append(Record{Kind: kindResult, Key: key, Data: s.index[key]}); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := s.j.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.j.path); err != nil {
		return fmt.Errorf("store: swap compacted journal: %w", err)
	}
	if err := syncDir(filepath.Dir(s.j.path)); err != nil {
		return err
	}
	j, recs, err := OpenJournal(s.j.path, s.j.opt)
	if err != nil {
		return err
	}
	if len(recs) != len(s.order) {
		j.Close()
		return fmt.Errorf("store: compacted journal has %d records, want %d", len(recs), len(s.order))
	}
	s.j = j
	return nil
}

// Stats snapshots the store's accounting.
type Stats struct {
	// Results is the number of distinct cell keys stored.
	Results int `json:"results"`
	// Bytes is the journal's intact on-disk size.
	Bytes int64 `json:"bytes"`
	// Recovered is how many records the opening scan replayed.
	Recovered int `json:"recovered"`
	// TruncatedBytes is how many torn-tail bytes the opening scan dropped.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// Hits, Puts, PutErrors count this process's store traffic.
	Hits      uint64 `json:"hits"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
}

// Stats returns a snapshot of the store's accounting.
func (s *ResultStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Results:        len(s.index),
		Bytes:          s.j.Bytes(),
		Recovered:      s.j.Recovered(),
		TruncatedBytes: s.j.TruncatedBytes(),
		Hits:           s.hits,
		Puts:           s.puts,
		PutErrors:      s.putErrs,
	}
}

// Len returns the number of distinct stored results.
func (s *ResultStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Wedged reports whether the underlying journal stopped accepting writes.
func (s *ResultStore) Wedged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Wedged()
}

// Sync forces any batched frames to disk.
func (s *ResultStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Sync()
}

// Close flushes and closes the journal.
func (s *ResultStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
