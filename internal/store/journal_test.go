package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/archsim/fusleep/internal/fault"
)

func openTestJournal(t *testing.T, path string, opt JournalOptions) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestJournalAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrn")
	j, recs := openTestJournal(t, path, JournalOptions{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	want := []Record{
		{Kind: 1, Key: "alpha", Data: []byte(`{"x":1}`)},
		{Kind: 2, Key: "beta", Data: []byte{}},
		{Kind: 1, Key: "", Data: []byte("keyless")},
	}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := openTestJournal(t, path, JournalOptions{})
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Key != want[i].Key || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if j2.Recovered() != len(want) || j2.TruncatedBytes() != 0 {
		t.Fatalf("recovered=%d truncated=%d", j2.Recovered(), j2.TruncatedBytes())
	}
}

// appendN writes n records keyed k0..k(n-1) and closes the journal,
// returning the file size.
func appendN(t *testing.T, path string, n int) int64 {
	t.Helper()
	j, _ := openTestJournal(t, path, JournalOptions{})
	for i := 0; i < n; i++ {
		if err := j.Append(Record{Kind: 1, Key: key(i), Data: []byte("payload-payload")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func key(i int) string { return string(rune('a'+i%26)) + "-key" }

func TestJournalTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 12} { // into the last frame's header and payload
		path := filepath.Join(t.TempDir(), "j.jrn")
		size := appendN(t, path, 5)
		if err := os.Truncate(path, size-cut); err != nil {
			t.Fatal(err)
		}
		j, recs := openTestJournal(t, path, JournalOptions{})
		if len(recs) != 4 {
			t.Fatalf("cut=%d: recovered %d records, want 4", cut, len(recs))
		}
		if j.TruncatedBytes() == 0 {
			t.Fatalf("cut=%d: no torn bytes reported", cut)
		}
		// The journal must keep appending cleanly after the tail was cut.
		if err := j.Append(Record{Kind: 1, Key: "after", Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, recs2 := openTestJournal(t, path, JournalOptions{})
		if len(recs2) != 5 || recs2[4].Key != "after" {
			t.Fatalf("cut=%d: after reopen got %d records (last %q)", cut, len(recs2), recs2[len(recs2)-1].Key)
		}
		j2.Close()
	}
}

func TestJournalCorruptCRCStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrn")
	size := appendN(t, path, 3)
	// Flip one payload byte in the middle record.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, size/2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, recs := openTestJournal(t, path, JournalOptions{})
	defer j.Close()
	// The scan stops at the first bad frame; only the prefix survives.
	if len(recs) >= 3 {
		t.Fatalf("recovered %d records through a corrupt frame", len(recs))
	}
	if j.TruncatedBytes() == 0 {
		t.Fatal("no truncation reported for corrupt frame")
	}
}

func TestJournalSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrn")
	j, _ := openTestJournal(t, path, JournalOptions{SyncEvery: 4})
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Kind: 1, Key: key(i), Data: []byte("d")}); err != nil {
			t.Fatal(err)
		}
	}
	// Three appends under a batch of four: still buffered.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("file grew to %d bytes before the batch filled", fi.Size())
	}
	if err := j.Append(Record{Kind: 1, Key: key(3), Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	fi, _ = os.Stat(path)
	if fi.Size() == 0 {
		t.Fatal("batch boundary did not flush")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalInjectedFsyncErrorWedges(t *testing.T) {
	inj := fault.New(1)
	inj.Set(fault.JournalFsync, Spec2())
	path := filepath.Join(t.TempDir(), "j.jrn")
	j, _ := openTestJournal(t, path, JournalOptions{Inject: inj})
	if err := j.Append(Record{Kind: 1, Key: "ok", Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	err := j.Append(Record{Kind: 1, Key: "boom", Data: []byte("x")})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append after armed fsync = %v, want injected error", err)
	}
	if !j.Wedged() {
		t.Fatal("journal not wedged after fsync failure")
	}
	if err := j.Append(Record{Kind: 1, Key: "later", Data: []byte("x")}); !errors.Is(err, ErrWedged) {
		t.Fatalf("append on wedged journal = %v, want ErrWedged", err)
	}
	j.Close()
	// The record synced before the failure survives.
	j2, recs := openTestJournal(t, path, JournalOptions{})
	defer j2.Close()
	if len(recs) != 1 || recs[0].Key != "ok" {
		t.Fatalf("recovered %v, want the one pre-failure record", recs)
	}
}

// Spec2 arms a point to fire on its second hit.
func Spec2() fault.Spec { return fault.Spec{After: 1, Times: 1} }

func TestJournalInjectedTornWriteRecovered(t *testing.T) {
	inj := fault.New(1)
	inj.Set(fault.JournalTorn, fault.Spec{After: 2, Times: 1})
	path := filepath.Join(t.TempDir(), "j.jrn")
	j, _ := openTestJournal(t, path, JournalOptions{Inject: inj})
	for i := 0; i < 2; i++ {
		if err := j.Append(Record{Kind: 1, Key: key(i), Data: []byte("survives")}); err != nil {
			t.Fatal(err)
		}
	}
	err := j.Append(Record{Kind: 1, Key: "torn", Data: []byte("lost")})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append = %v, want injected error", err)
	}
	if !j.Wedged() {
		t.Fatal("journal not wedged after torn write")
	}
	j.Close()

	// The partial frame is on disk; recovery must truncate it away and
	// keep the two intact records.
	j2, recs := openTestJournal(t, path, JournalOptions{})
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if j2.TruncatedBytes() == 0 {
		t.Fatal("no torn bytes reported after injected torn write")
	}
	// And the recovered journal accepts new appends.
	if err := j2.Append(Record{Kind: 1, Key: "fresh", Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRejectsOversizedKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jrn")
	j, _ := openTestJournal(t, path, JournalOptions{})
	defer j.Close()
	big := make([]byte, 1<<16)
	if err := j.Append(Record{Kind: 1, Key: string(big), Data: nil}); err == nil {
		t.Fatal("oversized key accepted")
	}
	if j.Wedged() {
		t.Fatal("validation error should not wedge the journal")
	}
}
