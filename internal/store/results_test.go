package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/experiments"
)

// testResult builds a small but representative cell result.
func testResult(fus int) experiments.CellResult {
	return experiments.CellResult{
		Index: 7, // must NOT persist: Index is grid position, not identity
		Cell: experiments.Cell{
			Policy:     core.PolicyConfig{Policy: core.MaxSleep},
			Tech:       core.DefaultTech(),
			FUs:        fus,
			Benchmarks: []string{"gcc"},
			Alpha:      0.5,
			L2Latency:  12,
			Window:     20000,
		},
		RelEnergy:       0.123456789012345,
		LeakageFraction: 0.42,
		MeanCycles:      31557.5,
	}
}

func openTestResults(t *testing.T, path string, opt JournalOptions) *ResultStore {
	t.Helper()
	s, err := OpenResults(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResultStorePutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), ResultsFile)
	s := openTestResults(t, path, JournalOptions{})
	res := testResult(2)
	key := res.Cell.Key()
	if _, ok, err := s.GetCell(key); ok || err != nil {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	if err := s.PutCell(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetCell(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	res.Index = 0 // Index is stripped on Put
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("Get = %+v, want %+v", got, res)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestResults(t, path, JournalOptions{})
	defer s2.Close()
	got2, ok, err := s2.GetCell(key)
	if err != nil || !ok {
		t.Fatalf("Get after reopen: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got2, res) {
		t.Fatalf("reopened Get = %+v, want %+v", got2, res)
	}
	st := s2.Stats()
	if st.Results != 1 || st.Recovered != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultStoreServedBytesIdentical(t *testing.T) {
	// The crash-recovery contract: a stored result re-encodes to exactly
	// the bytes a fresh computation would produce.
	path := filepath.Join(t.TempDir(), ResultsFile)
	s := openTestResults(t, path, JournalOptions{})
	defer s.Close()
	res := testResult(3)
	res.Index = 0
	fresh, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	key := res.Cell.Key()
	if err := s.PutCell(key, res); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.GetCell(key)
	if err != nil {
		t.Fatal(err)
	}
	served, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != string(fresh) {
		t.Fatalf("served bytes differ:\n  fresh:  %s\n  served: %s", fresh, served)
	}
}

func TestResultStoreContentAddressedPutIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), ResultsFile)
	s := openTestResults(t, path, JournalOptions{})
	defer s.Close()
	res := testResult(1)
	key := res.Cell.Key()
	if err := s.PutCell(key, res); err != nil {
		t.Fatal(err)
	}
	size := s.Stats().Bytes
	for i := 0; i < 5; i++ {
		if err := s.PutCell(key, res); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Bytes; got != size {
		t.Fatalf("idempotent puts grew the journal %d -> %d bytes", size, got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestResultStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), ResultsFile)
	s := openTestResults(t, path, JournalOptions{})
	var keys []string
	for fus := 1; fus <= 4; fus++ {
		res := testResult(fus)
		k := res.Cell.Key()
		keys = append(keys, k)
		if err := s.PutCell(k, res); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear into the last record.
	if err := os.Truncate(path, fi.Size()-9); err != nil {
		t.Fatal(err)
	}
	s2 := openTestResults(t, path, JournalOptions{})
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("recovered %d results, want 3", s2.Len())
	}
	for _, k := range keys[:3] {
		if !s2.Has(k) {
			t.Fatalf("key %s lost in recovery", k)
		}
	}
	if s2.Has(keys[3]) {
		t.Fatal("torn record resurrected")
	}
}

func TestResultStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), ResultsFile)
	s := openTestResults(t, path, JournalOptions{})
	var keys []string
	for fus := 1; fus <= 3; fus++ {
		res := testResult(fus)
		k := res.Cell.Key()
		keys = append(keys, k)
		if err := s.PutCell(k, res); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate frames on disk (as a pre-content-addressing journal, or a
	// re-journaled record, would leave): append raw duplicates.
	s.mu.Lock()
	for _, k := range keys {
		if err := s.j.Append(Record{Kind: kindResult, Key: k, Data: s.index[k]}); err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
	}
	before := s.j.Bytes()
	s.mu.Unlock()

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().Bytes
	if after >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before, after)
	}
	for _, k := range keys {
		if !s.Has(k) {
			t.Fatalf("key %s lost in compaction", k)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTestResults(t, path, JournalOptions{})
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened compacted store has %d results, want 3", s2.Len())
	}
	// First-journaled key order is preserved deterministically.
	got := s2.Keys()
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("compacted key order %v, want %v", got, keys)
		}
	}
}

func TestOpenStoreDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := testResult(1)
	if err := st.Results.PutCell(res.Cell.Key(), res); err != nil {
		t.Fatal(err)
	}
	if err := st.Jobs.Submitted("s-000001", "sweep", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Results.Len() != 1 {
		t.Fatalf("results = %d, want 1", st2.Results.Len())
	}
	if p := st2.Jobs.Pending(); len(p) != 1 || p[0].ID != "s-000001" {
		t.Fatalf("pending = %+v", p)
	}
}
