package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkStoreJournal measures the hot store path: encoding one cell
// result and appending its CRC-framed record to the journal, with fsyncs
// batched every 64 appends (the realistic daemon configuration sits
// between 1 and this). BENCH_store.json gates CI on the appends/s metric.
func BenchmarkStoreJournal(b *testing.B) {
	s, err := OpenResults(filepath.Join(b.TempDir(), "results.journal"), JournalOptions{SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	res := testResult(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PutCell(fmt.Sprintf("bench-%08x", i), res); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "appends/s")
	}
}

// BenchmarkStoreRecovery measures the startup scan: one op reopens a
// journal of 4096 records and rebuilds the full index, i.e. the work a
// crashed daemon does before serving again.
func BenchmarkStoreRecovery(b *testing.B) {
	const records = 4096
	path := filepath.Join(b.TempDir(), "results.journal")
	s, err := OpenResults(path, JournalOptions{SyncEvery: records})
	if err != nil {
		b.Fatal(err)
	}
	res := testResult(2)
	for i := 0; i < records; i++ {
		if err := s.PutCell(fmt.Sprintf("bench-%08x", i), res); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenResults(path, JournalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != records {
			b.Fatalf("recovered %d records, want %d", r.Len(), records)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(records)*float64(b.N)/sec, "records/s")
	}
}
