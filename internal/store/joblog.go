package store

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Job record kinds in the WAL.
const (
	kindJobSubmitted byte = 2
	kindJobFinished  byte = 3
)

// JobRecord is one submitted job as the WAL remembers it: enough to
// replay the submission verbatim after a restart.
type JobRecord struct {
	// ID is the job's service identifier (e.g. "s-000003"); replay reuses
	// it so clients can resume the streams they were watching.
	ID string `json:"id"`
	// Kind is the job family: "sweep" or "tune".
	Kind string `json:"kind"`
	// Payload is the validated request body the job was built from.
	Payload json.RawMessage `json:"payload"`
}

// finishedRecord marks a job that reached a terminal state and must not
// replay.
type finishedRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// JobLog is the job-level write-ahead log: accepted jobs append a
// submitted record before they are acknowledged, terminal jobs append a
// finished record, and recovery replays the difference. Every append is
// fsynced individually — job records are rare and small, so the WAL
// always runs with SyncEvery 1 regardless of the result journal's
// batching. JobLog is safe for concurrent use.
type JobLog struct {
	mu       sync.Mutex
	j        *Journal
	records  map[string]JobRecord
	finished map[string]string // id -> terminal state
	order    []string          // submission order
}

// OpenJobLog opens (or creates) the WAL at path and replays its intact
// records.
func OpenJobLog(path string, inject JournalOptions) (*JobLog, error) {
	opt := JournalOptions{SyncEvery: 1, Inject: inject.Inject, Observe: inject.Observe}
	j, recs, err := OpenJournal(path, opt)
	if err != nil {
		return nil, err
	}
	l := &JobLog{j: j, records: make(map[string]JobRecord), finished: make(map[string]string)}
	for _, rec := range recs {
		switch rec.Kind {
		case kindJobSubmitted:
			var jr JobRecord
			if err := json.Unmarshal(rec.Data, &jr); err != nil {
				continue // a corrupt record loses one job's replay, not the log
			}
			if _, seen := l.records[jr.ID]; !seen {
				l.order = append(l.order, jr.ID)
			}
			l.records[jr.ID] = jr
		case kindJobFinished:
			var fr finishedRecord
			if err := json.Unmarshal(rec.Data, &fr); err != nil {
				continue
			}
			l.finished[fr.ID] = fr.State
		}
	}
	return l, nil
}

// Submitted journals one accepted job. It must return nil before the
// submission is acknowledged to the client; the append is fsynced.
func (l *JobLog) Submitted(id, kind string, payload []byte) error {
	data, err := json.Marshal(JobRecord{ID: id, Kind: kind, Payload: payload})
	if err != nil {
		return fmt.Errorf("store: encode job %s: %w", id, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.j.Append(Record{Kind: kindJobSubmitted, Key: id, Data: data}); err != nil {
		return err
	}
	if _, seen := l.records[id]; !seen {
		l.order = append(l.order, id)
	}
	l.records[id] = JobRecord{ID: id, Kind: kind, Payload: payload}
	return nil
}

// Finished journals a job's terminal state so it will not replay.
// Deliberately NOT called for jobs aborted by process shutdown: a job
// canceled because the daemon died is still pending work, and replaying
// it is the whole point of the WAL.
func (l *JobLog) Finished(id, state string) error {
	data, err := json.Marshal(finishedRecord{ID: id, State: state})
	if err != nil {
		return fmt.Errorf("store: encode finish %s: %w", id, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.j.Append(Record{Kind: kindJobFinished, Key: id, Data: data}); err != nil {
		return err
	}
	l.finished[id] = state
	return nil
}

// Pending returns the jobs submitted but never finished, in submission
// order — the replay set after a crash.
func (l *JobLog) Pending() []JobRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []JobRecord
	for _, id := range l.order {
		if _, done := l.finished[id]; done {
			continue
		}
		out = append(out, l.records[id])
	}
	return out
}

// Known returns every job id the WAL has seen (pending or finished), in
// submission order. Recovery uses it to keep the id sequence monotonic.
func (l *JobLog) Known() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Bytes returns the WAL's intact on-disk size.
func (l *JobLog) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.j.Bytes()
}

// Close flushes and closes the WAL.
func (l *JobLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.j.Close()
}
