// Package store is fusleepd's durability layer: an append-only,
// CRC-framed journal underneath a content-addressed cell-result store and
// a job write-ahead log. Completed sweep cells are journaled under their
// stable Cell.Key configuration hash, so a daemon restarted after a crash
// serves already-evaluated cells from disk instead of re-simulating them,
// and submitted jobs replay from the WAL with only their unfinished cells
// re-enqueued.
//
// The on-disk format is a sequence of frames:
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32 (IEEE) of the payload
//	payload = kind byte, uint16 key length, key bytes, data bytes
//
// Recovery scans frames from the start and stops at the first frame that
// is short, oversized, or fails its CRC — the torn tail a crash mid-write
// leaves behind — truncating the file back to the last intact frame.
// Everything before the tear is intact by construction (frames are only
// appended), so recovery never loses acknowledged synced records.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"github.com/archsim/fusleep/internal/fault"
)

const (
	frameHeaderSize = 8       // uint32 length + uint32 crc
	maxPayload      = 8 << 20 // sanity bound; larger lengths read as corruption
)

// ErrWedged is returned by appends after the journal hit an unrecoverable
// write or fsync failure. A wedged journal stops accepting records — the
// way a crashed process would — but everything already synced stays
// readable on the next open.
var ErrWedged = errors.New("store: journal wedged by a prior write failure")

// Record is one journal entry: a kind discriminator, the record's key,
// and its opaque payload.
type Record struct {
	Kind byte
	Key  string
	Data []byte
}

// JournalOptions parameterize a journal.
type JournalOptions struct {
	// SyncEvery fsyncs after every n-th appended record (default 1: every
	// append is durable before it is acknowledged). Larger values batch
	// fsyncs; a crash can lose up to n-1 acknowledged-but-unsynced records,
	// which recovery simply recomputes.
	SyncEvery int
	// Inject arms the journal's fault points (fsync error, torn write);
	// nil injects nothing.
	Inject *fault.Injector
	// Observe, when set, receives each Append's wall-clock duration in
	// seconds (the daemon feeds append-latency histograms through it).
	Observe func(seconds float64)
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	return o
}

// Journal is a CRC-framed append-only log with batched fsync and
// torn-tail recovery. It does no locking of its own: the owning store
// serializes access under its mutex.
type Journal struct {
	opt  JournalOptions
	path string
	f    *os.File
	w    *bufio.Writer

	unsynced      int
	wedged        bool
	bytes         int64
	records       int
	syncedBytes   int64 // journal size as of the last successful fsync
	syncedRecords int
	recovered     int   // records read back at open
	truncated     int64 // torn-tail bytes dropped at open
}

// OpenJournal opens (or creates) the journal at path, scans it, truncates
// any torn tail, and returns the intact records in append order.
func OpenJournal(path string, opt JournalOptions) (*Journal, []Record, error) {
	opt = opt.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open journal: %w", err)
	}
	recs, good, torn, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn > 0 {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek journal end: %w", err)
	}
	j := &Journal{
		opt:           opt,
		path:          path,
		f:             f,
		w:             bufio.NewWriter(f),
		bytes:         good,
		records:       len(recs),
		syncedBytes:   good,
		syncedRecords: len(recs),
		recovered:     len(recs),
		truncated:     torn,
	}
	return j, recs, nil
}

// scan reads frames until EOF or the first corrupt/torn frame, returning
// the intact records, the offset of the last intact frame's end, and how
// many trailing bytes were unreadable.
func scan(f *os.File) (recs []Record, good int64, torn int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: size journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, 0, fmt.Errorf("store: rewind journal: %w", err)
	}
	r := bufio.NewReader(f)
	var header [frameHeaderSize]byte
	for good < size {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return recs, good, size - good, nil // short header: torn tail
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if n == 0 || n > maxPayload || int64(frameHeaderSize+n) > size-good {
			return recs, good, size - good, nil // impossible length: torn/corrupt
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, good, size - good, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, good, size - good, nil // bit rot or partial overwrite
		}
		rec, ok := decodePayload(payload)
		if !ok {
			return recs, good, size - good, nil
		}
		recs = append(recs, rec)
		good += int64(frameHeaderSize + n)
	}
	return recs, good, 0, nil
}

// decodePayload splits a verified payload into its record.
func decodePayload(p []byte) (Record, bool) {
	if len(p) < 3 {
		return Record{}, false
	}
	kind := p[0]
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if 3+klen > len(p) {
		return Record{}, false
	}
	return Record{Kind: kind, Key: string(p[3 : 3+klen]), Data: p[3+klen:]}, true
}

// encodePayload builds the frame payload for a record.
func encodePayload(rec Record) ([]byte, error) {
	if len(rec.Key) > 1<<16-1 {
		return nil, fmt.Errorf("store: key of %d bytes exceeds the 64KiB frame limit", len(rec.Key))
	}
	p := make([]byte, 3+len(rec.Key)+len(rec.Data))
	p[0] = rec.Kind
	binary.LittleEndian.PutUint16(p[1:3], uint16(len(rec.Key)))
	copy(p[3:], rec.Key)
	copy(p[3+len(rec.Key):], rec.Data)
	if len(p) > maxPayload {
		return nil, fmt.Errorf("store: record of %d bytes exceeds the %d-byte frame limit", len(p), maxPayload)
	}
	return p, nil
}

// Append frames and writes one record, fsyncing per the batching policy.
// The record is durable once Append returns nil and the batch it belongs
// to has synced (SyncEvery 1 makes every return durable). Callers must
// hold no expectation about a wedged journal: once a write or sync fails,
// every later Append returns ErrWedged.
func (j *Journal) Append(rec Record) error {
	if j.opt.Observe != nil {
		start := time.Now() //fusleepvet:nondet-ok append latency observation; never feeds results
		defer func() { j.opt.Observe(time.Since(start).Seconds()) }()
	}
	payload, err := encodePayload(rec)
	if err != nil {
		return err
	}
	var header [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))

	if j.wedged {
		return ErrWedged
	}
	if j.opt.Inject.Fire(fault.JournalTorn) {
		// Crash mid-write: flush what came before, land a partial frame on
		// disk, and wedge. The next open must truncate this tail away.
		_ = j.w.Flush()
		frame := append(header[:], payload...)
		_, _ = j.f.Write(frame[:len(frame)/2])
		_ = j.f.Sync()
		j.wedged = true
		return fmt.Errorf("store: torn write: %w", fault.ErrInjected)
	}
	if _, err := j.w.Write(header[:]); err != nil {
		j.wedged = true
		return fmt.Errorf("store: append: %w", err)
	}
	if _, err := j.w.Write(payload); err != nil {
		j.wedged = true
		return fmt.Errorf("store: append: %w", err)
	}
	j.bytes += int64(frameHeaderSize + len(payload))
	j.records++
	j.unsynced++
	if j.unsynced >= j.opt.SyncEvery {
		return j.flushSync()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the file.
func (j *Journal) Sync() error {
	if j.wedged {
		return ErrWedged
	}
	if j.unsynced == 0 {
		return nil
	}
	return j.flushSync()
}

// flushSync is the sync path shared by Append batching and Sync.
func (j *Journal) flushSync() error {
	if err := j.w.Flush(); err != nil {
		j.wedged = true
		return fmt.Errorf("store: flush: %w", err)
	}
	if j.opt.Inject.Fire(fault.JournalFsync) {
		// Crash before writeback: the flushed-but-unsynced batch never
		// reaches stable storage, so drop it from the file to model the
		// loss a power cut would cause.
		_ = j.f.Truncate(j.syncedBytes)
		j.bytes = j.syncedBytes
		j.records = j.syncedRecords
		j.wedged = true
		return fmt.Errorf("store: fsync: %w", fault.ErrInjected)
	}
	if err := j.f.Sync(); err != nil {
		j.wedged = true
		return fmt.Errorf("store: fsync: %w", err)
	}
	j.unsynced = 0
	j.syncedBytes = j.bytes
	j.syncedRecords = j.records
	return nil
}

// Close flushes, syncs, and closes the journal file. A wedged journal
// closes without flushing (its buffer is part of the simulated crash).
func (j *Journal) Close() error {
	if !j.wedged {
		if err := j.Sync(); err != nil {
			j.f.Close()
			return err
		}
	}
	return j.f.Close()
}

// Wedged reports whether the journal stopped accepting writes after a
// failure.
func (j *Journal) Wedged() bool { return j.wedged }

// Bytes returns the journal's intact size in bytes (excluding any
// unflushed buffer).
func (j *Journal) Bytes() int64 { return j.bytes }

// Records returns the number of records appended plus recovered.
func (j *Journal) Records() int { return j.records }

// Recovered returns how many intact records the opening scan read back.
func (j *Journal) Recovered() int { return j.recovered }

// TruncatedBytes returns how many torn-tail bytes the opening scan
// dropped.
func (j *Journal) TruncatedBytes() int64 { return j.truncated }
