package store

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/archsim/fusleep/internal/fault"
)

// Default file names inside a store directory.
const (
	ResultsFile = "results.jrn"
	JobsFile    = "jobs.wal"
)

// Options parameterize a store directory.
type Options struct {
	// SyncEvery batches result-journal fsyncs (default 1 = every append).
	// The job WAL always syncs every append regardless.
	SyncEvery int
	// Inject arms the journals' fault points; nil injects nothing.
	Inject *fault.Injector
	// Observe, when set, receives each journal append's duration: op is
	// "results" or "jobs", seconds is wall-clock time spent in Append.
	Observe func(op string, seconds float64)
}

// Store bundles the two durable structures a fusleepd instance keeps in
// its -store-dir: the content-addressed cell-result journal and the job
// write-ahead log.
type Store struct {
	Dir     string
	Results *ResultStore
	Jobs    *JobLog
}

// Open creates dir if needed and opens both journals inside it,
// recovering from any torn tails.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	jopt := JournalOptions{SyncEvery: opt.SyncEvery, Inject: opt.Inject}
	wopt := jopt
	if opt.Observe != nil {
		jopt.Observe = func(s float64) { opt.Observe("results", s) }
		wopt.Observe = func(s float64) { opt.Observe("jobs", s) }
	}
	results, err := OpenResults(filepath.Join(dir, ResultsFile), jopt)
	if err != nil {
		return nil, err
	}
	jobs, err := OpenJobLog(filepath.Join(dir, JobsFile), wopt)
	if err != nil {
		results.Close()
		return nil, err
	}
	return &Store{Dir: dir, Results: results, Jobs: jobs}, nil
}

// Close closes both journals, reporting the first error.
func (s *Store) Close() error {
	err := s.Results.Close()
	if jerr := s.Jobs.Close(); err == nil {
		err = jerr
	}
	return err
}
