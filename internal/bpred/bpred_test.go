package bpred

import (
	"math/rand"
	"testing"

	"github.com/archsim/fusleep/internal/isa"
)

func branch(pc uint64, taken bool, target uint64) isa.Inst {
	return isa.Inst{PC: pc, Class: isa.Branch, Taken: taken, Target: target,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.BimodalEntries = 1000 },
		func(c *Config) { c.HistTableEntries = 0 },
		func(c *Config) { c.PatternEntries = 3 },
		func(c *Config) { c.ChooserEntries = -4 },
		func(c *Config) { c.HistBits = 0 },
		func(c *Config) { c.HistBits = 40 },
		func(c *Config) { c.RASEntries = 0 },
		func(c *Config) { c.BTBSets = 100 },
		func(c *Config) { c.BTBAssoc = 0 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Errorf("saturated up = %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Errorf("saturated down = %d", c)
	}
}

func TestAlwaysTakenBranchLearns(t *testing.T) {
	p := MustNew(DefaultConfig())
	in := branch(0x1000, true, 0x2000)
	miss := 0
	for i := 0; i < 100; i++ {
		r := p.Predict(in)
		if Mispredicted(in, r) {
			miss++
		}
		p.Update(in, r)
	}
	// After warm-up (direction was init weakly-taken, BTB cold) the branch
	// must be perfectly predicted.
	if miss > 2 {
		t.Errorf("always-taken branch mispredicted %d/100 times", miss)
	}
	if acc := p.Stats().DirAccuracy(); acc < 0.98 {
		t.Errorf("direction accuracy %.3f", acc)
	}
}

func TestAlternatingBranchLearnedByHistory(t *testing.T) {
	// T,NT,T,NT... defeats bimodal but is captured by the 10-bit history
	// pattern table; the chooser must migrate to the two-level component.
	p := MustNew(DefaultConfig())
	miss := 0
	for i := 0; i < 400; i++ {
		in := branch(0x3000, i%2 == 0, 0x4000)
		r := p.Predict(in)
		if i >= 200 && Mispredicted(in, r) {
			miss++
		}
		p.Update(in, r)
	}
	if miss > 4 {
		t.Errorf("alternating branch mispredicted %d/200 after warm-up", miss)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(11))
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		in := branch(0x5000, rng.Intn(2) == 0, 0x6000)
		r := p.Predict(in)
		if !Mispredicted(in, r) {
			hits++
		}
		p.Update(in, r)
	}
	frac := float64(hits) / n
	if frac < 0.30 || frac > 0.70 {
		t.Errorf("random branch hit rate %.3f, want near 0.5", frac)
	}
}

func TestJumpAndCallAlwaysCorrect(t *testing.T) {
	p := MustNew(DefaultConfig())
	j := isa.Inst{PC: 0x10, Class: isa.Jump, Taken: true, Target: 0x500,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r := p.Predict(j)
	if Mispredicted(j, r) {
		t.Error("direct jump mispredicted")
	}
	c := isa.Inst{PC: 0x20, Class: isa.Call, Taken: true, Target: 0x800,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r = p.Predict(c)
	if Mispredicted(c, r) {
		t.Error("direct call mispredicted")
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := MustNew(DefaultConfig())
	// call from 0x100 -> return to 0x104; nested call from 0x200 -> 0x204.
	p.Predict(isa.Inst{PC: 0x100, Class: isa.Call, Taken: true, Target: 0x1000,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	p.Predict(isa.Inst{PC: 0x200, Class: isa.Call, Taken: true, Target: 0x2000,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})

	ret2 := isa.Inst{PC: 0x2010, Class: isa.Return, Taken: true, Target: 0x204,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r := p.Predict(ret2)
	if r.PredTarget != 0x204 || Mispredicted(ret2, r) {
		t.Errorf("inner return predicted %#x", r.PredTarget)
	}
	p.Update(ret2, r)

	ret1 := isa.Inst{PC: 0x1010, Class: isa.Return, Taken: true, Target: 0x104,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r = p.Predict(ret1)
	if r.PredTarget != 0x104 {
		t.Errorf("outer return predicted %#x", r.PredTarget)
	}
	p.Update(ret1, r)
	if p.Stats().RASHits != 2 || p.Stats().RASPredictions != 2 {
		t.Errorf("RAS stats = %+v", p.Stats())
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := MustNew(cfg)
	for i := 0; i < 3; i++ {
		p.Predict(isa.Inst{PC: uint64(0x100 * (i + 1)), Class: isa.Call, Taken: true,
			Target: 0x9000, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	}
	// Stack holds returns for calls 2 and 3; call 1 was shifted out.
	r := p.Predict(isa.Inst{PC: 0x9000, Class: isa.Return, Taken: true, Target: 0x304,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	if r.PredTarget != 0x304 {
		t.Errorf("top of RAS = %#x, want 0x304", r.PredTarget)
	}
	r = p.Predict(isa.Inst{PC: 0x9000, Class: isa.Return, Taken: true, Target: 0x204,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	if r.PredTarget != 0x204 {
		t.Errorf("next RAS entry = %#x, want 0x204", r.PredTarget)
	}
	// Underflow: empty stack cannot supply a target.
	r = p.Predict(isa.Inst{PC: 0x9000, Class: isa.Return, Taken: true, Target: 0x104,
		Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone})
	if r.PredTarget != 0 {
		t.Errorf("underflow should predict 0, got %#x", r.PredTarget)
	}
}

func TestBTBTargetPrediction(t *testing.T) {
	p := MustNew(DefaultConfig())
	in := branch(0x7000, true, 0x7400)
	// Cold BTB: first taken prediction has no target.
	r := p.Predict(in)
	p.Update(in, r)
	r = p.Predict(in)
	if r.PredTaken && r.PredTarget != 0x7400 {
		t.Errorf("warm BTB target = %#x", r.PredTarget)
	}
	// Target change is re-learned.
	in2 := branch(0x7000, true, 0x7800)
	p.Update(in2, r)
	r = p.Predict(in2)
	if r.PredTarget != 0x7800 {
		t.Errorf("updated target = %#x", r.PredTarget)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBSets = 1
	cfg.BTBAssoc = 2
	p := MustNew(cfg)
	// Three distinct branches in a 2-way single set: LRU eviction.
	pcs := []uint64{0x100, 0x200, 0x300}
	for _, pc := range pcs {
		in := branch(pc, true, pc+0x40)
		r := p.Predict(in)
		p.Update(in, r)
	}
	// 0x100 was evicted; 0x200 and 0x300 remain.
	if _, ok := p.btbLookup(0x100); ok {
		t.Error("0x100 should have been evicted")
	}
	if _, ok := p.btbLookup(0x200); !ok {
		t.Error("0x200 should be resident")
	}
	if _, ok := p.btbLookup(0x300); !ok {
		t.Error("0x300 should be resident")
	}
}

func TestNonControlPredictsFallThrough(t *testing.T) {
	p := MustNew(DefaultConfig())
	in := isa.Inst{PC: 0x10, Class: isa.IntALU, Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	r := p.Predict(in)
	if r.PredTaken || r.PredTarget != 0 || Mispredicted(in, r) {
		t.Error("non-control instruction should predict fall-through")
	}
}

func TestMispredictedTakenWrongTarget(t *testing.T) {
	in := branch(0x10, true, 0x100)
	r := Result{PredTaken: true, PredTarget: 0x200}
	if !Mispredicted(in, r) {
		t.Error("wrong target must count as mispredict")
	}
	r.PredTarget = 0x100
	if Mispredicted(in, r) {
		t.Error("correct taken prediction flagged")
	}
}

func TestChooserMigration(t *testing.T) {
	// A branch whose pattern is history-predictable: the chooser should
	// eventually select the two-level side, giving high accuracy, even
	// though bimodal alone would sit near 50%.
	p := MustNew(DefaultConfig())
	pattern := []bool{true, true, false, false} // period 4
	miss := 0
	for i := 0; i < 1200; i++ {
		in := branch(0xA000, pattern[i%len(pattern)], 0xB000)
		r := p.Predict(in)
		if i >= 600 && Mispredicted(in, r) {
			miss++
		}
		p.Update(in, r)
	}
	if frac := float64(miss) / 600; frac > 0.05 {
		t.Errorf("periodic branch mispredict rate %.3f after warm-up", frac)
	}
}
