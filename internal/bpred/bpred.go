// Package bpred implements the branch prediction hardware of the simulated
// Alpha-21264-like machine (Table 2 of Dropsho et al.): a combining
// predictor over a bimodal table and a two-level gshare-style predictor,
// a return address stack, and a set-associative branch target buffer.
package bpred

import (
	"fmt"

	"github.com/archsim/fusleep/internal/isa"
)

// Config sizes the predictor structures.
type Config struct {
	BimodalEntries   int // direct-mapped 2-bit counters
	HistTableEntries int // level-1 per-address history registers
	HistBits         int // history length
	PatternEntries   int // level-2 pattern table of 2-bit counters
	ChooserEntries   int // combining predictor 2-bit counters
	RASEntries       int // return address stack depth
	BTBSets          int
	BTBAssoc         int
}

// DefaultConfig returns the Table 2 configuration: bimodal 2048; two-level
// with 1024 10-bit histories into a 4096-entry global pattern table;
// 1024-entry chooser; 32-entry RAS; 4096-set 2-way BTB.
func DefaultConfig() Config {
	return Config{
		BimodalEntries:   2048,
		HistTableEntries: 1024,
		HistBits:         10,
		PatternEntries:   4096,
		ChooserEntries:   1024,
		RASEntries:       32,
		BTBSets:          4096,
		BTBAssoc:         2,
	}
}

// Validate checks that every table is sized and power-of-two where indexing
// requires it.
func (c Config) Validate() error {
	pow2 := func(name string, v int) error {
		if v < 1 || v&(v-1) != 0 {
			return fmt.Errorf("bpred: %s = %d must be a positive power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"BimodalEntries", c.BimodalEntries},
		{"HistTableEntries", c.HistTableEntries},
		{"PatternEntries", c.PatternEntries},
		{"ChooserEntries", c.ChooserEntries},
		{"BTBSets", c.BTBSets},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if c.HistBits < 1 || c.HistBits > 30 {
		return fmt.Errorf("bpred: HistBits = %d out of range", c.HistBits)
	}
	if c.RASEntries < 1 {
		return fmt.Errorf("bpred: RASEntries = %d must be positive", c.RASEntries)
	}
	if c.BTBAssoc < 1 {
		return fmt.Errorf("bpred: BTBAssoc = %d must be positive", c.BTBAssoc)
	}
	return nil
}

// counter is a 2-bit saturating counter; values >= 2 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	tick   uint64
}

// Stats counts predictor events.
type Stats struct {
	CondBranches   uint64 // conditional branches predicted
	CondDirHits    uint64 // correct direction predictions
	TargetMisses   uint64 // taken predictions without a BTB target
	RASPredictions uint64
	RASHits        uint64
	Mispredicts    uint64 // total control-flow mispredictions (all classes)
	Lookups        uint64
}

// DirAccuracy returns the conditional-branch direction hit rate.
func (s Stats) DirAccuracy() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.CondDirHits) / float64(s.CondBranches)
}

// Predictor is the complete front-end prediction unit.
type Predictor struct {
	cfg     Config
	bimodal []counter
	hist    []uint32
	pattern []counter
	chooser []counter
	ras     []uint64
	rasTop  int // number of valid entries
	btb     []btbEntry
	tick    uint64
	stats   Stats
}

// New builds a predictor; all counters start weakly taken, matching
// SimpleScalar's initialization.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]counter, cfg.BimodalEntries),
		hist:    make([]uint32, cfg.HistTableEntries),
		pattern: make([]counter, cfg.PatternEntries),
		chooser: make([]counter, cfg.ChooserEntries),
		ras:     make([]uint64, cfg.RASEntries),
		btb:     make([]btbEntry, cfg.BTBSets*cfg.BTBAssoc),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.pattern {
		p.pattern[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Stats returns a copy of the event counters.
func (p *Predictor) Stats() Stats { return p.stats }

func pcIndex(pc uint64) uint64 { return pc >> 2 }

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int(pcIndex(pc) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) histIdx(pc uint64) int {
	return int(pcIndex(pc) & uint64(p.cfg.HistTableEntries-1))
}

func (p *Predictor) patternIdx(pc uint64, hist uint32) int {
	// gshare-style: history XOR PC into the shared pattern table.
	return int((uint64(hist) ^ pcIndex(pc)) & uint64(p.cfg.PatternEntries-1))
}

func (p *Predictor) chooserIdx(pc uint64) int {
	return int(pcIndex(pc) & uint64(p.cfg.ChooserEntries-1))
}

// Result carries a prediction and the state needed for a later Update.
type Result struct {
	PredTaken  bool
	PredTarget uint64 // 0 when no target is available (BTB miss)

	bimodalTaken bool
	twoLvlTaken  bool
	usedTwoLvl   bool
	cond         bool
}

// Predict produces the front end's prediction for one control instruction.
// It is the by-value convenience form of PredictRef.
func (p *Predictor) Predict(in isa.Inst) Result { return p.PredictRef(&in) }

// PredictRef produces the front end's prediction for one control
// instruction without copying it; the pipeline's fetch loop calls it with a
// pointer into the fetch queue. Call/Return manipulate the return address
// stack here, at fetch time. Non-control classes return a fall-through
// prediction.
//
//fusleepvet:hotpath
func (p *Predictor) PredictRef(in *isa.Inst) Result {
	p.stats.Lookups++
	switch in.Class {
	case isa.Jump:
		// Direct unconditional: target known from the instruction word.
		return Result{PredTaken: true, PredTarget: in.Target}
	case isa.Call:
		p.rasPush(in.PC + isa.InstBytes)
		return Result{PredTaken: true, PredTarget: in.Target}
	case isa.Return:
		p.stats.RASPredictions++
		tgt, ok := p.rasPop()
		if !ok {
			return Result{PredTaken: true, PredTarget: 0}
		}
		return Result{PredTaken: true, PredTarget: tgt}
	case isa.Branch:
		r := Result{cond: true}
		r.bimodalTaken = p.bimodal[p.bimodalIdx(in.PC)].taken()
		h := p.hist[p.histIdx(in.PC)]
		r.twoLvlTaken = p.pattern[p.patternIdx(in.PC, h)].taken()
		r.usedTwoLvl = p.chooser[p.chooserIdx(in.PC)].taken()
		if r.usedTwoLvl {
			r.PredTaken = r.twoLvlTaken
		} else {
			r.PredTaken = r.bimodalTaken
		}
		if r.PredTaken {
			if tgt, ok := p.btbLookup(in.PC); ok {
				r.PredTarget = tgt
			} else {
				p.stats.TargetMisses++
			}
		}
		return r
	default:
		return Result{}
	}
}

// Update trains the predictor with the actual outcome. It is the by-value
// convenience form of UpdateRef.
func (p *Predictor) Update(in isa.Inst, r Result) { p.UpdateRef(&in, r) }

// UpdateRef trains the predictor with the actual outcome, without copying
// the instruction. It must be called with the Result produced by the
// matching PredictRef.
//
//fusleepvet:hotpath
func (p *Predictor) UpdateRef(in *isa.Inst, r Result) {
	if in.Class == isa.Branch {
		p.stats.CondBranches++
		if r.PredTaken == in.Taken {
			p.stats.CondDirHits++
		}
		bi := p.bimodalIdx(in.PC)
		p.bimodal[bi] = p.bimodal[bi].update(in.Taken)

		hi := p.histIdx(in.PC)
		h := p.hist[hi]
		pi := p.patternIdx(in.PC, h)
		p.pattern[pi] = p.pattern[pi].update(in.Taken)
		mask := uint32(1)<<p.cfg.HistBits - 1
		bit := uint32(0)
		if in.Taken {
			bit = 1
		}
		p.hist[hi] = ((h << 1) | bit) & mask

		// Train the chooser toward the component that was right when they
		// disagree.
		if r.bimodalTaken != r.twoLvlTaken {
			ci := p.chooserIdx(in.PC)
			p.chooser[ci] = p.chooser[ci].update(r.twoLvlTaken == in.Taken)
		}
	}
	if in.Class == isa.Return && r.PredTarget == in.Target {
		p.stats.RASHits++
	}
	if in.Class.IsCtrl() && in.Taken {
		p.btbInsert(in.PC, in.Target)
	}
	if MispredictedRef(in, r) {
		p.stats.Mispredicts++
	}
}

// Mispredicted reports whether the machine must redirect fetch after
// resolving in: wrong direction, or taken with a wrong or missing target.
func Mispredicted(in isa.Inst, r Result) bool { return MispredictedRef(&in, r) }

// MispredictedRef is Mispredicted without the instruction copy.
//
//fusleepvet:hotpath
func MispredictedRef(in *isa.Inst, r Result) bool {
	if !in.Class.IsCtrl() {
		return false
	}
	if r.PredTaken != in.Taken {
		return true
	}
	return in.Taken && r.PredTarget != in.Target
}

func (p *Predictor) rasPush(addr uint64) {
	if p.rasTop == len(p.ras) {
		copy(p.ras, p.ras[1:])
		p.rasTop--
	}
	p.ras[p.rasTop] = addr
	p.rasTop++
}

func (p *Predictor) rasPop() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	set := int(pcIndex(pc) & uint64(p.cfg.BTBSets-1))
	return p.btb[set*p.cfg.BTBAssoc : (set+1)*p.cfg.BTBAssoc]
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	p.tick++
	set := p.btbSet(pc)
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].tick = p.tick
			return set[i].target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	p.tick++
	set := p.btbSet(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].tick = p.tick
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].tick < set[victim].tick {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: pc, target: target, valid: true, tick: p.tick}
}
