package fu

import (
	"encoding/json"
	"testing"
)

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if _, err := ParseClass("turbo"); err == nil {
		t.Error("unknown class accepted")
	}
	// Case-insensitive, like ParsePolicy.
	if got, err := ParseClass("FPALU"); err != nil || got != FPALU {
		t.Errorf("ParseClass(FPALU) = %v, %v", got, err)
	}
}

func TestClassJSONMapKey(t *testing.T) {
	in := map[Class]int{IntALU: 1, FPMult: 2}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[Class]int
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[IntALU] != 1 || out[FPMult] != 2 {
		t.Errorf("map round trip: %s -> %v", data, out)
	}
	var bad Class
	if err := json.Unmarshal([]byte(`"warp"`), &bad); err == nil {
		t.Error("unknown class name unmarshaled")
	}
}

func TestParseClasses(t *testing.T) {
	got, err := ParseClasses(" intalu, fpalu ")
	if err != nil || len(got) != 2 || got[0] != IntALU || got[1] != FPALU {
		t.Errorf("ParseClasses = %v, %v", got, err)
	}
	if _, err := ParseClasses("intalu,intalu"); err == nil {
		t.Error("duplicate class accepted")
	}
	if got, err := ParseClasses(""); err != nil || got != nil {
		t.Errorf("empty list = %v, %v", got, err)
	}
}

func TestInvalidClass(t *testing.T) {
	c := Class(200)
	if c.Valid() {
		t.Error("class 200 valid")
	}
	if _, err := c.MarshalText(); err == nil {
		t.Error("invalid class marshaled")
	}
}
