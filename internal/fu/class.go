// Package fu names the functional-unit classes of the simulated machine.
// The paper's central results separate unit classes — integer ALUs versus
// FP adders and multipliers — because their idle-interval distributions and
// breakeven points differ, so the class is the unit of per-structure sleep
// policy assignment across the pipeline, energy model, sweep grids, and
// tuner search space.
package fu

import (
	"encoding"
	"fmt"
	"strings"
)

// Class identifies one functional-unit class of the Table 2 machine.
type Class uint8

const (
	// IntALU is the single-cycle integer unit class the paper studies:
	// arithmetic, logic, and branch resolution.
	IntALU Class = iota
	// AGU is the address-generation class for loads and stores. By default
	// the machine issues address generation down the integer ALU ports
	// (21264-style), so AGU shares the IntALU pool unless a dedicated AGU
	// pool is configured.
	AGU
	// Mult is the dedicated integer multiply/divide unit class.
	Mult
	// FPALU is the floating-point add/compare unit class.
	FPALU
	// FPMult is the floating-point multiply/divide unit class.
	FPMult

	// NumClasses counts the defined classes.
	NumClasses = int(FPMult) + 1
)

var classNames = [NumClasses]string{"intalu", "agu", "mult", "fpalu", "fpmult"}

// Classes lists every functional-unit class in canonical (enum) order.
func Classes() []Class {
	return []Class{IntALU, AGU, Mult, FPALU, FPMult}
}

// Valid reports whether c names a defined class.
func (c Class) Valid() bool { return int(c) < NumClasses }

// String returns the class's short name ("intalu", "agu", ...).
func (c Class) String() string {
	if c.Valid() {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps a class name (as produced by String, case-insensitively)
// back to its value.
func ParseClass(name string) (Class, error) {
	for i, n := range classNames {
		if strings.EqualFold(name, n) {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("fu: unknown class %q (have %s)", name, strings.Join(classNames[:], ", "))
}

// MarshalText encodes the class by name, so JSON objects keyed by Class and
// wire formats carrying one stay readable and stable if the enum values
// ever shift.
func (c Class) MarshalText() ([]byte, error) {
	if !c.Valid() {
		return nil, fmt.Errorf("fu: cannot marshal invalid class %d", uint8(c))
	}
	return []byte(c.String()), nil
}

// UnmarshalText accepts a class name.
func (c *Class) UnmarshalText(data []byte) error {
	got, err := ParseClass(string(data))
	if err != nil {
		return err
	}
	*c = got
	return nil
}

// ParseClasses parses a comma-separated class list ("intalu,fpalu"),
// rejecting duplicates. An empty string yields nil.
func ParseClasses(s string) ([]Class, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Class
	seen := map[Class]bool{}
	for _, name := range strings.Split(s, ",") {
		c, err := ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		if seen[c] {
			return nil, fmt.Errorf("fu: duplicate class %q", c)
		}
		seen[c] = true
		out = append(out, c)
	}
	return out, nil
}

// encoding/json uses TextMarshaler/TextUnmarshaler for both quoted string
// values and object keys, so the text methods above are all that
// map[Class]T and bare Class fields need on the wire.
var (
	_ encoding.TextMarshaler   = Class(0)
	_ encoding.TextUnmarshaler = (*Class)(nil)
)
