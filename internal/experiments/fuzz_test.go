package experiments

import (
	"encoding/json"
	"testing"

	"github.com/archsim/fusleep/internal/core"
)

// FuzzGridJSON asserts the grid wire form never panics the expansion
// machinery: any JSON that unmarshals into a Grid must expand into a cell
// list whose length matches Cardinality, whose keys are deterministic, and
// whose cells either validate or fail validation cleanly. Oversized grids
// (an adversarial request can multiply seven axes) are skipped before
// expansion, exactly as a serving layer must.
func FuzzGridJSON(f *testing.F) {
	for _, seed := range []string{
		`{}`,
		`{"FUCounts": [2, 4], "Alpha": 0.5}`,
		`{"Policies": [{"policy": "GradualSleep", "slices": 4}], "L2Latency": 32}`,
		`{"Assignments": [{"intalu": {"policy": "MaxSleep"}, "fpalu": {"policy": "AlwaysActive"}}]}`,
		`{"Classes": ["intalu", "mult"], "MultCounts": [1, 2]}`,
		`{"Classes": ["agu"], "AGUCounts": [2]}`,
		`{"ClassTechs": {"fpmult": {"p": 0.5, "c": 0.001, "sleepOverhead": 0.01, "duty": 0.5}}}`,
		`{"Benchmarks": ["gcc", "mcf"], "Window": 1000}`,
		`{"Classes": ["warp"]}`,
		`{"FUCounts": [-1, 0, 99]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Grid
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		// A serving layer rejects oversized grids before expansion; the
		// fuzzer only needs expansion to be sound, not unbounded. Bound the
		// axes first so the cardinality product cannot overflow int.
		for _, axis := range []int{
			len(g.Policies) + len(g.Assignments), len(g.Techs), len(g.FUCounts),
			len(g.AGUCounts), len(g.MultCounts), len(g.FPALUCounts), len(g.FPMultCounts),
		} {
			if axis > 64 {
				return
			}
		}
		tech := core.DefaultTech()
		card := g.Cardinality(tech)
		if card > 10_000 {
			return
		}
		cells := g.Cells(tech)
		if len(cells) != card {
			t.Fatalf("Cells = %d, Cardinality = %d", len(cells), card)
		}
		for i, c := range cells {
			k1, k2 := c.Key(), c.Key()
			if k1 != k2 {
				t.Fatalf("cell %d key unstable: %s vs %s", i, k1, k2)
			}
			_ = c.Validate() // must not panic, either verdict is fine
			// The cell itself must survive a JSON round trip with an
			// identical identity hash, since services ship cells by wire.
			out, err := json.Marshal(c)
			if err != nil {
				t.Fatalf("cell %d unmarshalable from grid but not marshalable: %v", i, err)
			}
			var again Cell
			if err := json.Unmarshal(out, &again); err != nil {
				t.Fatalf("cell %d own output rejected: %v", i, err)
			}
			if again.Key() != k1 {
				t.Fatalf("cell %d key drifted across JSON: %s -> %s", i, k1, again.Key())
			}
		}
	})
}
