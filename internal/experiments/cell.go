package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/workload"
)

// Cell is one fully-resolved grid point: a policy evaluated at one
// technology point and FU count over a fixed benchmark set. Cells are the
// unit of incremental sweep delivery — a Grid expands into an ordered cell
// list, each cell is evaluated independently (sharing the runner's
// simulation cache), and results stream back one cell at a time.
type Cell struct {
	Policy     core.PolicyConfig `json:"policy"`
	Tech       core.Tech         `json:"tech"`
	FUs        int               `json:"fus"`
	Benchmarks []string          `json:"benchmarks"`
	Alpha      float64           `json:"alpha"`
	L2Latency  int               `json:"l2Latency"`
	Window     uint64            `json:"window"`
}

// Key returns a stable identity hash of the cell: two cells with the same
// simulation configuration and energy-model point hash identically, so
// queue shards and caches can key on it. The hash covers every field that
// affects the result.
func (c Cell) Key() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%.17g|%.17g|%.17g|%.17g|%d|%.17g|%d|%d|%s",
		c.Policy.Policy.String(), c.Policy.Slices, c.Policy.Timeout,
		c.Tech.P, c.Tech.C, c.Tech.SleepOverhead, c.Tech.Duty,
		c.FUs, c.Alpha, c.L2Latency, c.Window,
		strings.Join(c.Benchmarks, ","))
	return fmt.Sprintf("%016x", h.Sum64())
}

// CellResult is one completed grid point: the cell's identity plus its
// suite-averaged relative energy and leakage fraction.
type CellResult struct {
	// Index is the cell's position in the grid's canonical enumeration
	// (Grid.Cells order), so streamed results can be reassembled in grid
	// order regardless of completion order.
	Index int  `json:"index"`
	Cell  Cell `json:"cell"`
	// RelEnergy is E_policy / E_base averaged over the cell's benchmarks.
	RelEnergy float64 `json:"relEnergy"`
	// LeakageFraction is the leakage share of total energy, averaged over
	// the cell's benchmarks.
	LeakageFraction float64 `json:"leakageFraction"`
	// MeanCycles is the simulated cycle count averaged over the cell's
	// benchmarks — the delay axis of energy-delay analyses. It depends on
	// the cell's FU count, benchmarks, L2 latency, and window, but not on
	// its policy or technology point.
	MeanCycles float64 `json:"meanCycles"`
}

// Cells expands the grid into its ordered cell list after resolving zero
// values against the given default technology. The order matches RunSweep's
// row order: technology-major, then FU count, then policy.
func (g Grid) Cells(tech core.Tech) []Cell {
	g = g.withDefaults(tech)
	cells := make([]Cell, 0, len(g.Techs)*len(g.FUCounts)*len(g.Policies))
	for _, tc := range g.Techs {
		for _, fus := range g.FUCounts {
			for _, pc := range g.Policies {
				cells = append(cells, Cell{
					Policy:     pc,
					Tech:       tc,
					FUs:        fus,
					Benchmarks: g.Benchmarks,
					Alpha:      g.Alpha,
					L2Latency:  g.L2Latency,
					Window:     g.Window,
				})
			}
		}
	}
	return cells
}

// Validate rejects cells whose technology point or benchmark set is outside
// the model's domain, before any simulation is paid for.
func (c Cell) Validate() error {
	if err := c.Tech.Validate(); err != nil {
		return fmt.Errorf("cell: tech p=%g: %w", c.Tech.P, err)
	}
	if !core.ValidAlpha(c.Alpha) {
		return fmt.Errorf("cell: alpha %g: %w", c.Alpha, core.ErrAlpha)
	}
	if len(c.Benchmarks) == 0 {
		return fmt.Errorf("cell: no benchmarks")
	}
	for _, name := range c.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("cell: %w", err)
		}
	}
	return nil
}

// EvalCell evaluates one grid cell: it simulates (or re-uses from cache)
// the cell's benchmark suite at its FU count, then applies the closed-form
// energy model at the cell's technology × policy point. The returned
// result's Index is zero; callers enumerating a grid set it.
func EvalCell(ctx context.Context, r *Runner, c Cell) (CellResult, error) {
	if err := c.Validate(); err != nil {
		return CellResult{}, err
	}
	suite, err := r.SimSuite(ctx, c.Benchmarks, c.FUs, c.L2Latency, c.Window)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell fus=%d: %w", c.FUs, err)
	}
	var rel, leak, cyc float64
	for _, name := range c.Benchmarks {
		res := suite[name]
		e := unitEnergy(c.Tech, c.Policy, c.Alpha, res)
		rel += e.Total() / baseEnergy(c.Tech, c.Alpha, res)
		leak += e.LeakageFraction()
		cyc += float64(res.Cycles)
	}
	n := float64(len(c.Benchmarks))
	return CellResult{Cell: c, RelEnergy: rel / n, LeakageFraction: leak / n, MeanCycles: cyc / n}, nil
}

// RunSweepStream evaluates the grid cell by cell, invoking fn with each
// completed cell result in grid order. Every technology point is validated
// before any simulation runs. Evaluation stops at the first cell error or
// the first non-nil error returned by fn; either is returned to the caller.
// Cells that share an FU count share their (cached) suite simulation, so
// streaming costs no more simulation work than the batch RunSweep.
func RunSweepStream(ctx context.Context, r *Runner, g Grid, tech core.Tech, fn func(CellResult) error) error {
	g = g.withDefaults(tech)
	for _, tc := range g.Techs {
		if err := tc.Validate(); err != nil {
			return fmt.Errorf("sweep: tech p=%g: %w", tc.P, err)
		}
	}
	for i, c := range g.Cells(tech) {
		res, err := EvalCell(ctx, r, c)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		res.Index = i
		if err := fn(res); err != nil {
			return err
		}
	}
	return nil
}
