package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

// Cell is one fully-resolved grid point: a policy (or a per-class policy
// assignment) evaluated at one technology point and functional-unit mix
// over a fixed benchmark set. Cells are the unit of incremental sweep
// delivery — a Grid expands into an ordered cell list, each cell is
// evaluated independently (sharing the runner's simulation cache), and
// results stream back one cell at a time.
type Cell struct {
	Policy     core.PolicyConfig `json:"policy"`
	Tech       core.Tech         `json:"tech"`
	FUs        int               `json:"fus"`
	Benchmarks []string          `json:"benchmarks"`
	Alpha      float64           `json:"alpha"`
	L2Latency  int               `json:"l2Latency"`
	Window     uint64            `json:"window"`

	// AGUs, Mults, FPALUs, FPMults are the per-class unit counts of the
	// simulated machine; 0 selects the Table 2 defaults (shared AGUs, one
	// unit per dedicated class). FUs remains the integer-ALU axis.
	AGUs    int `json:"agus,omitempty"`
	Mults   int `json:"mults,omitempty"`
	FPALUs  int `json:"fpalus,omitempty"`
	FPMults int `json:"fpmults,omitempty"`

	// Classes are the functional-unit classes whose energy the cell
	// accounts; empty selects the paper's single-pool view, the IntALU
	// class alone.
	Classes []fu.Class `json:"classes,omitempty"`
	// Assignment maps classes to their sleep policies; a studied class
	// missing from the assignment falls back to Policy. An empty
	// assignment is the uniform case: every studied class runs Policy.
	// Entries for classes outside the studied set are legal (a uniform
	// assignment covers every class) but are not accounted; PolicyLabel
	// renders only the studied classes' effective policies. Grid expansion
	// widens the studied set to cover its Assignments automatically.
	Assignment core.Assignment `json:"assignment,omitempty"`
	// ClassTechs overrides the technology point per class (a class built
	// in a different circuit style leaks differently); missing classes use
	// Tech. Each class's breakeven — and therefore its GradualSleep slice
	// and SleepTimeout threshold defaults — resolves through its own
	// effective tech.
	ClassTechs map[fu.Class]core.Tech `json:"classTechs,omitempty"`
}

// mix returns the cell's machine provisioning.
func (c Cell) mix() FUMix {
	return FUMix{IntALUs: c.FUs, AGUs: c.AGUs, Mults: c.Mults, FPALUs: c.FPALUs, FPMults: c.FPMults}
}

// StudiedClasses returns the classes the cell accounts energy for, in
// canonical (enum) order regardless of how Classes was spelled: the
// explicit Classes list sorted, or the paper's single-pool default of
// IntALU alone. Key, EvalCell, and PerClass all walk this order, so two
// cells listing the same classes in different orders are one identity.
func (c Cell) StudiedClasses() []fu.Class {
	if len(c.Classes) == 0 {
		return []fu.Class{fu.IntALU}
	}
	out := append([]fu.Class(nil), c.Classes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PolicyFor resolves the effective policy for one class: its assignment
// entry, or the cell-wide Policy.
func (c Cell) PolicyFor(cl fu.Class) core.PolicyConfig {
	if pc, ok := c.Assignment.For(cl); ok {
		return pc
	}
	return c.Policy
}

// TechFor resolves the effective technology point for one class.
func (c Cell) TechFor(cl fu.Class) core.Tech {
	return core.TechFor(c.Tech, c.ClassTechs, cl)
}

// PolicyLabel renders the cell's policy axis for tables. With an
// assignment set it lists each STUDIED class's effective policy — not the
// raw assignment, whose entries for unstudied classes are not accounted
// and must not be claimed by the row — else the uniform policy's name.
func (c Cell) PolicyLabel() string {
	if len(c.Assignment) > 0 {
		parts := make([]string, 0, len(c.Classes)+1)
		for _, cl := range c.StudiedClasses() {
			parts = append(parts, cl.String()+"="+c.PolicyFor(cl).String())
		}
		return strings.Join(parts, ",")
	}
	return c.Policy.Policy.String()
}

// Key returns a stable identity hash of the cell: two cells with the same
// simulation configuration and energy-model point hash identically, so
// queue shards and caches can key on it. The hash covers every field that
// affects the result — including the per-class mix, class list, policy
// assignment, and technology overrides, each serialized in canonical class
// order.
func (c Cell) Key() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%.17g|%.17g|%.17g|%.17g|%d|%.17g|%d|%d|%s",
		c.Policy.Policy.String(), c.Policy.Slices, c.Policy.Timeout,
		c.Tech.P, c.Tech.C, c.Tech.SleepOverhead, c.Tech.Duty,
		c.FUs, c.Alpha, c.L2Latency, c.Window,
		strings.Join(c.Benchmarks, ","))
	fmt.Fprintf(h, "|%d|%d|%d|%d", c.AGUs, c.Mults, c.FPALUs, c.FPMults)
	if len(c.Classes) > 0 {
		for _, cl := range c.StudiedClasses() {
			fmt.Fprintf(h, "|c:%s", cl)
		}
	}
	if len(c.Assignment) > 0 {
		fmt.Fprintf(h, "|a:%s", c.Assignment)
	}
	for _, cl := range sortedClassKeys(c.ClassTechs) {
		t := c.ClassTechs[cl]
		fmt.Fprintf(h, "|t:%s:%.17g:%.17g:%.17g:%.17g", cl, t.P, t.C, t.SleepOverhead, t.Duty)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SimKey returns a stable identity hash of the simulation-only part of the
// cell: the benchmark set, per-class FU mix, L2 latency, and window. Cells
// with equal SimKeys need exactly the same simulations and differ only in
// the closed-form energy evaluation (policy, technology point, alpha,
// studied classes, assignment), so EvalCells groups on it and the sweep
// service routes variants of one machine to one shard. It covers a strict
// subset of Key's fields; Key itself — the full result identity — is
// unchanged.
func (c Cell) SimKey() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%s",
		c.FUs, c.AGUs, c.Mults, c.FPALUs, c.FPMults, c.L2Latency, c.Window,
		strings.Join(c.Benchmarks, ","))
	return fmt.Sprintf("%016x", h.Sum64())
}

// sortedClassKeys returns the map's classes in canonical order.
func sortedClassKeys(m map[fu.Class]core.Tech) []fu.Class {
	if len(m) == 0 {
		return nil
	}
	out := make([]fu.Class, 0, len(m))
	for _, cl := range fu.Classes() {
		if _, ok := m[cl]; ok {
			out = append(out, cl)
		}
	}
	return out
}

// ClassEnergy is one studied class's share of a cell result: the policy it
// ran and its relative energy and leakage fraction, averaged over the
// cell's benchmarks.
type ClassEnergy struct {
	Class           fu.Class          `json:"class"`
	Policy          core.PolicyConfig `json:"policy"`
	RelEnergy       float64           `json:"relEnergy"`
	LeakageFraction float64           `json:"leakageFraction"`
	// Units is the simulated unit count backing the class, or 0 when the
	// count varies across the cell's benchmarks (the paper's per-benchmark
	// IntALU counts).
	Units int `json:"units,omitempty"`
}

// CellResult is one completed grid point: the cell's identity plus its
// suite-averaged relative energy and leakage fraction.
type CellResult struct {
	// Index is the cell's position in the grid's canonical enumeration
	// (Grid.Cells order), so streamed results can be reassembled in grid
	// order regardless of completion order.
	Index int  `json:"index"`
	Cell  Cell `json:"cell"`
	// RelEnergy is E_policy / E_base averaged over the cell's benchmarks,
	// summed across the cell's studied classes.
	RelEnergy float64 `json:"relEnergy"`
	// LeakageFraction is the leakage share of total energy, averaged over
	// the cell's benchmarks.
	LeakageFraction float64 `json:"leakageFraction"`
	// MeanCycles is the simulated cycle count averaged over the cell's
	// benchmarks — the delay axis of energy-delay analyses. It depends on
	// the cell's FU mix, benchmarks, L2 latency, and window, but not on
	// its policies or technology points.
	MeanCycles float64 `json:"meanCycles"`
	// PerClass breaks the result down by studied class, in canonical
	// order.
	PerClass []ClassEnergy `json:"perClass,omitempty"`
}

// Cells expands the grid into its ordered cell list after resolving zero
// values against the given default technology. The order matches RunSweep's
// row order: technology-major, then FU mix, then policy (uniform policies
// first, then per-class assignments).
func (g Grid) Cells(tech core.Tech) []Cell {
	g = g.withDefaults(tech)
	cells := make([]Cell, 0, g.Cardinality(tech))
	for _, tc := range g.Techs {
		for _, fus := range g.FUCounts {
			for _, agus := range g.AGUCounts {
				for _, mults := range g.MultCounts {
					for _, fpalus := range g.FPALUCounts {
						for _, fpmults := range g.FPMultCounts {
							base := Cell{
								Tech:       tc,
								FUs:        fus,
								AGUs:       agus,
								Mults:      mults,
								FPALUs:     fpalus,
								FPMults:    fpmults,
								Benchmarks: g.Benchmarks,
								Alpha:      g.Alpha,
								L2Latency:  g.L2Latency,
								Window:     g.Window,
								Classes:    g.Classes,
								ClassTechs: g.ClassTechs,
							}
							for _, pc := range g.Policies {
								c := base
								c.Policy = pc
								cells = append(cells, c)
							}
							for _, a := range g.Assignments {
								c := base
								c.Assignment = a
								cells = append(cells, c)
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Validate rejects cells whose technology points, benchmark set, class
// list, or policy assignment are outside the model's domain, before any
// simulation is paid for.
func (c Cell) Validate() error {
	if err := c.Tech.Validate(); err != nil {
		return fmt.Errorf("cell: tech p=%g: %w", c.Tech.P, err)
	}
	if !core.ValidAlpha(c.Alpha) {
		return fmt.Errorf("cell: alpha %g: %w", c.Alpha, core.ErrAlpha)
	}
	if len(c.Benchmarks) == 0 {
		return fmt.Errorf("cell: no benchmarks")
	}
	for _, name := range c.Benchmarks {
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("cell: %w", err)
		}
	}
	for _, n := range []struct {
		name  string
		count int
	}{
		{"agus", c.AGUs}, {"mults", c.Mults}, {"fpalus", c.FPALUs}, {"fpmults", c.FPMults},
	} {
		if n.count < 0 {
			return fmt.Errorf("cell: negative %s %d", n.name, n.count)
		}
	}
	seen := map[fu.Class]bool{}
	for _, cl := range c.Classes {
		if !cl.Valid() {
			return fmt.Errorf("cell: invalid class %d", uint8(cl))
		}
		if seen[cl] {
			return fmt.Errorf("cell: class %s listed twice", cl)
		}
		seen[cl] = true
		if cl == fu.AGU && c.AGUs <= 0 {
			return fmt.Errorf("cell: class agu needs a dedicated pool (set agus > 0); the default machine issues address generation down the integer ALU ports")
		}
	}
	if err := c.Assignment.Validate(); err != nil {
		return fmt.Errorf("cell: %w", err)
	}
	// Canonical class order keeps the first-reported error stable when
	// several entries are bad.
	for _, cl := range sortedClassKeys(c.ClassTechs) {
		if !cl.Valid() {
			return fmt.Errorf("cell: classTechs names invalid class %d", uint8(cl))
		}
		if err := c.ClassTechs[cl].Validate(); err != nil {
			return fmt.Errorf("cell: classTechs[%s]: %w", cl, err)
		}
	}
	return nil
}

// storeGet consults the durable cell-result tier, absorbing store errors
// into the runner's accounting: a broken disk degrades to recomputation,
// never to a failed sweep. It returns ok=false when no store is configured.
func (r *Runner) storeGet(key string) (CellResult, bool) {
	if r.store == nil {
		return CellResult{}, false
	}
	res, ok, err := r.store.GetCell(key)
	r.mu.Lock()
	switch {
	case err != nil:
		r.storeErrs++
	case ok:
		r.storeHits++
	}
	r.mu.Unlock()
	return res, err == nil && ok
}

// storePut journals one computed cell result to the durable tier (a no-op
// without a store), absorbing write failures.
func (r *Runner) storePut(key string, res CellResult) {
	if r.store == nil {
		return
	}
	err := r.store.PutCell(key, res)
	r.mu.Lock()
	if err != nil {
		r.storeErrs++
	} else {
		r.storePuts++
	}
	r.mu.Unlock()
}

// evalFromSuite applies the closed-form energy model for one cell over its
// already-simulated benchmark suite: each studied class under its effective
// policy and technology point, over the recorded idle profiles. The
// conversions to energy-model form come from the runner's shared cache, so
// policy/tech variants evaluated off one simulation never re-convert.
func evalFromSuite(r *Runner, c Cell, suite map[string]pipeline.Result) (CellResult, error) {
	classes := c.StudiedClasses()
	type acc struct {
		rel, leak float64
		units     int
		mixed     bool
	}
	per := make([]acc, len(classes))
	var rel, leak, cyc float64
	for _, name := range c.Benchmarks {
		res := suite[name]
		_, key, err := r.resolveKey(name, c.mix(), c.L2Latency, c.Window)
		if err != nil {
			return CellResult{}, err
		}
		var total core.Breakdown
		var base float64
		for i, cl := range classes {
			profs := r.classProfiles(key, res, cl)
			if len(profs) == 0 {
				return CellResult{}, fmt.Errorf("cell: machine has no %s units to study", cl)
			}
			tech := c.TechFor(cl)
			e := convertedEnergy(tech, c.PolicyFor(cl), c.Alpha, profs)
			b := profileBase(tech, c.Alpha, len(profs), res.Cycles)
			per[i].rel += e.Total() / b
			per[i].leak += e.LeakageFraction()
			if per[i].units != 0 && per[i].units != len(profs) {
				per[i].mixed = true
			}
			per[i].units = len(profs)
			total = total.Add(e)
			base += b
		}
		rel += total.Total() / base
		leak += total.LeakageFraction()
		cyc += float64(res.Cycles)
	}
	n := float64(len(c.Benchmarks))
	out := CellResult{Cell: c, RelEnergy: rel / n, LeakageFraction: leak / n, MeanCycles: cyc / n}
	for i, cl := range classes {
		units := per[i].units
		if per[i].mixed {
			units = 0
		}
		out.PerClass = append(out.PerClass, ClassEnergy{
			Class:           cl,
			Policy:          c.PolicyFor(cl),
			RelEnergy:       per[i].rel / n,
			LeakageFraction: per[i].leak / n,
			Units:           units,
		})
	}
	return out, nil
}

// EvalCell evaluates one grid cell: it simulates (or re-uses from cache)
// the cell's benchmark suite at its functional-unit mix, then applies the
// closed-form energy model per studied class — each class under its
// effective policy and technology point — over the measured per-class idle
// profiles. The returned result's Index is zero; callers enumerating a
// grid set it.
func EvalCell(ctx context.Context, r *Runner, c Cell) (CellResult, error) {
	if err := c.Validate(); err != nil {
		return CellResult{}, err
	}
	// Durable tier first: a cell journaled by an earlier run (possibly a
	// previous process) is served from disk without touching the simulator.
	var key string
	if r.store != nil {
		key = c.Key()
		if res, ok := r.storeGet(key); ok {
			return res, nil
		}
	}
	suite, err := r.SimSuiteMix(ctx, c.Benchmarks, c.mix(), c.L2Latency, c.Window)
	if err != nil {
		return CellResult{}, fmt.Errorf("cell fus=%d: %w", c.FUs, err)
	}
	out, err := evalFromSuite(r, c, suite)
	if err != nil {
		return CellResult{}, err
	}
	if r.store != nil {
		r.storePut(key, out)
	}
	return out, nil
}

// EvalCells evaluates a batch of grid cells with shared-pass batching:
// cells that share a simulation identity (SimKey — benchmark set, FU mix,
// L2 latency, window) are grouped, each group's suite is simulated once,
// and every cell in the group is then evaluated closed-form off the
// recorded interval profiles through the runner's shared conversion cache.
// Per-cell results are identical to calling EvalCell on each cell —
// batching changes the work schedule, never the numbers. Results return in
// input order with Index zero (callers enumerating a grid set it); every
// cell is validated before any simulation is paid for. The durable store
// tier is consulted and fed per cell, exactly as EvalCell does.
func EvalCells(ctx context.Context, r *Runner, cells []Cell) ([]CellResult, error) {
	out := make([]CellResult, len(cells))
	for i := range cells {
		if err := cells[i].Validate(); err != nil {
			return nil, err
		}
	}
	// Serve what the durable tier already has, then group the rest by
	// simulation identity, preserving first-appearance order.
	remaining := make([]int, 0, len(cells))
	for i := range cells {
		if r.store != nil {
			if res, ok := r.storeGet(cells[i].Key()); ok {
				out[i] = res
				continue
			}
		}
		remaining = append(remaining, i)
	}
	groups := make(map[string][]int)
	var order []string
	for _, i := range remaining {
		k := cells[i].SimKey()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idxs := groups[k]
		lead := cells[idxs[0]]
		suite, err := r.SimSuiteMix(ctx, lead.Benchmarks, lead.mix(), lead.L2Latency, lead.Window)
		if err != nil {
			return nil, fmt.Errorf("cell fus=%d: %w", lead.FUs, err)
		}
		for _, i := range idxs {
			res, err := evalFromSuite(r, cells[i], suite)
			if err != nil {
				return nil, err
			}
			if r.store != nil {
				r.storePut(cells[i].Key(), res)
			}
			out[i] = res
		}
	}
	return out, nil
}

// RunSweepStream evaluates the grid cell by cell, invoking fn with each
// completed cell result in grid order. Every technology point is validated
// before any simulation runs. Evaluation stops at the first cell error or
// the first non-nil error returned by fn; either is returned to the caller.
// Cells that share a functional-unit mix share their (cached) suite
// simulation, so streaming costs no more simulation work than the batch
// RunSweep.
func RunSweepStream(ctx context.Context, r *Runner, g Grid, tech core.Tech, fn func(CellResult) error) error {
	g = g.withDefaults(tech)
	for _, tc := range g.Techs {
		if err := tc.Validate(); err != nil {
			return fmt.Errorf("sweep: tech p=%g: %w", tc.P, err)
		}
	}
	for i, c := range g.Cells(tech) {
		res, err := EvalCell(ctx, r, c)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		res.Index = i
		if err := fn(res); err != nil {
			return err
		}
	}
	return nil
}
