package experiments

import (
	"errors"
	"fmt"
)

// CellError is a contained cell-evaluation failure: instead of a panic or
// raw error taking down a worker shard, the evaluation path wraps the
// outcome with the cell's identity and a classification the retry policy
// can act on.
type CellError struct {
	// Key is the failing cell's stable configuration hash.
	Key string
	// Attempt is the 1-based evaluation attempt that produced this error.
	Attempt int
	// Transient marks failures worth retrying (injected transients,
	// resource blips); permanent failures (validation, panics, per-cell
	// timeouts) fail the cell immediately.
	Transient bool
	// Panicked marks an evaluation that panicked and was recovered.
	Panicked bool
	// Timeout marks an evaluation that exceeded its per-cell deadline.
	Timeout bool
	// Err is the underlying cause.
	Err error
}

// Error renders the failure with its classification.
func (e *CellError) Error() string {
	kind := "failed"
	switch {
	case e.Panicked:
		kind = "panicked"
	case e.Timeout:
		kind = "timed out"
	case e.Transient:
		kind = "failed transiently"
	}
	return fmt.Sprintf("cell %s %s (attempt %d): %v", e.Key, kind, e.Attempt, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// IsTransientCellError reports whether err is (or wraps) a CellError
// marked transient, or any error exposing a true Transient() bool — the
// retry policy's eligibility test.
func IsTransientCellError(err error) bool {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Transient
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}
