// Package experiments contains one driver per table and figure of the
// paper's evaluation. Analytic experiments (Table 1/4, Figures 3-5) come
// straight from the circuit and energy models; simulated experiments
// (Table 2/3, Figures 7-9) run the benchmark suite on the pipeline model
// and feed the measured idle-interval profiles into the energy model,
// exactly as Section 4 of the paper describes.
package experiments

import (
	"fmt"
	"sync"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

// Options control the simulation scale.
type Options struct {
	// Window is the per-benchmark instruction count (the paper used
	// 50M-150M windows; the default reproduces the distributions at far
	// lower cost).
	Window uint64
	// Sweep is the per-run instruction count for FU-count sweeps (Table 3),
	// which needs 4 runs per benchmark.
	Sweep uint64
	// Parallel bounds concurrent simulations (0 = number of benchmarks).
	Parallel int
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Window: 1_000_000, Sweep: 750_000}
}

// Runner executes experiments, caching benchmark suite runs so the figures
// that share the same simulations (7, 8a, 8b, 9a, 9b) pay for them once.
type Runner struct {
	opt    Options
	mu     sync.Mutex
	suites map[int]map[string]pipeline.Result
}

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.Window == 0 {
		opt.Window = DefaultOptions().Window
	}
	if opt.Sweep == 0 {
		opt.Sweep = DefaultOptions().Sweep
	}
	return &Runner{opt: opt, suites: make(map[int]map[string]pipeline.Result)}
}

// runOne simulates a single benchmark configuration.
func runOne(spec workload.Spec, fus, l2 int, window uint64) (pipeline.Result, error) {
	cfg := pipeline.DefaultConfig().WithIntALUs(fus).WithL2Latency(l2)
	cfg.MaxInsts = window
	cpu, err := pipeline.New(cfg, spec.NewTrace(window))
	if err != nil {
		return pipeline.Result{}, err
	}
	res, err := cpu.Run()
	if err != nil {
		return pipeline.Result{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return res, nil
}

// suite returns the per-benchmark results at the paper's Table 3 FU counts
// for the given L2 latency, running them in parallel on first use.
func (r *Runner) suite(l2 int) (map[string]pipeline.Result, error) {
	r.mu.Lock()
	if got, ok := r.suites[l2]; ok {
		r.mu.Unlock()
		return got, nil
	}
	r.mu.Unlock()

	type out struct {
		name string
		res  pipeline.Result
		err  error
	}
	limit := r.opt.Parallel
	if limit <= 0 {
		limit = len(workload.Benchmarks)
	}
	sem := make(chan struct{}, limit)
	ch := make(chan out, len(workload.Benchmarks))
	for _, spec := range workload.Benchmarks {
		spec := spec
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := runOne(spec, spec.PaperFUs, l2, r.opt.Window)
			ch <- out{spec.Name, res, err}
		}()
	}
	results := make(map[string]pipeline.Result, len(workload.Benchmarks))
	for range workload.Benchmarks {
		o := <-ch
		if o.err != nil {
			return nil, o.err
		}
		results[o.name] = o.res
	}
	r.mu.Lock()
	r.suites[l2] = results
	r.mu.Unlock()
	return results, nil
}

// coreProfiles converts measured per-unit activity into energy-model
// profiles.
func coreProfiles(fus []pipeline.FUProfile) []*core.IdleProfile {
	out := make([]*core.IdleProfile, len(fus))
	for i, fu := range fus {
		p := core.NewIdleProfile()
		p.ActiveCycles = fu.ActiveCycles
		for l, n := range fu.Intervals {
			p.AddIdle(l, n)
		}
		out[i] = p
	}
	return out
}

// unitEnergy sums a policy's energy over all functional units of one run.
func unitEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, res pipeline.Result) core.Breakdown {
	var total core.Breakdown
	for _, prof := range coreProfiles(res.FUs) {
		total = total.Add(tech.EvalProfile(pc, alpha, prof))
	}
	return total
}

// baseEnergy is the normalization of Figure 8: the energy if every unit
// computed on every cycle.
func baseEnergy(tech core.Tech, alpha float64, res pipeline.Result) float64 {
	return float64(len(res.FUs)) * tech.BaseEnergy(alpha, float64(res.Cycles))
}

// relativeEnergy returns E_policy / E_base for one benchmark run.
func relativeEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, res pipeline.Result) float64 {
	return unitEnergy(tech, pc, alpha, res).Total() / baseEnergy(tech, alpha, res)
}
