// Package experiments contains one driver per table and figure of the
// paper's evaluation. Analytic experiments (Table 1/4, Figures 3-5) come
// straight from the circuit and energy models; simulated experiments
// (Table 2/3, Figures 7-9) run the benchmark suite on the pipeline model
// and feed the measured idle-interval profiles into the energy model,
// exactly as Section 4 of the paper describes.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

// Options control the simulation scale.
type Options struct {
	// Window is the per-benchmark instruction count (the paper used
	// 50M-150M windows; the default reproduces the distributions at far
	// lower cost).
	Window uint64
	// Sweep is the per-run instruction count for FU-count sweeps (Table 3),
	// which needs 4 runs per benchmark.
	Sweep uint64
	// Parallel bounds concurrent simulations (0 = number of benchmarks).
	Parallel int
	// DisableCache turns off the cross-call result cache, so every request
	// re-simulates. The cache is on by default; disabling it is mainly
	// useful for memory-constrained batch sweeps.
	DisableCache bool
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{Window: 1_000_000, Sweep: 750_000}
}

// FUMix is a machine's per-class functional-unit provisioning. The zero
// value selects the defaults everywhere: the paper's per-benchmark Table 3
// IntALU count, address generation sharing the IntALU ports, and one unit
// each for the multiplier and FP classes.
type FUMix struct {
	// IntALUs is the integer-ALU count; 0 selects the paper's Table 3
	// per-benchmark count.
	IntALUs int `json:"intALUs,omitempty"`
	// AGUs is the dedicated address-generation unit count; 0 shares the
	// IntALU ports (the paper's machine).
	AGUs int `json:"agus,omitempty"`
	// Mults, FPALUs, FPMults override the dedicated unit counts; 0 keeps
	// the Table 2 default of one unit per class.
	Mults   int `json:"mults,omitempty"`
	FPALUs  int `json:"fpalus,omitempty"`
	FPMults int `json:"fpmults,omitempty"`
}

// runKey identifies one benchmark configuration in the result cache. The
// full per-class mix is part of the identity, so suites that differ only in
// their Mult or FP provisioning cache separately.
type runKey struct {
	bench  string
	mix    FUMix
	l2     int
	window uint64
}

// inflight is one in-progress simulation other callers can wait on.
type inflight struct {
	done chan struct{} // closed when res/err are set
	res  pipeline.Result
	err  error
}

// CellStore is a durable cell-result store the runner consults before
// recomputing a cell and appends to after computing one — the disk tier
// under the in-memory simulation cache. Implementations (internal/store)
// key records by the stable Cell.Key configuration hash, so a result
// journaled before a crash is served back byte-identically after a
// restart. GetCell returns ok=false (with a nil error) for unknown keys;
// a decode error surfaces so the caller can fall back to recomputing.
type CellStore interface {
	GetCell(key string) (CellResult, bool, error)
	PutCell(key string, res CellResult) error
}

// Runner executes experiments, caching benchmark runs so the figures that
// share the same simulations (7, 8a, 8b, 9a, 9b) pay for them once. It is
// the engine's backing store: all simulations funnel through Sim, which
// honors context cancellation and the configured parallelism bound, and
// deduplicates concurrent identical requests in flight.
type Runner struct {
	opt   Options
	sem   chan struct{} // bounds concurrent pipeline simulations
	store CellStore     // optional durable cell-result tier; set before use

	mu            sync.Mutex
	runs          map[runKey]pipeline.Result
	pending       map[runKey]*inflight
	suites        map[int]map[string]pipeline.Result
	profs         map[profileKey][]*core.IdleProfile
	simCount      uint64 // completed pipeline runs, for tests and Stats
	cacheHits     uint64 // Sim requests served from the result cache
	inflightJoins uint64 // Sim requests that joined an in-progress identical run
	profileBuilds uint64 // recorded-profile -> energy-model conversions performed
	profileReuses uint64 // conversions served from the shared profile cache
	storeHits     uint64 // EvalCell requests served from the durable store
	storePuts     uint64 // cell results appended to the durable store
	storeErrs     uint64 // durable-store reads/writes that failed (and were absorbed)
}

// profileKey identifies one converted per-class profile set in the runner's
// conversion cache: the simulation it came from plus the studied class.
type profileKey struct {
	run   runKey
	class fu.Class
}

// RunnerStats is a snapshot of the runner's simulation accounting: how many
// pipeline simulations actually ran, how many requests were served straight
// from the cross-call cache, and how many joined an identical in-flight run
// instead of re-simulating. HitRate folds the latter two together against
// the total request count.
type RunnerStats struct {
	Simulations   uint64 `json:"simulations"`
	CacheHits     uint64 `json:"cacheHits"`
	InflightJoins uint64 `json:"inflightJoins"`
	// ProfileBuilds counts conversions of recorded per-unit interval
	// profiles into energy-model form; ProfileReuses counts cell
	// evaluations that shared an already-converted set instead of
	// rebuilding it. Policy/tech variants batched over one simulation show
	// up here as one build and N-1 reuses per (run, class).
	ProfileBuilds uint64 `json:"profileBuilds,omitempty"`
	ProfileReuses uint64 `json:"profileReuses,omitempty"`
	// StoreHits counts whole cells served from the durable result store
	// (zero when no store is configured); StorePuts counts results
	// journaled to it, and StoreErrors counts store failures the runner
	// absorbed by recomputing.
	StoreHits   uint64 `json:"storeHits,omitempty"`
	StorePuts   uint64 `json:"storePuts,omitempty"`
	StoreErrors uint64 `json:"storeErrors,omitempty"`
}

// HitRate returns the fraction of Sim requests that avoided a fresh
// simulation (0 when no requests have been served).
func (s RunnerStats) HitRate() float64 {
	total := s.Simulations + s.CacheHits + s.InflightJoins
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.InflightJoins) / float64(total)
}

// Stats returns a snapshot of the runner's simulation accounting.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{
		Simulations: r.simCount, CacheHits: r.cacheHits, InflightJoins: r.inflightJoins,
		ProfileBuilds: r.profileBuilds, ProfileReuses: r.profileReuses,
		StoreHits: r.storeHits, StorePuts: r.storePuts, StoreErrors: r.storeErrs,
	}
}

// SetCellStore attaches a durable cell-result store. It must be called
// before the runner serves requests (engine construction time); EvalCell
// then consults the store before simulating and journals fresh results
// after.
func (r *Runner) SetCellStore(s CellStore) { r.store = s }

// NewRunner builds a runner.
func NewRunner(opt Options) *Runner {
	if opt.Window == 0 {
		opt.Window = DefaultOptions().Window
	}
	if opt.Sweep == 0 {
		opt.Sweep = DefaultOptions().Sweep
	}
	limit := opt.Parallel
	if limit <= 0 {
		limit = len(workload.Benchmarks)
	}
	return &Runner{
		opt:     opt,
		sem:     make(chan struct{}, limit),
		runs:    make(map[runKey]pipeline.Result),
		pending: make(map[runKey]*inflight),
		suites:  make(map[int]map[string]pipeline.Result),
		profs:   make(map[profileKey][]*core.IdleProfile),
	}
}

// runOne simulates a single benchmark configuration.
func runOne(ctx context.Context, spec workload.Spec, mix FUMix, l2 int, window uint64) (pipeline.Result, error) {
	cfg := pipeline.DefaultConfig().
		WithIntALUs(mix.IntALUs).
		WithUnits(mix.Mults, mix.FPALUs, mix.FPMults, mix.AGUs).
		WithL2Latency(l2)
	cfg.MaxInsts = window
	cpu, err := pipeline.New(cfg, spec.NewTrace(window))
	if err != nil {
		return pipeline.Result{}, err
	}
	res, err := cpu.RunContext(ctx)
	if err != nil {
		return pipeline.Result{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	return res, nil
}

// Sim simulates one benchmark at the given integer-ALU count (0 selects the
// paper's Table 3 count), L2 hit latency, and instruction window (0 selects
// the runner's Window), with the default per-class mix. Results are cached
// across calls unless DisableCache is set; concurrent simulations are
// bounded by Options.Parallel.
func (r *Runner) Sim(ctx context.Context, bench string, fus, l2 int, window uint64) (pipeline.Result, error) {
	return r.SimMix(ctx, bench, FUMix{IntALUs: fus}, l2, window)
}

// SimMix is Sim with full per-class unit provisioning: the mix's zero
// fields resolve to the machine defaults (paper IntALU count, shared AGUs,
// one unit per dedicated class). The resolved mix is part of the cache
// identity, so suites that differ only in one class's count cache
// separately.
func (r *Runner) SimMix(ctx context.Context, bench string, mix FUMix, l2 int, window uint64) (pipeline.Result, error) {
	spec, key, err := r.resolveKey(bench, mix, l2, window)
	if err != nil {
		return pipeline.Result{}, err
	}
	mix, l2, window = key.mix, key.l2, key.window
	for {
		r.mu.Lock()
		if !r.opt.DisableCache {
			if got, ok := r.runs[key]; ok {
				r.cacheHits++
				r.mu.Unlock()
				return got, nil
			}
		}
		if fl, ok := r.pending[key]; ok {
			// Someone else is already running this configuration; wait for
			// their result instead of re-simulating.
			r.inflightJoins++
			r.mu.Unlock()
			//fusleepvet:nondet-ok cancellation race: both arms end the wait, and the result value is the leader's either way
			select {
			case <-fl.done:
				if fl.err == nil {
					return fl.res, nil
				}
				// Retry only when the leader failed because *its* context
				// ended; a real simulation error is equally valid for every
				// waiter and re-running would just fail again.
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					if err := ctx.Err(); err != nil {
						return pipeline.Result{}, err
					}
					continue
				}
				return pipeline.Result{}, fl.err
			case <-ctx.Done():
				return pipeline.Result{}, ctx.Err()
			}
		}
		fl := &inflight{done: make(chan struct{})}
		r.pending[key] = fl
		r.mu.Unlock()

		fl.res, fl.err = r.runBounded(ctx, spec, mix, l2, window)
		r.mu.Lock()
		delete(r.pending, key)
		if fl.err == nil {
			r.simCount++
			if !r.opt.DisableCache {
				r.runs[key] = fl.res
			}
		}
		r.mu.Unlock()
		close(fl.done)
		return fl.res, fl.err
	}
}

// resolveKey normalizes one benchmark request into its canonical cache
// identity. Zero fields resolve to the machine defaults (the paper's
// per-benchmark IntALU count, shared AGUs, Table 2 dedicated units, 12-cycle
// L2, the runner's window); negatives clamp to 0 and explicit counts equal
// to the defaults collapse to 0, so "default" spells one cache key however
// it was written.
func (r *Runner) resolveKey(bench string, mix FUMix, l2 int, window uint64) (workload.Spec, runKey, error) {
	spec, err := workload.ByName(bench)
	if err != nil {
		return workload.Spec{}, runKey{}, err
	}
	if mix.IntALUs <= 0 {
		mix.IntALUs = spec.PaperFUs
	}
	def := pipeline.DefaultConfig()
	for _, n := range []struct {
		v   *int
		def int
	}{
		{&mix.AGUs, def.AGUs}, {&mix.Mults, def.IntMults},
		{&mix.FPALUs, def.FPALUs}, {&mix.FPMults, def.FPMults},
	} {
		if *n.v < 0 || *n.v == n.def {
			*n.v = 0
		}
	}
	if l2 <= 0 {
		l2 = 12
	}
	if window == 0 {
		window = r.opt.Window
	}
	return spec, runKey{bench: spec.Name, mix: mix, l2: l2, window: window}, nil
}

// classProfiles returns the energy-model view of one simulated run's
// studied class, converting the recorded per-unit interval profiles at most
// once per (simulation, class): every cell evaluated off the same
// simulation shares the converted set. Sharing is safe because the
// profiles are born sorted (coreProfiles feeds AddIdle in ascending order)
// and the evaluation paths only read them. With the cache disabled each
// call converts afresh.
func (r *Runner) classProfiles(key runKey, res pipeline.Result, cl fu.Class) []*core.IdleProfile {
	pk := profileKey{run: key, class: cl}
	if !r.opt.DisableCache {
		r.mu.Lock()
		if ps, ok := r.profs[pk]; ok {
			r.profileReuses++
			r.mu.Unlock()
			return ps
		}
		r.mu.Unlock()
	}
	ps := coreProfiles(res.UnitsFor(cl))
	r.mu.Lock()
	r.profileBuilds++
	if !r.opt.DisableCache {
		if got, ok := r.profs[pk]; ok {
			// Lost a build race; adopt the winner so sharing stays maximal.
			ps = got
		} else {
			r.profs[pk] = ps
		}
	}
	r.mu.Unlock()
	return ps
}

// runBounded runs one simulation under the concurrency semaphore.
func (r *Runner) runBounded(ctx context.Context, spec workload.Spec, mix FUMix, l2 int, window uint64) (pipeline.Result, error) {
	//fusleepvet:nondet-ok semaphore-vs-cancel race: the simulation itself is seeded and cancellation only picks which error surfaces
	select {
	case r.sem <- struct{}{}:
		defer func() { <-r.sem }()
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
	return runOne(ctx, spec, mix, l2, window)
}

// SimSuite simulates a set of benchmarks in parallel (bounded by
// Options.Parallel) and returns their results by name. fus = 0 selects the
// paper's per-benchmark Table 3 counts. On failure it cancels the
// outstanding runs, waits for them to drain, and returns every distinct
// error joined together rather than abandoning in-flight work.
func (r *Runner) SimSuite(ctx context.Context, benchmarks []string, fus, l2 int, window uint64) (map[string]pipeline.Result, error) {
	return r.SimSuiteMix(ctx, benchmarks, FUMix{IntALUs: fus}, l2, window)
}

// SimSuiteMix is SimSuite with full per-class unit provisioning; cells that
// share a class mix share their (cached) suite simulation.
func (r *Runner) SimSuiteMix(ctx context.Context, benchmarks []string, mix FUMix, l2 int, window uint64) (map[string]pipeline.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type out struct {
		name string
		res  pipeline.Result
		err  error
	}
	ch := make(chan out, len(benchmarks))
	for _, name := range benchmarks {
		go func(name string) {
			res, err := r.SimMix(ctx, name, mix, l2, window)
			ch <- out{name, res, err}
		}(name)
	}
	results := make(map[string]pipeline.Result, len(benchmarks))
	var errs []error
	for range benchmarks {
		o := <-ch
		if o.err != nil {
			// First failure cancels the rest; their (likely context.Canceled)
			// errors still drain here so no goroutine leaks.
			if len(errs) == 0 {
				cancel()
			}
			ctxErr := errors.Is(o.err, context.Canceled) || errors.Is(o.err, context.DeadlineExceeded)
			if !ctxErr || len(errs) == 0 {
				errs = append(errs, o.err)
			}
			continue
		}
		results[o.name] = o.res
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return results, nil
}

// suite returns the per-benchmark results at the paper's Table 3 FU counts
// for the given L2 latency, running them in parallel on first use.
func (r *Runner) suite(ctx context.Context, l2 int) (map[string]pipeline.Result, error) {
	r.mu.Lock()
	got, ok := r.suites[l2]
	r.mu.Unlock()
	if ok {
		return got, nil
	}
	results, err := r.SimSuite(ctx, workload.Names(), 0, l2, r.opt.Window)
	if err != nil {
		return nil, err
	}
	if !r.opt.DisableCache {
		r.mu.Lock()
		r.suites[l2] = results
		r.mu.Unlock()
	}
	return results, nil
}

// coreProfiles converts measured per-unit activity into energy-model
// profiles. This runs once per evaluation, so it feeds AddIdle in
// ascending length order (the simulator records each unit's sorted
// lengths once, at run end): the resulting profile is born ordered and
// the evaluation loops over it never sort.
func coreProfiles(fus []pipeline.FUProfile) []*core.IdleProfile {
	out := make([]*core.IdleProfile, len(fus))
	for i, fu := range fus {
		p := core.NewIdleProfileSized(len(fu.Intervals))
		p.ActiveCycles = fu.ActiveCycles
		for _, l := range fu.SortedLengths() {
			p.AddIdle(l, fu.Intervals[l])
		}
		out[i] = p
	}
	return out
}

// profileEnergy sums a policy's energy over the given unit profiles.
func profileEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, fus []pipeline.FUProfile) core.Breakdown {
	return convertedEnergy(tech, pc, alpha, coreProfiles(fus))
}

// convertedEnergy sums a policy's energy over already-converted unit
// profiles — the closed-form evaluation batched cells run against the
// runner's shared conversion cache.
func convertedEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, profs []*core.IdleProfile) core.Breakdown {
	var total core.Breakdown
	for _, prof := range profs {
		total = total.Add(tech.EvalProfile(pc, alpha, prof))
	}
	return total
}

// profileBase is the 100%-computation normalization for n units over the
// run's cycle count.
func profileBase(tech core.Tech, alpha float64, n int, cycles uint64) float64 {
	return float64(n) * tech.BaseEnergy(alpha, float64(cycles))
}

// unitEnergy sums a policy's energy over the studied integer units of one
// run (the single-pool view).
func unitEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, res pipeline.Result) core.Breakdown {
	return profileEnergy(tech, pc, alpha, res.FUs)
}

// baseEnergy is the normalization of Figure 8: the energy if every unit
// computed on every cycle.
func baseEnergy(tech core.Tech, alpha float64, res pipeline.Result) float64 {
	return profileBase(tech, alpha, len(res.FUs), res.Cycles)
}

// relativeEnergy returns E_policy / E_base for one benchmark run.
func relativeEnergy(tech core.Tech, pc core.PolicyConfig, alpha float64, res pipeline.Result) float64 {
	return unitEnergy(tech, pc, alpha, res).Total() / baseEnergy(tech, alpha, res)
}
