package experiments

import (
	"context"
	"fmt"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/workload"
)

// Grid describes a batch evaluation: every policy × technology point ×
// FU-count combination is scored over the benchmark suite. Zero-valued
// fields select defaults, so Grid{} is the paper's headline comparison.
type Grid struct {
	// Policies to score (default: the paper's four Figure 8 policies).
	Policies []core.PolicyConfig
	// Techs are the technology points (default: the runner's/engine's
	// configured technology).
	Techs []core.Tech
	// FUCounts are the integer-ALU counts; 0 in the list means the paper's
	// per-benchmark Table 3 counts (default: [0]).
	FUCounts []int
	// Benchmarks restricts the suite (default: all nine).
	Benchmarks []string
	// Alpha is the activity factor (default 0.5).
	Alpha float64
	// L2Latency is the L2 hit latency in cycles (default 12).
	L2Latency int
	// Window is the per-benchmark instruction count (default: the runner's
	// Window).
	Window uint64
}

// withDefaults resolves the grid's zero values against the given default
// technology point.
func (g Grid) withDefaults(tech core.Tech) Grid {
	if len(g.Policies) == 0 {
		for _, pol := range core.Policies {
			g.Policies = append(g.Policies, core.PolicyConfig{Policy: pol})
		}
	}
	if len(g.Techs) == 0 {
		g.Techs = []core.Tech{tech}
	}
	if len(g.FUCounts) == 0 {
		g.FUCounts = []int{0}
	}
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = workload.Names()
	}
	if g.Alpha == 0 {
		g.Alpha = 0.5
	}
	if g.L2Latency == 0 {
		g.L2Latency = 12
	}
	return g
}

// Cardinality returns the number of grid points after default resolution
// against the given technology, i.e. the number of result rows.
func (g Grid) Cardinality(tech core.Tech) int {
	g = g.withDefaults(tech)
	return len(g.Policies) * len(g.Techs) * len(g.FUCounts)
}

// SweepTable builds the empty result table for a resolved grid, so batch
// and streaming consumers render identically.
func SweepTable(g Grid, tech core.Tech) *report.Table {
	g = g.withDefaults(tech)
	return report.NewTable(
		fmt.Sprintf("Policy × technology × FU-count sweep [alpha=%.2f, %d benchmarks, %d-cycle L2]",
			g.Alpha, len(g.Benchmarks), g.L2Latency),
		"p", "c", "e_slp", "FUs", "policy", "E/E_base", "leakage/total")
}

// AddSweepRow appends one completed cell to a sweep table.
func AddSweepRow(t *report.Table, res CellResult) {
	c := res.Cell
	fuLabel := fmt.Sprintf("%d", c.FUs)
	if c.FUs == 0 {
		fuLabel = "paper"
	}
	t.AddRow(report.F(c.Tech.P, 4), report.F(c.Tech.C, 4), report.F(c.Tech.SleepOverhead, 4),
		fuLabel, c.Policy.Policy.String(),
		fmt.Sprintf("%.4f", res.RelEnergy), fmt.Sprintf("%.4f", res.LeakageFraction))
}

// RunSweep evaluates the grid: one suite simulation per FU count (cached,
// parallel, cancelable), then the closed-form energy model at every
// technology × policy point over the measured profiles. It returns a single
// table artifact with one row per grid point, averaged across benchmarks.
// It is the batch form of RunSweepStream: same cells, same order, collected
// into one artifact.
func RunSweep(ctx context.Context, r *Runner, g Grid, tech core.Tech) ([]report.Artifact, error) {
	g = g.withDefaults(tech)
	t := SweepTable(g, tech)
	err := RunSweepStream(ctx, r, g, tech, func(res CellResult) error {
		AddSweepRow(t, res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("E/E_base averaged over %d benchmarks at window %d", len(g.Benchmarks), r.windowOr(g.Window))
	return []report.Artifact{report.TableArtifact("sweep", t)}, nil
}

// windowOr resolves a per-call window against the runner's default.
func (r *Runner) windowOr(window uint64) uint64 {
	if window == 0 {
		return r.opt.Window
	}
	return window
}
