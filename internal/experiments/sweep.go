package experiments

import (
	"context"
	"fmt"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/workload"
)

// Grid describes a batch evaluation: every policy (or per-class policy
// assignment) × technology point × functional-unit-mix combination is
// scored over the benchmark suite. Zero-valued fields select defaults, so
// Grid{} is the paper's headline comparison.
type Grid struct {
	// Policies to score (default: the paper's four Figure 8 policies when
	// Assignments is also empty).
	Policies []core.PolicyConfig
	// Assignments are per-class policy assignments to score; each expands
	// into one cell per technology × FU-mix coordinate, after the uniform
	// Policies rows. With no explicit Classes list, the grid studies the
	// union of the assigned classes.
	Assignments []core.Assignment
	// Techs are the technology points (default: the runner's/engine's
	// configured technology).
	Techs []core.Tech
	// FUCounts are the integer-ALU counts; 0 in the list means the paper's
	// per-benchmark Table 3 counts (default: [0]).
	FUCounts []int
	// AGUCounts, MultCounts, FPALUCounts, FPMultCounts are the per-class
	// unit-count axes; 0 in a list means the Table 2 default for that
	// class (default: [0], one machine point per IntALU count).
	AGUCounts    []int
	MultCounts   []int
	FPALUCounts  []int
	FPMultCounts []int
	// Classes are the functional-unit classes every cell accounts energy
	// for (default: IntALU alone, the paper's single-pool view).
	Classes []fu.Class
	// ClassTechs overrides the technology point per class in every cell.
	ClassTechs map[fu.Class]core.Tech
	// Benchmarks restricts the suite (default: all nine).
	Benchmarks []string
	// Alpha is the activity factor (default 0.5).
	Alpha float64
	// L2Latency is the L2 hit latency in cycles (default 12).
	L2Latency int
	// Window is the per-benchmark instruction count (default: the runner's
	// Window).
	Window uint64
}

// withDefaults resolves the grid's zero values against the given default
// technology.
func (g Grid) withDefaults(tech core.Tech) Grid {
	if len(g.Policies) == 0 && len(g.Assignments) == 0 {
		for _, pol := range core.Policies {
			g.Policies = append(g.Policies, core.PolicyConfig{Policy: pol})
		}
	}
	// An assignment-bearing grid with no explicit class list studies the
	// union of the assigned classes: a policy the user assigned must be
	// accounted, never silently dropped because the studied set defaulted
	// to IntALU alone. The AGU class joins the union only when the grid
	// actually provisions a dedicated AGU pool — a uniform assignment
	// legally covers every class, and its AGU entry on the default
	// (shared-port) machine is simply not studyable.
	if len(g.Classes) == 0 && len(g.Assignments) > 0 {
		hasAGUs := false
		for _, n := range g.AGUCounts {
			if n > 0 {
				hasAGUs = true
			}
		}
		assigned := map[fu.Class]bool{}
		for _, a := range g.Assignments {
			for _, cl := range a.Classes() {
				assigned[cl] = cl != fu.AGU || hasAGUs
			}
		}
		for _, cl := range fu.Classes() {
			if assigned[cl] {
				g.Classes = append(g.Classes, cl)
			}
		}
	}
	if len(g.Techs) == 0 {
		g.Techs = []core.Tech{tech}
	}
	if len(g.FUCounts) == 0 {
		g.FUCounts = []int{0}
	}
	for _, axis := range []*[]int{&g.AGUCounts, &g.MultCounts, &g.FPALUCounts, &g.FPMultCounts} {
		if len(*axis) == 0 {
			*axis = []int{0}
		}
	}
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = workload.Names()
	}
	if g.Alpha == 0 {
		g.Alpha = 0.5
	}
	if g.L2Latency == 0 {
		g.L2Latency = 12
	}
	return g
}

// ClassAware reports whether the grid leaves the paper's single-pool view:
// it studies extra classes, carries assignments or class techs, or sweeps a
// per-class count axis.
func (g Grid) ClassAware() bool {
	if len(g.Classes) > 0 || len(g.Assignments) > 0 || len(g.ClassTechs) > 0 {
		return true
	}
	for _, axis := range [][]int{g.AGUCounts, g.MultCounts, g.FPALUCounts, g.FPMultCounts} {
		for _, n := range axis {
			if n != 0 {
				return true
			}
		}
	}
	return false
}

// Cardinality returns the number of grid points after default resolution
// against the given technology, i.e. the number of result rows.
func (g Grid) Cardinality(tech core.Tech) int {
	g = g.withDefaults(tech)
	return (len(g.Policies) + len(g.Assignments)) * len(g.Techs) * len(g.FUCounts) *
		len(g.AGUCounts) * len(g.MultCounts) * len(g.FPALUCounts) * len(g.FPMultCounts)
}

// SweepTable builds the empty result table for a resolved grid, so batch
// and streaming consumers render identically.
func SweepTable(g Grid, tech core.Tech) *report.Table {
	g = g.withDefaults(tech)
	return report.NewTable(
		fmt.Sprintf("Policy × technology × FU-count sweep [alpha=%.2f, %d benchmarks, %d-cycle L2]",
			g.Alpha, len(g.Benchmarks), g.L2Latency),
		"p", "c", "e_slp", "FUs", "policy", "E/E_base", "leakage/total")
}

// fuLabel renders a cell's functional-unit mix for tables: the IntALU axis
// as before, with non-default per-class counts appended.
func fuLabel(c Cell) string {
	s := fmt.Sprintf("%d", c.FUs)
	if c.FUs == 0 {
		s = "paper"
	}
	if c.AGUs > 0 {
		s += fmt.Sprintf("+%dagu", c.AGUs)
	}
	if c.Mults > 0 {
		s += fmt.Sprintf("+%dmult", c.Mults)
	}
	if c.FPALUs > 0 {
		s += fmt.Sprintf("+%dfpalu", c.FPALUs)
	}
	if c.FPMults > 0 {
		s += fmt.Sprintf("+%dfpmult", c.FPMults)
	}
	return s
}

// AddSweepRow appends one completed cell to a sweep table.
func AddSweepRow(t *report.Table, res CellResult) {
	c := res.Cell
	t.AddRow(report.F(c.Tech.P, 4), report.F(c.Tech.C, 4), report.F(c.Tech.SleepOverhead, 4),
		fuLabel(c), c.PolicyLabel(),
		fmt.Sprintf("%.4f", res.RelEnergy), fmt.Sprintf("%.4f", res.LeakageFraction))
}

// ClassSweepTable builds the per-class companion table of a class-aware
// sweep: one row per studied class of every cell, so the per-class energy
// split the policy mix produces is inspectable next to the aggregate rows.
func ClassSweepTable(g Grid, tech core.Tech) *report.Table {
	g = g.withDefaults(tech)
	return report.NewTable(
		fmt.Sprintf("Per-class energy split [alpha=%.2f, %d benchmarks, %d-cycle L2]",
			g.Alpha, len(g.Benchmarks), g.L2Latency),
		"p", "FUs", "class", "units", "policy", "E/E_base", "leakage/total")
}

// AddClassRows appends one completed cell's per-class breakdown to a
// per-class sweep table.
func AddClassRows(t *report.Table, res CellResult) {
	c := res.Cell
	for _, ce := range res.PerClass {
		units := "paper"
		if ce.Units > 0 {
			units = fmt.Sprintf("%d", ce.Units)
		}
		t.AddRow(report.F(c.TechFor(ce.Class).P, 4), fuLabel(c),
			ce.Class.String(), units, ce.Policy.String(),
			fmt.Sprintf("%.4f", ce.RelEnergy), fmt.Sprintf("%.4f", ce.LeakageFraction))
	}
}

// RunSweep evaluates the grid: one suite simulation per functional-unit mix
// (cached, parallel, cancelable), then the closed-form energy model at
// every technology × policy point over the measured per-class profiles. It
// returns a table artifact with one row per grid point, averaged across
// benchmarks — plus, for class-aware grids, a per-class companion table
// with one row per studied class of every cell. It is the batch form of
// RunSweepStream: same cells, same order, collected into artifacts.
func RunSweep(ctx context.Context, r *Runner, g Grid, tech core.Tech) ([]report.Artifact, error) {
	g = g.withDefaults(tech)
	t := SweepTable(g, tech)
	classAware := g.ClassAware()
	var ct *report.Table
	if classAware {
		ct = ClassSweepTable(g, tech)
	}
	err := RunSweepStream(ctx, r, g, tech, func(res CellResult) error {
		AddSweepRow(t, res)
		if classAware {
			AddClassRows(ct, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddNote("E/E_base averaged over %d benchmarks at window %d", len(g.Benchmarks), r.windowOr(g.Window))
	arts := []report.Artifact{report.TableArtifact("sweep", t)}
	if classAware {
		arts = append(arts, report.TableArtifact("sweep-classes", ct))
	}
	return arts, nil
}

// windowOr resolves a per-call window against the runner's default.
func (r *Runner) windowOr(window uint64) uint64 {
	if window == 0 {
		return r.opt.Window
	}
	return window
}
