package experiments

import (
	"context"
	"fmt"

	"github.com/archsim/fusleep/internal/report"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the command-line identifier (e.g. "fig8a").
	ID string
	// Paper names the artifact in the paper ("Figure 8a"), or "extension"
	// for analyses beyond it.
	Paper string
	// Desc is a one-line description.
	Desc string
	// Simulated reports whether the experiment runs pipeline simulations.
	Simulated bool
	// Run executes the experiment.
	Run func(context.Context, *Runner) ([]report.Renderable, error)
}

// Artifacts runs the experiment and wraps its results as structured
// artifacts tagged with the experiment's identity.
func (e Experiment) Artifacts(ctx context.Context, r *Runner) ([]report.Artifact, error) {
	rs, err := e.Run(ctx, r)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	arts := make([]report.Artifact, 0, len(rs))
	for _, a := range rs {
		art, err := report.NewArtifact(e.ID, e.Paper, a)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		arts = append(arts, art)
	}
	return arts, nil
}

// All lists every experiment in presentation order.
var All = []Experiment{
	{ID: "table1", Paper: "Table 1", Desc: "OR8 gate characteristics and derived model parameters", Run: Table1},
	{ID: "table2", Paper: "Table 2", Desc: "architectural parameters of the simulated machine", Run: Table2},
	{ID: "table3", Paper: "Table 3", Desc: "benchmark IPCs and functional-unit selection", Simulated: true, Run: Table3},
	{ID: "table4", Paper: "Table 4", Desc: "energy-model parameter values", Run: Table4},
	{ID: "fig3", Paper: "Figure 3", Desc: "uncontrolled idle versus sleep mode on the 500-gate FU", Run: Fig3},
	{ID: "fig4a", Paper: "Figure 4a", Desc: "breakeven idle interval across the technology space", Run: Fig4a},
	{ID: "fig4b", Paper: "Figure 4b", Desc: "policy energies, 10-cycle idle intervals", Run: Fig4b},
	{ID: "fig4c", Paper: "Figure 4c", Desc: "policy energies, 100-cycle idle intervals", Run: Fig4c},
	{ID: "fig4d", Paper: "Figure 4d", Desc: "worst case: alternating active/idle cycles", Run: Fig4d},
	{ID: "fig5c", Paper: "Figure 5c", Desc: "per-interval transition energy of the three designs", Run: Fig5c},
	{ID: "fig7", Paper: "Figure 7", Desc: "idle-interval distribution at 12- and 32-cycle L2", Simulated: true, Run: Fig7},
	{ID: "fig8a", Paper: "Figure 8a", Desc: "per-benchmark policy energies at p=0.05", Simulated: true, Run: Fig8a},
	{ID: "fig8b", Paper: "Figure 8b", Desc: "per-benchmark policy energies at p=0.50", Simulated: true, Run: Fig8b},
	{ID: "fig9a", Paper: "Figure 9a", Desc: "average energy relative to NoOverhead across p", Simulated: true, Run: Fig9a},
	{ID: "fig9b", Paper: "Figure 9b", Desc: "leakage fraction of total energy across p", Simulated: true, Run: Fig9b},
	{ID: "mcf-fu", Paper: "Section 5", Desc: "mcf leakage fraction with 2 vs 4 functional units", Simulated: true, Run: McfFUStudy},
	{ID: "idle-by-bench", Paper: "extension", Desc: "per-benchmark idle structure backing Figure 7", Simulated: true, Run: IdleByBenchmark},
	{ID: "timeout", Paper: "extension", Desc: "breakeven-timeout controller vs the paper's policies", Simulated: true, Run: TimeoutStudy},
	{ID: "gradual-slices", Paper: "extension", Desc: "GradualSleep slice-count ablation", Run: GradualSlices},
	{ID: "breakeven-sens", Paper: "extension", Desc: "breakeven sensitivity to e_slp and c", Run: BreakevenSensitivity},
	{ID: "crosscheck", Paper: "extension", Desc: "circuit simulation vs analytic model", Run: CircuitModelCrossCheck},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// IDs returns all experiment identifiers in order.
func IDs() []string {
	out := make([]string, len(All))
	for i, e := range All {
		out[i] = e.ID
	}
	return out
}
