package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/stats"
	"github.com/archsim/fusleep/internal/workload"
)

// Table2 reproduces the architectural parameter table from the simulator's
// actual defaults.
func Table2(context.Context, *Runner) ([]report.Renderable, error) {
	cfg := pipeline.DefaultConfig()
	t := report.NewTable("Table 2: architectural parameters", "parameter", "value")
	t.AddRow("fetch queue", fmt.Sprintf("%d entries", cfg.FetchQueueSize))
	t.AddRow("branch predictor", fmt.Sprintf("bimodal %d + 2-level %d/%d (hist %d), chooser %d",
		cfg.Bpred.BimodalEntries, cfg.Bpred.HistTableEntries, cfg.Bpred.PatternEntries,
		cfg.Bpred.HistBits, cfg.Bpred.ChooserEntries))
	t.AddRow("RAS / BTB", fmt.Sprintf("%d entries / %d sets %d-way",
		cfg.Bpred.RASEntries, cfg.Bpred.BTBSets, cfg.Bpred.BTBAssoc))
	t.AddRow("branch mispredict latency", fmt.Sprintf("%d cycles", cfg.MispredictPenalty))
	t.AddRow("fetch/decode/issue width", fmt.Sprintf("%d instructions", cfg.FetchWidth))
	t.AddRow("reorder buffer", fmt.Sprintf("%d entries", cfg.ROBSize))
	t.AddRow("integer/FP issue queues", fmt.Sprintf("%d / %d entries", cfg.IntIQSize, cfg.FPIQSize))
	t.AddRow("physical int/FP registers", fmt.Sprintf("%d / %d", cfg.IntPhysRegs, cfg.FPPhysRegs))
	t.AddRow("load/store queues", fmt.Sprintf("%d / %d entries", cfg.LoadQSize, cfg.StoreQSize))
	t.AddRow("integer FUs", fmt.Sprintf("up to %d (per-benchmark Table 3 counts)", cfg.IntALUs))
	t.AddRow("ITLB", fmt.Sprintf("%d entry %d-way, 8K pages, %d cycle miss",
		cfg.ITLB.Entries, cfg.ITLB.Assoc, cfg.ITLB.MissPenalty))
	t.AddRow("DTLB", fmt.Sprintf("%d entry %d-way, 8K pages, %d cycle miss",
		cfg.DTLB.Entries, cfg.DTLB.Assoc, cfg.DTLB.MissPenalty))
	t.AddRow("L1 I-cache", fmt.Sprintf("%d KB %d-way, %dB line, %d cycle",
		cfg.Mem.L1I.SizeKB, cfg.Mem.L1I.Assoc, cfg.Mem.L1I.LineSize, cfg.Mem.L1I.Latency))
	t.AddRow("L1 D-cache", fmt.Sprintf("%d KB %d-way, %dB line, %d cycle",
		cfg.Mem.L1D.SizeKB, cfg.Mem.L1D.Assoc, cfg.Mem.L1D.LineSize, cfg.Mem.L1D.Latency))
	t.AddRow("L2 unified", fmt.Sprintf("%d MB %d-way, %dB line, %d cycle",
		cfg.Mem.L2.SizeKB/1024, cfg.Mem.L2.Assoc, cfg.Mem.L2.LineSize, cfg.Mem.L2.Latency))
	t.AddRow("memory latency", fmt.Sprintf("%d cycles", cfg.Mem.MemLatency))
	return []report.Renderable{t}, nil
}

// Table3 reproduces the benchmark table: per benchmark, the four-unit IPC,
// the IPC at the selected unit count, and the selection by the paper's
// >= 95%-of-peak rule, alongside the paper's own numbers.
func Table3(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	type row struct {
		name string
		ipc  [5]float64 // index 1..4
	}
	rows := make([]row, len(workload.Benchmarks))
	for fus := 1; fus <= 4; fus++ {
		suite, err := r.SimSuite(ctx, workload.Names(), fus, 12, r.opt.Sweep)
		if err != nil {
			return nil, err
		}
		for i, spec := range workload.Benchmarks {
			rows[i].name = spec.Name
			rows[i].ipc[fus] = suite[spec.Name].IPC()
		}
	}

	t := report.NewTable("Table 3: benchmarks (FU selection: min units with >= 95% of 4-unit IPC)",
		"app", "suite", "max IPC (4 FU)", "IPC @ selected", "FUs (ours)", "FUs (paper)", "paper max IPC", "paper IPC")
	matches := 0
	for i, spec := range workload.Benchmarks {
		ipc4 := rows[i].ipc[4]
		sel := 4
		for n := 1; n <= 4; n++ {
			if rows[i].ipc[n] >= 0.95*ipc4 {
				sel = n
				break
			}
		}
		if sel == spec.PaperFUs {
			matches++
		}
		t.AddRow(spec.Name, spec.Suite,
			report.F(ipc4, 3), report.F(rows[i].ipc[sel], 3),
			fmt.Sprintf("%d", sel), fmt.Sprintf("%d", spec.PaperFUs),
			report.F(spec.PaperMaxIPC, 3), report.F(spec.PaperIPC, 3))
	}
	t.AddNote("selection matches the paper on %d of %d benchmarks; energy figures use the paper's counts", matches, len(workload.Benchmarks))
	return []report.Renderable{t}, nil
}

// Fig7 reproduces Figure 7: the distribution of functional-unit idle
// intervals across the suite at 12- and 32-cycle L2 latencies, weighted so
// every unit contributes equally.
func Fig7(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	const cap = 8192
	s := report.NewSeries("Figure 7: distribution of idle intervals",
		"interval bucket low (cycles)", "fraction of total time ALUs are idle",
		"12-cycle L2", "32-cycle L2")

	fractions := func(l2 int) ([]float64, float64, float64, error) {
		suite, err := r.suite(ctx, l2)
		if err != nil {
			return nil, 0, 0, err
		}
		nBuckets := stats.MustNewLog2Histogram(cap)
		sums := make([]float64, len(nBuckets.Buckets()))
		var units int
		var idleFracSum, withinL2Sum float64
		for _, name := range workload.Names() {
			res := suite[name]
			for _, fu := range res.FUs {
				h := stats.MustNewLog2Histogram(cap)
				h.AddIntervals(fu.Intervals)
				total := float64(res.Cycles)
				for b, bucket := range h.Buckets() {
					sums[b] += float64(bucket.Weight) / total
				}
				idleFracSum += float64(fu.IdleCycles()) / total
				withinL2Sum += stats.CumulativeWeightFraction(fu.Intervals, l2)
				units++
			}
		}
		for b := range sums {
			sums[b] /= float64(units)
		}
		return sums, idleFracSum / float64(units), withinL2Sum / float64(units), nil
	}

	f12, idle12, within12, err := fractions(12)
	if err != nil {
		return nil, err
	}
	f32, idle32, _, err := fractions(32)
	if err != nil {
		return nil, err
	}
	for b := range f12 {
		s.AddPoint(float64(int(1)<<b), f12[b], f32[b])
	}
	s.AddNote("ALUs idle %.1f%% of time at 12-cycle L2 (paper: 46.8%%), %.1f%% at 32-cycle", idle12*100, idle32*100)
	s.AddNote("%.0f%% of idle time falls in intervals <= the 12-cycle L2 latency (paper: ~75%%)", within12*100)
	s.AddNote("intervals >= %d cycles accumulate in the final bucket, as in the paper", cap)
	return []report.Renderable{s}, nil
}

// fig8 builds one Figure 8 panel: per-benchmark policy energies normalized
// to 100%-computation energy, with the alpha=0.25/0.75 range.
func fig8(ctx context.Context, r *Runner, p float64) (*report.Table, error) {
	suite, err := r.suite(ctx, 12)
	if err != nil {
		return nil, err
	}
	tech := core.DefaultTech().WithP(p)
	t := report.NewTable(
		fmt.Sprintf("Figure 8 (p=%.2f): normalized energy by policy [alpha=0.50 (0.25 / 0.75)]", p),
		"app (FUs)", "MaxSleep", "GradualSleep", "AlwaysActive", "NoOverhead")
	avg := map[core.Policy]float64{}
	for _, spec := range workload.Benchmarks {
		res := suite[spec.Name]
		cells := []string{fmt.Sprintf("%s (%d)", spec.Name, spec.PaperFUs)}
		for _, pol := range core.Policies {
			pc := core.PolicyConfig{Policy: pol}
			mid := relativeEnergy(tech, pc, 0.50, res)
			lo := relativeEnergy(tech, pc, 0.25, res)
			hi := relativeEnergy(tech, pc, 0.75, res)
			avg[pol] += mid
			cells = append(cells, fmt.Sprintf("%.3f (%.3f / %.3f)", mid, lo, hi))
		}
		t.AddRow(cells...)
	}
	cells := []string{"average"}
	for _, pol := range core.Policies {
		cells = append(cells, fmt.Sprintf("%.3f", avg[pol]/float64(len(workload.Benchmarks))))
	}
	t.AddRow(cells...)
	ms := avg[core.MaxSleep] / float64(len(workload.Benchmarks))
	aa := avg[core.AlwaysActive] / float64(len(workload.Benchmarks))
	no := avg[core.NoOverhead] / float64(len(workload.Benchmarks))
	gs := avg[core.GradualSleep] / float64(len(workload.Benchmarks))
	t.AddNote("MaxSleep vs AlwaysActive: %+.1f%% (paper: %+.1f%% at p=%.2f)",
		(ms/aa-1)*100, map[float64]float64{0.05: +8.3, 0.50: -19.2}[p], p)
	t.AddNote("GradualSleep vs AlwaysActive: %+.1f%%; NoOverhead bound: %.3f", (gs/aa-1)*100, no)
	return t, nil
}

// Fig8a reproduces Figure 8a (p = 0.05).
func Fig8a(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	t, err := fig8(ctx, r, 0.05)
	if err != nil {
		return nil, err
	}
	return []report.Renderable{t}, nil
}

// Fig8b reproduces Figure 8b (p = 0.50).
func Fig8b(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	t, err := fig8(ctx, r, 0.50)
	if err != nil {
		return nil, err
	}
	return []report.Renderable{t}, nil
}

// Fig9a reproduces Figure 9a: suite-average energy of each policy relative
// to the NoOverhead bound across the technology space.
func Fig9a(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	suite, err := r.suite(ctx, 12)
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Figure 9a: average energy relative to NoOverhead",
		"p", "E / E_NoOverhead", "GradualSleep", "MaxSleep", "AlwaysActive")
	for i := 1; i <= 20; i++ {
		p := float64(i) * 0.05
		tech := core.DefaultTech().WithP(p)
		sums := map[core.Policy]float64{}
		for _, name := range workload.Names() {
			res := suite[name]
			no := unitEnergy(tech, core.PolicyConfig{Policy: core.NoOverhead}, 0.5, res).Total()
			for _, pol := range []core.Policy{core.GradualSleep, core.MaxSleep, core.AlwaysActive} {
				sums[pol] += unitEnergy(tech, core.PolicyConfig{Policy: pol}, 0.5, res).Total() / no
			}
		}
		n := float64(len(workload.Benchmarks))
		s.AddPoint(p, sums[core.GradualSleep]/n, sums[core.MaxSleep]/n, sums[core.AlwaysActive]/n)
	}
	s.AddNote("AlwaysActive wins at small p, MaxSleep at large p; GradualSleep avoids both extremes")
	return []report.Renderable{s}, nil
}

// Fig9b reproduces Figure 9b: the leakage fraction of total energy across
// the technology space for each policy.
func Fig9b(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	suite, err := r.suite(ctx, 12)
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Figure 9b: ratio of leakage to total energy",
		"p", "leakage / total", "GradualSleep", "MaxSleep", "AlwaysActive", "NoOverhead")
	pols := []core.Policy{core.GradualSleep, core.MaxSleep, core.AlwaysActive, core.NoOverhead}
	for i := 1; i <= 20; i++ {
		p := float64(i) * 0.05
		tech := core.DefaultTech().WithP(p)
		ys := make([]float64, len(pols))
		for i, pol := range pols {
			var sum float64
			for _, name := range workload.Names() {
				sum += unitEnergy(tech, core.PolicyConfig{Policy: pol}, 0.5, suite[name]).LeakageFraction()
			}
			ys[i] = sum / float64(len(workload.Benchmarks))
		}
		s.AddPoint(p, ys...)
	}
	tech05 := core.DefaultTech()
	tech50 := core.HighLeakTech()
	var aa05, aa50 float64
	for _, name := range workload.Names() {
		aa05 += unitEnergy(tech05, core.PolicyConfig{Policy: core.AlwaysActive}, 0.5, suite[name]).LeakageFraction()
		aa50 += unitEnergy(tech50, core.PolicyConfig{Policy: core.AlwaysActive}, 0.5, suite[name]).LeakageFraction()
	}
	n := float64(len(workload.Benchmarks))
	s.AddNote("AlwaysActive leakage fraction: %.0f%% at p=0.05 (paper: 13%%), %.0f%% at p=0.50 (paper: 60%%)",
		aa05/n*100, aa50/n*100)
	return []report.Renderable{s}, nil
}

// McfFUStudy reproduces the Section 5 side experiment: mcf's leakage
// fraction grows when idle functional units are added (2 -> 4 units).
func McfFUStudy(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	spec, err := workload.ByName("mcf")
	if err != nil {
		return nil, err
	}
	tech := core.DefaultTech() // p = 0.05
	t := report.NewTable("mcf leakage fraction vs functional-unit count (p=0.05, AlwaysActive)",
		"FUs", "IPC", "mean FU utilization", "leakage/total")
	for _, fus := range []int{2, 4} {
		res, err := r.Sim(ctx, spec.Name, fus, 12, r.opt.Window)
		if err != nil {
			return nil, err
		}
		frac := unitEnergy(tech, core.PolicyConfig{Policy: core.AlwaysActive}, 0.5, res).LeakageFraction()
		t.AddRow(fmt.Sprintf("%d", fus), report.F(res.IPC(), 3),
			fmt.Sprintf("%.1f%%", res.MeanFUUtilization()*100),
			fmt.Sprintf("%.1f%%", frac*100))
	}
	t.AddNote("paper: 31%% utilization and 15%% leakage fraction at 2 FUs, rising to 25%% at 4 FUs")
	return []report.Renderable{t}, nil
}

// IdleByBenchmark is a supplementary breakdown of Figure 7: per-benchmark
// idle fraction and mean idle interval at the selected FU counts.
func IdleByBenchmark(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	suite, err := r.suite(ctx, 12)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Idle structure by benchmark (12-cycle L2, Table 3 FU counts)",
		"app (FUs)", "IPC", "idle %", "mean interval", "intervals/1k cycles", "median-ish bucket")
	for _, spec := range workload.Benchmarks {
		res := suite[spec.Name]
		merged := core.NewIdleProfile()
		for _, p := range coreProfiles(res.FUs) {
			merged.Merge(p)
		}
		totalFUCycles := float64(res.Cycles) * float64(len(res.FUs))
		idleFrac := float64(merged.IdleCycles()) / totalFUCycles
		perK := float64(merged.IntervalCount()) / totalFUCycles * 1000
		// Bucket holding the median of idle time.
		h := stats.MustNewLog2Histogram(8192)
		h.AddIntervals(merged.Intervals)
		var acc uint64
		med := 0
		half := h.TotalWeight() / 2
		for _, b := range h.Buckets() {
			acc += b.Weight
			if acc >= half {
				med = b.Low
				break
			}
		}
		t.AddRow(fmt.Sprintf("%s (%d)", spec.Name, spec.PaperFUs),
			report.F(res.IPC(), 3),
			fmt.Sprintf("%.1f%%", idleFrac*100),
			report.F(merged.MeanIdle(), 1),
			report.F(perK, 1),
			fmt.Sprintf("[%d,..)", med))
	}
	return []report.Renderable{t}, nil
}

// TimeoutStudy evaluates the "more complex control strategy" the paper's
// conclusion speculates about: a breakeven-threshold timeout controller
// (2-competitive ski rental), compared with the paper's policies over the
// measured suite profiles. The paper conjectures it is not worth the
// machinery; this experiment quantifies exactly how little it buys over
// GradualSleep.
func TimeoutStudy(ctx context.Context, r *Runner) ([]report.Renderable, error) {
	suite, err := r.suite(ctx, 12)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Timeout (predictive) policy vs the paper's policies [suite-average E/E_base, alpha=0.5]",
		"p", "SleepTimeout", "GradualSleep", "MaxSleep", "AlwaysActive", "OracleMinimal", "NoOverhead", "timeout vs gradual")
	pols := []core.PolicyConfig{
		{Policy: core.SleepTimeout},
		{Policy: core.GradualSleep},
		{Policy: core.MaxSleep},
		{Policy: core.AlwaysActive},
		{Policy: core.OracleMinimal},
		{Policy: core.NoOverhead},
	}
	for _, p := range []float64{0.05, 0.10, 0.20, 0.50, 1.0} {
		tech := core.DefaultTech().WithP(p)
		avgs := make([]float64, len(pols))
		for _, name := range workload.Names() {
			res := suite[name]
			for i, pc := range pols {
				avgs[i] += relativeEnergy(tech, pc, 0.5, res)
			}
		}
		cells := []string{report.F(p, 2)}
		for i := range pols {
			avgs[i] /= float64(len(workload.Benchmarks))
			cells = append(cells, fmt.Sprintf("%.4f", avgs[i]))
		}
		cells = append(cells, fmt.Sprintf("%+.1f%%", (avgs[0]/avgs[1]-1)*100))
		t.AddRow(cells...)
	}
	t.AddNote("SleepTimeout needs an idle counter + threshold register per unit; GradualSleep is a shift register")
	t.AddNote("supports the paper's conclusion: the complex controller buys at most a few percent")
	return []report.Renderable{t}, nil
}

// sortedPolicies returns the Figure 8 policy order (stable helper for
// tests).
func sortedPolicies() []core.Policy {
	out := append([]core.Policy(nil), core.Policies...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
