package experiments

import (
	"context"
	"reflect"
	"testing"

	"github.com/archsim/fusleep/internal/core"
)

// batchVariants builds N policy variants of one machine: same workload,
// FU mix, L2 latency, and window — only the power-management policy (and
// its parameters) differ, so every cell shares one simulation identity.
func batchVariants(t *testing.T) []Cell {
	t.Helper()
	base := Grid{Benchmarks: []string{"gcc"}, FUCounts: []int{2}}.Cells(core.DefaultTech())[0]
	base.Window = 20_000
	policies := []core.PolicyConfig{
		{Policy: core.AlwaysActive},
		{Policy: core.MaxSleep},
		{Policy: core.SleepTimeout, Timeout: 4},
		{Policy: core.SleepTimeout, Timeout: 64},
		{Policy: core.GradualSleep, Slices: 2},
		{Policy: core.GradualSleep, Slices: 8},
	}
	cells := make([]Cell, len(policies))
	for i, pc := range policies {
		c := base
		c.Policy = pc
		if err := c.Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", i, err)
		}
		cells[i] = c
	}
	return cells
}

// TestEvalCellsSharedPass is the batching acceptance proof: N policy
// variants over one (workload, FU-mix) must run exactly one simulation —
// visible in the runner's stats — while producing per-cell results
// identical to the unbatched EvalCell path.
func TestEvalCellsSharedPass(t *testing.T) {
	cells := batchVariants(t)
	for i := 1; i < len(cells); i++ {
		if cells[i].SimKey() != cells[0].SimKey() {
			t.Fatalf("variant %d has sim key %s, want %s", i, cells[i].SimKey(), cells[0].SimKey())
		}
		if cells[i].Key() == cells[0].Key() {
			t.Fatalf("variant %d shares full cell key with variant 0", i)
		}
	}

	ctx := context.Background()
	batched := NewRunner(Options{Window: 20_000})
	got, err := EvalCells(ctx, batched, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("EvalCells returned %d results for %d cells", len(got), len(cells))
	}

	stats := batched.Stats()
	// One benchmark × one FU mix: exactly one pipeline simulation for all
	// six variants, no cache traffic.
	if stats.Simulations != 1 {
		t.Errorf("batched run simulated %d times for %d variants, want exactly 1", stats.Simulations, len(cells))
	}
	if stats.CacheHits != 0 || stats.InflightJoins != 0 {
		t.Errorf("batched run should not touch the result cache: %+v", stats)
	}
	// One profile conversion (one studied class), shared by the other five.
	if stats.ProfileBuilds != 1 {
		t.Errorf("profile builds = %d, want 1", stats.ProfileBuilds)
	}
	if want := uint64(len(cells) - 1); stats.ProfileReuses != want {
		t.Errorf("profile reuses = %d, want %d", stats.ProfileReuses, want)
	}

	// Ground truth: each variant evaluated unbatched on a fresh runner.
	for i, c := range cells {
		ref := NewRunner(Options{Window: 20_000})
		want, err := EvalCell(ctx, ref, c)
		if err != nil {
			t.Fatalf("unbatched variant %d: %v", i, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("variant %d (%v): batched result diverges from unbatched\n got %+v\nwant %+v",
				i, c.Policy, got[i], want)
		}
	}
}

// TestEvalCellsGroupsByMix drives two FU mixes through one EvalCells call:
// the runner must simulate once per mix, not once per cell, and keep
// results in input order.
func TestEvalCellsGroupsByMix(t *testing.T) {
	narrow := batchVariants(t)
	wide := batchVariants(t)
	for i := range wide {
		wide[i].FUs = 4
	}
	// Interleave the two mixes so grouping can't rely on input adjacency.
	var cells []Cell
	for i := range narrow {
		cells = append(cells, narrow[i], wide[i])
	}

	r := NewRunner(Options{Window: 20_000})
	got, err := EvalCells(context.Background(), r, cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats := r.Stats(); stats.Simulations != 2 {
		t.Errorf("simulated %d times for 2 distinct FU mixes, want 2", stats.Simulations)
	}
	for i, res := range got {
		if res.Cell.Key() != cells[i].Key() {
			t.Errorf("result %d is for cell %s, want %s (input order lost)", i, res.Cell.Key(), cells[i].Key())
		}
	}
}

// TestEvalCellsServesFromStore seeds the durable store with one variant's
// result and checks EvalCells serves it without re-simulating it, while
// still batching the remaining variants into one pass.
func TestEvalCellsServesFromStore(t *testing.T) {
	cells := batchVariants(t)
	ctx := context.Background()

	seedRunner := NewRunner(Options{Window: 20_000})
	seeded, err := EvalCell(ctx, seedRunner, cells[2])
	if err != nil {
		t.Fatal(err)
	}

	store := memCellStore{cells[2].Key(): seeded}
	r := NewRunner(Options{Window: 20_000})
	r.SetCellStore(store)
	got, err := EvalCells(ctx, r, cells)
	if err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if stats.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", stats.StoreHits)
	}
	if stats.Simulations != 1 {
		t.Errorf("simulations = %d, want 1 shared pass for the unseeded variants", stats.Simulations)
	}
	if !reflect.DeepEqual(got[2], seeded) {
		t.Errorf("stored variant not served verbatim:\n got %+v\nwant %+v", got[2], seeded)
	}
	// Freshly journaled results cover the remaining variants.
	if want := uint64(len(cells) - 1); stats.StorePuts != want {
		t.Errorf("store puts = %d, want %d", stats.StorePuts, want)
	}
}

// memCellStore is a trivial in-memory CellStore for tests.
type memCellStore map[string]CellResult

func (m memCellStore) GetCell(key string) (CellResult, bool, error) {
	res, ok := m[key]
	return res, ok, nil
}

func (m memCellStore) PutCell(key string, res CellResult) error {
	m[key] = res
	return nil
}
