package experiments

import (
	"context"
	"testing"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/fu"
)

// classCell builds a small one-benchmark cell for class tests.
func classCell() Cell {
	return Cell{
		Policy:     core.PolicyConfig{Policy: core.GradualSleep, Slices: 4},
		Tech:       core.DefaultTech(),
		Benchmarks: []string{"gcc"},
		Alpha:      0.5,
		L2Latency:  12,
		Window:     20_000,
	}
}

// TestUniformAssignmentReproducesSinglePool is the energy-level parity
// check of the refactor: a cell that spells its policy as an explicit
// uniform per-class assignment must reproduce the legacy single-pool cell's
// numbers exactly, and in a multi-class cell the IntALU share must equal
// the legacy result bit for bit.
func TestUniformAssignmentReproducesSinglePool(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 20_000})
	ctx := context.Background()

	legacy, err := EvalCell(ctx, r, classCell())
	if err != nil {
		t.Fatal(err)
	}

	uniform := classCell()
	uniform.Assignment = core.UniformAssignment(uniform.Policy)
	got, err := EvalCell(ctx, r, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if got.RelEnergy != legacy.RelEnergy || got.LeakageFraction != legacy.LeakageFraction || got.MeanCycles != legacy.MeanCycles {
		t.Errorf("uniform assignment diverged from single pool:\nuniform: %+v\n legacy: %+v", got, legacy)
	}

	multi := uniform
	multi.Classes = []fu.Class{fu.IntALU, fu.Mult, fu.FPALU, fu.FPMult}
	mres, err := EvalCell(ctx, r, multi)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.PerClass) != 4 {
		t.Fatalf("multi-class cell has %d class rows, want 4", len(mres.PerClass))
	}
	if mres.PerClass[0].Class != fu.IntALU {
		t.Fatalf("first class row is %s, want intalu", mres.PerClass[0].Class)
	}
	if mres.PerClass[0].RelEnergy != legacy.RelEnergy {
		t.Errorf("IntALU share %.17g != legacy single-pool energy %.17g",
			mres.PerClass[0].RelEnergy, legacy.RelEnergy)
	}
	if mres.MeanCycles != legacy.MeanCycles {
		t.Errorf("studying more classes changed the timing: %g vs %g", mres.MeanCycles, legacy.MeanCycles)
	}
	// Aggregate = energy-weighted combination over all studied classes; it
	// must differ from the IntALU-only number (the other classes idle more)
	// and every class row must carry the uniform policy.
	for _, ce := range mres.PerClass {
		if ce.Policy != multi.Policy {
			t.Errorf("class %s ran %+v, want the uniform %+v", ce.Class, ce.Policy, multi.Policy)
		}
		if ce.Units < 1 {
			t.Errorf("class %s reports %d units", ce.Class, ce.Units)
		}
	}
}

// TestPerClassAssignmentDiffers pins that a heterogeneous assignment
// actually changes the accounted energy: sleeping the mostly-idle FP units
// while keeping the busy IntALUs awake beats the all-AlwaysActive uniform
// on total energy at a leaky technology point.
func TestPerClassAssignmentDiffers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 20_000})
	ctx := context.Background()
	tech := core.HighLeakTech()

	base := classCell()
	base.Tech = tech
	base.Classes = []fu.Class{fu.IntALU, fu.FPALU, fu.FPMult}
	base.Policy = core.PolicyConfig{Policy: core.AlwaysActive}

	uni, err := EvalCell(ctx, r, base)
	if err != nil {
		t.Fatal(err)
	}

	het := base
	het.Assignment = core.Assignment{
		fu.FPALU:  {Policy: core.MaxSleep},
		fu.FPMult: {Policy: core.MaxSleep},
	}
	hres, err := EvalCell(ctx, r, het)
	if err != nil {
		t.Fatal(err)
	}
	if !(hres.RelEnergy < uni.RelEnergy) {
		t.Errorf("sleeping idle FP units did not save energy: het %.6f vs uniform %.6f",
			hres.RelEnergy, uni.RelEnergy)
	}
	// The IntALU class share is identical — only the FP classes changed.
	if hres.PerClass[0].RelEnergy != uni.PerClass[0].RelEnergy {
		t.Errorf("IntALU share moved under an FP-only assignment: %.17g vs %.17g",
			hres.PerClass[0].RelEnergy, uni.PerClass[0].RelEnergy)
	}
	if hres.MeanCycles != uni.MeanCycles {
		t.Errorf("policy assignment changed the timing: %g vs %g", hres.MeanCycles, uni.MeanCycles)
	}
}

// TestClassAwareGridExpansion covers the widened grid: assignment rows
// expand after the uniform policy rows, per-class count axes multiply the
// cardinality, and every cell key stays unique.
func TestClassAwareGridExpansion(t *testing.T) {
	g := Grid{
		Policies:    []core.PolicyConfig{{Policy: core.AlwaysActive}},
		Assignments: []core.Assignment{{fu.FPALU: {Policy: core.MaxSleep}}},
		FUCounts:    []int{2, 4},
		MultCounts:  []int{0, 2},
		Classes:     []fu.Class{fu.IntALU, fu.Mult},
	}
	tech := core.DefaultTech()
	cells := g.Cells(tech)
	if len(cells) != g.Cardinality(tech) {
		t.Fatalf("cells = %d, Cardinality = %d", len(cells), g.Cardinality(tech))
	}
	if want := 2 * 2 * 2; len(cells) != want {
		t.Fatalf("cardinality = %d, want %d", len(cells), want)
	}
	if !g.ClassAware() {
		t.Error("grid with classes and assignments not class-aware")
	}
	if (Grid{}).ClassAware() {
		t.Error("default grid claims to be class-aware")
	}
	seen := map[string]int{}
	for i, c := range cells {
		if prev, dup := seen[c.Key()]; dup {
			t.Errorf("cells %d and %d share key %s", prev, i, c.Key())
		}
		seen[c.Key()] = i
		if len(c.Classes) != 2 {
			t.Errorf("cell %d lost the class list: %+v", i, c.Classes)
		}
	}
	// Uniform policy row precedes the assignment row at each coordinate.
	if len(cells[0].Assignment) != 0 || len(cells[1].Assignment) == 0 {
		t.Errorf("policy/assignment order wrong: %+v then %+v", cells[0], cells[1])
	}
}

// TestAssignmentGridWidensStudiedClasses pins the no-silent-drop rule: an
// assignment-bearing grid with no explicit class list studies the union of
// the assigned classes, so a policy the user assigned is always accounted.
func TestAssignmentGridWidensStudiedClasses(t *testing.T) {
	g := Grid{
		Assignments: []core.Assignment{
			{fu.FPALU: {Policy: core.MaxSleep}},
			{fu.Mult: {Policy: core.MaxSleep}, fu.FPMult: {Policy: core.MaxSleep}},
		},
	}
	cells := g.Cells(core.DefaultTech())
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	want := []fu.Class{fu.Mult, fu.FPALU, fu.FPMult}
	for i, c := range cells {
		if len(c.Classes) != len(want) {
			t.Fatalf("cell %d studies %v, want %v", i, c.Classes, want)
		}
		for j, cl := range want {
			if c.Classes[j] != cl {
				t.Errorf("cell %d class %d = %s, want %s", i, j, c.Classes[j], cl)
			}
		}
	}
	// An explicit class list is never overridden.
	g.Classes = []fu.Class{fu.IntALU}
	if cells := g.Cells(core.DefaultTech()); len(cells[0].Classes) != 1 || cells[0].Classes[0] != fu.IntALU {
		t.Errorf("explicit class list overridden: %v", cells[0].Classes)
	}

	// A uniform assignment covers every class including AGU; on the
	// default shared-port machine the widening must leave AGU out so the
	// cells stay valid, and must include it once a dedicated pool exists.
	uni := Grid{Assignments: []core.Assignment{core.UniformAssignment(core.PolicyConfig{Policy: core.MaxSleep})}}
	cells = uni.Cells(core.DefaultTech())
	if len(cells) != 1 {
		t.Fatalf("uniform-assignment grid expands to %d cells", len(cells))
	}
	for _, cl := range cells[0].Classes {
		if cl == fu.AGU {
			t.Fatalf("shared-port machine studies agu: %v", cells[0].Classes)
		}
	}
	if err := cells[0].Validate(); err != nil {
		t.Errorf("uniform-assignment cell invalid on the default machine: %v", err)
	}
	uni.AGUCounts = []int{2}
	cells = uni.Cells(core.DefaultTech())
	found := false
	for _, cl := range cells[0].Classes {
		found = found || cl == fu.AGU
	}
	if !found {
		t.Errorf("dedicated-AGU machine does not study agu: %v", cells[0].Classes)
	}
	if err := cells[0].Validate(); err != nil {
		t.Errorf("uniform-assignment cell invalid with dedicated AGUs: %v", err)
	}
}

// TestCellKeyCanonicalizesClassOrder pins that two spellings of the same
// studied set are one identity for the queue shards and caches.
func TestCellKeyCanonicalizesClassOrder(t *testing.T) {
	a := classCell()
	a.Classes = []fu.Class{fu.IntALU, fu.FPALU}
	b := classCell()
	b.Classes = []fu.Class{fu.FPALU, fu.IntALU}
	if a.Key() != b.Key() {
		t.Errorf("permuted class lists hash differently: %s vs %s", a.Key(), b.Key())
	}
	sc := b.StudiedClasses()
	if len(sc) != 2 || sc[0] != fu.IntALU || sc[1] != fu.FPALU {
		t.Errorf("StudiedClasses not canonical: %v", sc)
	}
}

// TestSimMixDefaultCountsShareCache pins the runner-level normalization:
// counts spelled as the Table 2 defaults collapse to the same cache entry
// as counts left at zero.
func TestSimMixDefaultCountsShareCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 10_000})
	ctx := context.Background()
	if _, err := r.SimMix(ctx, "gcc", FUMix{IntALUs: 2}, 12, 10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SimMix(ctx, "gcc", FUMix{IntALUs: 2, Mults: 1, FPALUs: 1, FPMults: 1}, 12, 10_000); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Simulations != 1 || st.CacheHits != 1 {
		t.Errorf("default-count mix re-simulated: %+v", st)
	}
}

// TestCellValidateNegativeCounts asserts the sweep path rejects negative
// per-class unit counts like the tune path does, instead of silently
// clamping them into a default machine with a distinct cache key.
func TestCellValidateNegativeCounts(t *testing.T) {
	for _, mutate := range []func(*Cell){
		func(c *Cell) { c.AGUs = -1 },
		func(c *Cell) { c.Mults = -2 },
		func(c *Cell) { c.FPALUs = -1 },
		func(c *Cell) { c.FPMults = -3 },
	} {
		c := classCell()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("negative count accepted: %+v", c)
		}
	}
}

// TestCellKeyCoversClassFields asserts the identity hash distinguishes the
// new per-class dimensions.
func TestCellKeyCoversClassFields(t *testing.T) {
	base := classCell()
	variants := []func(*Cell){
		func(c *Cell) { c.Mults = 2 },
		func(c *Cell) { c.FPALUs = 2 },
		func(c *Cell) { c.FPMults = 3 },
		func(c *Cell) { c.AGUs = 1 },
		func(c *Cell) { c.Classes = []fu.Class{fu.IntALU, fu.Mult} },
		func(c *Cell) { c.Assignment = core.Assignment{fu.Mult: {Policy: core.MaxSleep}} },
		func(c *Cell) { c.ClassTechs = map[fu.Class]core.Tech{fu.Mult: core.HighLeakTech()} },
	}
	keys := map[string]int{base.Key(): -1}
	for i, mutate := range variants {
		c := base
		mutate(&c)
		if prev, dup := keys[c.Key()]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		keys[c.Key()] = i
	}
}

// TestCellValidateClassDomain covers the new validation surface.
func TestCellValidateClassDomain(t *testing.T) {
	c := classCell()
	c.Classes = []fu.Class{fu.AGU}
	if err := c.Validate(); err == nil {
		t.Error("AGU class without a dedicated pool accepted")
	}
	c.AGUs = 1
	if err := c.Validate(); err != nil {
		t.Errorf("AGU class with a dedicated pool rejected: %v", err)
	}
	c = classCell()
	c.Classes = []fu.Class{fu.Mult, fu.Mult}
	if err := c.Validate(); err == nil {
		t.Error("duplicate class accepted")
	}
	c = classCell()
	c.Assignment = core.Assignment{fu.IntALU: {Policy: core.Policy(99)}}
	if err := c.Validate(); err == nil {
		t.Error("unknown assigned policy accepted")
	}
	c = classCell()
	c.ClassTechs = map[fu.Class]core.Tech{fu.FPALU: {P: 7}}
	if err := c.Validate(); err == nil {
		t.Error("out-of-range class tech accepted")
	}
}

// TestEvalCellDedicatedAGU runs the split machine end to end: the AGU class
// becomes studyable and carries its own units.
func TestEvalCellDedicatedAGU(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 20_000})
	c := classCell()
	c.AGUs = 2
	c.Classes = []fu.Class{fu.IntALU, fu.AGU}
	res, err := EvalCell(context.Background(), r, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 || res.PerClass[1].Class != fu.AGU || res.PerClass[1].Units != 2 {
		t.Errorf("per-class rows = %+v", res.PerClass)
	}
	if res.PerClass[1].RelEnergy <= 0 {
		t.Errorf("AGU class energy = %g", res.PerClass[1].RelEnergy)
	}
}
