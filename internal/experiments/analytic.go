package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/archsim/fusleep/internal/circuit"
	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/report"
)

// Table1 reproduces the OR8 gate characterization and the model parameters
// Section 3 derives from it.
func Table1(context.Context, *Runner) ([]report.Renderable, error) {
	t := report.NewTable("Table 1: OR8 gate characteristics (70 nm, 4 GHz)",
		"circuit", "eval (ps)", "sleep (ps)", "dynamic (fJ)", "LO lkg (fJ)", "HI lkg (fJ)", "sleep (fJ)")
	for _, g := range circuit.Table1 {
		sleepDelay, sleepE := "n/a", "n/a"
		if g.HasSleep {
			sleepDelay = report.F(g.SleepDelayPS, 1)
			sleepE = report.F(g.SleepFJ, 2)
		}
		t.AddRow(g.Name, report.F(g.EvalDelayPS, 1), sleepDelay,
			report.F(g.DynamicFJ, 1), fmt.Sprintf("%.1e", g.LeakLoFJ),
			report.F(g.LeakHiFJ, 1), sleepE)
	}
	d := circuit.DualVtSleep
	t.AddNote("derived model parameters: p = %.4f, c = %.2e, e_slp = %.4f",
		d.LeakageFactor(), d.LeakageRatio(), d.SleepFJ/d.DynamicFJ)
	t.AddNote("dual-Vt LO/HI leakage asymmetry: %.0fx", d.LeakHiFJ/d.LeakLoFJ)
	return []report.Renderable{t}, nil
}

// Table4 reproduces the energy-model parameter values used in Section 5.
func Table4(context.Context, *Runner) ([]report.Renderable, error) {
	tech := core.DefaultTech()
	t := report.NewTable("Table 4: parameter values for energy calculations",
		"parameter", "value")
	t.AddRow("N_A, N_UI, N_S, n_tr", "distributions from simulation data")
	t.AddRow("alpha", "0.25 / 0.50 / 0.75")
	t.AddRow("d (duty cycle)", report.F(tech.Duty, 2))
	t.AddRow("c = E_LO/E_HI", report.F(tech.C, 4))
	t.AddRow("E_sleep/E_A", report.F(tech.SleepOverhead, 4))
	t.AddRow("p (leakage factor)", "0.05 and 0.50 study points; swept (0,1]")
	return []report.Renderable{t}, nil
}

// Fig3 reproduces Figure 3: energy of handling an idle interval on the
// 500-gate functional unit, uncontrolled idle versus sleep mode, for three
// activity factors.
func Fig3(context.Context, *Runner) ([]report.Renderable, error) {
	fu := circuit.MustNewFU(circuit.DefaultFU())
	alphas := []float64{0.1, 0.5, 0.9}
	s := report.NewSeries("Figure 3: uncontrolled idle versus sleep mode (500-gate FU)",
		"idle (cycles)", "energy (pJ)",
		"idle a=0.1", "sleep a=0.1", "idle a=0.5", "sleep a=0.5", "idle a=0.9", "sleep a=0.9")
	const maxIdle = 25
	un := make([][]float64, len(alphas))
	sl := make([][]float64, len(alphas))
	for i, a := range alphas {
		var err error
		un[i], sl[i], err = fu.IdleEnergyCurve(a, maxIdle)
		if err != nil {
			return nil, err
		}
	}
	for n := 0; n <= maxIdle; n++ {
		s.AddPoint(float64(n), un[0][n], sl[0][n], un[1][n], sl[1][n], un[2][n], sl[2][n])
	}
	for i, a := range alphas {
		be, err := fu.BreakevenIdle(a, 100)
		if err != nil {
			return nil, err
		}
		_ = sl[i]
		s.AddNote("breakeven at alpha=%.1f: %d cycles (paper: ~17, insensitive to alpha)", a, be)
	}
	return []report.Renderable{s}, nil
}

// Fig4a reproduces Figure 4a: breakeven idle interval versus leakage
// factor for three activity levels.
func Fig4a(context.Context, *Runner) ([]report.Renderable, error) {
	tech := core.DefaultTech()
	s := report.NewSeries("Figure 4a: breakeven idle interval vs leakage factor",
		"p", "breakeven (cycles)", "alpha=0.1", "alpha=0.5", "alpha=0.9")
	for i := 1; i <= 50; i++ {
		p := float64(i) * 0.02
		tc := tech.WithP(p)
		s.AddPoint(p, tc.Breakeven(0.1), tc.Breakeven(0.5), tc.Breakeven(0.9))
	}
	s.AddNote("falls ~1/p; near-term point p=0.05 -> %.1f cycles at alpha=0.5",
		tech.WithP(0.05).Breakeven(0.5))
	return []report.Renderable{s}, nil
}

func fig4Panel(title string, usageLevels []float64, meanIdle float64) *report.Series {
	tech := core.DefaultTech()
	names := []string{}
	for _, u := range usageLevels {
		for _, pol := range []string{"AlwaysActive", "MaxSleep", "NoOverhead"} {
			names = append(names, fmt.Sprintf("f_A=%.2f %s", u, pol))
		}
	}
	s := report.NewSeries(title, "p", "energy relative to 100% computation", names...)
	for i := 1; i <= 50; i++ {
		p := float64(i) * 0.02
		tc := tech.WithP(p)
		ys := make([]float64, 0, len(names))
		for _, u := range usageLevels {
			sc := core.Scenario{TotalCycles: 1e6, Usage: u, MeanIdle: meanIdle, Alpha: 0.5}
			for _, pol := range []core.Policy{core.AlwaysActive, core.MaxSleep, core.NoOverhead} {
				ys = append(ys, tc.RelativeToBase(core.PolicyConfig{Policy: pol}, sc))
			}
		}
		s.AddPoint(p, ys...)
	}
	return s
}

// Fig4b reproduces Figure 4b: policy energies across p with 10-cycle idle
// intervals at 10% and 90% usage.
func Fig4b(context.Context, *Runner) ([]report.Renderable, error) {
	s := fig4Panel("Figure 4b: relative energy vs p (idle interval = 10 cycles)",
		[]float64{0.10, 0.90}, 10)
	s.AddNote("at low p MaxSleep exceeds AlwaysActive (breakeven > 10); ordering flips as p grows")
	return []report.Renderable{s}, nil
}

// Fig4c reproduces Figure 4c: the same panel with 100-cycle intervals.
func Fig4c(context.Context, *Runner) ([]report.Renderable, error) {
	s := fig4Panel("Figure 4c: relative energy vs p (idle interval = 100 cycles)",
		[]float64{0.10, 0.90}, 100)
	s.AddNote("long intervals amortize the transition: MaxSleep hugs NoOverhead")
	return []report.Renderable{s}, nil
}

// Fig4d reproduces Figure 4d: the worst case of one-cycle idle intervals at
// 50% usage.
func Fig4d(context.Context, *Runner) ([]report.Renderable, error) {
	s := fig4Panel("Figure 4d: worst case, idle interval = 1 cycle, f_A = 0.5",
		[]float64{0.50}, 1)
	s.AddNote("alternating active/idle maximizes transition overhead for MaxSleep")
	return []report.Renderable{s}, nil
}

// Fig5c reproduces Figure 5c: the energy of handling one idle interval
// under MaxSleep, GradualSleep, and AlwaysActive at the near-term
// technology point.
func Fig5c(context.Context, *Runner) ([]report.Renderable, error) {
	tech := core.DefaultTech() // p = 0.05
	alpha := 0.5
	k := tech.BreakevenSlices(alpha)
	s := report.NewSeries(
		fmt.Sprintf("Figure 5c: energy to transition to sleep mode (p=%.2f, alpha=%.1f, K=%d slices)", tech.P, alpha, k),
		"idle (cycles)", "energy relative to E_A",
		"MaxSleep", "GradualSleep", "AlwaysActive")
	for l := 0; l <= 100; l += 2 {
		ms := tech.IntervalEnergy(core.PolicyConfig{Policy: core.MaxSleep}, alpha, l)
		gs := tech.IntervalEnergy(core.PolicyConfig{Policy: core.GradualSleep, Slices: k}, alpha, l)
		aa := tech.IntervalEnergy(core.PolicyConfig{Policy: core.AlwaysActive}, alpha, l)
		s.AddPoint(float64(l), ms, gs, aa)
	}
	s.AddNote("GradualSleep tracks AlwaysActive for short idles and MaxSleep for long ones")
	return []report.Renderable{s}, nil
}

// GradualSlices is the slice-count ablation the GradualSleep design section
// calls out: K=1 is MaxSleep, large K approaches AlwaysActive.
func GradualSlices(context.Context, *Runner) ([]report.Renderable, error) {
	alpha := 0.5
	slices := []int{1, 2, 5, 10, 20, 50, 100, 1 << 16}
	out := make([]report.Renderable, 0, 2)
	for _, p := range []float64{0.05, 0.50} {
		tech := core.DefaultTech().WithP(p)
		names := make([]string, len(slices))
		for i, k := range slices {
			if k >= 1<<16 {
				names[i] = "K=inf"
			} else {
				names[i] = fmt.Sprintf("K=%d", k)
			}
		}
		s := report.NewSeries(
			fmt.Sprintf("GradualSleep slice-count ablation (p=%.2f)", p),
			"mean idle (cycles)", "energy relative to 100% computation", names...)
		for _, l := range []float64{1, 2, 5, 10, 20, 50, 100, 200} {
			sc := core.Scenario{TotalCycles: 1e6, Usage: 0.5, MeanIdle: l, Alpha: alpha}
			ys := make([]float64, len(slices))
			for i, k := range slices {
				ys[i] = tech.RelativeToBase(core.PolicyConfig{Policy: core.GradualSleep, Slices: k}, sc)
			}
			s.AddPoint(l, ys...)
		}
		s.AddNote("breakeven interval at this p: %.1f cycles; paper recommends K = breakeven",
			tech.Breakeven(alpha))
		out = append(out, s)
	}
	return out, nil
}

// BreakevenSensitivity sweeps the sleep-overhead and leakage-ratio
// parameters around the Table 4 values, showing the breakeven interval's
// robustness (the basis for the paper's claim that a complex controller is
// unwarranted).
func BreakevenSensitivity(context.Context, *Runner) ([]report.Renderable, error) {
	s := report.NewSeries("Breakeven sensitivity to e_slp and c (alpha=0.5, p=0.05)",
		"e_slp", "breakeven (cycles)", "c=0.0001", "c=0.001", "c=0.01", "c=0.1")
	for e := 0.0; e <= 0.1001; e += 0.01 {
		ys := make([]float64, 0, 4)
		for _, c := range []float64{0.0001, 0.001, 0.01, 0.1} {
			tech := core.Tech{P: 0.05, C: c, SleepOverhead: e, Duty: 0.5}
			ys = append(ys, tech.Breakeven(0.5))
		}
		s.AddPoint(e, ys...)
	}
	s.AddNote("breakeven moves by < %.0f%% across two decades of c", 15.0)
	return []report.Renderable{s}, nil
}

// CircuitModelCrossCheck compares the circuit-level simulation against the
// analytic model on a random activity pattern — the validation experiment
// tying Sections 2 and 3 together.
func CircuitModelCrossCheck(context.Context, *Runner) ([]report.Renderable, error) {
	cfg := circuit.DefaultFU()
	tech := cfg.ToTech()
	t := report.NewTable("Circuit simulation vs analytic model (MaxSleep, random 40% duty activity)",
		"alpha", "circuit (E/E_A)", "analytic (E/E_A)", "diff")
	for _, alpha := range []float64{0.25, 0.5, 0.75} {
		fu := circuit.MustNewFU(cfg)
		stream := make([]bool, 4000)
		// Deterministic pseudo-random pattern (LCG), 40% active.
		x := uint64(12345)
		for i := range stream {
			x = x*6364136223846793005 + 1442695040888963407
			stream[i] = x>>33%10 < 4
		}
		stream[0] = true
		for _, active := range stream {
			if active {
				if err := fu.Evaluate(alpha); err != nil {
					return nil, err
				}
			} else if err := fu.Sleep(); err != nil {
				return nil, err
			}
		}
		sim := fu.Energy().Total() / cfg.MaxDynamicFJ()
		ctrl, err := core.NewController(core.PolicyConfig{Policy: core.MaxSleep}, tech, alpha)
		if err != nil {
			return nil, err
		}
		ana := tech.RunStream(alpha, ctrl, stream).Total()
		t.AddRow(report.F(alpha, 2), report.F(sim, 3), report.F(ana, 3),
			fmt.Sprintf("%.2e", math.Abs(sim-ana)))
	}
	return []report.Renderable{t}, nil
}
