package experiments

import (
	"context"
	"reflect"
	"testing"

	"github.com/archsim/fusleep/internal/core"
)

func TestGridCellsMatchCardinalityAndOrder(t *testing.T) {
	g := Grid{
		Techs:    []core.Tech{core.DefaultTech(), core.HighLeakTech()},
		FUCounts: []int{2, 4},
	}
	tech := core.DefaultTech()
	cells := g.Cells(tech)
	if len(cells) != g.Cardinality(tech) {
		t.Fatalf("cells = %d, Cardinality = %d", len(cells), g.Cardinality(tech))
	}
	// Technology-major, then FU count, then policy — RunSweep's row order.
	if cells[0].Tech != core.DefaultTech() || cells[len(cells)-1].Tech != core.HighLeakTech() {
		t.Error("cells not technology-major")
	}
	if cells[0].FUs != 2 || cells[len(core.Policies)].FUs != 4 {
		t.Error("FU counts not second-order")
	}
	for i, c := range cells {
		if c.Policy.Policy != core.Policies[i%len(core.Policies)] {
			t.Errorf("cell %d policy = %v", i, c.Policy.Policy)
		}
	}
	// Defaults resolved: full suite, alpha, L2.
	if len(cells[0].Benchmarks) != 9 || cells[0].Alpha != 0.5 || cells[0].L2Latency != 12 {
		t.Errorf("cell defaults not resolved: %+v", cells[0])
	}
}

func TestCellKeyIdentity(t *testing.T) {
	g := Grid{Techs: []core.Tech{core.DefaultTech(), core.HighLeakTech()}, FUCounts: []int{2, 4}}
	cells := g.Cells(core.DefaultTech())
	seen := map[string]int{}
	for i, c := range cells {
		if prev, dup := seen[c.Key()]; dup {
			t.Errorf("cells %d and %d share key %s", prev, i, c.Key())
		}
		seen[c.Key()] = i
	}
	// Same configuration hashes identically across independent expansions.
	again := g.Cells(core.DefaultTech())
	for i := range cells {
		if cells[i].Key() != again[i].Key() {
			t.Errorf("cell %d key unstable: %s vs %s", i, cells[i].Key(), again[i].Key())
		}
	}
}

func TestCellValidate(t *testing.T) {
	good := Grid{}.Cells(core.DefaultTech())[0]
	good.Window = 1000
	if err := good.Validate(); err != nil {
		t.Errorf("valid cell rejected: %v", err)
	}
	bad := good
	bad.Tech.P = 2
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range tech accepted")
	}
	bad = good
	bad.Benchmarks = []string{"dhrystone"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad = good
	bad.Alpha = 2
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range alpha accepted")
	}
}

// TestStreamMatchesBatchSweep pins the core equivalence the service relies
// on: streaming cell results and assembling them with AddSweepRow yields
// exactly the batch RunSweep table.
func TestStreamMatchesBatchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 20_000})
	g := Grid{
		Techs:      []core.Tech{core.DefaultTech(), core.HighLeakTech()},
		Benchmarks: []string{"gcc"},
	}
	tech := core.DefaultTech()

	batch, err := RunSweep(context.Background(), r, g, tech)
	if err != nil {
		t.Fatal(err)
	}

	streamed := SweepTable(g, tech)
	idx := 0
	err = RunSweepStream(context.Background(), r, g, tech, func(res CellResult) error {
		if res.Index != idx {
			t.Errorf("cell index %d delivered at position %d", res.Index, idx)
		}
		idx++
		AddSweepRow(streamed, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0].Table.Rows, streamed.Rows) {
		t.Errorf("streamed rows differ from batch:\n%v\nvs\n%v", streamed.Rows, batch[0].Table.Rows)
	}
	if idx != g.Cardinality(tech) {
		t.Errorf("streamed %d cells, want %d", idx, g.Cardinality(tech))
	}
}

func TestRunSweepStreamPropagatesCallbackError(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 20_000})
	g := Grid{Benchmarks: []string{"gcc"}}
	want := context.Canceled
	calls := 0
	err := RunSweepStream(context.Background(), r, g, core.DefaultTech(), func(CellResult) error {
		calls++
		return want
	})
	if err != want {
		t.Errorf("err = %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Errorf("callback called %d times after erroring", calls)
	}
}

func TestRunSweepStreamValidatesTechUpFront(t *testing.T) {
	r := NewRunner(Options{Window: 20_000})
	g := Grid{Techs: []core.Tech{{P: 5}}}
	err := RunSweepStream(context.Background(), r, g, core.DefaultTech(), func(CellResult) error {
		t.Error("callback reached with invalid tech")
		return nil
	})
	if err == nil {
		t.Fatal("invalid tech accepted")
	}
	if r.Stats().Simulations != 0 {
		t.Error("validation failure still simulated")
	}
}
