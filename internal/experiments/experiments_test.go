package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/archsim/fusleep/internal/core"
	"github.com/archsim/fusleep/internal/report"
	"github.com/archsim/fusleep/internal/workload"
)

func render(t *testing.T, arts []report.Renderable) string {
	t.Helper()
	var b strings.Builder
	for _, a := range arts {
		if err := a.Render(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func TestRegistryComplete(t *testing.T) {
	// Every paper table and figure has an experiment.
	wantPaper := []string{"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 3", "Figure 4a", "Figure 4b", "Figure 4c", "Figure 4d",
		"Figure 5c", "Figure 7", "Figure 8a", "Figure 8b", "Figure 9a", "Figure 9b"}
	have := map[string]bool{}
	for _, e := range All {
		have[e.Paper] = true
	}
	for _, w := range wantPaper {
		if !have[w] {
			t.Errorf("no experiment for %s", w)
		}
	}
	if _, err := ByID("fig8a"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("bogus"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != len(All) {
		t.Error("IDs() incomplete")
	}
	seen := map[string]bool{}
	for _, id := range IDs() {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestAnalyticExperimentsRun(t *testing.T) {
	r := NewRunner(Options{Window: 50_000, Sweep: 50_000})
	for _, e := range All {
		if e.Simulated {
			continue
		}
		arts, err := e.Run(context.Background(), r)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(arts) == 0 {
			t.Errorf("%s: no artifacts", e.ID)
			continue
		}
		out := render(t, arts)
		if len(out) < 50 {
			t.Errorf("%s: output suspiciously short:\n%s", e.ID, out)
		}
	}
}

func TestFig3BreakevenNote(t *testing.T) {
	arts, err := Fig3(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := render(t, arts)
	if !strings.Contains(out, "breakeven at alpha=0.5: 17 cycles") &&
		!strings.Contains(out, "breakeven at alpha=0.5: 16 cycles") &&
		!strings.Contains(out, "breakeven at alpha=0.5: 18 cycles") {
		t.Errorf("Figure 3 breakeven should be ~17 cycles:\n%s", out)
	}
}

func TestSimulatedExperimentsSmallWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated experiments")
	}
	// A small window exercises the full simulated path cheaply; numeric
	// fidelity is checked at full scale in EXPERIMENTS.md runs.
	r := NewRunner(Options{Window: 60_000, Sweep: 30_000})
	for _, id := range []string{"fig7", "fig8a", "fig8b", "fig9a", "fig9b", "mcf-fu", "idle-by-bench", "table3"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		arts, err := e.Run(context.Background(), r)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if out := render(t, arts); len(out) < 80 {
			t.Errorf("%s: output too short", id)
		}
	}
}

func TestSuiteCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 40_000})
	a, err := r.suite(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.suite(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 9 {
		t.Fatalf("suite has %d results", len(a))
	}
	// Cached: identical map instance.
	for k := range a {
		if a[k].Cycles != b[k].Cycles {
			t.Errorf("suite re-simulated for %s", k)
		}
	}
}

func TestSuiteCanceledBeforeStart(t *testing.T) {
	r := NewRunner(Options{Window: 5_000_000})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.suite(ctx, 12); !errors.Is(err, context.Canceled) {
		t.Errorf("suite on canceled ctx returned %v", err)
	}
}

func TestSuiteCancellationDrainsAndAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	// A large window with a quickly-canceled context must abort promptly,
	// return the cancellation error, and leave nothing cached.
	r := NewRunner(Options{Window: 50_000_000, Parallel: 2})
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := r.suite(ctx, 12)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("suite returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancellation took %v, not prompt", d)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.suites) != 0 || len(r.runs) != 0 {
		t.Errorf("canceled run left cache entries: %d suites, %d runs", len(r.suites), len(r.runs))
	}
}

func TestSimUsesCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 30_000})
	ctx := context.Background()
	a, err := r.Sim(ctx, "gcc", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sim(ctx, "gcc", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("cached Sim differs: %d/%d vs %d/%d", a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

func TestSimDeduplicatesInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	// Concurrent identical requests must share one pipeline run.
	r := NewRunner(Options{Window: 150_000})
	ctx := context.Background()
	const callers = 8
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := r.Sim(ctx, "gcc", 0, 0, 0)
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.simCount != 1 {
		t.Errorf("%d callers ran %d simulations, want 1", callers, r.simCount)
	}
}

func TestSweepGridCardinality(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	r := NewRunner(Options{Window: 25_000})
	g := Grid{
		Policies:   []core.PolicyConfig{{Policy: core.MaxSleep}, {Policy: core.AlwaysActive}},
		Techs:      []core.Tech{core.DefaultTech(), core.HighLeakTech()},
		FUCounts:   []int{2, 4},
		Benchmarks: []string{"gcc"},
	}
	want := 2 * 2 * 2
	if got := g.Cardinality(core.DefaultTech()); got != want {
		t.Fatalf("Cardinality = %d, want %d", got, want)
	}
	arts, err := RunSweep(context.Background(), r, g, core.DefaultTech())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].Kind != report.KindTable {
		t.Fatalf("sweep artifacts: %+v", arts)
	}
	if got := len(arts[0].Table.Rows); got != want {
		t.Errorf("sweep rows = %d, want %d", got, want)
	}
}

func TestSweepDefaultsCoverSuite(t *testing.T) {
	g := Grid{}.withDefaults(core.DefaultTech())
	if len(g.Policies) != len(core.Policies) {
		t.Errorf("default policies: %d", len(g.Policies))
	}
	if len(g.Benchmarks) != len(workload.Names()) {
		t.Errorf("default benchmarks: %d", len(g.Benchmarks))
	}
	if g.Alpha != 0.5 || g.L2Latency != 12 || len(g.FUCounts) != 1 || g.FUCounts[0] != 0 {
		t.Errorf("defaults wrong: %+v", g)
	}
}

func TestFig8HeadlineDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated")
	}
	// Even at reduced windows, the qualitative Figure 8 result must hold:
	// MaxSleep loses to AlwaysActive at p=0.05 and wins at p=0.50, with
	// GradualSleep near the winner both times.
	r := NewRunner(Options{Window: 250_000})
	suite, err := r.suite(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(p float64) map[string]float64 {
		tech := core.DefaultTech().WithP(p)
		sums := map[string]float64{}
		for _, res := range suite {
			for _, pol := range core.Policies {
				sums[pol.String()] += relativeEnergy(tech, core.PolicyConfig{Policy: pol}, 0.5, res)
			}
		}
		for k := range sums {
			sums[k] /= float64(len(suite))
		}
		return sums
	}
	low := avg(0.05)
	if low["MaxSleep"] <= low["AlwaysActive"] {
		t.Errorf("p=0.05: MaxSleep %.3f should exceed AlwaysActive %.3f", low["MaxSleep"], low["AlwaysActive"])
	}
	if low["GradualSleep"] > low["AlwaysActive"]*1.05 {
		t.Errorf("p=0.05: GradualSleep %.3f should be within ~5%% of AlwaysActive %.3f",
			low["GradualSleep"], low["AlwaysActive"])
	}
	high := avg(0.50)
	if high["MaxSleep"] >= high["AlwaysActive"] {
		t.Errorf("p=0.50: MaxSleep %.3f should undercut AlwaysActive %.3f", high["MaxSleep"], high["AlwaysActive"])
	}
	if high["GradualSleep"] > high["MaxSleep"]*1.05 {
		t.Errorf("p=0.50: GradualSleep %.3f should track MaxSleep %.3f", high["GradualSleep"], high["MaxSleep"])
	}
	// NoOverhead is the floor everywhere.
	for _, m := range []map[string]float64{low, high} {
		for k, v := range m {
			if k != "NoOverhead" && v < m["NoOverhead"]-1e-9 {
				t.Errorf("%s (%.3f) beat the NoOverhead bound (%.3f)", k, v, m["NoOverhead"])
			}
		}
	}
}
