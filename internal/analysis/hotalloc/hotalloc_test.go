package hotalloc_test

import (
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/analysistest"
	"github.com/archsim/fusleep/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t,
		"internal/analysis/hotalloc/testdata/fixture",
		analysis.ModulePath+"/internal/pipeline/hotallocfixture",
		hotalloc.Analyzer)
}
