// Package hotalloc audits functions annotated //fusleepvet:hotpath — the
// per-cycle pipeline loops and FU-pool allocation paths whose allocation
// budget the BENCH_pipeline.json benchgate protects — for operations that
// allocate on every execution: fmt calls, string concatenation,
// heap-escaping composite literals (&T{...}, map/slice literals), make,
// boxing a concrete value into an interface, and appends to local slices
// that were never preallocated. Arguments of panic(...) are exempt — a
// panicking hot path is already cold. Suppress a single line with
// //fusleepvet:alloc-ok and a justification (e.g. an alloc amortized by a
// reuse pool).
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/archsim/fusleep/internal/analysis"
)

// Analyzer is the hotalloc pass. It applies everywhere; functions opt in
// with the //fusleepvet:hotpath directive.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "report per-call allocation hazards in functions marked //fusleepvet:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.Directives().FuncMarked(fn, analysis.DirHotpath) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checker walks one hot function.
type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// bare tracks local slice variables declared without capacity (var s
	// []T, s := []T{}, s := []T(nil)); appending to them reallocates from
	// scratch on every call.
	bare map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{pass: pass, fn: fn, bare: map[types.Object]bool{}}
	c.collectBareSlices()
	c.walk(fn.Body)
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Directives().Suppressed(pos, analysis.DirAllocOK) {
		return
	}
	name := c.fn.Name.Name
	c.pass.Reportf(pos, "hotpath %s: "+format+" (suppress with //fusleepvet:alloc-ok)", append([]any{name}, args...)...)
}

// collectBareSlices records local slice declarations without preallocated
// capacity.
func (c *checker) collectBareSlices() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj != nil && isSlice(obj.Type()) {
						c.bare[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if isEmptySliceExpr(c.pass, n.Rhs[i]) {
					c.bare[obj] = true
				}
			}
		}
		return true
	})
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isEmptySliceExpr reports expressions that produce an empty,
// zero-capacity slice: []T{}, []T(nil), nil.
func isEmptySliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		// Conversion []T(nil).
		if len(e.Args) == 1 {
			if id, ok := e.Args[0].(*ast.Ident); ok && id.Name == "nil" {
				if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(c.pass, n) {
				// Analyze the callee expression but skip the arguments: a
				// panicking hot path is cold by definition.
				return false
			}
			c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal escapes to the heap on every call")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					if len(n.Elts) > 0 {
						c.report(n.Pos(), "slice literal allocates on every call")
					}
				case *types.Map:
					c.report(n.Pos(), "map literal allocates on every call")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := c.pass.TypesInfo.Types[n]; ok && analysis.IsString(tv.Type) {
					c.report(n.Pos(), "string concatenation allocates; use a reused buffer")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				for _, lhs := range n.Lhs {
					if tv, ok := c.pass.TypesInfo.Types[lhs]; ok && analysis.IsString(tv.Type) {
						c.report(n.Pos(), "string concatenation allocates; use a reused buffer")
					}
				}
			}
			c.checkInterfaceAssign(n.Lhs, n.Rhs)
		}
		return true
	})
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// fmt calls: formatting boxes arguments and builds strings.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				c.report(call.Pos(), "fmt.%s allocates (formatting state and boxed arguments)", sel.Sel.Name)
				return
			}
		}
	}
	// Builtins: make in a hot path; append to a never-preallocated local.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates on every call; hoist the buffer to the enclosing struct")
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := call.Args[0].(*ast.Ident); ok {
						if obj := c.pass.TypesInfo.Uses[dst]; obj != nil && c.bare[obj] {
							c.report(call.Pos(), "append to %q, a local slice declared without capacity; preallocate with make or reuse a buffer", dst.Name)
						}
					}
				}
			}
			return
		}
	}
	// Interface boxing at call boundaries: a concrete argument passed as an
	// interface parameter allocates unless it is already pointer-shaped.
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x). Converting to an interface boxes.
		if analysis.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := c.pass.TypesInfo.Types[call.Args[0]]; ok && boxes(atv.Type) {
				c.report(call.Pos(), "conversion to interface boxes a concrete value")
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !analysis.IsInterface(pt) {
			continue
		}
		atv, ok := c.pass.TypesInfo.Types[arg]
		if !ok || !boxes(atv.Type) {
			continue
		}
		c.report(arg.Pos(), "passing concrete %s as interface parameter boxes it onto the heap", atv.Type.String())
	}
}

// checkInterfaceAssign flags assignments that box a concrete value into an
// interface-typed location.
func (c *checker) checkInterfaceAssign(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		ltv, ok := c.pass.TypesInfo.Types[lhs[i]]
		if !ok || !analysis.IsInterface(ltv.Type) {
			continue
		}
		rtv, ok := c.pass.TypesInfo.Types[rhs[i]]
		if !ok || !boxes(rtv.Type) {
			continue
		}
		c.report(rhs[i].Pos(), "assigning concrete %s into an interface boxes it onto the heap", rtv.Type.String())
	}
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for concrete non-pointer, non-interface types (pointers
// and interfaces fit in the interface word; untyped nil is free).
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return false
	case *types.Pointer:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	default:
		return true
	}
}
