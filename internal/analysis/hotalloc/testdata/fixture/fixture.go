// Package fixture exercises the hotalloc analyzer: only functions marked
// //fusleepvet:hotpath are audited; within them, per-call allocations are
// flagged unless annotated //fusleepvet:alloc-ok, and panic arguments are
// exempt.
package fixture

import "fmt"

type point struct{ x int }

func sink(v any) { _ = v }

// Cold allocates freely: unmarked functions are not audited.
func Cold(n int) []int {
	out := []int{n}
	_ = fmt.Sprint(n)
	return out
}

// tick is the per-cycle path; every allocation here is per-call.
//
//fusleepvet:hotpath
func tick(buf []int, name string, n int) []int {
	fmt.Println(n)  // want "fmt.Println allocates"
	s := name + "!" // want "string concatenation allocates"
	_ = s
	p := &point{x: n} // want "composite literal escapes to the heap"
	_ = p
	m := map[int]int{} // want "map literal allocates"
	_ = m
	tmp := make([]int, n) // want "make allocates"
	_ = tmp
	var scratch []int
	scratch = append(scratch, n) // want "append to .scratch., a local slice declared without capacity"
	_ = scratch
	sink(n) // want "passing concrete int as interface parameter"
	var iface any
	iface = n // want "assigning concrete int into an interface"
	_ = iface
	return append(buf, n) // append to caller-owned slice: fine
}

// flush panics on corrupt state; a panicking hot path is already cold, so
// the fmt.Sprintf inside panic(...) is exempt.
//
//fusleepvet:hotpath
func flush(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative: %d", n))
	}
}

// pooled amortizes its allocation and says so.
//
//fusleepvet:hotpath
func pooled(n int) []int {
	out := make([]int, 0, 8) //fusleepvet:alloc-ok amortized: called once per flush, not per cycle
	out = append(out, n)
	return out
}

// pointered passes pointer-shaped values into interfaces: no boxing.
//
//fusleepvet:hotpath
func pointered(p *point) {
	sink(p)
	sink(nil)
}
