// Package fixture exercises the detsource analyzer: wall clocks, the
// shared math/rand source, and multi-channel selects are flagged in
// simulation paths; seeded sources and annotated sites are not.
package fixture

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a simulation/eval path"
}

// Roll draws from the shared, unseeded source.
func Roll() int {
	return rand.Intn(6) // want "package-level rand.Intn uses the shared, unseeded math/rand source"
}

// Seeded threads an explicit source: legal.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Race resolves uniformly at random when both channels are ready.
func Race(a, b <-chan int) int {
	select { // want "select over 2 channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Single polls one channel with a default arm: deterministic.
func Single(a <-chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// Shutdown is an annotated cancellation race whose arms converge.
func Shutdown(done, cancel <-chan struct{}) {
	//fusleepvet:nondet-ok cancellation race; both arms converge
	select {
	case <-done:
	case <-cancel:
	}
}

// Elapsed is annotated: a coarse log timestamp, not simulated time.
func Elapsed() time.Time {
	return time.Now() //fusleepvet:nondet-ok coarse log timestamp
}

// A Source type name from math/rand is not a draw from the shared source.
var _ rand.Source
