package detsource_test

import (
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/analysistest"
	"github.com/archsim/fusleep/internal/analysis/detsource"
)

func TestDetsource(t *testing.T) {
	analysistest.Run(t,
		"internal/analysis/detsource/testdata/fixture",
		analysis.ModulePath+"/internal/pipeline/detsourcefixture",
		detsource.Analyzer)
}

func TestDetsourceScope(t *testing.T) {
	if detsource.Analyzer.AppliesTo(analysis.ModulePath + "/internal/report") {
		t.Error("detsource must not apply to internal/report (no simulation there)")
	}
	if !detsource.Analyzer.AppliesTo(analysis.ModulePath + "/internal/workload") {
		t.Error("detsource must apply to internal/workload (trace generation)")
	}
}
