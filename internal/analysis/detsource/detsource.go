// Package detsource forbids nondeterministic inputs in simulation and
// evaluation packages: wall-clock reads (time.Now), the shared unseeded
// math/rand source (package-level rand.Intn and friends — rand.New with an
// explicit rand.NewSource stays legal), and select statements racing
// multiple channels (Go picks uniformly at random among ready cases).
// Simulation results must be a pure function of their configuration; these
// are the three stdlib backdoors that break that. Annotate a statement
// //fusleepvet:nondet-ok with a justification when the nondeterminism is
// provably benign (e.g. a cancellation race whose arms converge).
package detsource

import (
	"go/ast"
	"go/types"

	"github.com/archsim/fusleep/internal/analysis"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name:    "detsource",
	Doc:     "forbid wall clocks, the shared math/rand source, and multi-channel selects in simulation/eval paths",
	Applies: analysis.IsSimulationPath,
	Run:     run,
}

// seededConstructors are the math/rand package-level names that do not
// touch the shared global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkg.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" && !pass.Directives().Suppressed(sel.Pos(), analysis.DirNondetOK) {
			pass.Reportf(sel.Pos(),
				"time.Now in a simulation/eval path makes results wall-clock dependent; derive timing from simulated cycles or annotate //fusleepvet:nondet-ok")
		}
	case "math/rand", "math/rand/v2":
		if seededConstructors[sel.Sel.Name] {
			return
		}
		// Only package-level functions and variables hit the shared source;
		// type names (rand.Rand, rand.Source) are fine.
		obj := pass.TypesInfo.Uses[sel.Sel]
		if _, isFunc := obj.(*types.Func); !isFunc {
			return
		}
		if pass.Directives().Suppressed(sel.Pos(), analysis.DirNondetOK) {
			return
		}
		pass.Reportf(sel.Pos(),
			"package-level rand.%s uses the shared, unseeded math/rand source; use rand.New(rand.NewSource(seed)) threaded from the configuration, or annotate //fusleepvet:nondet-ok", sel.Sel.Name)
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comms := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 {
		return
	}
	if pass.Directives().Suppressed(sel.Pos(), analysis.DirNondetOK) {
		return
	}
	pass.Reportf(sel.Pos(),
		"select over %d channels resolves uniformly at random when several are ready; restructure for a deterministic priority or annotate //fusleepvet:nondet-ok", comms)
}
