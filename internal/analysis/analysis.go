package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Path      string
	Pkg       *types.Package
	TypesInfo *types.Info
	Files     []*ast.File

	diags      []Diagnostic
	directives *Directives
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Directives returns the package's parsed //fusleepvet: directives,
// computing them on first use.
func (p *Pass) Directives() *Directives {
	if p.directives == nil {
		p.directives = newDirectives(p.Fset, p.Files)
	}
	return p.directives
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by the multichecker.
	Doc string
	// Applies reports whether the analyzer has anything to say about a
	// package; nil means it applies everywhere. Drivers consult it before
	// running.
	Applies func(importPath string) bool
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer should run on the package.
func (a *Analyzer) AppliesTo(importPath string) bool {
	return a.Applies == nil || a.Applies(importPath)
}

// RunAnalyzers executes each applicable analyzer over the package and
// returns the combined diagnostics in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Files:     pkg.Files,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// DirectivePrefix introduces every fusleepvet control comment.
const DirectivePrefix = "fusleepvet:"

// Directive names.
const (
	DirHotpath     = "hotpath"      // hotalloc: analyze this function
	DirUnorderedOK = "unordered-ok" // detrange: suppress
	DirNondetOK    = "nondet-ok"    // detsource: suppress
	DirAllocOK     = "alloc-ok"     // hotalloc: suppress
	DirCtxOK       = "ctx-ok"       // ctxflow: suppress
	DirMetricOK    = "metric-ok"    // metricnames: suppress
)

// Directives indexes a package's //fusleepvet: comments by file and line.
type Directives struct {
	fset *token.FileSet
	// byLine maps filename -> line -> directive names on that line.
	byLine map[string]map[int][]string
}

func newDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				name, _, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
				pos := fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return d
}

// at reports whether the named directive sits exactly on the given
// file:line.
func (d *Directives) at(filename string, line int, name string) bool {
	for _, n := range d.byLine[filename][line] {
		if n == name {
			return true
		}
	}
	return false
}

// Suppressed reports whether the named directive covers pos: the directive
// may sit at the end of the same source line or alone on the line above.
func (d *Directives) Suppressed(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	return d.at(p.Filename, p.Line, name) || d.at(p.Filename, p.Line-1, name)
}

// FuncMarked reports whether the function declaration carries the named
// directive, in its doc comment or on the line above its declaration.
func (d *Directives) FuncMarked(fn *ast.FuncDecl, name string) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, DirectivePrefix) {
				n, _, _ := strings.Cut(strings.TrimPrefix(text, DirectivePrefix), " ")
				if n == name {
					return true
				}
			}
		}
	}
	return d.Suppressed(fn.Pos(), name)
}
