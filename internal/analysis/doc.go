// Package analysis is the repo's domain-aware static-analysis suite: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus the four
// fusleepvet analyzers that mechanically enforce the invariants the rest of
// the tree only checks after the fact with golden tests and benchmark
// gates:
//
//   - detrange  — in determinism-critical packages, flags `range` over a
//     map whose body emits ordered output (appends that are never sorted,
//     writer/hash emission, order-dependent early returns, float
//     accumulation), the root cause of golden-test flakes and unstable
//     Cell.Key hashes.
//   - detsource — in simulation/eval packages, forbids wall-clock reads
//     (time.Now), the shared unseeded math/rand source, and select
//     statements racing multiple channels.
//   - hotalloc  — in functions annotated //fusleepvet:hotpath, reports
//     per-cycle allocation hazards: fmt calls, string concatenation,
//     heap-escaping composite literals, make, interface boxing, and
//     appends to never-preallocated local slices.
//   - ctxflow   — entry points (exported Engine/Runner/Server methods and
//     HTTP handlers) must accept a context and pass it on: flags callees
//     handed context.Background()/TODO() while a real context is in scope,
//     and exported entry points that drop the context entirely.
//
// # Directives
//
// Analyzers honor line comments of the form //fusleepvet:<name>. A
// suppression directive applies to the source line it sits on or the line
// directly below it; //fusleepvet:hotpath applies to the function
// declaration it documents.
//
//	//fusleepvet:hotpath       mark a function for hotalloc analysis
//	//fusleepvet:unordered-ok  suppress detrange for one range statement
//	//fusleepvet:nondet-ok     suppress detsource for one statement
//	//fusleepvet:alloc-ok      suppress hotalloc for one line
//	//fusleepvet:ctx-ok        suppress ctxflow for one call or function
//
// Every suppression should carry a justification after the directive, e.g.
// //fusleepvet:nondet-ok cancellation race is benign: both arms converge.
//
// # Running
//
// The multichecker binary lives in cmd/fusleepvet:
//
//	go run ./cmd/fusleepvet ./...                     # all analyzers; exit 2 on findings
//	go run ./cmd/fusleepvet -checks=detrange ./...    # a subset
//	go run ./cmd/fusleepvet -list                     # name + doc per analyzer
//
// The loader shells out to `go list -export` for package metadata and
// export data and reads it back through the gc importer, so it needs no
// network and no modules beyond the standard library. Analyzer unit tests
// load fixture directories through the same path and check diagnostics
// against `// want "regexp"` comments; see the analysistest subpackage.
package analysis
