// Package fixture exercises the metricnames analyzer: direct Registry
// constructor calls, the method-value indirection, constant propagation,
// dynamic names, and the metric-ok escape hatch.
package fixture

import "github.com/archsim/fusleep/internal/telemetry"

const viaConst = "fusleepd_cells_journaled_total"

func register(reg *telemetry.Registry) {
	reg.NewCounter("fusleepd_cells_evaluated_total", "ok: namespaced snake_case counter.")
	reg.NewCounter(viaConst, "ok: name reaches the call through a constant.")
	reg.NewCounter("cells_evaluated_total", "missing namespace.") // want "must start with the fusleepd_ namespace prefix"
	reg.NewCounter("fusleepd_cells_evaluated", "missing _total.") // want "counter .* must end in _total"
	reg.NewCounter("fusleepd_cellsEvaluated_total", "camelCase.") // want "not lower snake_case"
	reg.NewCounter("fusleepd__cells_total", "double underscore.") // want "not lower snake_case"

	reg.NewGaugeFunc("fusleepd_queue_depth", "ok: plain gauge.", zero)
	reg.NewGaugeFunc("fusleepd_queue_depth_total", "gauge claiming _total.", zero) // want "_total suffix is reserved for counters"

	reg.NewHistogram("fusleepd_cell_eval_seconds", "ok: histogram.", nil)
	reg.NewHistogramVec("fusleepd_eval-seconds", "kebab-case.", nil, "route") // want "not lower snake_case"

	reg.NewGaugeCollector("up", "grandfathered dashboard name.", nil, samples) //fusleepvet:metric-ok pinned by external dashboards

	counterFn := reg.NewCounterFunc
	counterFn("fusleepd_sim_runs_total", "ok through a method value.", zero)
	counterFn("sim_runs_total", "method value hides nothing.", zero) // want "must start with the fusleepd_ namespace prefix"

	dynamic := "fusleepd_" + suffix()
	reg.NewCounter(dynamic, "runtime-built names are not checkable.")
}

func zero() float64               { return 0 }
func samples() []telemetry.Sample { return nil }
func suffix() string              { return "dynamic_total" }
