// Package metricnames enforces the repo's Prometheus naming conventions at
// the point where metrics are registered. Every constant metric name passed
// to a telemetry.Registry constructor must live in the fusleepd_ namespace
// and be lower snake_case, and the _total suffix is exactly the counter
// marker: every counter ends in it, nothing else may. Names that only exist
// at runtime (built from variables) are not checkable and pass silently;
// grandfathered names can be annotated //fusleepvet:metric-ok with a
// justification.
//
// The analyzer sees through the `fn := reg.NewCounterFunc; fn(name, ...)`
// method-value idiom the registration code uses to compress long metric
// tables, so the indirection does not hide a bad name.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"github.com/archsim/fusleep/internal/analysis"
)

// Analyzer is the metricnames pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc:  "enforce fusleepd_ prefix, snake_case, and the counter _total convention on registered metric names",
	Run:  run,
}

// registryMethods maps each telemetry.Registry constructor taking a metric
// name to whether it registers a counter (and therefore requires _total).
var registryMethods = map[string]bool{
	"NewCounter":          true,
	"NewCounterFunc":      true,
	"NewCounterCollector": true,
	"NewGaugeFunc":        false,
	"NewGaugeCollector":   false,
	"NewHistogram":        false,
	"NewHistogramVec":     false,
}

// nameRe is lower snake_case: groups of [a-z0-9] joined by single
// underscores, starting with a letter.
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$`)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// First pass: method values bound to identifiers, so calls through
		// `counterFn := reg.NewCounterFunc` resolve to their constructor.
		bound := map[types.Object]string{}
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				sel, ok := rhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				method, ok := registryMethod(pass, sel)
				if !ok {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					bound[obj] = method
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					bound[obj] = method
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var method string
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				m, ok := registryMethod(pass, fun)
				if !ok {
					return true
				}
				method = m
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[fun]
				m, ok := bound[obj]
				if !ok {
					return true
				}
				method = m
			default:
				return true
			}
			checkName(pass, call, method)
			return true
		})
	}
	return nil
}

// registryMethod resolves a selector to a known Registry constructor,
// whether called or taken as a method value.
func registryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return "", false
	}
	if _, known := registryMethods[fn.Name()]; !known {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || named.Obj().Pkg() == nil {
		return "", false
	}
	if !strings.HasSuffix(named.Obj().Pkg().Path(), "/internal/telemetry") {
		return "", false
	}
	return fn.Name(), true
}

// checkName validates the constant name a registration call passes; names
// not constant at the call site are unverifiable and skipped.
func checkName(pass *analysis.Pass, call *ast.CallExpr, method string) {
	if len(call.Args) == 0 {
		return
	}
	if pass.Directives().Suppressed(call.Pos(), analysis.DirMetricOK) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	name := constant.StringVal(tv.Value)
	pos := call.Args[0].Pos()
	if !strings.HasPrefix(name, "fusleepd_") {
		pass.Reportf(pos,
			"metric %q must start with the fusleepd_ namespace prefix (or annotate //fusleepvet:metric-ok)", name)
	} else if !nameRe.MatchString(name) {
		pass.Reportf(pos,
			"metric %q is not lower snake_case; use [a-z0-9] groups joined by single underscores (or annotate //fusleepvet:metric-ok)", name)
	}
	if isCounter := registryMethods[method]; isCounter {
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos,
				"counter %q must end in _total (Prometheus counter convention; or annotate //fusleepvet:metric-ok)", name)
		}
	} else if strings.HasSuffix(name, "_total") {
		pass.Reportf(pos,
			"%s registers %q, but the _total suffix is reserved for counters (or annotate //fusleepvet:metric-ok)", method, name)
	}
}
