package metricnames_test

import (
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/analysistest"
	"github.com/archsim/fusleep/internal/analysis/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t,
		"internal/analysis/metricnames/testdata/fixture",
		analysis.ModulePath+"/internal/server/metricnamesfixture",
		metricnames.Analyzer)
}

func TestMetricNamesScope(t *testing.T) {
	// Registrations can live anywhere (server, cmd, future packages), so
	// the analyzer applies everywhere; it only fires on Registry methods.
	for _, path := range []string{
		analysis.ModulePath + "/internal/server",
		analysis.ModulePath + "/cmd/fusleepd",
		"example.com/other",
	} {
		if !metricnames.Analyzer.AppliesTo(path) {
			t.Errorf("metricnames must apply to %s", path)
		}
	}
}
