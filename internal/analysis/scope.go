package analysis

import (
	"go/types"
	"strings"
)

// ModulePath is the import-path root of this repository; the package
// classifications below are defined relative to it. Fixture packages reuse
// these prefixes to opt into the same scoping.
const ModulePath = "github.com/archsim/fusleep"

// deterministicPackages are the packages whose byte output must be
// reproducible run to run: the golden-pinned pipeline and experiment
// drivers, the renderers, the energy model feeding Cell.Key hashes, and
// the tuner whose probe trace is replayed by tests. detrange runs here.
var deterministicPackages = []string{
	ModulePath,
	ModulePath + "/internal/core",
	ModulePath + "/internal/experiments",
	ModulePath + "/internal/fault",
	ModulePath + "/internal/optimize",
	ModulePath + "/internal/pipeline",
	ModulePath + "/internal/report",
	ModulePath + "/internal/store",
}

// simulationPackages are the simulation/eval paths: anything that computes
// cycle-accurate or closed-form results must not read wall clocks or the
// shared math/rand source. detsource runs here.
var simulationPackages = []string{
	ModulePath + "/internal/bpred",
	ModulePath + "/internal/cache",
	ModulePath + "/internal/circuit",
	ModulePath + "/internal/core",
	ModulePath + "/internal/experiments",
	ModulePath + "/internal/fault",
	ModulePath + "/internal/fleet",
	ModulePath + "/internal/fu",
	ModulePath + "/internal/isa",
	ModulePath + "/internal/optimize",
	ModulePath + "/internal/pipeline",
	ModulePath + "/internal/stats",
	ModulePath + "/internal/store",
	ModulePath + "/internal/tlb",
	ModulePath + "/internal/workload",
}

// inScope reports whether importPath is one of the listed packages or a
// fixture claiming one (listed path + "/...").
func inScope(importPath string, scope []string) bool {
	for _, p := range scope {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			// Subdirectories of a scoped package are only in scope when they
			// are fixtures or nested implementation packages of it — but the
			// module root would swallow everything, so it matches exactly.
			if p == ModulePath && importPath != p {
				continue
			}
			return true
		}
	}
	return false
}

// IsDeterminismCritical reports whether detrange applies to the package.
func IsDeterminismCritical(importPath string) bool {
	return inScope(importPath, deterministicPackages)
}

// IsSimulationPath reports whether detsource applies to the package.
func IsSimulationPath(importPath string) bool {
	return inScope(importPath, simulationPackages)
}

// IsFloat reports whether t's underlying type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsString reports whether t's underlying type is a string.
func IsString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// IsInterface reports whether t's underlying type is a non-nil interface.
func IsInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// MapType returns t's underlying map type, unwrapping one pointer level,
// or nil when t is not a map.
func MapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}
