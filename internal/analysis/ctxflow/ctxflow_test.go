package ctxflow_test

import (
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/analysistest"
	"github.com/archsim/fusleep/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t,
		"internal/analysis/ctxflow/testdata/fixture",
		analysis.ModulePath+"/internal/server/ctxflowfixture",
		ctxflow.Analyzer)
}
