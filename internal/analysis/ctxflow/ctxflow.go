// Package ctxflow enforces context propagation through the long-running
// entry points of the suite. Sweeps, tuner searches, and sharded daemon
// jobs are cancelled through context; a call site that silently swaps in
// context.Background() detaches the whole subtree from cancellation, which
// is how runaway sweep jobs survive a daemon shutdown.
//
// Two rules:
//
//  1. A function that already has a context.Context (or *http.Request)
//     parameter must not pass context.Background() or context.TODO() to a
//     context-accepting callee — thread the parameter (or r.Context())
//     instead.
//  2. An exported method on an Engine/Runner/*Server type that calls
//     context-accepting callees must itself accept a context.Context, so
//     callers can cancel it.
//
// Deliberately detached work (a job that must outlive its HTTP request)
// is annotated //fusleepvet:ctx-ok with a justification.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/archsim/fusleep/internal/analysis"
)

// Analyzer is the ctxflow pass. It applies to every package in the module.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context.Context propagation through Engine/Runner/server entry points",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	hasCtx := hasParamType(pass, fn, isContext)
	hasReq := hasParamType(pass, fn, isHTTPRequestPtr)

	// Rule 1: a context is in scope — don't manufacture a fresh one.
	if hasCtx || hasReq {
		source := "the context parameter"
		if !hasCtx {
			source = "r.Context()"
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				name, ok := freshContextCall(pass, arg)
				if !ok {
					continue
				}
				if pass.Directives().Suppressed(arg.Pos(), analysis.DirCtxOK) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"context.%s passed to %s detaches it from cancellation while %s is in scope; thread %s or annotate //fusleepvet:ctx-ok",
					name, calleeName(call), source, source)
			}
			return true
		})
	}

	// Rule 2: exported entry points on long-running types must be
	// cancellable if anything they call is.
	if hasCtx || !fn.Name.IsExported() || !onEntryType(pass, fn) {
		return
	}
	if pass.Directives().FuncMarked(fn, analysis.DirCtxOK) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !calleeTakesContext(pass, call) {
			return true
		}
		if pass.Directives().Suppressed(call.Pos(), analysis.DirCtxOK) {
			return true
		}
		recv := receiverTypeName(pass, fn)
		pass.Reportf(fn.Name.Pos(),
			"exported %s.%s calls context-accepting %s but takes no context.Context; add a ctx parameter so callers can cancel, or annotate //fusleepvet:ctx-ok",
			recv, fn.Name.Name, calleeName(call))
		return false // one report per function is enough
	})
}

// hasParamType reports whether any parameter of fn satisfies pred.
func hasParamType(pass *analysis.Pass, fn *ast.FuncDecl, pred func(types.Type) bool) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && pred(tv.Type) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// freshContextCall reports context.Background() / context.TODO() calls,
// returning the function name.
func freshContextCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "context" {
		return "", false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return "", false
	}
	return sel.Sel.Name, true
}

// entryTypeNames are the receiver-name shapes that mark long-running entry
// points: sweep/search engines, experiment runners, and daemon servers.
func isEntryTypeName(name string) bool {
	return name == "Engine" || name == "Runner" ||
		strings.HasSuffix(name, "Engine") || strings.HasSuffix(name, "Runner") ||
		strings.HasSuffix(name, "Server")
}

// onEntryType reports whether fn is a method whose receiver type name marks
// a long-running entry point.
func onEntryType(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	return isEntryTypeName(receiverTypeName(pass, fn))
}

// receiverTypeName returns the name of fn's receiver type ("" for plain
// functions).
func receiverTypeName(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// calleeTakesContext reports whether the call's callee signature has a
// context.Context parameter.
func calleeTakesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// calleeName renders a short name for the call target, for messages.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "callee"
}
