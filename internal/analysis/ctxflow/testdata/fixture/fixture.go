// Package fixture exercises the ctxflow analyzer: dropping an in-scope
// context for context.Background(), and exported Engine/Runner/Server
// entry points that call cancellable work without accepting a context.
package fixture

import (
	"context"
	"net/http"
)

// Engine is a long-running entry-point type by naming convention.
type Engine struct{}

func (e *Engine) search(ctx context.Context) error { return ctx.Err() }

// Run threads its context: fine.
func (e *Engine) Run(ctx context.Context) error { return e.search(ctx) }

// Sweep calls cancellable work but cannot itself be cancelled.
func (e *Engine) Sweep() error { // want "exported Engine.Sweep calls context-accepting e.search but takes no context.Context"
	return e.search(context.Background())
}

// Detach launches deliberately detached work and says so.
//
//fusleepvet:ctx-ok background maintenance outlives any caller by design
func (e *Engine) Detach() error {
	return e.search(context.Background())
}

// Relay has a context in scope but drops it.
func Relay(ctx context.Context, e *Engine) error {
	return e.search(context.Background()) // want "context.Background passed to e.search detaches it from cancellation while the context parameter is in scope"
}

// Spawn detaches one call site with a justification.
func Spawn(ctx context.Context, e *Engine) error {
	//fusleepvet:ctx-ok sweep job outlives the request
	return e.search(context.Background())
}

// ServeSweep has the request context in scope but drops it.
func ServeSweep(w http.ResponseWriter, r *http.Request, e *Engine) {
	_ = e.search(context.Background()) // want "context.Background passed to e.search detaches it from cancellation while r.Context"
}

// Cache is not an entry-point type; its exported methods may rely on their
// callers' contexts.
type Cache struct{}

// Flush is exported but Cache is not an Engine/Runner/Server.
func (c *Cache) Flush(e *Engine) error { return e.search(context.Background()) }

// helper is unexported: internal plumbing is the caller's responsibility.
func helper(e *Engine) error { return e.search(context.Background()) }
