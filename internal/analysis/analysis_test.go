package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

// doc comment
//fusleepvet:hotpath
func Marked() {
	//fusleepvet:alloc-ok amortized
	x := alloc()
	y := alloc() //fusleepvet:alloc-ok trailing form

	_, _ = x, y
}

func Unmarked() {}

func alloc() int { return 0 }
`

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestDirectives(t *testing.T) {
	fset, f := parseOne(t, directiveSrc)
	d := newDirectives(fset, []*ast.File{f})

	var marked, unmarked *ast.FuncDecl
	var stmts []ast.Stmt
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch fn.Name.Name {
		case "Marked":
			marked = fn
			stmts = fn.Body.List
		case "Unmarked":
			unmarked = fn
		}
	}

	if !d.FuncMarked(marked, DirHotpath) {
		t.Error("Marked: doc-comment directive not detected")
	}
	if d.FuncMarked(unmarked, DirHotpath) {
		t.Error("Unmarked: spurious hotpath mark")
	}
	// Line-above form covers the first statement; trailing form the second.
	if !d.Suppressed(stmts[0].Pos(), DirAllocOK) {
		t.Error("line-above alloc-ok not detected")
	}
	if !d.Suppressed(stmts[1].Pos(), DirAllocOK) {
		t.Error("trailing alloc-ok not detected")
	}
	// The wrong directive name never suppresses.
	if d.Suppressed(stmts[0].Pos(), DirNondetOK) {
		t.Error("alloc-ok suppressed a nondet-ok query")
	}
	// A directive reaches at most one line down; past that it lapses.
	if d.Suppressed(stmts[2].Pos(), DirAllocOK) {
		t.Error("alloc-ok leaked two lines down")
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		path     string
		det, sim bool
	}{
		{ModulePath, true, false},
		{ModulePath + "/internal/core", true, true},
		{ModulePath + "/internal/report", true, false},
		{ModulePath + "/internal/workload", false, true},
		{ModulePath + "/internal/fleet", false, true},
		{ModulePath + "/internal/server", false, false},
		{ModulePath + "/internal/analysis", false, false},
		{ModulePath + "/internal/core/somefixture", true, true},
		{"example.com/other", false, false},
	}
	for _, c := range cases {
		if got := IsDeterminismCritical(c.path); got != c.det {
			t.Errorf("IsDeterminismCritical(%s) = %v, want %v", c.path, got, c.det)
		}
		if got := IsSimulationPath(c.path); got != c.sim {
			t.Errorf("IsSimulationPath(%s) = %v, want %v", c.path, got, c.sim)
		}
	}
}
