// Package analysistest runs fusleepvet analyzers over fixture packages and
// checks their diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own framework.
//
// A fixture is a directory of Go files. Expectations are trailing line
// comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// Each quoted string is a regular expression that must match the message
// of one diagnostic reported on that line; lines without a want comment
// must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
)

// wantRe matches one quoted expectation inside a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// moduleDir locates the repository root (the directory holding go.mod) so
// fixture loads resolve imports through the module's go tool context.
func moduleDir(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	// file = <repo>/internal/analysis/analysistest/analysistest.go
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// Run loads the fixture directory under the given import path, applies the
// analyzer, and reports mismatches between its diagnostics and the
// fixture's want comments. The import path decides Analyzer.Applies, so
// fixtures can claim determinism-critical or simulation-path identities.
func Run(t *testing.T, fixtureDir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	root := moduleDir(t)
	if !filepath.IsAbs(fixtureDir) {
		fixtureDir = filepath.Join(root, fixtureDir)
	}
	pkg, err := analysis.LoadDir(root, fixtureDir, asPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if !a.AppliesTo(asPath) {
		t.Fatalf("analyzer %s does not apply to %s; fix the fixture's import path", a.Name, asPath)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", position(pkg.Fset, d.Pos), d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
