package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -json -deps` over the patterns and
// returns the decoded package stream. Export data for every dependency is
// built into the go cache as a side effect, which is what lets the gc
// importer resolve imports without network access or a GOPATH.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc importer's lookup function over the export
// files `go list -export` reported.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// parseFiles parses the named files (with comments, which the directive
// machinery needs) into one shared fileset.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves the patterns with the go tool from dir and returns every
// matched package parsed and type-checked (dependencies are loaded as
// export data only, not returned). Test files are not analyzed, matching
// the invariants the suite enforces — they are production-path contracts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks a single directory of Go files outside
// the module's package graph — an analysistest fixture — under the given
// import path (which decides Analyzer.Applies). Imports are resolved
// through `go list -export` run from moduleDir, so fixtures may import the
// standard library and the module's own packages.
func LoadDir(moduleDir, fixtureDir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", fixtureDir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	files, err := parseFiles(fset, fixtureDir, names)
	if err != nil {
		return nil, err
	}
	importSet := map[string]bool{}
	for _, f := range files {
		for _, im := range f.Imports {
			if path, err := strconv.Unquote(im.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for path := range importSet {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", fixtureDir, err)
	}
	return &Package{
		Path:  asPath,
		Dir:   fixtureDir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
