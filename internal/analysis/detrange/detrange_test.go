package detrange_test

import (
	"testing"

	"github.com/archsim/fusleep/internal/analysis"
	"github.com/archsim/fusleep/internal/analysis/analysistest"
	"github.com/archsim/fusleep/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	// The fixture claims a determinism-critical import path so the
	// analyzer's Applies predicate admits it.
	analysistest.Run(t,
		"internal/analysis/detrange/testdata/fixture",
		analysis.ModulePath+"/internal/core/detrangefixture",
		detrange.Analyzer)
}

func TestDetrangeScope(t *testing.T) {
	if detrange.Analyzer.AppliesTo(analysis.ModulePath + "/internal/server") {
		t.Error("detrange must not apply to internal/server (non-deterministic daemon plumbing)")
	}
	if !detrange.Analyzer.AppliesTo(analysis.ModulePath + "/internal/report") {
		t.Error("detrange must apply to internal/report (rendered output)")
	}
}
