// Package fixture exercises the detrange analyzer: map ranges with
// order-dependent effects must be flagged, the append-then-sort and
// sorted-keys idioms must not, and //fusleepvet:unordered-ok suppresses.
package fixture

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Keys appends map keys without sorting: emission order leaks.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to .out. inside range over map"
	}
	return out
}

// SortedKeys appends then sorts — the sanctioned idiom, not flagged.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Total accumulates floats in map iteration order.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation inside range over map"
	}
	return sum
}

// First returns whichever entry the runtime iterates first.
func First(m map[string]int) (string, bool) {
	for k := range m {
		return k, true // want "return inside range over map"
	}
	return "", false
}

// Contains returns a constant: existence checks are order-free.
func Contains(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// Render emits bytes in map iteration order.
func Render(w io.Writer, b *strings.Builder, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "call to fmt.Fprintf inside range over map"
		b.WriteString(k)                // want "call to method WriteString"
	}
}

// Feed delivers channel messages in map iteration order.
func Feed(ch chan<- string, m map[string]int) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// Checked is annotated: a population count is order-free.
func Checked(m map[string]int) int {
	n := 0
	//fusleepvet:unordered-ok population count, order-free
	for range m {
		n++
	}
	return n
}

// Deferred builds closures inside the range; their bodies run later and
// are not this loop's iteration-order effects.
func Deferred(m map[string]int) []func() string {
	fns := make([]func() string, 0, len(m))
	for k := range m {
		k := k
		fns = append(fns, func() string { return k })
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i]() < fns[j]() })
	return fns
}
