// Package detrange flags `range` statements over maps whose bodies emit
// order-dependent results inside determinism-critical packages. Go
// randomizes map iteration order per run, so a map range that appends to a
// rendered slice, writes to an io.Writer or hash, accumulates
// floating-point sums, or returns a value derived from the iteration
// produces byte-different output run to run — the exact failure mode the
// golden determinism tests and the stable Cell.Key contract exist to
// prevent. Sort the keys first (a subsequent sort of the appended slice
// also satisfies the check) or annotate the loop //fusleepvet:unordered-ok
// with a justification.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/archsim/fusleep/internal/analysis"
)

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name:    "detrange",
	Doc:     "flag map iteration with order-dependent effects in determinism-critical packages",
	Applies: analysis.IsDeterminismCritical,
	Run:     run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || analysis.MapType(tv.Type) == nil {
				return true
			}
			if pass.Directives().Suppressed(rs.Pos(), analysis.DirUnorderedOK) {
				return true
			}
			checkMapRange(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function enclosing
// the top of the stack, used to look for post-loop sorts.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// loopVarObjects collects the type objects of the range's key/value
// variables, so order-dependent returns can be told apart from existence
// checks that return constants.
func loopVarObjects(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	loopVars := loopVarObjects(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tgt := appendTarget(pass, n); tgt != nil {
				if !sortedAfter(pass, funcBody, rs, tgt) {
					pass.Reportf(n.Pos(),
						"append to %q inside range over map: emission order follows map iteration order; sort the keys first, sort %q afterwards, or annotate //fusleepvet:unordered-ok",
						tgt.Name(), tgt.Name())
				}
				return true
			}
			if name, ok := orderedEmissionCall(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside range over map writes in map iteration order; iterate sorted keys or annotate //fusleepvet:unordered-ok", name)
			}
		case *ast.AssignStmt:
			checkFloatAccumulation(pass, n)
		case *ast.ReturnStmt:
			if len(n.Results) == 0 || len(loopVars) == 0 {
				return true
			}
			if referencesAny(pass, n, loopVars) {
				pass.Reportf(n.Pos(),
					"return inside range over map depends on which entry iterated first; iterate sorted keys or annotate //fusleepvet:unordered-ok")
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map delivers in map iteration order; iterate sorted keys or annotate //fusleepvet:unordered-ok")
		case *ast.FuncLit:
			// A nested function literal defers execution; its body's effects
			// are not this loop's iteration-order effects.
			return false
		}
		return true
	})
}

// appendTarget returns the object of x in `x = append(x, ...)` (or x :=),
// nil when call is not a self-append to a plain identifier.
func appendTarget(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[dst]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[dst]
}

// emissionMethods are method names whose call inside an unordered loop
// means ordered byte emission: writers, hashes, and streaming encoders.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true, "AddRow": true, "AddPoint": true,
}

// orderedEmissionCall reports calls that emit ordered output: fmt printing
// and writer/hash/encoder methods (including the report package's AddRow/
// AddPoint, whose rows render in insertion order).
func orderedEmissionCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !emissionMethods[sel.Sel.Name] {
		return "", false
	}
	// Package-level fmt.* / io.WriteString style calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			switch pkg.Imported().Path() {
			case "fmt", "io":
				return "call to " + pkg.Imported().Path() + "." + sel.Sel.Name, true
			default:
				return "", false
			}
		}
	}
	// Method calls on writers/hashes/builders/encoders/tables.
	return "call to method " + sel.Sel.Name, true
}

// checkFloatAccumulation flags compound floating-point accumulation, whose
// rounding depends on summation order.
func checkFloatAccumulation(pass *analysis.Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		if tv, ok := pass.TypesInfo.Types[lhs]; ok && analysis.IsFloat(tv.Type) {
			pass.Reportf(as.Pos(),
				"floating-point accumulation inside range over map is order-sensitive (FP addition does not associate); iterate sorted keys or annotate //fusleepvet:unordered-ok")
			return
		}
	}
}

// referencesAny reports whether the node mentions any of the objects.
func referencesAny(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortPackages are the packages whose calls count as sorting a slice.
var sortPackages = map[string]bool{"sort": true, "slices": true}

// sortedAfter reports whether, after the range statement in the same
// function body, the appended-to object is passed to a sort.*/slices.*
// call — the "append then sort" idiom that restores determinism.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || !sortPackages[pkg.Imported().Path()] {
			return true
		}
		for _, arg := range call.Args {
			if ref, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[ref] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
