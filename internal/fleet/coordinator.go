package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/telemetry"
)

// ErrUnknownWorker is returned to requests carrying a worker ID the
// coordinator does not know — never registered, expired after missed
// heartbeats, or deregistered. The worker's recovery is to re-register.
var ErrUnknownWorker = errors.New("unknown worker (expired or never registered)")

// Task is one cell the server wants evaluated somewhere in the fleet.
// Done is called exactly once — with the reporting worker's name on
// success, or "" when the outcome is a cancellation or the task joined
// nothing — and must not block.
type Task struct {
	Ctx  context.Context
	Cell fusleep.Cell
	Done func(worker string, res fusleep.CellResult, err error)
	// TraceID names the job trace the cell belongs to; it rides the wire
	// to workers and keys the coordinator's lifecycle events. Optional.
	TraceID string
}

// Config parameterizes a Coordinator.
type Config struct {
	// QueueDepth bounds each worker's pending (unleased) queue; a dispatch
	// that finds its target full blocks until a fetch frees a slot, which
	// is the backpressure that propagates to submit-time 429s.
	// Requeued work from a dead worker is exempt — losing a worker must
	// never deadlock the survivors — so queues can transiently overshoot.
	// Default 64.
	QueueDepth int
	// WorkerTTL is the heartbeat lease: a worker silent for longer is
	// expired and its queued and leased cells requeued over the survivors.
	// Fetch and report renew it too. Default 10s.
	WorkerTTL time.Duration
	// MaxWait caps a fetch long-poll. Default 30s.
	MaxWait time.Duration
	// Now is the clock; tests inject a fake to drive lease expiry
	// deterministically. Nil means time.Now.
	Now func() time.Time
	// Trace, when set, receives cell-lifecycle events (leased, evaluated,
	// reported, requeued). Nil disables tracing; the Recorder is nil-safe
	// so call sites need no guards.
	Trace *telemetry.Recorder
	// Logger receives membership and requeue decisions. Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 10 * time.Second
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	return c
}

// member is one registered worker.
type member struct {
	id       string
	name     string
	deadline time.Time
	queue    []*assignment          // dispatched, not yet fetched
	leased   map[uint64]*assignment // fetched, not yet reported
	wake     chan struct{}          // closed and replaced when queue gains work
	done     uint64
	failed   uint64
	// Latest heartbeat-reported worker telemetry (nil until one arrives).
	reported *WorkerStats
}

// assignment is one unit of fleet work: a distinct cell key, the tasks
// waiting on it (>1 after a duplicate-work join), and where it currently
// lives. Exactly one of owner/unassigned holds it until it is reported or
// every waiting task is canceled.
type assignment struct {
	key   string
	cell  fusleep.Cell
	tasks []Task
	owner *member
	lease uint64 // nonzero while fetched by owner
	trace string // job trace id from the first task, "" when tracing is off
}

// canceled reports whether every waiting task has been canceled, making
// the assignment prunable.
func (a *assignment) canceled() bool {
	for _, t := range a.tasks {
		if t.Ctx.Err() == nil {
			return false
		}
	}
	return true
}

// Stats is a point-in-time snapshot of the fleet's state and counters.
type Stats struct {
	Workers    int
	Queued     int
	Leased     int
	Unassigned int
	Dispatched uint64 // assignments created (joins excluded)
	Joins      uint64 // tasks that joined an in-flight assignment
	Completed  uint64 // assignments reported successfully
	Failed     uint64 // assignments reported as errors
	Requeues   uint64 // assignments requeued off a dead worker
	Rebalanced uint64 // queued assignments moved to a joining worker
	Expired    uint64 // workers expired after missed heartbeats
	Stale      uint64 // reports discarded because their lease was requeued
}

// Coordinator owns the fleet side of a coordinator-role server: worker
// membership, rendezvous routing, per-worker bounded queues, leases, and
// requeue on worker death. It never dials workers; they pull via
// Fetch/Report.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	onResult func(key string, res fusleep.CellResult)
	workers  map[string]*member
	live     []string // sorted ids of live workers
	seq      uint64   // worker id allocator
	leaseSeq uint64
	byKey    map[string]*assignment // every live assignment, for duplicate join
	orphans  []*assignment          // work with no live worker to hold it
	space    chan struct{}          // closed and replaced when capacity may have freed

	stats Stats
}

// NewCoordinator builds an empty coordinator.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		workers: make(map[string]*member),
		byKey:   make(map[string]*assignment),
		space:   make(chan struct{}),
	}
}

// SetOnResult arms the hook invoked once per successfully reported
// assignment, before its result fans out to the waiting tasks; the server
// uses it to journal results into the content-addressed store. Set it
// before dispatching.
func (c *Coordinator) SetOnResult(fn func(key string, res fusleep.CellResult)) {
	c.mu.Lock()
	c.onResult = fn
	c.mu.Unlock()
}

// SetTrace arms the cell-lifecycle trace recorder; the server injects its
// recorder here after New. Set it before dispatching.
func (c *Coordinator) SetTrace(rec *telemetry.Recorder) {
	c.mu.Lock()
	c.cfg.Trace = rec
	c.mu.Unlock()
}

// SetLogger replaces the coordinator's structured logger; the server
// injects its logger here after New.
func (c *Coordinator) SetLogger(l *slog.Logger) {
	c.mu.Lock()
	c.cfg.Logger = l
	c.mu.Unlock()
}

// discardLogger swallows log records when no Logger is configured.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// logger resolves the configured logger.
func (c *Coordinator) logger() *slog.Logger {
	if c.cfg.Logger != nil {
		return c.cfg.Logger
	}
	return discardLogger
}

// now resolves the injectable clock.
func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now() //fusleepvet:nondet-ok lease bookkeeping wall clock; results never depend on it
}

// TTL returns the worker heartbeat lease.
func (c *Coordinator) TTL() time.Duration { return c.cfg.WorkerTTL }

// wakeLocked signals a worker's long-polling fetcher. Callers hold c.mu.
func (c *Coordinator) wakeLocked(m *member) {
	close(m.wake)
	m.wake = make(chan struct{})
}

// spaceLocked signals blocked dispatchers that capacity may have freed.
// Callers hold c.mu.
func (c *Coordinator) spaceLocked() {
	close(c.space)
	c.space = make(chan struct{})
}

// pickLocked routes a key to its live worker by rendezvous hashing, or
// nil when no workers are live. Callers hold c.mu.
func (c *Coordinator) pickLocked(key string) *member {
	id := RendezvousPick(key, c.live)
	if id == "" {
		return nil
	}
	return c.workers[id]
}

// Register adds a worker and rebalances: queued (unleased) work whose
// rendezvous pick is now the new worker moves over, and orphaned work is
// re-routed. Returns the assigned worker ID and the heartbeat TTL.
func (c *Coordinator) Register(name string) (string, time.Duration) {
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("w-%06d", c.seq)
	m := &member{
		id: id, name: name,
		deadline: c.now().Add(c.cfg.WorkerTTL),
		leased:   make(map[uint64]*assignment),
		wake:     make(chan struct{}),
	}
	c.workers[id] = m
	at := sort.SearchStrings(c.live, id)
	c.live = append(c.live, "")
	copy(c.live[at+1:], c.live[at:])
	c.live[at] = id
	// Rebalance: only unleased queue entries move — yanking a fetched cell
	// back from a live worker would duplicate work, and the stability
	// property says only ~1/N keys pick the newcomer anyway.
	for _, other := range c.workers {
		if other == m {
			continue
		}
		kept := other.queue[:0]
		for _, a := range other.queue {
			if c.pickLocked(a.key) == m {
				a.owner = m
				m.queue = append(m.queue, a)
				c.stats.Rebalanced++
			} else {
				kept = append(kept, a)
			}
		}
		other.queue = kept
	}
	for _, a := range c.orphans {
		t := c.pickLocked(a.key)
		a.owner = t
		t.queue = append(t.queue, a)
	}
	c.orphans = nil
	if len(m.queue) > 0 {
		c.wakeLocked(m)
	}
	c.spaceLocked()
	ttl := c.cfg.WorkerTTL
	rebalanced := len(m.queue)
	c.mu.Unlock()
	c.logger().Info("fleet worker registered",
		"worker", id, "name", name, "ttl", ttl, "rebalanced", rebalanced)
	return id, ttl
}

// Heartbeat renews a worker's lease; stats, when non-nil, replaces the
// worker's self-reported telemetry snapshot.
func (c *Coordinator) Heartbeat(id string, stats *WorkerStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	m.deadline = c.now().Add(c.cfg.WorkerTTL)
	if stats != nil {
		m.reported = stats
	}
	return nil
}

// Deregister removes a worker gracefully (the heartbeat Bye), requeueing
// its outstanding work immediately.
func (c *Coordinator) Deregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	c.removeLocked(m, "worker deregistered")
	return nil
}

// removeLocked drops a worker from membership and requeues everything it
// held over the survivors, tagging each requeue trace event with reason.
// Callers hold c.mu.
func (c *Coordinator) removeLocked(m *member, reason string) {
	delete(c.workers, m.id)
	if at := sort.SearchStrings(c.live, m.id); at < len(c.live) && c.live[at] == m.id {
		c.live = append(c.live[:at], c.live[at+1:]...)
	}
	orphans := m.queue
	leases := make([]uint64, 0, len(m.leased))
	for l := range m.leased {
		leases = append(leases, l)
	}
	// Requeue leased work in lease order so recovery is deterministic.
	sort.Slice(leases, func(i, j int) bool { return leases[i] < leases[j] })
	for _, l := range leases {
		orphans = append(orphans, m.leased[l])
	}
	m.queue, m.leased = nil, make(map[uint64]*assignment)
	woken := map[*member]bool{}
	for _, a := range orphans {
		a.lease = 0
		// Requeue ignores QueueDepth on purpose: survivor queues may
		// transiently overshoot, but a dead worker's cells must land
		// somewhere without blocking inside the lock.
		if t := c.pickLocked(a.key); t != nil {
			a.owner = t
			t.queue = append(t.queue, a)
			woken[t] = true
		} else {
			a.owner = nil
			c.orphans = append(c.orphans, a)
		}
		c.stats.Requeues++
		if a.trace != "" {
			c.cfg.Trace.Record(a.trace, telemetry.Event{
				Stage: telemetry.StageRequeued, Key: a.key,
				Worker: m.id, Detail: reason,
			})
		}
	}
	for t := range woken {
		c.wakeLocked(t)
	}
	c.spaceLocked()
	c.logger().Info("fleet worker removed",
		"worker", m.id, "name", m.name, "reason", reason, "requeued", len(orphans))
}

// expireLocked removes every worker whose heartbeat lease has lapsed.
// Callers hold c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	var dead []*member
	for _, m := range c.workers {
		if m.deadline.Before(now) {
			dead = append(dead, m)
		}
	}
	// Deterministic removal order keeps requeue placement reproducible
	// when several workers expire in one tick.
	sort.Slice(dead, func(i, j int) bool { return dead[i].id < dead[j].id })
	for _, m := range dead {
		c.removeLocked(m, "lease expired")
		c.stats.Expired++
	}
}

// Expire runs lease expiry now; the server ticks it periodically.
func (c *Coordinator) Expire() {
	c.mu.Lock()
	c.expireLocked(c.now())
	c.mu.Unlock()
}

// Dispatch routes one task into the fleet: joining an in-flight
// assignment for the same cell key if one exists, otherwise queueing a
// new assignment on the key's rendezvous worker. It blocks while the
// target queue is full — the fleet's backpressure — and returns the
// task's context error if it is canceled while waiting. With no live
// workers the task parks on the orphan list and is routed when a worker
// registers.
func (c *Coordinator) Dispatch(t Task) error {
	key := t.Cell.Key()
	for {
		c.mu.Lock()
		c.expireLocked(c.now())
		if a, ok := c.byKey[key]; ok {
			a.tasks = append(a.tasks, t)
			c.stats.Joins++
			c.mu.Unlock()
			return nil
		}
		m := c.pickLocked(key)
		if m == nil {
			a := &assignment{key: key, cell: t.Cell, tasks: []Task{t}, trace: t.TraceID}
			c.byKey[key] = a
			c.orphans = append(c.orphans, a)
			c.stats.Dispatched++
			c.mu.Unlock()
			return nil
		}
		if len(m.queue) < c.cfg.QueueDepth {
			a := &assignment{key: key, cell: t.Cell, tasks: []Task{t}, owner: m, trace: t.TraceID}
			c.byKey[key] = a
			m.queue = append(m.queue, a)
			c.stats.Dispatched++
			c.wakeLocked(m)
			c.mu.Unlock()
			return nil
		}
		space := c.space
		c.mu.Unlock()
		//fusleepvet:nondet-ok backpressure wait; dispatch re-evaluates routing from scratch either way
		select {
		case <-space:
		case <-t.Ctx.Done():
			return t.Ctx.Err()
		}
	}
}

// Fetch leases up to max queued cells to the worker, long-polling up to
// wait (capped at Config.MaxWait) when its queue is empty. An empty
// response means the poll timed out; the worker just fetches again.
func (c *Coordinator) Fetch(ctx context.Context, id string, max int, wait time.Duration) ([]LeaseCell, error) {
	if max <= 0 {
		max = 1
	}
	if wait < 0 {
		wait = 0
	}
	if wait > c.cfg.MaxWait {
		wait = c.cfg.MaxWait
	}
	deadline := c.now().Add(wait)
	for {
		c.mu.Lock()
		now := c.now()
		c.expireLocked(now)
		m, ok := c.workers[id]
		if !ok {
			c.mu.Unlock()
			return nil, ErrUnknownWorker
		}
		m.deadline = now.Add(c.cfg.WorkerTTL)
		canceled := c.pruneQueueLocked(m)
		var out []LeaseCell
		for len(m.queue) > 0 && len(out) < max {
			a := m.queue[0]
			m.queue = m.queue[1:]
			c.leaseSeq++
			a.lease = c.leaseSeq
			m.leased[a.lease] = a
			out = append(out, LeaseCell{
				Lease: a.lease, Key: a.key, Cell: a.cell,
				TraceID: a.trace, ParentSpan: a.lease,
			})
			if a.trace != "" {
				c.cfg.Trace.Record(a.trace, telemetry.Event{
					Stage: telemetry.StageLeased, Key: a.key, Worker: id,
				})
			}
		}
		if len(out) > 0 || len(canceled) > 0 {
			c.spaceLocked()
		}
		wake := m.wake
		c.mu.Unlock()
		deliverCanceled(canceled)
		if len(out) > 0 {
			return out, nil
		}
		remain := deadline.Sub(c.now())
		if remain <= 0 {
			return nil, nil
		}
		timer := time.NewTimer(remain)
		//fusleepvet:nondet-ok long-poll wait; every arm leads back to the same queue inspection
		select {
		case <-wake:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
			return nil, nil
		}
		timer.Stop()
	}
}

// pruneQueueLocked drops queue assignments whose every waiter is
// canceled, returning them for out-of-lock delivery. Callers hold c.mu.
func (c *Coordinator) pruneQueueLocked(m *member) []*assignment {
	var gone []*assignment
	kept := m.queue[:0]
	for _, a := range m.queue {
		if a.canceled() {
			delete(c.byKey, a.key)
			gone = append(gone, a)
		} else {
			kept = append(kept, a)
		}
	}
	m.queue = kept
	return gone
}

// deliverCanceled settles pruned assignments: every waiter gets its own
// context error.
func deliverCanceled(gone []*assignment) {
	for _, a := range gone {
		for _, t := range a.tasks {
			t.Done("", fusleep.CellResult{}, t.Ctx.Err())
		}
	}
}

// Report settles previously leased cells. Reports whose lease the
// coordinator no longer holds — the worker was presumed dead and its work
// requeued — are counted stale and discarded; the requeued copy (or the
// result store) wins.
func (c *Coordinator) Report(id string, results []CellReport) (accepted int, err error) {
	type fan struct {
		a   *assignment
		res fusleep.CellResult
		err error
	}
	c.mu.Lock()
	m, ok := c.workers[id]
	if !ok {
		c.mu.Unlock()
		return 0, ErrUnknownWorker
	}
	m.deadline = c.now().Add(c.cfg.WorkerTTL)
	var fans []fan
	for _, r := range results {
		a, ok := m.leased[r.Lease]
		if !ok {
			c.stats.Stale++
			continue
		}
		delete(m.leased, r.Lease)
		delete(c.byKey, a.key)
		accepted++
		if a.trace != "" {
			// Splice the worker-measured attempt spans in first (explicit
			// durations), then stamp the reported event, whose local delta
			// measures the full leased-to-reported round trip.
			for _, sp := range r.Trace {
				c.cfg.Trace.Record(a.trace, telemetry.Event{
					Stage: telemetry.StageEvaluated, Key: a.key, Worker: id,
					Attempt: sp.Attempt, Seconds: sp.Seconds, Err: sp.Error,
				})
			}
			ev := telemetry.Event{Stage: telemetry.StageReported, Key: a.key, Worker: id}
			if r.Error != nil {
				ev.Err = r.Error.Message
			}
			c.cfg.Trace.Record(a.trace, ev)
		}
		if r.Error != nil {
			m.failed++
			c.stats.Failed++
			fans = append(fans, fan{a: a, err: r.Error.Err()})
		} else {
			m.done++
			c.stats.Completed++
			var res fusleep.CellResult
			if r.Result != nil {
				res = *r.Result
			}
			fans = append(fans, fan{a: a, res: res})
		}
	}
	name := m.name
	if name == "" {
		name = m.id
	}
	onResult := c.onResult
	c.mu.Unlock()
	for _, f := range fans {
		if f.err == nil && onResult != nil {
			onResult(f.a.key, f.res)
		}
		for _, t := range f.a.tasks {
			// A task canceled while its cell was in flight settles with its
			// own context error, exactly like the embedded queue.
			if cerr := t.Ctx.Err(); cerr != nil {
				t.Done("", fusleep.CellResult{}, cerr)
			} else if f.err != nil {
				t.Done(name, fusleep.CellResult{}, f.err)
			} else {
				t.Done(name, f.res, nil)
			}
		}
	}
	return accepted, nil
}

// Quiesce blocks until no assignments remain — queued, leased, or
// orphaned — expiring dead workers and pruning fully canceled work as it
// polls. The server's drain calls it after the feeders stop, mirroring
// the embedded queue's drain-to-empty.
func (c *Coordinator) Quiesce(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		c.mu.Lock()
		c.expireLocked(c.now())
		var gone []*assignment
		for _, m := range c.workers {
			gone = append(gone, c.pruneQueueLocked(m)...)
		}
		kept := c.orphans[:0]
		for _, a := range c.orphans {
			if a.canceled() {
				delete(c.byKey, a.key)
				gone = append(gone, a)
			} else {
				kept = append(kept, a)
			}
		}
		c.orphans = kept
		empty := len(c.byKey) == 0
		if len(gone) > 0 {
			c.spaceLocked()
		}
		c.mu.Unlock()
		deliverCanceled(gone)
		if empty {
			return nil
		}
		if err := SleepCtx(ctx, poll); err != nil {
			return err
		}
	}
}

// Stats snapshots the fleet counters and gauges.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Workers = len(c.workers)
	st.Unassigned = len(c.orphans)
	for _, m := range c.workers {
		st.Queued += len(m.queue)
		st.Leased += len(m.leased)
	}
	return st
}

// Workers lists the registered workers, sorted by ID.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.live))
	for _, id := range c.live {
		m := c.workers[id]
		wi := WorkerInfo{
			ID: m.id, Name: m.name,
			Queued: len(m.queue), Leased: len(m.leased),
			Done: m.done, Failed: m.failed,
		}
		if m.reported != nil {
			wi.Inflight = m.reported.Inflight
			wi.Evaluated = m.reported.Evaluated
		}
		out = append(out, wi)
	}
	return out
}
