package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
)

// RetryPolicy schedules bounded backoff for transiently failing cells.
// Delays are exponential with deterministic jitter: the jitter derives
// from (seed, cell key, attempt), so a replayed run backs off exactly the
// same way — no shared RNG, no wall clock — while concurrently retrying
// cells still spread out instead of thundering in lockstep.
type RetryPolicy struct {
	// MaxRetries is how many additional attempts a transient failure gets
	// after the first (0 = fail fast).
	MaxRetries int
	// Base is the first retry's nominal delay (default 10ms); attempt n
	// waits Base·2^(n-1), capped at Max (default 2s).
	Base time.Duration
	Max  time.Duration
	// Seed parameterizes the jitter hash.
	Seed uint64
}

// Delay returns the backoff before the retry that follows failing attempt
// n (1-based): the nominal exponential delay scaled into [50%, 100%) by
// the deterministic jitter.
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	d := p.Base
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	ceil := p.Max
	if ceil <= 0 {
		ceil = 2 * time.Second
	}
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := p.Seed ^ h.Sum64() ^ (uint64(attempt) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	frac := 0.5 + 0.5*float64(x>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// SleepCtx is the production sleep used between retry attempts; tests
// inject a recording fake through Executor.Sleep.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	//fusleepvet:nondet-ok bounded retry backoff; whichever arm wins, the outcome is the same evaluation
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Executor is the role-agnostic cell evaluation path: fault injection,
// panic containment, the optional per-cell deadline, and bounded retry
// with deterministically jittered backoff. The standalone daemon's
// embedded shard workers and remote fleet workers run the exact same
// Executor, which is what makes a fleet's results byte-identical to a
// standalone run.
type Executor struct {
	// Engine executes the cells. Required.
	Engine *fusleep.Engine
	// Retry schedules backoff for transient failures.
	Retry RetryPolicy
	// CellTimeout bounds each evaluation attempt; a cell that exceeds it
	// fails permanently with a typed timeout CellError (0 = no deadline).
	CellTimeout time.Duration
	// Fault arms the evaluation fault-injection points for chaos tests;
	// nil (production) injects nothing.
	Fault *fault.Injector
	// Sleep waits between retry attempts (and inside injected stalls);
	// tests replace it with a recording fake. Nil means SleepCtx.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, is called once per retried attempt with the
	// cell key, the attempt that just failed, and the backoff about to be
	// slept (metrics and tracing).
	OnRetry func(key string, attempt int, delay time.Duration)
	// OnAttempt, when set, observes every finished evaluation attempt:
	// the cell key, attempt number, measured duration, and outcome. The
	// standalone server feeds latency histograms through it; fleet
	// workers collect the spans it sees into their reports.
	OnAttempt func(key string, attempt int, seconds float64, err error)
}

// sleep resolves the injectable sleep.
func (e *Executor) sleep(ctx context.Context, d time.Duration) error {
	if e.Sleep != nil {
		return e.Sleep(ctx, d)
	}
	return SleepCtx(ctx, d)
}

// EvalCell runs one cell with full failure containment. Permanent failures
// (validation errors, panics, deadline hits) and job-context cancellation
// return immediately; transient failures retry up to Retry.MaxRetries
// times.
func (e *Executor) EvalCell(ctx context.Context, c fusleep.Cell) (fusleep.CellResult, error) {
	attempts := e.Retry.MaxRetries + 1
	var res fusleep.CellResult
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		start := time.Now() //fusleepvet:nondet-ok attempt latency observation; never feeds results
		res, err = e.runOnce(ctx, c, attempt)
		if e.OnAttempt != nil {
			e.OnAttempt(c.Key(), attempt, time.Since(start).Seconds(), err)
		}
		if err == nil || ctx.Err() != nil ||
			!fusleep.IsTransientCellError(err) || attempt == attempts {
			return res, err
		}
		delay := e.Retry.Delay(c.Key(), attempt)
		if e.OnRetry != nil {
			e.OnRetry(c.Key(), attempt, delay)
		}
		if serr := e.sleep(ctx, delay); serr != nil {
			return fusleep.CellResult{}, serr
		}
	}
	return res, err
}

// runOnce is a single contained evaluation attempt.
func (e *Executor) runOnce(ctx context.Context, c fusleep.Cell, attempt int) (res fusleep.CellResult, err error) {
	runCtx := ctx
	if e.CellTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, e.CellTimeout)
		defer cancel()
	}
	// A panicking evaluation must not take its worker down with it; it
	// becomes a typed, permanent cell failure.
	defer func() {
		if r := recover(); r != nil {
			res = fusleep.CellResult{}
			err = &fusleep.CellError{
				Key: c.Key(), Attempt: attempt, Panicked: true,
				Err: fmt.Errorf("recovered panic: %v", r),
			}
		}
	}()
	if d := e.Fault.DelayFor(fault.CellSlow); d > 0 {
		if serr := e.sleep(runCtx, d); serr != nil {
			return fusleep.CellResult{}, e.classify(ctx, runCtx, c, attempt, serr)
		}
	}
	if e.Fault.Fire(fault.CellPanic) {
		panic("injected: " + fault.CellPanic)
	}
	if e.Fault.Fire(fault.CellTransient) {
		return fusleep.CellResult{}, &fusleep.CellError{
			Key: c.Key(), Attempt: attempt, Transient: true, Err: fault.ErrTransient,
		}
	}
	res, err = e.Engine.RunCell(runCtx, c)
	if err != nil {
		return fusleep.CellResult{}, e.classify(ctx, runCtx, c, attempt, err)
	}
	return res, nil
}

// classify wraps an attempt's error: when the per-cell deadline expired
// while the job's own context was still live, the cell — not the job —
// timed out, and that is a typed, permanent CellError.
func (e *Executor) classify(jobCtx, runCtx context.Context, c fusleep.Cell, attempt int, err error) error {
	if jobCtx.Err() == nil && errors.Is(runCtx.Err(), context.DeadlineExceeded) {
		return &fusleep.CellError{Key: c.Key(), Attempt: attempt, Timeout: true, Err: err}
	}
	return err
}
