// Package fleet turns fusleepd into a coordinator/worker fleet: one
// coordinator owns job intake, the job WAL, and the content-addressed
// result store, while N workers — remote processes that dial the
// coordinator over a versioned JSON wire protocol — execute the cells.
//
// # Routing
//
// Cells route to workers by rendezvous (highest-random-weight) hashing on
// the stable Cell.Key: every dispatch scores the key against each live
// worker and picks the maximum, so identical cells — across jobs, requests,
// and clients — always land on the same worker and deduplicate there, and
// a membership change moves only the ~1/N of keys whose maximum changed.
// A second dispatch of a key already in flight joins the first (fleet-wide
// duplicate-work join): one execution fans its result out to every waiter.
//
// # Flow control and fault tolerance
//
// Each worker has a bounded pending queue; a dispatch that finds its
// target queue full blocks the feeder, which propagates through the
// server's admission control to 429 + Retry-After at submit. Workers pull
// work (register → heartbeat → fetch → report), so the coordinator never
// dials them. Fetched cells are leased: if a worker misses enough
// heartbeats its leases and queue are requeued over the survivors, and
// because completed cells are journaled in the result store as they are
// reported, a requeued replay of already-finished work is served from the
// store instead of recomputed.
//
// # Roles
//
// The same evaluation path — Executor: fault injection, panic containment,
// per-cell deadline, bounded deterministically jittered retry — backs both
// the embedded single-process daemon (-role=standalone) and remote workers
// (-role=worker), so a fleet computes byte-identical results to a
// standalone run of the same grid.
package fleet
