package fleet

import (
	"errors"
	"fmt"

	"github.com/archsim/fusleep"
)

// ProtocolVersion is the fleet wire protocol's version. Every request a
// worker sends carries it in the "v" field; a coordinator speaking a
// different version rejects the request with the version_mismatch error
// code instead of mis-parsing it, so mixed-version fleets fail loudly at
// registration rather than subtly mid-sweep.
const ProtocolVersion = 1

// Error codes carried in the canonical JSON error envelope. The daemon
// returns the same envelope from every endpoint — validation, shedding,
// not-found, and the fleet protocol alike.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeMethod        = "method_not_allowed"
	CodeGridTooLarge  = "grid_too_large"
	CodeBacklogFull   = "backlog_full"
	CodeDraining      = "draining"
	CodeVersion       = "version_mismatch"
	CodeUnknownWorker = "unknown_worker"
)

// APIError is the canonical JSON error envelope every fusleepd endpoint
// returns: {"error": {"code": "...", "message": "..."}}.
type APIError struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the envelope's payload: a stable machine-readable code and
// a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// NewAPIError builds the envelope.
func NewAPIError(code, message string) APIError {
	return APIError{Error: ErrorBody{Code: code, Message: message}}
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	V int `json:"v"`
	// Name is a human-readable label (hostname, container id); the
	// coordinator assigns the authoritative worker ID.
	Name string `json:"name,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	V int `json:"v"`
	// ID is the coordinator-assigned worker identity; every subsequent
	// request carries it, and rendezvous routing hashes against it.
	ID string `json:"id"`
	// TTLMillis is the heartbeat lease: a worker silent for longer is
	// expired and its work requeued. Workers should heartbeat at a
	// comfortable fraction of this (fetch and report also renew it).
	TTLMillis int64 `json:"ttlMillis"`
}

// HeartbeatRequest renews a worker's lease; with Bye set it instead
// deregisters the worker gracefully, requeueing its outstanding work
// immediately rather than after a lease timeout.
type HeartbeatRequest struct {
	V   int    `json:"v"`
	ID  string `json:"id"`
	Bye bool   `json:"bye,omitempty"`
	// Stats, when present, is the worker's self-reported telemetry; the
	// coordinator exports it per worker on /metrics. Optional, so
	// heartbeats from older workers still parse.
	Stats *WorkerStats `json:"stats,omitempty"`
}

// WorkerStats is a worker's self-reported telemetry snapshot, carried on
// heartbeats.
type WorkerStats struct {
	// Inflight is how many cells the worker is evaluating right now.
	Inflight int `json:"inflight"`
	// Evaluated counts evaluation attempts the worker has finished
	// (retries count separately).
	Evaluated uint64 `json:"evaluated"`
	// Failed counts attempts that ended in an error.
	Failed uint64 `json:"failed"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	V  int  `json:"v"`
	OK bool `json:"ok"`
}

// FetchRequest asks for up to Max leased cells, long-polling for up to
// WaitMillis when the worker's queue is empty.
type FetchRequest struct {
	V          int    `json:"v"`
	ID         string `json:"id"`
	Max        int    `json:"max,omitempty"`
	WaitMillis int64  `json:"waitMillis,omitempty"`
}

// FetchResponse carries the leased cells; empty when the long poll timed
// out with nothing queued.
type FetchResponse struct {
	V     int         `json:"v"`
	Cells []LeaseCell `json:"cells,omitempty"`
}

// LeaseCell is one leased unit of work: the cell to evaluate and the lease
// token the worker must echo when reporting. A report whose lease the
// coordinator no longer holds (the worker was expired and the cell
// requeued) is acknowledged but discarded.
type LeaseCell struct {
	Lease uint64       `json:"lease"`
	Key   string       `json:"key"`
	Cell  fusleep.Cell `json:"cell"`
	// TraceID is the job trace the cell belongs to; workers echo it on
	// the spans they report. Optional, so mixed builds interoperate.
	TraceID string `json:"traceId,omitempty"`
	// ParentSpan links worker-side spans back to the coordinator-side
	// lease; fusleepd sets it to the lease token.
	ParentSpan uint64 `json:"parentSpan,omitempty"`
}

// ReportRequest returns evaluation outcomes for previously fetched cells.
type ReportRequest struct {
	V       int          `json:"v"`
	ID      string       `json:"id"`
	Results []CellReport `json:"results"`
}

// CellReport is one cell's outcome: exactly one of Result or Error is set.
type CellReport struct {
	Lease uint64 `json:"lease"`
	Key   string `json:"key"`
	// Result is the evaluated cell, marshaled exactly as the worker's
	// engine produced it; encoding/json's shortest-round-trip float
	// encoding makes the coordinator's re-encoding byte-identical to a
	// local evaluation.
	Result *fusleep.CellResult `json:"result,omitempty"`
	Error  *WireError          `json:"error,omitempty"`
	// Trace carries the worker-side evaluation spans (one per attempt)
	// so the coordinator can splice remote timing into the job trace.
	// Optional; coordinators ignore it when tracing is off.
	Trace []WireSpan `json:"trace,omitempty"`
}

// WireSpan is one worker-measured span: a single evaluation attempt's
// stage, duration, and outcome.
type WireSpan struct {
	Stage   string  `json:"stage"`
	Attempt int     `json:"attempt,omitempty"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	V int `json:"v"`
	// Accepted counts the reports whose leases were still live; the rest
	// were requeued in the meantime and the worker's answer was discarded.
	Accepted int `json:"accepted"`
}

// WireError carries a cell failure across the wire with enough structure
// to rebuild the typed CellError the local evaluation path would have
// produced, so retry classification and job error strings match the
// standalone daemon's.
type WireError struct {
	Message   string `json:"message"`
	Key       string `json:"key,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	Panicked  bool   `json:"panicked,omitempty"`
	Timeout   bool   `json:"timeout,omitempty"`
	// Cell marks errors that were typed *fusleep.CellError on the worker;
	// untyped errors rebuild as plain errors instead.
	Cell bool `json:"cell,omitempty"`
}

// ToWireError converts an evaluation error for transport.
func ToWireError(err error) *WireError {
	if err == nil {
		return nil
	}
	we := &WireError{Message: err.Error()}
	var ce *fusleep.CellError
	if errors.As(err, &ce) {
		we.Cell = true
		we.Key = ce.Key
		we.Attempt = ce.Attempt
		we.Transient = ce.Transient
		we.Panicked = ce.Panicked
		we.Timeout = ce.Timeout
		if ce.Err != nil {
			we.Message = ce.Err.Error()
		}
	}
	return we
}

// Err rebuilds the transported error.
func (we *WireError) Err() error {
	if we == nil {
		return nil
	}
	if we.Cell {
		return &fusleep.CellError{
			Key: we.Key, Attempt: we.Attempt,
			Transient: we.Transient, Panicked: we.Panicked, Timeout: we.Timeout,
			Err: fmt.Errorf("%s", we.Message),
		}
	}
	return fmt.Errorf("%s", we.Message)
}

// WorkerInfo is one registered worker in the GET /v1/fleet/workers
// listing.
type WorkerInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Queued int    `json:"queued"`
	Leased int    `json:"leased"`
	// Done counts the assignments this worker has reported successfully.
	Done uint64 `json:"done"`
	// Failed counts the assignments this worker reported as errors.
	Failed uint64 `json:"failed"`
	// Inflight and Evaluated mirror the worker's latest heartbeat-reported
	// WorkerStats (zero until the worker sends one).
	Inflight  int    `json:"inflight,omitempty"`
	Evaluated uint64 `json:"evaluated,omitempty"`
}
