package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/archsim/fusleep"
)

// fakeClock drives the coordinator's lease machinery deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2002, 12, 2, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// testCells expands a small grid into distinct cells for routing tests.
func testCells(t *testing.T, n int) []fusleep.Cell {
	t.Helper()
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	cells := eng.Cells(fusleep.Grid{
		Benchmarks: []string{"gcc"},
		FUCounts:   []int{1, 2, 3, 4, 5, 6},
		Window:     testWindow,
	})
	if len(cells) < n {
		t.Fatalf("grid expanded to %d cells, need %d", len(cells), n)
	}
	return cells[:n]
}

// outcome captures one task's Done call.
type outcome struct {
	worker string
	res    fusleep.CellResult
	err    error
}

// dispatchTask dispatches a cell and returns the channel its Done fills.
func dispatchTask(t *testing.T, c *Coordinator, ctx context.Context, cell fusleep.Cell) <-chan outcome {
	t.Helper()
	ch := make(chan outcome, 1)
	err := c.Dispatch(Task{Ctx: ctx, Cell: cell, Done: func(worker string, res fusleep.CellResult, err error) {
		ch <- outcome{worker, res, err}
	}})
	if err != nil {
		t.Fatalf("Dispatch(%s) = %v", cell.Key(), err)
	}
	return ch
}

// fetchAll drains a worker's queue without long-polling.
func fetchAll(t *testing.T, c *Coordinator, id string) []LeaseCell {
	t.Helper()
	cells, err := c.Fetch(context.Background(), id, 100, 0)
	if err != nil {
		t.Fatalf("Fetch(%s) = %v", id, err)
	}
	return cells
}

func TestCoordinatorRoundtrip(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	var journaled []string
	c.SetOnResult(func(key string, res fusleep.CellResult) { journaled = append(journaled, key) })

	id, ttl := c.Register("alpha")
	if id == "" || ttl != 10*time.Second {
		t.Fatalf("Register = %q, %v", id, ttl)
	}
	cell := testCells(t, 1)[0]
	done := dispatchTask(t, c, context.Background(), cell)

	leased := fetchAll(t, c, id)
	if len(leased) != 1 || leased[0].Key != cell.Key() {
		t.Fatalf("leased %+v, want the dispatched cell", leased)
	}
	want := fusleep.CellResult{Cell: cell, RelEnergy: 0.5, LeakageFraction: 0.25}
	accepted, err := c.Report(id, []CellReport{{Lease: leased[0].Lease, Key: leased[0].Key, Result: &want}})
	if err != nil || accepted != 1 {
		t.Fatalf("Report = %d, %v", accepted, err)
	}
	got := <-done
	if got.err != nil || got.worker != "alpha" || got.res.RelEnergy != 0.5 {
		t.Fatalf("outcome = %+v", got)
	}
	if len(journaled) != 1 || journaled[0] != cell.Key() {
		t.Fatalf("onResult saw %v", journaled)
	}
	st := c.Stats()
	if st.Dispatched != 1 || st.Completed != 1 || st.Queued != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoordinatorErrorReportRebuildsTypedError(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	id, _ := c.Register("")
	cell := testCells(t, 1)[0]
	done := dispatchTask(t, c, context.Background(), cell)
	leased := fetchAll(t, c, id)

	wireErr := ToWireError(&fusleep.CellError{Key: cell.Key(), Attempt: 3, Transient: true, Err: errors.New("boom")})
	if _, err := c.Report(id, []CellReport{{Lease: leased[0].Lease, Key: leased[0].Key, Error: wireErr}}); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got.worker != id {
		t.Errorf("unnamed worker should report under its id, got %q", got.worker)
	}
	var ce *fusleep.CellError
	if !errors.As(got.err, &ce) || !ce.Transient || ce.Attempt != 3 {
		t.Fatalf("error %v did not rebuild as the typed transient CellError", got.err)
	}
	if st := c.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoordinatorDuplicateDispatchJoins(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	id, _ := c.Register("w")
	cell := testCells(t, 1)[0]
	d1 := dispatchTask(t, c, context.Background(), cell)
	d2 := dispatchTask(t, c, context.Background(), cell)

	leased := fetchAll(t, c, id)
	if len(leased) != 1 {
		t.Fatalf("duplicate dispatch leased %d cells, want 1", len(leased))
	}
	res := fusleep.CellResult{Cell: cell, RelEnergy: 0.7}
	if _, err := c.Report(id, []CellReport{{Lease: leased[0].Lease, Key: leased[0].Key, Result: &res}}); err != nil {
		t.Fatal(err)
	}
	for i, ch := range []<-chan outcome{d1, d2} {
		if got := <-ch; got.err != nil || got.res.RelEnergy != 0.7 {
			t.Fatalf("waiter %d outcome = %+v", i, got)
		}
	}
	if st := c.Stats(); st.Joins != 1 || st.Dispatched != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoordinatorBackpressureBlocksDispatch(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now, QueueDepth: 2})
	id, _ := c.Register("w")
	cells := testCells(t, 4)
	for _, cell := range cells[:2] {
		dispatchTask(t, c, context.Background(), cell)
	}

	// The third distinct cell must block until a fetch frees a slot.
	blocked := make(chan error, 1)
	go func() {
		blocked <- c.Dispatch(Task{Ctx: context.Background(), Cell: cells[2],
			Done: func(string, fusleep.CellResult, error) {}})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("dispatch into a full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if got, err := c.Fetch(context.Background(), id, 1, 0); err != nil || len(got) != 1 {
		t.Fatalf("Fetch = %v, %v", got, err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("unblocked dispatch = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch still blocked after a fetch freed a slot")
	}

	// A dispatch canceled while blocked returns the context error.
	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() {
		canceled <- c.Dispatch(Task{Ctx: ctx, Cell: cells[3],
			Done: func(string, fusleep.CellResult, error) {}})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-canceled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled dispatch = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled dispatch never returned")
	}
}

func TestCoordinatorOrphansRouteOnRegister(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	cell := testCells(t, 1)[0]
	done := dispatchTask(t, c, context.Background(), cell) // no workers yet

	if st := c.Stats(); st.Unassigned != 1 {
		t.Fatalf("stats = %+v, want 1 orphan", st)
	}
	id, _ := c.Register("late")
	leased := fetchAll(t, c, id)
	if len(leased) != 1 || leased[0].Key != cell.Key() {
		t.Fatalf("late worker leased %+v", leased)
	}
	res := fusleep.CellResult{Cell: cell, RelEnergy: 1}
	if _, err := c.Report(id, []CellReport{{Lease: leased[0].Lease, Key: leased[0].Key, Result: &res}}); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got.err != nil || got.worker != "late" {
		t.Fatalf("outcome = %+v", got)
	}
}

func TestCoordinatorRebalanceOnJoin(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now, QueueDepth: 100})
	first, _ := c.Register("first")
	cells := testCells(t, 6)
	for _, cell := range cells {
		dispatchTask(t, c, context.Background(), cell)
	}
	second, _ := c.Register("second")

	// Every queued cell must now sit on its rendezvous pick, and at least
	// one should have moved (6 keys over 2 workers).
	got := map[string]string{}
	for _, id := range []string{first, second} {
		for _, lc := range fetchAll(t, c, id) {
			got[lc.Key] = id
		}
	}
	if len(got) != len(cells) {
		t.Fatalf("fetched %d cells, want %d", len(got), len(cells))
	}
	for _, cell := range cells {
		key := cell.Key()
		if want := RendezvousPick(key, []string{first, second}); got[key] != want {
			t.Errorf("key %s on %s, rendezvous pick is %s", key, got[key], want)
		}
	}
	if st := c.Stats(); st.Rebalanced == 0 {
		t.Logf("note: no keys rebalanced (all %d picked the first worker)", len(cells))
	}
}

func TestCoordinatorExpiryRequeuesLeasedWork(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now, WorkerTTL: 10 * time.Second})
	w1, _ := c.Register("doomed")
	cell := testCells(t, 1)[0]
	done := dispatchTask(t, c, context.Background(), cell)
	leased := fetchAll(t, c, w1)
	if len(leased) != 1 {
		t.Fatalf("leased %+v", leased)
	}

	// A second worker joins; the first goes silent past its TTL.
	w2, _ := c.Register("survivor")
	clk.advance(9 * time.Second)
	if err := c.Heartbeat(w2, nil); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second) // w1's lease (t0+10s) has now lapsed
	c.Expire()

	st := c.Stats()
	if st.Expired != 1 || st.Requeues != 1 || st.Workers != 1 {
		t.Fatalf("stats after expiry = %+v", st)
	}
	// The survivor inherits the in-flight cell under a fresh lease.
	requeued := fetchAll(t, c, w2)
	if len(requeued) != 1 || requeued[0].Key != cell.Key() || requeued[0].Lease == leased[0].Lease {
		t.Fatalf("requeued = %+v (original lease %d)", requeued, leased[0].Lease)
	}
	// The dead worker's late report bounces: it must re-register.
	res := fusleep.CellResult{Cell: cell, RelEnergy: 0.9}
	if _, err := c.Report(w1, []CellReport{{Lease: leased[0].Lease, Key: cell.Key(), Result: &res}}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("dead worker's report = %v, want ErrUnknownWorker", err)
	}
	// The survivor's report settles the task exactly once.
	if accepted, err := c.Report(w2, []CellReport{{Lease: requeued[0].Lease, Key: cell.Key(), Result: &res}}); err != nil || accepted != 1 {
		t.Fatalf("survivor report = %d, %v", accepted, err)
	}
	if got := <-done; got.err != nil || got.worker != "survivor" {
		t.Fatalf("outcome = %+v", got)
	}
	select {
	case extra := <-done:
		t.Fatalf("task settled twice: %+v", extra)
	default:
	}
}

func TestCoordinatorStaleReportDiscarded(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	id, _ := c.Register("w")
	cell := testCells(t, 1)[0]
	done := dispatchTask(t, c, context.Background(), cell)
	leased := fetchAll(t, c, id)
	res := fusleep.CellResult{Cell: cell, RelEnergy: 0.4}
	rep := []CellReport{{Lease: leased[0].Lease, Key: leased[0].Key, Result: &res}}
	if accepted, _ := c.Report(id, rep); accepted != 1 {
		t.Fatalf("first report accepted %d", accepted)
	}
	<-done
	// Replaying the same lease (a retried report after a network blip) is
	// acknowledged but discarded.
	accepted, err := c.Report(id, rep)
	if err != nil || accepted != 0 {
		t.Fatalf("replayed report = %d, %v", accepted, err)
	}
	if st := c.Stats(); st.Stale != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCoordinatorDeregisterRequeues(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	w1, _ := c.Register("leaving")
	w2, _ := c.Register("staying")
	cells := testCells(t, 4)
	for _, cell := range cells {
		dispatchTask(t, c, context.Background(), cell)
	}
	fetchAll(t, c, w1) // lease whatever routed to w1
	if err := c.Deregister(w1); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(w1, nil); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after bye = %v", err)
	}
	// Everything — queued and leased — now lives on the survivor.
	got := fetchAll(t, c, w2)
	if len(got) != len(cells) {
		t.Fatalf("survivor fetched %d cells, want %d", len(got), len(cells))
	}
}

func TestCoordinatorQuiesceAndCanceledTasks(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(Config{Now: clk.now})
	id, _ := c.Register("w")
	cell := testCells(t, 1)[0]
	ctx, cancel := context.WithCancel(context.Background())
	done := dispatchTask(t, c, ctx, cell)

	cancel()
	if err := c.Quiesce(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Quiesce = %v", err)
	}
	got := <-done
	if !errors.Is(got.err, context.Canceled) || got.worker != "" {
		t.Fatalf("canceled task outcome = %+v", got)
	}
	// The canceled assignment never reaches the worker.
	if leftover := fetchAll(t, c, id); len(leftover) != 0 {
		t.Fatalf("canceled work leased anyway: %+v", leftover)
	}
}
