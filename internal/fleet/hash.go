package fleet

import "hash/fnv"

// rendezvousScore is the HRW weight of placing key on the worker with the
// given id: a 64-bit FNV-1a hash over "key|id", avalanched through a
// splitmix64-style finalizer. Each (key, worker) pair scores
// independently, which is what gives rendezvous hashing its stability
// property — removing a worker only moves the keys whose maximum it held,
// and adding one only claims the keys it now wins.
//
// The finalizer is load-bearing: raw FNV-1a barely diffuses the last byte
// written (one XOR and one multiply), so ids that share a long prefix and
// differ only in a trailing digit — exactly the coordinator's w-00000N
// sequence — produce tightly clustered scores whose maximum is decided by
// the ids' low bits, not the key, collapsing the distribution onto one
// worker.
func rendezvousScore(key, id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{'|'})
	_, _ = h.Write([]byte(id))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RendezvousPick returns the id in ids with the highest rendezvous score
// for key, or "" when ids is empty. Score ties break toward the
// lexicographically smaller id so the choice is independent of the order
// ids are presented in.
func RendezvousPick(key string, ids []string) string {
	var (
		best      string
		bestScore uint64
		found     bool
	)
	for _, id := range ids {
		s := rendezvousScore(key, id)
		if !found || s > bestScore || (s == bestScore && id < best) {
			best, bestScore, found = id, s, true
		}
	}
	return best
}
