package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%04d", i)
	}
	return keys
}

func workerIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("w-%06d", i+1)
	}
	return ids
}

func TestRendezvousPickBasics(t *testing.T) {
	if got := RendezvousPick("k", nil); got != "" {
		t.Errorf("empty ids picked %q", got)
	}
	if got := RendezvousPick("k", []string{"w-1"}); got != "w-1" {
		t.Errorf("single worker pick = %q", got)
	}
	// The pick is independent of presentation order.
	ids := workerIDs(5)
	want := RendezvousPick("some-key", ids)
	rev := []string{ids[4], ids[2], ids[0], ids[3], ids[1]}
	if got := RendezvousPick("some-key", rev); got != want {
		t.Errorf("order-dependent pick: %q vs %q", got, want)
	}
	// Deterministic across calls.
	for i := 0; i < 3; i++ {
		if got := RendezvousPick("some-key", ids); got != want {
			t.Errorf("pick not deterministic: %q vs %q", got, want)
		}
	}
}

func TestRendezvousDistribution(t *testing.T) {
	// With enough keys, every worker should win a reasonable share — a
	// badly broken hash concentrates everything on one id.
	keys := testKeys(2000)
	for _, n := range []int{2, 3, 5, 8} {
		ids := workerIDs(n)
		counts := map[string]int{}
		for _, k := range keys {
			counts[RendezvousPick(k, ids)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d workers won keys", n, len(counts))
		}
		expect := len(keys) / n
		for id, got := range counts {
			if got < expect/2 || got > expect*2 {
				t.Errorf("n=%d: worker %s got %d keys, expected about %d", n, id, got, expect)
			}
		}
	}
}

func TestRendezvousStabilityUnderJoinAndLeave(t *testing.T) {
	keys := testKeys(2000)
	for _, tc := range []struct {
		name   string
		before []string
		after  []string
	}{
		{"join 2->3", workerIDs(2), workerIDs(3)},
		{"join 3->4", workerIDs(3), workerIDs(4)},
		{"join 7->8", workerIDs(7), workerIDs(8)},
		{"leave 3->2", workerIDs(3), workerIDs(3)[:2]},
		{"leave 8->7", workerIDs(8), workerIDs(8)[:7]},
	} {
		t.Run(tc.name, func(t *testing.T) {
			moved := 0
			for _, k := range keys {
				if RendezvousPick(k, tc.before) != RendezvousPick(k, tc.after) {
					moved++
				}
			}
			// Only ~1/N of keys may move, where N is the larger fleet. Allow
			// 2x slack for hash variance; crucially this catches mod-hashing
			// (which moves ~(N-1)/N of all keys) and other instability.
			n := max(len(tc.before), len(tc.after))
			limit := 2 * len(keys) / n
			if moved == 0 || moved > limit {
				t.Errorf("%s: %d/%d keys moved, want (0, %d]", tc.name, moved, len(keys), limit)
			}
			// Every key that moved must have moved to/from the changed worker.
			diff := map[string]bool{}
			for _, id := range tc.after {
				diff[id] = true
			}
			for _, id := range tc.before {
				if diff[id] {
					delete(diff, id)
				} else {
					diff[id] = true
				}
			}
			for _, k := range keys {
				b, a := RendezvousPick(k, tc.before), RendezvousPick(k, tc.after)
				if b != a && !diff[b] && !diff[a] {
					t.Fatalf("key %s moved %s -> %s, neither of which joined or left", k, b, a)
				}
			}
		})
	}
}
