package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Worker is the remote side of the fleet: it dials the coordinator's
// /v1/fleet endpoints (register → heartbeat → fetch → report), evaluates
// leased cells through the same Executor the standalone daemon embeds,
// and reports the outcomes. The coordinator never dials back, so workers
// need no listener and work from behind NAT.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name is a human-readable label sent at registration; the coordinator
	// assigns the routing identity.
	Name string
	// Exec evaluates the cells. Required.
	Exec *Executor
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Parallel bounds concurrent cell evaluations (default 1).
	Parallel int
	// FetchBatch is how many cells one fetch may lease (default Parallel).
	FetchBatch int
	// Wait is the fetch long-poll duration (default 5s).
	Wait time.Duration
	// HeartbeatEvery overrides the heartbeat cadence (default: a third of
	// the TTL the coordinator granted).
	HeartbeatEvery time.Duration
	// Logf, when set, receives progress lines (registration, requeues,
	// transport errors).
	Logf func(format string, args ...any)

	// Self-reported telemetry, carried on heartbeats.
	inflight   atomic.Int64
	evaluated  atomic.Uint64
	evalFailed atomic.Uint64

	// Per-key evaluation spans collected from the Executor's OnAttempt
	// hook, drained into each cell's report. The coordinator never leases
	// the same key to two workers at once (duplicate submits join the
	// in-flight assignment), so a key's spans belong to exactly one lease.
	spanMu sync.Mutex
	spans  map[string][]WireSpan
}

// stats snapshots the worker's self-reported telemetry for a heartbeat.
func (w *Worker) stats() *WorkerStats {
	return &WorkerStats{
		Inflight:  int(w.inflight.Load()),
		Evaluated: w.evaluated.Load(),
		Failed:    w.evalFailed.Load(),
	}
}

// takeSpans drains the collected spans for one cell key.
func (w *Worker) takeSpans(key string) []WireSpan {
	w.spanMu.Lock()
	defer w.spanMu.Unlock()
	sp := w.spans[key]
	delete(w.spans, key)
	return sp
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends one wire request and decodes the response, translating the
// coordinator's error envelope into typed errors.
func (w *Worker) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := w.client().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var env APIError
		_ = json.NewDecoder(res.Body).Decode(&env)
		if env.Error.Code == CodeUnknownWorker {
			return ErrUnknownWorker
		}
		if env.Error.Message != "" {
			return fmt.Errorf("%s: %s: %s", path, res.Status, env.Error.Message)
		}
		return fmt.Errorf("%s: %s", path, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// Run registers with the coordinator and serves fetched cells until ctx
// is canceled, re-registering whenever the coordinator has expired this
// worker (after a network partition outlasting the heartbeat TTL). On a
// clean shutdown it sends a goodbye so its work requeues immediately.
func (w *Worker) Run(ctx context.Context) error {
	if w.Exec == nil || w.Exec.Engine == nil {
		return errors.New("fleet worker: Exec with an Engine is required")
	}
	// Tap the executor's attempt hook: every finished attempt becomes a
	// wire span attached to the cell's report, and feeds the worker's
	// heartbeat-reported counters.
	prev := w.Exec.OnAttempt
	w.Exec.OnAttempt = func(key string, attempt int, seconds float64, err error) {
		if prev != nil {
			prev(key, attempt, seconds, err)
		}
		w.evaluated.Add(1)
		sp := WireSpan{Stage: "evaluated", Attempt: attempt, Seconds: seconds}
		if err != nil {
			w.evalFailed.Add(1)
			sp.Error = err.Error()
		}
		w.spanMu.Lock()
		if w.spans == nil {
			w.spans = make(map[string][]WireSpan)
		}
		w.spans[key] = append(w.spans[key], sp)
		w.spanMu.Unlock()
	}
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		var reg RegisterResponse
		err := w.post(ctx, "/v1/fleet/register", RegisterRequest{V: ProtocolVersion, Name: w.Name}, &reg)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			w.logf("fleet worker: register: %v (retrying in %v)", err, backoff)
			if SleepCtx(ctx, backoff) != nil {
				break
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		w.logf("fleet worker: registered as %s (ttl %v)", reg.ID, time.Duration(reg.TTLMillis)*time.Millisecond)
		w.serve(ctx, reg.ID, time.Duration(reg.TTLMillis)*time.Millisecond)
		// serve returns on cancellation or when the coordinator forgot us;
		// the loop re-registers in the latter case.
	}
	return ctx.Err()
}

// serve is one registration's lifetime: a heartbeat goroutine plus the
// fetch/evaluate/report loop. It returns when ctx is canceled or the
// coordinator no longer knows the worker ID.
func (w *Worker) serve(ctx context.Context, id string, ttl time.Duration) {
	hbEvery := w.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = max(ttl/3, 10*time.Millisecond)
	}
	// stale closes when a heartbeat learns the coordinator expired us.
	stale := make(chan struct{})
	hbCtx, stopHB := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			//fusleepvet:nondet-ok heartbeat cadence; both arms only affect liveness bookkeeping
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			var resp HeartbeatResponse
			err := w.post(hbCtx, "/v1/fleet/heartbeat",
				HeartbeatRequest{V: ProtocolVersion, ID: id, Stats: w.stats()}, &resp)
			if errors.Is(err, ErrUnknownWorker) {
				close(stale)
				return
			}
			if err != nil && hbCtx.Err() == nil {
				w.logf("fleet worker %s: heartbeat: %v", id, err)
			}
		}
	}()
	defer func() {
		stopHB()
		hb.Wait()
		if ctx.Err() != nil {
			w.bye(id)
		}
	}()

	parallel := max(w.Parallel, 1)
	batch := w.FetchBatch
	if batch <= 0 {
		batch = parallel
	}
	wait := w.Wait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	backoff := 100 * time.Millisecond
	for {
		//fusleepvet:nondet-ok shutdown check racing the stale signal; both exits are terminal
		select {
		case <-ctx.Done():
			return
		case <-stale:
			return
		default:
		}
		var fetched FetchResponse
		err := w.post(ctx, "/v1/fleet/fetch",
			FetchRequest{V: ProtocolVersion, ID: id, Max: batch, WaitMillis: wait.Milliseconds()}, &fetched)
		if errors.Is(err, ErrUnknownWorker) {
			w.logf("fleet worker %s: expired by coordinator; re-registering", id)
			return
		}
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("fleet worker %s: fetch: %v (retrying in %v)", id, err, backoff)
			if SleepCtx(ctx, backoff) != nil {
				return
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if len(fetched.Cells) == 0 {
			continue // long poll timed out; fetch again
		}
		reports := w.evaluate(ctx, fetched.Cells, parallel)
		if !w.report(ctx, id, reports) {
			return
		}
	}
}

// evaluate runs the leased cells through the Executor, at most parallel
// at a time, preserving lease order in the report.
func (w *Worker) evaluate(ctx context.Context, cells []LeaseCell, parallel int) []CellReport {
	reports := make([]CellReport, len(cells))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, lc := range cells {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, lc LeaseCell) {
			defer wg.Done()
			defer func() { <-sem }()
			w.inflight.Add(1)
			res, err := w.Exec.EvalCell(ctx, lc.Cell)
			w.inflight.Add(-1)
			r := CellReport{Lease: lc.Lease, Key: lc.Key, Trace: w.takeSpans(lc.Key)}
			if err != nil {
				r.Error = ToWireError(err)
			} else {
				r.Result = &res
			}
			reports[i] = r
		}(i, lc)
	}
	wg.Wait()
	return reports
}

// report delivers outcomes, retrying transport errors so a network blip
// does not strand finished work past its lease; it reports false when
// serve should end (shutdown or expiry).
func (w *Worker) report(ctx context.Context, id string, reports []CellReport) bool {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var resp ReportResponse
		err := w.post(ctx, "/v1/fleet/report", ReportRequest{V: ProtocolVersion, ID: id, Results: reports}, &resp)
		if err == nil {
			if resp.Accepted < len(reports) {
				w.logf("fleet worker %s: %d/%d reports were stale (leases requeued)", id, len(reports)-resp.Accepted, len(reports))
			}
			return true
		}
		if errors.Is(err, ErrUnknownWorker) || ctx.Err() != nil || attempt >= 4 {
			return false
		}
		w.logf("fleet worker %s: report: %v (retrying in %v)", id, err, backoff)
		if SleepCtx(ctx, backoff) != nil {
			return false
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// bye tells the coordinator this worker is leaving so its work requeues
// immediately instead of after a lease timeout. The worker's own context
// is already canceled here, so the goodbye gets a short detached one.
func (w *Worker) bye(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second) //fusleepvet:ctx-ok shutdown path; the run context is already canceled
	defer cancel()
	var resp HeartbeatResponse
	_ = w.post(ctx, "/v1/fleet/heartbeat", HeartbeatRequest{V: ProtocolVersion, ID: id, Bye: true}, &resp)
}
