package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/archsim/fusleep"
	"github.com/archsim/fusleep/internal/fault"
)

const testWindow = 20_000

// fakeSleep records requested backoffs and returns immediately, so retry
// tests run on an injected clock instead of real timers.
type fakeSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeSleep) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Duration, len(f.delays))
	copy(out, f.delays)
	return out
}

// testExecutor builds an Executor with a retry counter and the recording
// sleep, mirroring how the server wires it.
func testExecutor(eng *fusleep.Engine, inj *fault.Injector, maxRetries int, timeout time.Duration) (*Executor, *fakeSleep, *atomic.Uint64) {
	fs := &fakeSleep{}
	var retries atomic.Uint64
	e := &Executor{
		Engine:      eng,
		Retry:       RetryPolicy{MaxRetries: maxRetries, Seed: 0x66_75_73_6c_65_65_70},
		CellTimeout: timeout,
		Fault:       inj,
		Sleep:       fs.sleep,
		OnRetry:     func(string, int, time.Duration) { retries.Add(1) },
	}
	return e, fs, &retries
}

// testCell resolves one valid cell from the default grid machinery.
func testCell(t *testing.T, eng *fusleep.Engine) fusleep.Cell {
	t.Helper()
	cells := eng.Cells(fusleep.Grid{Benchmarks: []string{"gcc"}, FUCounts: []int{2}, Window: testWindow})
	if len(cells) == 0 {
		t.Fatal("no cells from test grid")
	}
	return cells[0]
}

func TestEvalCellRetriesTransientThenSucceeds(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellTransient, fault.Spec{Times: 2}) // first two attempts fail
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	e, fs, retries := testExecutor(eng, inj, 3, 0)

	c := testCell(t, eng)
	res, err := e.EvalCell(context.Background(), c)
	if err != nil {
		t.Fatalf("EvalCell = %v, want success after retries", err)
	}
	if res.RelEnergy <= 0 {
		t.Fatalf("suspicious result %+v", res)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	delays := fs.recorded()
	want := []time.Duration{e.Retry.Delay(c.Key(), 1), e.Retry.Delay(c.Key(), 2)}
	if len(delays) != 2 || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", delays, want)
	}
}

func TestEvalCellExhaustsRetries(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellTransient, fault.Spec{}) // every attempt fails
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	e, _, retries := testExecutor(eng, inj, 2, 0)

	_, err := e.EvalCell(context.Background(), testCell(t, eng))
	if !fusleep.IsTransientCellError(err) {
		t.Fatalf("final error %v is not the transient CellError", err)
	}
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || ce.Attempt != 3 {
		t.Fatalf("final error %v, want attempt 3", err)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2 (MaxRetries)", got)
	}
	if hits := inj.Hits(fault.CellTransient); hits != 3 {
		t.Fatalf("attempts = %d, want 3", hits)
	}
}

func TestEvalCellPanicIsPermanent(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellPanic, fault.Spec{Times: 1})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	e, fs, retries := testExecutor(eng, inj, 5, 0)

	_, err := e.EvalCell(context.Background(), testCell(t, eng))
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || !ce.Panicked {
		t.Fatalf("EvalCell = %v, want recovered-panic CellError", err)
	}
	// A panic is permanent: no retries, no backoff, attempt 1.
	if ce.Attempt != 1 || retries.Load() != 0 || len(fs.recorded()) != 0 {
		t.Fatalf("panic was retried: attempt=%d retries=%d delays=%v",
			ce.Attempt, retries.Load(), fs.recorded())
	}
}

func TestEvalCellTimeoutIsPermanent(t *testing.T) {
	inj := fault.New(7)
	inj.Set(fault.CellSlow, fault.Spec{Times: 1, Delay: time.Second})
	eng := fusleep.NewEngine(fusleep.WithWindow(testWindow))
	e, _, retries := testExecutor(eng, inj, 5, 5*time.Millisecond)
	e.Sleep = nil // the injected stall must feel the real deadline

	start := time.Now()
	_, err := e.EvalCell(context.Background(), testCell(t, eng))
	var ce *fusleep.CellError
	if !errors.As(err, &ce) || !ce.Timeout {
		t.Fatalf("EvalCell = %v, want timeout CellError", err)
	}
	if retries.Load() != 0 {
		t.Fatalf("timeout was retried %d times", retries.Load())
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline did not cut the stall short (%v)", elapsed)
	}
}

func TestRetryDelayDeterministicJitter(t *testing.T) {
	p := RetryPolicy{MaxRetries: 4, Base: 10 * time.Millisecond, Max: 2 * time.Second, Seed: 42}
	for _, tc := range []struct {
		key     string
		attempt int
		nominal time.Duration
	}{
		{"cell-a", 1, 10 * time.Millisecond},
		{"cell-a", 2, 20 * time.Millisecond},
		{"cell-a", 3, 40 * time.Millisecond},
		{"cell-b", 1, 10 * time.Millisecond},
		{"cell-b", 9, 2 * time.Second}, // capped
	} {
		d := p.Delay(tc.key, tc.attempt)
		if d < tc.nominal/2 || d >= tc.nominal {
			t.Errorf("Delay(%s, %d) = %v outside [%v, %v)",
				tc.key, tc.attempt, d, tc.nominal/2, tc.nominal)
		}
		if again := p.Delay(tc.key, tc.attempt); again != d {
			t.Errorf("Delay(%s, %d) not deterministic: %v then %v", tc.key, tc.attempt, d, again)
		}
	}
	// Different keys and attempts must jitter differently (else every cell
	// retries in lockstep and the jitter is decorative).
	if p.Delay("cell-a", 1) == p.Delay("cell-b", 1) && p.Delay("cell-a", 2) == p.Delay("cell-b", 2) {
		t.Error("jitter is identical across keys")
	}
	if q := (RetryPolicy{Seed: 43, Base: p.Base, Max: p.Max}); q.Delay("cell-a", 1) == p.Delay("cell-a", 1) {
		t.Error("jitter ignores the seed")
	}
}
