package cache

import (
	"math/rand"
	"testing"
)

func small(lat int, next Level) *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return MustNew(Config{Name: "t", SizeKB: 1, Assoc: 2, LineSize: 128, Latency: lat}, next)
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if s := cfg.L1I.Sets(); s != 256 {
		t.Errorf("L1I sets = %d, want 256", s)
	}
	if s := cfg.L2.Sets(); s != 2048 {
		t.Errorf("L2 sets = %d, want 2048", s)
	}
	for _, c := range []Config{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestConfigValidateRejections(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeKB: 0, Assoc: 1, LineSize: 64, Latency: 1},
		{Name: "line", SizeKB: 64, Assoc: 4, LineSize: 60, Latency: 1},
		{Name: "tiny", SizeKB: 1, Assoc: 64, LineSize: 64, Latency: 1},
		{Name: "sets", SizeKB: 96, Assoc: 4, LineSize: 64, Latency: 1},
		{Name: "neg", SizeKB: 64, Assoc: 4, LineSize: 64, Latency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
	if _, err := New(bad[0], &Memory{Latency: 10}); err == nil {
		t.Error("New accepted invalid config")
	}
	if _, err := New(DefaultHierarchyConfig().L1I, nil); err == nil {
		t.Error("New accepted nil next level")
	}
}

func TestHitMissLatency(t *testing.T) {
	mem := &Memory{Latency: 80}
	c := small(2, mem)
	// Cold miss: 2 + 80.
	if lat := c.Access(0x1000, false); lat != 82 {
		t.Errorf("cold miss latency = %d, want 82", lat)
	}
	// Hit on the same line.
	if lat := c.Access(0x1000+64, false); lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if mem.Accesses != 1 {
		t.Errorf("memory accesses = %d", mem.Accesses)
	}
}

func TestLRUReplacement(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := small(1, mem) // 4 sets, 2 ways, 128B lines
	// Three lines mapping to set 0: line addresses 0, 4, 8 (stride = sets).
	a0 := uint64(0 * 128 * 4)
	a1 := uint64(1 * 128 * 4)
	a2 := uint64(2 * 128 * 4)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 most recent; a1 is LRU
	c.Access(a2, false) // evicts a1
	if !c.Contains(a0) || !c.Contains(a2) {
		t.Error("a0 and a2 should be resident")
	}
	if c.Contains(a1) {
		t.Error("a1 should have been evicted")
	}
}

func TestWritebackAccounting(t *testing.T) {
	mem := &Memory{Latency: 10}
	c := small(1, mem)
	a0 := uint64(0)
	a1 := uint64(128 * 4)
	a2 := uint64(2 * 128 * 4)
	c.Access(a0, true) // dirty fill
	c.Access(a1, false)
	c.Access(a2, false) // evicts dirty a0
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	// Clean eviction adds none.
	c.Access(a0, false) // evicts clean a1
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks after clean eviction = %d", wb)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1(2) + L2(12) + mem(80) = 94.
	if lat := h.L1D.Access(0x100000, false); lat != 94 {
		t.Errorf("cold access latency = %d, want 94", lat)
	}
	// L1 hit: 2.
	if lat := h.L1D.Access(0x100000, false); lat != 2 {
		t.Errorf("L1 hit = %d, want 2", lat)
	}
	// L1I miss on a line the L2 now holds (same 128B L2 line): 2 + 12.
	if lat := h.L1I.Access(0x100040, false); lat != 14 {
		t.Errorf("L2 hit via L1I = %d, want 14", lat)
	}
}

func TestWorkingSetFitsL1(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	// 32KB working set in a 64KB L1: after a warm-up pass, near-zero misses.
	var warm, steady uint64
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 32*1024; addr += 64 {
			h.L1D.Access(addr, false)
		}
		if pass == 0 {
			warm = h.L1D.Stats().Misses
		}
	}
	steady = h.L1D.Stats().Misses - warm
	if warm != 512 {
		t.Errorf("cold pass misses = %d, want 512 (one per line)", warm)
	}
	if steady != 0 {
		t.Errorf("steady-state misses = %d, want 0", steady)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	h, _ := NewHierarchy(DefaultHierarchyConfig())
	// 8MB working set streams through the 2MB L2: every pass misses.
	const span = 8 * 1024 * 1024
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < span; addr += 128 {
			h.L2.Access(addr, false)
		}
	}
	mr := h.L2.Stats().MissRate()
	if mr < 0.99 {
		t.Errorf("thrash miss rate = %.3f, want ~1", mr)
	}
}

func TestMissRateZeroWhenIdle(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		h, _ := NewHierarchy(DefaultHierarchyConfig())
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 50000; i++ {
			h.L1D.Access(uint64(rng.Intn(4*1024*1024)), rng.Intn(4) == 0)
		}
		return h.L1D.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{Name: "bad"}, &Memory{})
}
