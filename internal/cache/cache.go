// Package cache models the memory hierarchy of the simulated machine
// (Table 2): set-associative write-back caches with LRU replacement over a
// fixed-latency memory. Latencies compose additively down the hierarchy;
// fills update replacement state deterministically.
package cache

import (
	"fmt"
	"math/bits"
)

// Level is anything that can service an access and report its latency in
// cycles.
type Level interface {
	// Access services a read (write=false) or write (write=true) of the
	// line containing addr and returns the total latency in cycles.
	Access(addr uint64, write bool) int
}

// Memory is the terminal level with a fixed access latency.
type Memory struct {
	Latency   int
	Accesses  uint64
	WriteHits uint64
}

// Access implements Level.
func (m *Memory) Access(addr uint64, write bool) int {
	m.Accesses++
	if write {
		m.WriteHits++
	}
	return m.Latency
}

// Config describes one cache level.
type Config struct {
	Name     string
	SizeKB   int // total capacity
	Assoc    int
	LineSize int // bytes
	Latency  int // hit latency, cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeKB * 1024 / (c.LineSize * c.Assoc) }

// Validate checks the geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeKB <= 0 || c.Assoc <= 0 || c.LineSize <= 0:
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.SizeKB*1024 < c.LineSize*c.Assoc:
		return fmt.Errorf("cache %s: capacity below one set", c.Name)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, c.Sets())
	case c.Latency < 0:
		return fmt.Errorf("cache %s: negative latency", c.Name)
	default:
		return nil
	}
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	tick  uint64
}

// Cache is one set-associative write-back, write-allocate cache level.
// Validate guarantees power-of-two line size and set count, so the index
// geometry is precomputed as shifts and masks once at construction and
// Access never divides.
type Cache struct {
	cfg   Config
	sets  []line // Sets * Assoc, set-major
	next  Level
	tick  uint64
	stats Stats

	lineShift uint   // log2(LineSize): addr -> line address
	setShift  uint   // log2(Sets): line address -> tag
	setMask   uint64 // Sets - 1: line address -> set index
	assoc     int
}

// New builds a cache over the given next level.
func New(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil next level", cfg.Name)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		sets:      make([]line, sets*cfg.Assoc),
		next:      next,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config, next Level) *Cache {
	c, err := New(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(addr uint64) ([]line, uint64) {
	lineAddr := addr >> c.lineShift
	setIdx := int(lineAddr & c.setMask)
	tag := lineAddr >> c.setShift
	base := setIdx * c.assoc
	return c.sets[base : base+c.assoc], tag
}

// Access implements Level: a hit costs the hit latency; a miss additionally
// pays the next level's latency, allocates the line (evicting LRU, counting
// a writeback if it was dirty), and marks it dirty on writes.
func (c *Cache) Access(addr uint64, write bool) int {
	c.tick++
	c.stats.Accesses++
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].tick = c.tick
			if write {
				set[i].dirty = true
			}
			return c.cfg.Latency
		}
	}
	c.stats.Misses++
	lat := c.cfg.Latency + c.next.Access(addr, false)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].tick < set[victim].tick {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		// Write-back traffic does not add to the demand miss latency in
		// this model (buffered writes).
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, tick: c.tick}
	return lat
}

// Contains reports whether the line holding addr is resident, without
// touching replacement state (for tests).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Hierarchy wires the Table 2 memory system: split L1s over a unified L2
// over memory.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache
	Mem      *Memory
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchyConfig returns the Table 2 memory system: 64 KB 4-way
// 64 B 2-cycle L1s, 2 MB 8-way 128 B 12-cycle unified L2, 80-cycle memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", SizeKB: 64, Assoc: 4, LineSize: 64, Latency: 2},
		L1D:        Config{Name: "L1D", SizeKB: 64, Assoc: 4, LineSize: 64, Latency: 2},
		L2:         Config{Name: "L2", SizeKB: 2048, Assoc: 8, LineSize: 128, Latency: 12},
		MemLatency: 80,
	}
}

// NewHierarchy builds the three-level system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	mem := &Memory{Latency: cfg.MemLatency}
	l2, err := New(cfg.L2, mem)
	if err != nil {
		return nil, err
	}
	l1i, err := New(cfg.L1I, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Mem: mem}, nil
}
