// Package fault provides deterministic, injectable fault points for the
// daemon's chaos and recovery tests. A fault point is a named site in
// production code (a cell evaluation, a journal fsync) that consults a
// shared Injector before proceeding; the injector decides — purely from
// its seed and per-point hit counters, never from wall clocks or shared
// entropy — whether the site should misbehave on this hit.
//
// Production builds pass a nil *Injector everywhere, which compiles to a
// single nil check per point. Tests construct an Injector with a fixed
// seed and arm the points they exercise, so a failing chaos run replays
// byte-for-byte from its seed.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical fault-point names. Production sites and tests share these
// constants so an armed point can never silently miss its site.
const (
	// CellPanic makes a cell evaluation panic inside the worker.
	CellPanic = "cell.panic"
	// CellTransient makes a cell evaluation fail with a transient error
	// that retry/backoff is expected to absorb.
	CellTransient = "cell.transient"
	// CellSlow stalls a cell evaluation by the point's configured delay,
	// long enough to trip a per-cell deadline.
	CellSlow = "cell.slow"
	// JournalFsync makes a journal fsync fail, wedging the journal the way
	// a dying disk would.
	JournalFsync = "journal.fsync"
	// JournalTorn makes a journal append write only a partial frame and
	// then wedge, simulating a crash mid-write (the torn tail recovery
	// must truncate away).
	JournalTorn = "journal.torn"
)

// ErrInjected is the sentinel wrapped by every error an injector
// manufactures, so tests can tell injected failures from real ones.
var ErrInjected = errors.New("fault: injected failure")

// ErrTransient marks an injected failure as transient: retry with backoff
// is expected to succeed. It wraps ErrInjected.
var ErrTransient = fmt.Errorf("%w (transient)", ErrInjected)

// Spec arms one fault point. The zero Spec never fires. Firing is decided
// per hit n (1-based, per point) as: n > After, and (n-After) is a
// multiple of Every (Every <= 1 means every hit), and the point has fired
// fewer than Times times (Times 0 = unlimited), and — when Prob is in
// (0,1) — a deterministic hash of (seed, point, n) lands under Prob.
type Spec struct {
	// Every fires on every k-th eligible hit (0 or 1 = every hit).
	Every int
	// After skips the first n hits entirely.
	After int
	// Times bounds total firings (0 = unlimited).
	Times int
	// Prob thins eligible firings with a seeded hash; 0 means always
	// (probability 1), values in (0,1) fire that fraction of eligible hits.
	Prob float64
	// Delay is returned by DelayFor when the point fires; points that
	// do not stall ignore it.
	Delay time.Duration
}

// point is one armed fault point's spec and counters.
type point struct {
	spec  Spec
	hits  uint64
	fired uint64
}

// Injector decides, deterministically from its seed and per-point
// counters, whether armed fault points fire. A nil *Injector is valid and
// never fires; all methods are safe for concurrent use.
type Injector struct {
	seed uint64

	mu     sync.Mutex
	points map[string]*point
}

// New returns an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), points: make(map[string]*point)}
}

// Set arms (or re-arms) a fault point; its hit and fire counters reset.
func (i *Injector) Set(name string, s Spec) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.points[name] = &point{spec: s}
}

// Fire records one hit on the named point and reports whether the site
// should misbehave now. Unarmed points (and nil injectors) never fire.
func (i *Injector) Fire(name string) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	p, ok := i.points[name]
	if !ok {
		return false
	}
	p.hits++
	n := p.hits
	s := p.spec
	if n <= uint64(s.After) {
		return false
	}
	if s.Times > 0 && p.fired >= uint64(s.Times) {
		return false
	}
	if s.Every > 1 && (n-uint64(s.After))%uint64(s.Every) != 0 {
		return false
	}
	if s.Prob > 0 && s.Prob < 1 && !i.coin(name, n, s.Prob) {
		return false
	}
	p.fired++
	return true
}

// DelayFor is Fire for stall points: when the point fires it returns the
// armed delay, otherwise zero.
func (i *Injector) DelayFor(name string) time.Duration {
	if i == nil {
		return 0
	}
	if !i.Fire(name) {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.points[name].spec.Delay
}

// Hits returns how many times the named point was consulted.
func (i *Injector) Hits(name string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if p, ok := i.points[name]; ok {
		return p.hits
	}
	return 0
}

// Fired returns how many times the named point actually fired.
func (i *Injector) Fired(name string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if p, ok := i.points[name]; ok {
		return p.fired
	}
	return 0
}

// String summarizes the armed points in name order, for test logs.
func (i *Injector) String() string {
	if i == nil {
		return "fault.Injector(nil)"
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	names := make([]string, 0, len(i.points))
	for name := range i.points {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "fault.Injector(seed=%d", i.seed)
	for _, name := range names {
		p := i.points[name]
		fmt.Fprintf(&b, " %s:%d/%d", name, p.fired, p.hits)
	}
	b.WriteString(")")
	return b.String()
}

// coin is the deterministic biased coin for Prob thinning: a splitmix64
// finalizer over (seed, point name, hit index) mapped onto [0, 1).
func (i *Injector) coin(name string, n uint64, prob float64) bool {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	x := i.seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < prob
}
