package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var i *Injector
	for n := 0; n < 10; n++ {
		if i.Fire(CellPanic) {
			t.Fatal("nil injector fired")
		}
	}
	if d := i.DelayFor(CellSlow); d != 0 {
		t.Fatalf("nil injector delay = %v", d)
	}
	if i.Hits(CellPanic) != 0 || i.Fired(CellPanic) != 0 {
		t.Fatal("nil injector counted hits")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	i := New(1)
	for n := 0; n < 10; n++ {
		if i.Fire(CellTransient) {
			t.Fatal("unarmed point fired")
		}
	}
	if i.Hits(CellTransient) != 0 {
		t.Fatal("unarmed point counted hits")
	}
}

func TestEveryAfterTimes(t *testing.T) {
	i := New(42)
	i.Set(CellTransient, Spec{Every: 3, After: 2, Times: 2})
	var fired []int
	for n := 1; n <= 14; n++ {
		if i.Fire(CellTransient) {
			fired = append(fired, n)
		}
	}
	// Eligible hits start after 2, fire every 3rd: 5, 8, ... capped at 2.
	want := []int{5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for k := range want {
		if fired[k] != want[k] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
	if got := i.Fired(CellTransient); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := i.Hits(CellTransient); got != 14 {
		t.Fatalf("Hits = %d, want 14", got)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	sequence := func(seed int64) []bool {
		i := New(seed)
		i.Set(CellPanic, Spec{Prob: 0.5})
		out := make([]bool, 64)
		for n := range out {
			out[n] = i.Fire(CellPanic)
		}
		return out
	}
	a, b := sequence(7), sequence(7)
	fires := 0
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("hit %d: same seed diverged", n)
		}
		if a[n] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; expected a mix", fires, len(a))
	}
	c := sequence(8)
	same := true
	for n := range a {
		if a[n] != c[n] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire sequences")
	}
}

func TestDelayFor(t *testing.T) {
	i := New(1)
	i.Set(CellSlow, Spec{Every: 2, Delay: 50 * time.Millisecond})
	if d := i.DelayFor(CellSlow); d != 0 {
		t.Fatalf("hit 1 delay = %v, want 0", d)
	}
	if d := i.DelayFor(CellSlow); d != 50*time.Millisecond {
		t.Fatalf("hit 2 delay = %v, want 50ms", d)
	}
}

func TestRearmResetsCounters(t *testing.T) {
	i := New(1)
	i.Set(CellPanic, Spec{Times: 1})
	if !i.Fire(CellPanic) || i.Fire(CellPanic) {
		t.Fatal("Times=1 should fire exactly once")
	}
	i.Set(CellPanic, Spec{Times: 1})
	if !i.Fire(CellPanic) {
		t.Fatal("re-armed point should fire again")
	}
}

func TestErrTransientWrapsErrInjected(t *testing.T) {
	if !errors.Is(ErrTransient, ErrInjected) {
		t.Fatal("ErrTransient must wrap ErrInjected")
	}
}
