package pipeline

import "sort"

// classPool models one functional-unit class of the machine. Operations are
// allocated round-robin across the class's units, as in the paper's
// methodology ("we allocate operations to the set of functional units in
// round robin fashion"), and each unit's busy/idle activity is recorded at
// the alloc/expiry transitions so every class — not just the integer ALUs —
// yields the idle-interval profiles the per-class energy study needs.
//
// Round-robin start position only affects which of the currently-free units
// is taken, never whether an allocation succeeds now or later (free units
// are interchangeable for future availability), so the multiplier and FP
// pools — previously first-free scans without recording — keep identical
// timing under this pool.
//
// Recording is transition-driven: a unit's busy span is fully known at
// allocation time (busyUntil = now + lat), so tryAllocate closes the idle
// run that the allocation ends and charges the active cycles up front,
// and flush settles the trailing run against the simulated horizon. The
// per-cycle scan this replaces (every unit of every pool, every cycle) was
// the simulator's dominant self-inflicted cost once all five classes
// recorded; the per-cycle oracle survives in fupool_oracle_test.go and the
// property test pins the two recorders to identical profiles.
// shortRunCap bounds the direct-indexed part of the idle-run histogram:
// runs shorter than this increment a flat counter array, longer runs fall
// back to the map. Short runs dominate on busy units (the common recording
// case), so the hot path avoids the map entirely.
const shortRunCap = 128

type classPool struct {
	busyUntil []uint64
	// idleFrom[i] is the cycle unit i's current idle run started: the end
	// of its last real (lat > 0) busy span. Zero-latency allocations leave
	// it untouched — the per-cycle view never sees such a unit busy.
	idleFrom []uint64
	rr       int

	active []uint64
	// short[i*shortRunCap+run] counts unit i's idle runs of length
	// run < shortRunCap; intervals[i] holds the long tail. profiles()
	// merges the two views.
	short     []uint64
	intervals []map[int]uint64
}

func newClassPool(n int) *classPool {
	p := &classPool{
		busyUntil: make([]uint64, n),
		idleFrom:  make([]uint64, n),
		active:    make([]uint64, n),
		short:     make([]uint64, n*shortRunCap),
		intervals: make([]map[int]uint64, n),
	}
	for i := range p.intervals {
		p.intervals[i] = make(map[int]uint64)
	}
	return p
}

// record counts one idle run of length run on unit idx.
//
//fusleepvet:hotpath
func (p *classPool) record(idx int, run uint64) {
	if run < shortRunCap {
		p.short[idx*shortRunCap+int(run)]++
		return
	}
	p.intervals[idx][int(run)]++
}

// tryAllocate finds a unit free at cycle now, scanning round-robin from the
// unit after the last allocation. It returns the unit index, marks it busy
// for lat cycles, and records the busy/idle transition: the idle run ending
// at now (if any) is closed into the interval histogram and the lat active
// cycles are charged immediately. flush trims the charge back to the
// simulated horizon for spans still in flight at the end of the run.
//
//fusleepvet:hotpath
func (p *classPool) tryAllocate(now uint64, lat int) (int, bool) {
	n := len(p.busyUntil)
	idx := p.rr
	for i := 0; i < n; i++ {
		if idx >= n {
			idx -= n
		}
		if p.busyUntil[idx] <= now {
			if lat > 0 {
				if run := now - p.idleFrom[idx]; run > 0 {
					p.record(idx, run)
				}
				p.active[idx] += uint64(lat)
				p.idleFrom[idx] = now + uint64(lat)
			}
			p.busyUntil[idx] = now + uint64(lat)
			// rr may momentarily equal n; the wrap check at the top of the
			// next scan normalizes it, replacing two mods per probe.
			p.rr = idx + 1
			return idx, true
		}
		idx++
	}
	return 0, false
}

// flush settles each unit's open run against the simulated horizon: cycles
// [0, end) were simulated, so a unit still busy at end hands back the
// active cycles charged past the horizon, and a free unit's trailing idle
// run is closed into the histogram. Call exactly once, at end of
// simulation — on every exit path, including cancellation, so partial-run
// profiles never drop the open run.
//
//fusleepvet:hotpath
func (p *classPool) flush(end uint64) {
	for i, bu := range p.busyUntil {
		if bu >= end {
			// Still busy at the horizon (or the window is empty): trim the
			// overcharged tail. Allocations only happen on simulated cycles,
			// so bu > end implies a real busy span crossing the horizon.
			p.active[i] -= bu - end
			continue
		}
		if run := end - p.idleFrom[i]; run > 0 {
			p.record(i, run)
		}
	}
}

// profiles snapshots the pool's per-unit activity into self-contained
// FUProfiles (interval maps copied), recording each unit's sorted length
// mirror once here — the cold path — so evaluation never sorts.
func (p *classPool) profiles() []FUProfile {
	out := make([]FUProfile, len(p.busyUntil))
	for i := range out {
		iv := make(map[int]uint64, len(p.intervals[i]))
		ls := make([]int, 0, len(p.intervals[i]))
		for l, n := range p.short[i*shortRunCap : (i+1)*shortRunCap] {
			if n > 0 {
				iv[l] = n
				ls = append(ls, l)
			}
		}
		for l, n := range p.intervals[i] {
			iv[l] = n
			ls = append(ls, l)
		}
		sort.Ints(ls)
		out[i] = FUProfile{ActiveCycles: p.active[i], Intervals: iv, Lengths: ls}
	}
	return out
}
