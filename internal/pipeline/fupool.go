package pipeline

import "github.com/archsim/fusleep/internal/stats"

// fuPool models the integer functional units under study. Operations are
// allocated round-robin across the units, as in the paper's methodology
// ("we allocate operations to the set of functional units in round robin
// fashion"), and each unit's busy/idle activity is recorded cycle by cycle.
type fuPool struct {
	busyUntil []uint64
	rr        int
	rec       []*stats.RunRecorder
}

func newFUPool(n int) *fuPool {
	p := &fuPool{
		busyUntil: make([]uint64, n),
		rec:       make([]*stats.RunRecorder, n),
	}
	for i := range p.rec {
		p.rec[i] = stats.NewRunRecorder()
	}
	return p
}

// tryAllocate finds a unit free at cycle now, scanning round-robin from the
// unit after the last allocation. It returns the unit index and marks it
// busy for lat cycles.
func (p *fuPool) tryAllocate(now uint64, lat int) (int, bool) {
	n := len(p.busyUntil)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		if p.busyUntil[idx] <= now {
			p.busyUntil[idx] = now + uint64(lat)
			p.rr = (idx + 1) % n
			return idx, true
		}
	}
	return 0, false
}

// tick records each unit's activity for cycle now; call exactly once per
// simulated cycle after issue.
func (p *fuPool) tick(now uint64) {
	for i, bu := range p.busyUntil {
		p.rec[i].Tick(bu > now)
	}
}

// flush closes trailing idle intervals at end of simulation.
func (p *fuPool) flush() {
	for _, r := range p.rec {
		r.Flush()
	}
}

// unitPool is a simple occupancy model for non-tracked units (multiplier,
// FP): each unit is busy until a cycle; allocation takes the first free.
type unitPool struct {
	busyUntil []uint64
}

func newUnitPool(n int) *unitPool { return &unitPool{busyUntil: make([]uint64, n)} }

func (p *unitPool) tryAllocate(now uint64, lat int) bool {
	for i := range p.busyUntil {
		if p.busyUntil[i] <= now {
			p.busyUntil[i] = now + uint64(lat)
			return true
		}
	}
	return false
}
