package pipeline

import "sort"

// classPool models one functional-unit class of the machine. Operations are
// allocated round-robin across the class's units, as in the paper's
// methodology ("we allocate operations to the set of functional units in
// round robin fashion"), and each unit's busy/idle activity is recorded
// cycle by cycle so every class — not just the integer ALUs — yields the
// idle-interval profiles the per-class energy study needs.
//
// Round-robin start position only affects which of the currently-free units
// is taken, never whether an allocation succeeds now or later (free units
// are interchangeable for future availability), so the multiplier and FP
// pools — previously first-free scans without recording — keep identical
// timing under this pool.
//
// Recording is inlined into tick rather than delegated to
// stats.RunRecorder: every pool of the machine now ticks every cycle, and
// the per-unit method call was measurable on the hot loop.
type classPool struct {
	busyUntil []uint64
	rr        int

	active    []uint64
	idleRun   []int
	intervals []map[int]uint64
}

func newClassPool(n int) *classPool {
	p := &classPool{
		busyUntil: make([]uint64, n),
		active:    make([]uint64, n),
		idleRun:   make([]int, n),
		intervals: make([]map[int]uint64, n),
	}
	for i := range p.intervals {
		p.intervals[i] = make(map[int]uint64)
	}
	return p
}

// tryAllocate finds a unit free at cycle now, scanning round-robin from the
// unit after the last allocation. It returns the unit index and marks it
// busy for lat cycles.
//
//fusleepvet:hotpath
func (p *classPool) tryAllocate(now uint64, lat int) (int, bool) {
	n := len(p.busyUntil)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		if p.busyUntil[idx] <= now {
			p.busyUntil[idx] = now + uint64(lat)
			p.rr = (idx + 1) % n
			return idx, true
		}
	}
	return 0, false
}

// tick records each unit's activity for cycle now; call exactly once per
// simulated cycle after issue.
//
//fusleepvet:hotpath
func (p *classPool) tick(now uint64) {
	for i, bu := range p.busyUntil {
		if bu > now {
			p.active[i]++
			if run := p.idleRun[i]; run > 0 {
				p.intervals[i][run]++
				p.idleRun[i] = 0
			}
		} else {
			p.idleRun[i]++
		}
	}
}

// flush closes trailing idle intervals at end of simulation.
//
//fusleepvet:hotpath
func (p *classPool) flush() {
	for i, run := range p.idleRun {
		if run > 0 {
			p.intervals[i][run]++
			p.idleRun[i] = 0
		}
	}
}

// profiles snapshots the pool's per-unit activity into self-contained
// FUProfiles (interval maps copied), recording each unit's sorted length
// mirror once here — the cold path — so evaluation never sorts.
func (p *classPool) profiles() []FUProfile {
	out := make([]FUProfile, len(p.busyUntil))
	for i := range out {
		iv := make(map[int]uint64, len(p.intervals[i]))
		ls := make([]int, 0, len(p.intervals[i]))
		for l, n := range p.intervals[i] {
			iv[l] = n
			ls = append(ls, l)
		}
		sort.Ints(ls)
		out[i] = FUProfile{ActiveCycles: p.active[i], Intervals: iv, Lengths: ls}
	}
	return out
}
