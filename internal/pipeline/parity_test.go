package pipeline_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/archsim/fusleep/internal/bpred"
	"github.com/archsim/fusleep/internal/cache"
	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/tlb"
)

// legacyResult mirrors the pre-refactor pipeline.Result wire shape — the
// single-pool view without per-class profiles. The per-class refactor must
// leave every one of these fields bit-identical under the default (shared
// AGU) machine, which is what makes it verifiable against the capture taken
// before the fuPool split.
type legacyResult struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	FUs []pipeline.FUProfile

	Bpred bpred.Stats
	L1I   cache.Stats
	L1D   cache.Stats
	L2    cache.Stats
	ITLB  tlb.Stats
	DTLB  tlb.Stats

	LoadForwards          uint64
	FetchMispredictStalls uint64
	ClassCounts           [16]uint64
}

// legacyView projects a Result (or a raw capture entry) onto the
// pre-refactor shape and marshals it, so both sides of the comparison pass
// through the identical struct and field order.
func legacyView(t *testing.T, raw []byte) []byte {
	t.Helper()
	var lr legacyResult
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(lr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenPreRefactorParity re-runs every case of the capture taken
// before the per-class pool refactor and asserts the single-pool view of
// each Result — cycles, committed, per-IntALU interval histograms, cache /
// TLB / predictor stats — is byte-identical to that pre-refactor capture.
// The uniform default machine (AGU sharing the integer ports, one policy
// for every class) must reproduce the single-pool engine exactly; only the
// new Classes field may differ from the old serialization.
func TestGoldenPreRefactorParity(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_prerefactor.json"))
	if err != nil {
		t.Fatalf("missing pre-refactor capture: %v", err)
	}
	var cap struct {
		Cases   []goldenCase      `json:"cases"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(raw, &cap); err != nil {
		t.Fatal(err)
	}
	if len(cap.Cases) == 0 || len(cap.Cases) != len(cap.Results) {
		t.Fatalf("malformed capture: %d cases, %d results", len(cap.Cases), len(cap.Results))
	}
	indices := make([]int, 0, len(cap.Cases))
	if testing.Short() {
		// Same trimmed subset as the short-mode golden test.
		indices = append(indices, 0, len(cap.Cases)-2, len(cap.Cases)-1)
	} else {
		for i := range cap.Cases {
			indices = append(indices, i)
		}
	}
	for _, i := range indices {
		gc := cap.Cases[i]
		got := legacyView(t, marshalResult(t, runGoldenCase(t, gc)))
		want := legacyView(t, cap.Results[i])
		if !bytes.Equal(got, want) {
			t.Errorf("case %+v diverged from the pre-refactor capture:\n got: %s\nwant: %s",
				gc, truncate(got, 400), truncate(want, 400))
		}
	}
}
