package pipeline

// oraclePool is the per-cycle busy/idle recorder that transition-driven
// recording replaced: tick scans every unit every cycle and accumulates
// active cycles and idle-run lengths incrementally. It is kept verbatim as
// the test oracle — the property and fuzz tests drive a classPool and an
// oraclePool with the same allocation sequence and require identical
// profiles, pinning the transition recorder to the per-cycle semantics the
// golden captures were made under.
type oraclePool struct {
	busyUntil []uint64
	rr        int

	active    []uint64
	idleRun   []int
	intervals []map[int]uint64
}

func newOraclePool(n int) *oraclePool {
	p := &oraclePool{
		busyUntil: make([]uint64, n),
		active:    make([]uint64, n),
		idleRun:   make([]int, n),
		intervals: make([]map[int]uint64, n),
	}
	for i := range p.intervals {
		p.intervals[i] = make(map[int]uint64)
	}
	return p
}

// tryAllocate mirrors classPool.tryAllocate minus the recording: same
// round-robin scan, same busyUntil update, so both pools pick the same
// unit for every allocation in a lock-step drive.
func (p *oraclePool) tryAllocate(now uint64, lat int) (int, bool) {
	n := len(p.busyUntil)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		if p.busyUntil[idx] <= now {
			p.busyUntil[idx] = now + uint64(lat)
			p.rr = (idx + 1) % n
			return idx, true
		}
	}
	return 0, false
}

// tick records each unit's activity for cycle now; call exactly once per
// simulated cycle after issue.
func (p *oraclePool) tick(now uint64) {
	for i, bu := range p.busyUntil {
		if bu > now {
			p.active[i]++
			if run := p.idleRun[i]; run > 0 {
				p.intervals[i][run]++
				p.idleRun[i] = 0
			}
		} else {
			p.idleRun[i]++
		}
	}
}

// flush closes trailing idle intervals at end of simulation.
func (p *oraclePool) flush() {
	for i, run := range p.idleRun {
		if run > 0 {
			p.intervals[i][run]++
			p.idleRun[i] = 0
		}
	}
}

// profiles matches classPool.profiles for comparison. The oracle keeps
// every run in the map, so the delegate's short histogram is all zeros.
func (p *oraclePool) profiles() []FUProfile {
	cp := &classPool{
		busyUntil: p.busyUntil,
		active:    p.active,
		short:     make([]uint64, len(p.busyUntil)*shortRunCap),
		intervals: p.intervals,
	}
	return cp.profiles()
}
