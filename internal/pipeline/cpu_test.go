package pipeline

import (
	"math/rand"
	"testing"

	"github.com/archsim/fusleep/internal/isa"
)

const codeBase = 0x400000
const dataBase = 0x10000000

// alu builds an independent single-cycle integer op.
func alu(pc uint64, dest, s1, s2 isa.Reg) isa.Inst {
	return isa.Inst{PC: pc, Class: isa.IntALU, Dest: dest, Src1: s1, Src2: s2}
}

func run(t *testing.T, cfg Config, insts []isa.Inst) Result {
	t.Helper()
	cpu, err := New(cfg, isa.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// independentALUs builds n independent ALU ops round-robining destinations.
// PCs repeat every 256 instructions, modeling loopy code whose footprint
// stays I-cache resident (straight-line unique PCs would make every fetch a
// compulsory miss, which no real benchmark does).
func independentALUs(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		// Destinations cycle through r1..r8 with no read-after-write.
		insts[i] = alu(codeBase+uint64(i%256)*4, isa.IntReg(1+i%8), isa.RegNone, isa.RegNone)
	}
	return insts
}

func TestIndependentALUsNearFullWidth(t *testing.T) {
	res := run(t, DefaultConfig(), independentALUs(100000))
	if res.Committed != 100000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if ipc := res.IPC(); ipc < 3.5 {
		t.Errorf("independent ALU IPC = %.2f, want near 4", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	n := 10000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = alu(codeBase+uint64(i%256)*4, isa.IntReg(1), isa.IntReg(1), isa.RegNone)
	}
	res := run(t, DefaultConfig(), insts)
	if ipc := res.IPC(); ipc < 0.9 || ipc > 1.1 {
		t.Errorf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func TestSingleFUThrottles(t *testing.T) {
	cfg := DefaultConfig().WithIntALUs(1)
	res := run(t, cfg, independentALUs(50000))
	if ipc := res.IPC(); ipc < 0.9 || ipc > 1.1 {
		t.Errorf("1-FU IPC = %.2f, want ~1", ipc)
	}
	// With 2 FUs the same workload doubles.
	res2 := run(t, DefaultConfig().WithIntALUs(2), independentALUs(50000))
	if ipc := res2.IPC(); ipc < 1.8 || ipc > 2.2 {
		t.Errorf("2-FU IPC = %.2f, want ~2", ipc)
	}
}

func TestFUActivityMatchesIntOps(t *testing.T) {
	// Every committed int-FU op occupies exactly one FU-cycle, so summed FU
	// active cycles equal the int-op count; and every FU is ticked every
	// cycle, so active+idle = total cycles per unit.
	res := run(t, DefaultConfig(), independentALUs(5000))
	if got := res.TotalFUActive(); got != 5000 {
		t.Errorf("FU active cycles = %d, want 5000", got)
	}
	for i, fu := range res.FUs {
		if tot := fu.ActiveCycles + fu.IdleCycles(); tot != res.Cycles {
			t.Errorf("FU %d covers %d cycles, run took %d", i, tot, res.Cycles)
		}
	}
	if len(res.FUs) != 4 {
		t.Errorf("FU count = %d", len(res.FUs))
	}
}

func TestRoundRobinSpreadsWork(t *testing.T) {
	res := run(t, DefaultConfig(), independentALUs(8000))
	for i, fu := range res.FUs {
		share := float64(fu.ActiveCycles) / 8000
		if share < 0.15 || share > 0.35 {
			t.Errorf("FU %d got %.1f%% of ops, want ~25%%", i, share*100)
		}
	}
}

func TestLoadChainPaysUseLatency(t *testing.T) {
	// A pointer chase hitting in the L1: each hop costs AGU(1)+L1D(2).
	n := 6000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: codeBase + uint64(i%64)*4, Class: isa.Load,
			Dest: isa.IntReg(1), Src1: isa.IntReg(1), Src2: isa.RegNone,
			Addr: dataBase + uint64(i%8)*64, // stays in one L1 set region
		}
	}
	res := run(t, DefaultConfig(), insts)
	cpi := 1 / res.IPC()
	if cpi < 2.7 || cpi > 3.4 {
		t.Errorf("L1 pointer-chase CPI = %.2f, want ~3", cpi)
	}
}

func TestMemoryBoundChaseIsSlow(t *testing.T) {
	// Dependent loads striding far beyond the L2 capacity: each hop pays
	// the full memory latency.
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: codeBase + uint64(i%16)*4, Class: isa.Load,
			Dest: isa.IntReg(1), Src1: isa.IntReg(1), Src2: isa.RegNone,
			Addr: dataBase + uint64(i)*4096*17,
		}
	}
	res := run(t, DefaultConfig(), insts)
	cpi := 1 / res.IPC()
	// AGU(1) + L1(2) + L2(12) + mem(80) = 95, plus TLB misses.
	if cpi < 80 {
		t.Errorf("memory-bound CPI = %.1f, want ~95+", cpi)
	}
	if res.L1D.MissRate() < 0.95 {
		t.Errorf("L1D miss rate = %.2f, want ~1", res.L1D.MissRate())
	}
}

func TestStoreForwardingBeatsCache(t *testing.T) {
	// store to A; dependent-load from A immediately: forwarding keeps the
	// load off the cache path.
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		a := dataBase + uint64(i%4)*8
		insts = append(insts,
			isa.Inst{PC: codeBase + uint64(len(insts)*4), Class: isa.Store,
				Src1: isa.IntReg(2), Src2: isa.IntReg(3), Addr: a},
			isa.Inst{PC: codeBase + uint64(len(insts)*4+4), Class: isa.Load,
				Dest: isa.IntReg(4), Src1: isa.IntReg(2), Src2: isa.RegNone, Addr: a},
		)
	}
	res := run(t, DefaultConfig(), insts)
	if res.LoadForwards < 2900 {
		t.Errorf("forwards = %d of 3000 loads", res.LoadForwards)
	}
}

func TestTakenLoopPredictsWell(t *testing.T) {
	// 15 ALU ops + backward branch, 500 iterations: after warm-up the
	// branch is perfectly predicted and IPC stays high.
	var insts []isa.Inst
	const body = 15
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < body; i++ {
			insts = append(insts, alu(codeBase+uint64(i*4), isa.IntReg(1+i%8), isa.RegNone, isa.RegNone))
		}
		insts = append(insts, isa.Inst{
			PC: codeBase + uint64(body*4), Class: isa.Branch,
			Src1: isa.IntReg(1), Src2: isa.RegNone, Dest: isa.RegNone,
			Taken: iter != 499, Target: codeBase,
		})
	}
	res := run(t, DefaultConfig(), insts)
	if acc := res.Bpred.DirAccuracy(); acc < 0.99 {
		t.Errorf("loop branch accuracy = %.3f", acc)
	}
	if ipc := res.IPC(); ipc < 2.5 {
		t.Errorf("predictable loop IPC = %.2f", ipc)
	}
}

func TestRandomBranchesCostPenalty(t *testing.T) {
	// Unpredictable branches every 4 instructions crater IPC.
	rng := rand.New(rand.NewSource(3))
	var insts []isa.Inst
	for iter := 0; iter < 4000; iter++ {
		for i := 0; i < 3; i++ {
			insts = append(insts, alu(codeBase+uint64(i*4), isa.IntReg(1+i), isa.RegNone, isa.RegNone))
		}
		taken := rng.Intn(2) == 0
		tgt := uint64(codeBase)
		insts = append(insts, isa.Inst{
			PC: codeBase + 12, Class: isa.Branch,
			Src1: isa.IntReg(1), Src2: isa.RegNone, Dest: isa.RegNone,
			Taken: taken, Target: tgt,
		})
	}
	res := run(t, DefaultConfig(), insts)
	if ipc := res.IPC(); ipc > 1.2 {
		t.Errorf("random-branch IPC = %.2f, want well below width", ipc)
	}
	if res.FetchMispredictStalls == 0 {
		t.Error("expected mispredict stall cycles")
	}
}

func TestRenamerConservation(t *testing.T) {
	// After the pipeline drains, exactly (phys - arch) registers are free
	// in each class: no leaks, no double frees.
	cfg := DefaultConfig()
	insts := independentALUs(5000)
	cpu, err := New(cfg, isa.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := cpu.intRen.freeCount(), cfg.IntPhysRegs-isa.NumIntRegs; got != want {
		t.Errorf("int free regs = %d, want %d", got, want)
	}
	if got, want := cpu.fpRen.freeCount(), cfg.FPPhysRegs-isa.NumFPRegs; got != want {
		t.Errorf("fp free regs = %d, want %d", got, want)
	}
	if cpu.rob.count != 0 || cpu.lqCount != 0 || cpu.storeQ.count != 0 ||
		cpu.intIQCount != 0 || cpu.fpIQCount != 0 || len(cpu.readyQ) != 0 {
		t.Error("queues not drained")
	}
}

func TestMaxInstsStopsEarly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	res := run(t, cfg, independentALUs(50000))
	if res.Committed != 1000 {
		t.Errorf("committed %d, want exactly 1000", res.Committed)
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() []isa.Inst {
		rng := rand.New(rand.NewSource(10))
		var insts []isa.Inst
		for i := 0; i < 5000; i++ {
			switch rng.Intn(4) {
			case 0:
				insts = append(insts, alu(codeBase+uint64(i%64)*4, isa.IntReg(rng.Intn(8)+1), isa.IntReg(rng.Intn(8)+1), isa.RegNone))
			case 1:
				insts = append(insts, isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.Load,
					Dest: isa.IntReg(rng.Intn(8) + 1), Src1: isa.IntReg(1), Src2: isa.RegNone,
					Addr: dataBase + uint64(rng.Intn(1<<20))})
			case 2:
				insts = append(insts, isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.Store,
					Src1: isa.IntReg(1), Src2: isa.IntReg(2), Addr: dataBase + uint64(rng.Intn(1<<20))})
			default:
				insts = append(insts, isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.Branch,
					Src1: isa.IntReg(1), Src2: isa.RegNone, Dest: isa.RegNone,
					Taken: rng.Intn(2) == 0, Target: codeBase})
			}
		}
		return insts
	}
	a := run(t, DefaultConfig(), mk())
	b := run(t, DefaultConfig(), mk())
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.L1D != b.L1D || a.Bpred != b.Bpred {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestFPOpsUseFPUnits(t *testing.T) {
	n := 4000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.FPALU,
			Dest: isa.FPReg(1 + i%8), Src1: isa.RegNone, Src2: isa.RegNone}
	}
	res := run(t, DefaultConfig(), insts)
	// One FP adder, 2-cycle non-pipelined occupancy: IPC ~0.5, and the
	// integer FUs stay completely idle.
	if ipc := res.IPC(); ipc > 0.6 {
		t.Errorf("FP-only IPC = %.2f, want ~0.5 (one 2-cycle unit)", ipc)
	}
	if res.TotalFUActive() != 0 {
		t.Error("integer FUs should be idle on an FP-only trace")
	}
}

func TestMultAndDivLatency(t *testing.T) {
	// A dependent multiply chain: ~3 cycles per op.
	n := 2000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.IntMult,
			Dest: isa.IntReg(1), Src1: isa.IntReg(1), Src2: isa.RegNone}
	}
	res := run(t, DefaultConfig(), insts)
	cpi := 1 / res.IPC()
	if cpi < 2.8 || cpi > 3.4 {
		t.Errorf("dependent multiply CPI = %.2f, want ~3", cpi)
	}
}

func TestNopsFlowThrough(t *testing.T) {
	n := 4000
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: codeBase + uint64(i%64)*4, Class: isa.Nop,
			Src1: isa.RegNone, Src2: isa.RegNone, Dest: isa.RegNone}
	}
	res := run(t, DefaultConfig(), insts)
	if res.Committed != uint64(n) {
		t.Errorf("committed %d nops", res.Committed)
	}
	if res.TotalFUActive() != 0 {
		t.Error("nops must not occupy functional units")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.IntALUs = 0
	if _, err := New(bad, isa.NewSliceStream(nil)); err == nil {
		t.Error("zero FUs accepted")
	}
	bad = DefaultConfig()
	bad.IntPhysRegs = 20
	if err := bad.Validate(); err == nil {
		t.Error("too-few physical registers accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil stream accepted")
	}
	bad = DefaultConfig()
	bad.MispredictPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative penalty accepted")
	}
}

func TestWithHelpers(t *testing.T) {
	cfg := DefaultConfig().WithIntALUs(2).WithL2Latency(32)
	if cfg.IntALUs != 2 || cfg.Mem.L2.Latency != 32 {
		t.Errorf("helpers failed: %+v", cfg)
	}
	// Original untouched.
	if d := DefaultConfig(); d.IntALUs != 4 || d.Mem.L2.Latency != 12 {
		t.Error("DefaultConfig mutated")
	}
}

func TestClassCountsMatchTrace(t *testing.T) {
	insts := independentALUs(100)
	insts = append(insts, isa.Inst{PC: codeBase + 4000, Class: isa.Store,
		Src1: isa.IntReg(1), Src2: isa.IntReg(2), Addr: dataBase})
	res := run(t, DefaultConfig(), insts)
	if res.ClassCounts[isa.IntALU] != 100 || res.ClassCounts[isa.Store] != 1 {
		t.Errorf("class counts = %v", res.ClassCounts)
	}
}
