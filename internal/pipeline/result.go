package pipeline

import (
	"sort"

	"github.com/archsim/fusleep/internal/bpred"
	"github.com/archsim/fusleep/internal/cache"
	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/tlb"
)

// FUProfile is the measured activity of one functional unit: the raw
// material of the paper's energy accounting (Section 4).
type FUProfile struct {
	// ActiveCycles is the number of cycles the unit executed an operation.
	ActiveCycles uint64
	// Intervals is the multiset of idle interval lengths (length -> count).
	Intervals map[int]uint64
	// Lengths holds the keys of Intervals in ascending order, recorded once
	// at simulation end so the energy-model consumers that must iterate
	// intervals deterministically (float sums do not associate) never sort
	// on their per-evaluation path. It is derivable from Intervals and
	// deliberately kept off the wire.
	Lengths []int `json:"-"`
}

// IdleCycles returns the unit's total idle cycles.
func (p FUProfile) IdleCycles() uint64 {
	var n uint64
	for l, c := range p.Intervals {
		n += uint64(l) * c
	}
	return n
}

// SortedLengths returns the distinct idle interval lengths in ascending
// order, preferring the mirror recorded at simulation end; a profile that
// arrived without one (decoded from the wire, or hand-built in tests)
// derives it on the spot. The returned slice must not be modified.
func (p FUProfile) SortedLengths() []int {
	if len(p.Lengths) == len(p.Intervals) {
		return p.Lengths
	}
	ls := make([]int, 0, len(p.Intervals))
	for l := range p.Intervals {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	return ls
}

// Utilization returns active/(active+idle), or 0 when empty.
func (p FUProfile) Utilization() float64 {
	tot := p.ActiveCycles + p.IdleCycles()
	if tot == 0 {
		return 0
	}
	return float64(p.ActiveCycles) / float64(tot)
}

// ClassProfile is the measured activity of one functional-unit class: one
// profile per unit of the class's pool.
type ClassProfile struct {
	Class fu.Class    `json:"class"`
	Units []FUProfile `json:"units"`
}

// Result summarizes one simulation run.
type Result struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	// FUs holds one profile per integer functional unit — the legacy view
	// of the IntALU class, kept so single-pool consumers and the
	// pre-refactor golden captures read unchanged.
	FUs []FUProfile

	Bpred bpred.Stats
	L1I   cache.Stats
	L1D   cache.Stats
	L2    cache.Stats
	ITLB  tlb.Stats
	DTLB  tlb.Stats

	// LoadForwards counts loads satisfied by store-queue forwarding.
	LoadForwards uint64
	// FetchMispredictStalls counts cycles fetch was blocked awaiting a
	// mispredicted branch's resolution plus redirect.
	FetchMispredictStalls uint64
	// ClassCounts tallies committed instructions by class index.
	ClassCounts [16]uint64

	// Classes holds the per-class activity profiles in fu.Class order. The
	// AGU class appears only when the machine has a dedicated AGU pool;
	// with the default shared configuration its activity lands in the
	// IntALU profiles, exactly as the single-pool model measured it.
	Classes []ClassProfile
}

// UnitsFor returns the class's per-unit profiles, or nil when the class has
// no pool of its own (AGU on a shared-port machine).
func (r Result) UnitsFor(c fu.Class) []FUProfile {
	for _, cp := range r.Classes {
		if cp.Class == c {
			return cp.Units
		}
	}
	return nil
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// TotalFUActive sums active cycles across the integer units.
func (r Result) TotalFUActive() uint64 {
	var n uint64
	for _, f := range r.FUs {
		n += f.ActiveCycles
	}
	return n
}

// MeanFUUtilization averages per-unit utilization.
func (r Result) MeanFUUtilization() float64 {
	if len(r.FUs) == 0 {
		return 0
	}
	var s float64
	for _, f := range r.FUs {
		s += f.Utilization()
	}
	return s / float64(len(r.FUs))
}
