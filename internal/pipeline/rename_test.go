package pipeline

import (
	"math/rand"
	"testing"
)

func TestRenamerInitialState(t *testing.T) {
	r, err := newRenamer(32, 96)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 32; a++ {
		phys := r.lookup(a)
		if int(phys) != a {
			t.Errorf("arch %d initially mapped to %d", a, phys)
		}
		if !r.isReady(phys) {
			t.Errorf("initial mapping %d not ready", phys)
		}
	}
	if r.freeCount() != 64 {
		t.Errorf("free count = %d, want 64", r.freeCount())
	}
}

func TestRenamerRejectsTooFewPhys(t *testing.T) {
	if _, err := newRenamer(32, 32); err == nil {
		t.Error("phys == arch accepted (no register could ever rename)")
	}
}

func TestRenamerAllocateReleaseCycle(t *testing.T) {
	r, _ := newRenamer(4, 8)
	newPhys, oldPhys, ok := r.allocate(2)
	if !ok {
		t.Fatal("allocation failed with free registers")
	}
	if oldPhys != 2 {
		t.Errorf("old mapping = %d, want 2", oldPhys)
	}
	if r.lookup(2) != newPhys {
		t.Error("map table not updated")
	}
	if r.isReady(newPhys) {
		t.Error("fresh physical register must start not-ready")
	}
	r.markReady(newPhys)
	if !r.isReady(newPhys) {
		t.Error("markReady failed")
	}
	before := r.freeCount()
	r.release(oldPhys)
	if r.freeCount() != before+1 {
		t.Error("release did not grow the free list")
	}
}

func TestRenamerExhaustion(t *testing.T) {
	r, _ := newRenamer(2, 4)
	// Two free registers; a third allocation must fail.
	if _, _, ok := r.allocate(0); !ok {
		t.Fatal("first allocation failed")
	}
	if _, _, ok := r.allocate(1); !ok {
		t.Fatal("second allocation failed")
	}
	if r.canAllocate() {
		t.Error("canAllocate true with empty free list")
	}
	if _, _, ok := r.allocate(0); ok {
		t.Error("allocation succeeded with empty free list")
	}
}

func TestRenamerConservationUnderChurn(t *testing.T) {
	// Random allocate/commit churn conserves registers: every physical
	// register is either a current mapping, in flight, or free.
	r, _ := newRenamer(8, 24)
	rng := rand.New(rand.NewSource(3))
	type inflight struct{ oldPhys int16 }
	var pending []inflight
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 && r.canAllocate() {
			_, old, _ := r.allocate(rng.Intn(8))
			pending = append(pending, inflight{old})
		} else if len(pending) > 0 {
			r.release(pending[0].oldPhys)
			pending = pending[1:]
		}
		// Invariant: free + in-flight old mappings + 8 current mappings
		// always account for all 24 physical registers.
		if r.freeCount()+len(pending)+8 != 24 {
			t.Fatalf("step %d: free %d + pending %d + mapped 8 != 24",
				step, r.freeCount(), len(pending))
		}
	}
}

func TestClassPoolRoundRobin(t *testing.T) {
	p := newClassPool(3)
	// Three allocations in one cycle land on three distinct units.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		idx, ok := p.tryAllocate(10, 1)
		if !ok {
			t.Fatalf("allocation %d failed", i)
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Errorf("allocations not spread: %v", seen)
	}
	// All busy now.
	if _, ok := p.tryAllocate(10, 1); ok {
		t.Error("fourth same-cycle allocation should fail")
	}
	// Next cycle, all free again; round-robin pointer moves on.
	if _, ok := p.tryAllocate(11, 1); !ok {
		t.Error("next-cycle allocation failed")
	}
}

func TestClassPoolBusySpan(t *testing.T) {
	p := newClassPool(1)
	if _, ok := p.tryAllocate(5, 3); !ok {
		t.Fatal("allocation failed")
	}
	for _, cyc := range []uint64{5, 6, 7} {
		if _, ok := p.tryAllocate(cyc, 1); ok {
			t.Errorf("unit free during busy span at cycle %d", cyc)
		}
	}
	if _, ok := p.tryAllocate(8, 1); !ok {
		t.Error("unit should be free after latency expires")
	}
}

func TestClassPoolTickRecordsActivity(t *testing.T) {
	p := newClassPool(2)
	p.tryAllocate(0, 2) // unit busy cycles 0-1
	p.flush(3)          // horizon: cycles 0-2 simulated
	var active uint64
	for _, a := range p.active {
		active += a
	}
	if active != 2 {
		t.Errorf("recorded %d active unit-cycles, want 2", active)
	}
	for i, prof := range p.profiles() {
		if got := prof.ActiveCycles + prof.IdleCycles(); got != 3 {
			t.Errorf("unit %d covers %d of 3 cycles", i, got)
		}
	}
}

func TestClassPoolExhaustion(t *testing.T) {
	p := newClassPool(2)
	if _, ok := p.tryAllocate(0, 5); !ok {
		t.Fatal("first unit should allocate")
	}
	if _, ok := p.tryAllocate(0, 5); !ok {
		t.Fatal("second unit should allocate")
	}
	if _, ok := p.tryAllocate(1, 5); ok {
		t.Error("both busy, allocation should fail")
	}
	if _, ok := p.tryAllocate(5, 5); !ok {
		t.Error("unit should free at its busy-until cycle")
	}
}
