package pipeline_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/archsim/fusleep/internal/pipeline"
	"github.com/archsim/fusleep/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden captures")

// goldenWindow keeps the full-suite capture fast while still exercising
// every kernel phase, the store queue, and the cache hierarchy.
const goldenWindow = 120_000

// goldenCase is one simulated configuration in the golden capture.
type goldenCase struct {
	Bench  string `json:"bench"`
	FUs    int    `json:"fus"`
	L2     int    `json:"l2"`
	Window uint64 `json:"window"`
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, spec := range workload.Benchmarks {
		cases = append(cases, goldenCase{Bench: spec.Name, FUs: spec.PaperFUs, L2: 12, Window: goldenWindow})
	}
	// Off-default machine points: minimum FU count and the Figure 7 slow L2,
	// so geometry-dependent paths (wheel sizing, cache shift/mask) are pinned
	// at more than one configuration.
	cases = append(cases,
		goldenCase{Bench: "gcc", FUs: 1, L2: 32, Window: 60_000},
		goldenCase{Bench: "mcf", FUs: 4, L2: 32, Window: 60_000},
	)
	return cases
}

func runGoldenCase(t *testing.T, gc goldenCase) pipeline.Result {
	t.Helper()
	spec, err := workload.ByName(gc.Bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig().WithIntALUs(gc.FUs).WithL2Latency(gc.L2)
	cfg.MaxInsts = gc.Window
	cpu, err := pipeline.New(cfg, spec.NewTrace(gc.Window))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// capture is the serialized form of the golden file: the case list plus the
// full Result for each, in order.
type capture struct {
	Cases   []goldenCase      `json:"cases"`
	Results []pipeline.Result `json:"results"`
}

func marshalCapture(t *testing.T, c capture) []byte {
	t.Helper()
	out, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenDeterminism runs every suite workload at a fixed seed and
// asserts the full Result — cycles, committed, per-FU interval histograms,
// cache/TLB/predictor stats — is byte-identical to the pre-refactor golden
// capture in testdata. Any change to the serialized bytes means the timing
// model's observable behavior changed; performance work must keep this test
// green so "faster" provably means "same numbers, sooner". Regenerate
// (after an intentional model change) with:
//
//	go test ./internal/pipeline -run TestGoldenDeterminism -update
func TestGoldenDeterminism(t *testing.T) {
	cases := goldenCases()
	path := filepath.Join("testdata", "golden_results.json")
	if testing.Short() {
		// Trimmed short mode (used by the CI race job): run a subset of
		// cases — the first suite workload plus both off-default machine
		// points — and compare each against its slot in the full capture,
		// so `go test -race -short` still pins cycle-exactness without
		// paying for all eleven runs under the race detector.
		if *updateGolden {
			t.Fatal("regenerate the golden capture without -short")
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden capture (run with -update to create): %v", err)
		}
		for _, i := range []int{0, len(cases) - 2, len(cases) - 1} {
			gc := cases[i]
			got := marshalResult(t, runGoldenCase(t, gc))
			if !bytes.Equal(got, wantResult(t, want, i)) {
				t.Errorf("case %+v diverged from golden capture:\n got: %s\nwant: %s",
					gc, truncate(got, 400), truncate(wantResult(t, want, i), 400))
			}
		}
		return
	}
	cap := capture{Cases: cases}
	for _, gc := range cases {
		cap.Results = append(cap.Results, runGoldenCase(t, gc))
	}
	got := marshalCapture(t, cap)

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden capture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		for i, gc := range cases {
			gotOne := marshalResult(t, cap.Results[i])
			wantOne := wantResult(t, want, i)
			if !bytes.Equal(gotOne, wantOne) {
				t.Errorf("case %+v diverged from golden capture:\n got: %s\nwant: %s",
					gc, truncate(gotOne, 400), truncate(wantOne, 400))
			}
		}
		t.Fatal("simulation results changed vs. golden capture; if intentional, regenerate with -update")
	}
}

func marshalResult(t *testing.T, r pipeline.Result) []byte {
	t.Helper()
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantResult(t *testing.T, raw []byte, i int) []byte {
	t.Helper()
	var c capture
	if err := json.Unmarshal(raw, &c); err != nil {
		t.Fatal(err)
	}
	if i >= len(c.Results) {
		t.Fatalf("golden capture has %d results, want index %d", len(c.Results), i)
	}
	return marshalResult(t, c.Results[i])
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return fmt.Sprintf("%s... (%d bytes)", b[:n], len(b))
}

// TestRunToRunDeterminism re-runs one configuration and asserts the two
// Results are identical without consulting the golden file, so seed-level
// nondeterminism (map iteration, goroutine scheduling in the trace
// generator) is caught even when the capture is being regenerated.
func TestRunToRunDeterminism(t *testing.T) {
	gc := goldenCase{Bench: "twolf", FUs: 3, L2: 12, Window: 60_000}
	a := runGoldenCase(t, gc)
	b := runGoldenCase(t, gc)
	ja, jb := marshalResult(t, a), marshalResult(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different results:\n run1: %s\n run2: %s",
			truncate(ja, 400), truncate(jb, 400))
	}
}
