package pipeline

import (
	"context"
	"errors"
	"testing"

	"github.com/archsim/fusleep/internal/isa"
)

// cancelWorkload mixes a serializing ALU chain with periodic multiplies so
// that at any abort cycle some units sit idle (open idle runs to close)
// and a multi-cycle op is usually in flight (an open busy run to settle).
func cancelWorkload(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		pc := codeBase + uint64(i%256)*4
		if i%7 == 3 {
			insts[i] = isa.Inst{PC: pc, Class: isa.IntMult, Dest: isa.IntReg(2), Src1: isa.IntReg(1), Src2: isa.RegNone}
		} else {
			insts[i] = alu(pc, isa.IntReg(1), isa.IntReg(1), isa.RegNone)
		}
	}
	return insts
}

// TestCancelMidRunFlushesIntervalMass is the regression test for the
// transition-driven recorder's cancellation path: a run aborted mid-flight
// must still return profiles whose interval mass covers the simulated
// horizon exactly — active plus idle cycles equal to the abort cycle for
// every unit of every class, with no open run dropped.
func TestCancelMidRunFlushesIntervalMass(t *testing.T) {
	insts := cancelWorkload(200_000)

	// Reference: the full run, to prove the abort was genuinely mid-run.
	full := run(t, DefaultConfig(), insts)

	cpu, err := New(DefaultConfig(), isa.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the run loop polls every ctxCheckMask+1 cycles and aborts
	res, err := cpu.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if res.Cycles == 0 || res.Cycles >= full.Cycles {
		t.Fatalf("abort cycle %d not strictly inside the full run's %d cycles", res.Cycles, full.Cycles)
	}
	if res.Committed == 0 || res.Committed >= full.Committed {
		t.Fatalf("aborted run committed %d of %d: not mid-run", res.Committed, full.Committed)
	}

	checkMass := func(name string, units []FUProfile) {
		t.Helper()
		for i, u := range units {
			if got := u.ActiveCycles + u.IdleCycles(); got != res.Cycles {
				t.Errorf("%s unit %d: active %d + idle %d = %d cycles, want horizon %d",
					name, i, u.ActiveCycles, u.IdleCycles(), got, res.Cycles)
			}
		}
	}
	if len(res.Classes) == 0 {
		t.Fatal("aborted result has no class profiles")
	}
	for _, cp := range res.Classes {
		checkMass(cp.Class.String(), cp.Units)
	}
	// The legacy integer-unit view must balance too.
	checkMass("legacy", res.FUs)

	// The partial profiles must show real activity — a flush that zeroed or
	// dropped runs would pass the mass check trivially.
	var active uint64
	for _, u := range res.FUs {
		active += u.ActiveCycles
	}
	if active == 0 {
		t.Error("aborted run recorded no active cycles on the integer units")
	}
}
