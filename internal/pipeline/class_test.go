package pipeline

import (
	"testing"

	"github.com/archsim/fusleep/internal/fu"
	"github.com/archsim/fusleep/internal/isa"
)

// classStream builds n independent ops of one class, with the register and
// address shapes each class needs.
func classStream(n int, class isa.Class) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		in := isa.Inst{PC: codeBase + uint64(i%256)*4, Class: class}
		switch {
		case class.IsFP():
			in.Dest = isa.FPReg(1 + i%8)
		case class == isa.Load:
			in.Dest = isa.IntReg(1 + i%8)
			in.Addr = dataBase + uint64(i%1024)*8
		case class == isa.Store:
			in.Addr = dataBase + uint64(i%1024)*8
		default:
			in.Dest = isa.IntReg(1 + i%8)
		}
		insts[i] = in
	}
	return insts
}

// activeUnits sums a class's recorded active cycles across its units.
func activeUnits(res Result, c fu.Class) uint64 {
	var n uint64
	for _, u := range res.UnitsFor(c) {
		n += u.ActiveCycles
	}
	return n
}

// TestClassPoolsAllocatePerClass pins the tentpole's core behavior: Mult
// and FPALU traffic executes on its own class pool and records activity
// there, leaving the integer ALU pool idle, instead of routing everything
// through one IntALU pool.
func TestClassPoolsAllocatePerClass(t *testing.T) {
	cases := []struct {
		class  isa.Class
		active fu.Class
		idle   []fu.Class
	}{
		{isa.IntMult, fu.Mult, []fu.Class{fu.IntALU, fu.FPALU, fu.FPMult}},
		{isa.IntDiv, fu.Mult, []fu.Class{fu.IntALU, fu.FPALU, fu.FPMult}},
		{isa.FPALU, fu.FPALU, []fu.Class{fu.IntALU, fu.Mult, fu.FPMult}},
		{isa.FPMult, fu.FPMult, []fu.Class{fu.IntALU, fu.Mult, fu.FPALU}},
		{isa.FPDiv, fu.FPMult, []fu.Class{fu.IntALU, fu.Mult, fu.FPALU}},
		{isa.IntALU, fu.IntALU, []fu.Class{fu.Mult, fu.FPALU, fu.FPMult}},
	}
	for _, tc := range cases {
		res := run(t, DefaultConfig(), classStream(5000, tc.class))
		if got := activeUnits(res, tc.active); got == 0 {
			t.Errorf("%v ops: class %s recorded no activity", tc.class, tc.active)
		}
		for _, c := range tc.idle {
			if got := activeUnits(res, c); got != 0 {
				t.Errorf("%v ops: class %s recorded %d active cycles, want 0", tc.class, c, got)
			}
		}
	}
}

// TestPerClassIdleIntervalsRecorded asserts every class pool records a full
// busy/idle profile: per unit, active plus idle cycles cover the whole run.
func TestPerClassIdleIntervalsRecorded(t *testing.T) {
	// Mixed traffic touches every pool.
	var insts []isa.Inst
	for i := 0; i < 4000; i++ {
		insts = append(insts,
			classStream(1, isa.IntALU)[0],
			classStream(1, isa.IntMult)[0],
			classStream(1, isa.FPALU)[0],
			classStream(1, isa.FPMult)[0],
		)
	}
	res := run(t, DefaultConfig(), insts)
	want := []fu.Class{fu.IntALU, fu.Mult, fu.FPALU, fu.FPMult}
	if len(res.Classes) != len(want) {
		t.Fatalf("Classes = %d entries, want %d (AGU shares the IntALU pool by default)", len(res.Classes), len(want))
	}
	for i, cp := range res.Classes {
		if cp.Class != want[i] {
			t.Errorf("Classes[%d] = %s, want %s", i, cp.Class, want[i])
		}
		for u, prof := range cp.Units {
			if got := prof.ActiveCycles + prof.IdleCycles(); got != res.Cycles {
				t.Errorf("class %s unit %d covers %d of %d cycles", cp.Class, u, got, res.Cycles)
			}
			if cp.Class != fu.IntALU && len(prof.Intervals) == 0 && prof.ActiveCycles != res.Cycles {
				t.Errorf("class %s unit %d recorded no idle intervals", cp.Class, u)
			}
		}
	}
	// The legacy FUs view is exactly the IntALU class.
	intalu := res.UnitsFor(fu.IntALU)
	if len(res.FUs) != len(intalu) {
		t.Fatalf("FUs has %d units, IntALU class %d", len(res.FUs), len(intalu))
	}
	for i := range res.FUs {
		if res.FUs[i].ActiveCycles != intalu[i].ActiveCycles {
			t.Errorf("FUs[%d] diverges from the IntALU class profile", i)
		}
	}
}

// TestDedicatedAGUPool covers the split machine: with AGUs > 0, address
// generation allocates from its own pool (and records its own profile)
// instead of the integer ALU ports.
func TestDedicatedAGUPool(t *testing.T) {
	loads := classStream(6000, isa.Load)

	shared := run(t, DefaultConfig(), loads)
	if got := shared.UnitsFor(fu.AGU); got != nil {
		t.Fatalf("shared machine reports a dedicated AGU pool: %v", got)
	}
	if activeUnits(shared, fu.IntALU) == 0 {
		t.Fatal("shared machine: load address generation did not touch the IntALU pool")
	}

	cfg := DefaultConfig()
	cfg.AGUs = 2
	split := run(t, cfg, loads)
	agu := split.UnitsFor(fu.AGU)
	if len(agu) != 2 {
		t.Fatalf("dedicated machine reports %d AGU units, want 2", len(agu))
	}
	if activeUnits(split, fu.AGU) == 0 {
		t.Error("dedicated machine: AGU pool recorded no activity")
	}
	if got := activeUnits(split, fu.IntALU); got != 0 {
		t.Errorf("dedicated machine: loads consumed %d IntALU cycles, want 0", got)
	}
	// Both machines commit the same loads; the split one cannot be slower
	// on a pure load stream (it has strictly more issue resources).
	if split.Committed != shared.Committed {
		t.Errorf("committed diverged: %d vs %d", split.Committed, shared.Committed)
	}
}

// TestWithUnits pins the config helper's zero-leaves-default contract.
func TestWithUnits(t *testing.T) {
	cfg := DefaultConfig().WithUnits(0, 0, 0, 0)
	if cfg != DefaultConfig() {
		t.Error("all-zero WithUnits changed the config")
	}
	cfg = DefaultConfig().WithUnits(2, 3, 4, 1)
	if cfg.IntMults != 2 || cfg.FPALUs != 3 || cfg.FPMults != 4 || cfg.AGUs != 1 {
		t.Errorf("WithUnits = %+v", cfg)
	}
	bad := DefaultConfig()
	bad.AGUs = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative AGUs accepted")
	}
}
