package pipeline

import "fmt"

// physRef names one physical register in a class-specific file; idx < 0
// means "no register / always ready".
type physRef struct {
	idx int16
	fp  bool
}

var noReg = physRef{idx: -1}

// renamer implements register renaming for one register class: a map table
// from architectural to physical registers, a free list, and per-physical
// ready bits. Because the simulator never dispatches wrong-path
// instructions, no checkpoint/rollback is needed.
type renamer struct {
	mapTable []int16
	free     []int16
	ready    []bool
	inUse    int
}

func newRenamer(archRegs, physRegs int) (*renamer, error) {
	if physRegs < archRegs+1 {
		return nil, fmt.Errorf("pipeline: %d physical registers cannot back %d architectural", physRegs, archRegs)
	}
	r := &renamer{
		mapTable: make([]int16, archRegs),
		free:     make([]int16, 0, physRegs),
		ready:    make([]bool, physRegs),
		inUse:    archRegs,
	}
	for i := 0; i < archRegs; i++ {
		r.mapTable[i] = int16(i)
		r.ready[i] = true
	}
	for i := physRegs - 1; i >= archRegs; i-- {
		r.free = append(r.free, int16(i))
	}
	return r, nil
}

// lookup returns the current physical mapping of an architectural register.
func (r *renamer) lookup(arch int) int16 { return r.mapTable[arch] }

// canAllocate reports whether a destination can be renamed.
func (r *renamer) canAllocate() bool { return len(r.free) > 0 }

// allocate renames arch to a fresh physical register (marked not-ready) and
// returns the new and previous mappings; the previous mapping is released
// when the instruction commits.
func (r *renamer) allocate(arch int) (newPhys, oldPhys int16, ok bool) {
	if len(r.free) == 0 {
		return 0, 0, false
	}
	newPhys = r.free[len(r.free)-1]
	r.free = r.free[:len(r.free)-1]
	oldPhys = r.mapTable[arch]
	r.mapTable[arch] = newPhys
	r.ready[newPhys] = false
	r.inUse++
	return newPhys, oldPhys, true
}

// markReady signals that the physical register's value is available.
func (r *renamer) markReady(phys int16) { r.ready[phys] = true }

// isReady reports value availability.
func (r *renamer) isReady(phys int16) bool { return r.ready[phys] }

// release returns a no-longer-referenced physical register to the free
// list (called at commit for the overwritten mapping).
func (r *renamer) release(phys int16) {
	r.free = append(r.free, phys)
	r.inUse--
}

// freeCount reports the free-list depth (for invariant tests).
func (r *renamer) freeCount() int { return len(r.free) }
