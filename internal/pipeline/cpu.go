package pipeline

import (
	"context"
	"errors"
	"fmt"

	"github.com/archsim/fusleep/internal/bpred"
	"github.com/archsim/fusleep/internal/cache"
	"github.com/archsim/fusleep/internal/isa"
	"github.com/archsim/fusleep/internal/tlb"
)

type instState uint8

const (
	stWaiting instState = iota
	stExecuting
	stDone
)

type robEntry struct {
	inst       isa.Inst
	state      instState
	src1, src2 physRef
	dest       physRef
	oldPhys    int16
	mispredict bool
}

type reorderBuffer struct {
	entries []robEntry
	head    int
	count   int
}

func newROB(size int) *reorderBuffer { return &reorderBuffer{entries: make([]robEntry, size)} }

func (r *reorderBuffer) full() bool { return r.count == len(r.entries) }

func (r *reorderBuffer) push(e robEntry) int {
	idx := (r.head + r.count) % len(r.entries)
	r.entries[idx] = e
	r.count++
	return idx
}

// at returns the entry at logical position i from the head (0 = oldest).
func (r *reorderBuffer) at(i int) *robEntry {
	return &r.entries[(r.head+i)%len(r.entries)]
}

func (r *reorderBuffer) popFront() {
	r.head = (r.head + 1) % len(r.entries)
	r.count--
}

type fetchEntry struct {
	inst       isa.Inst
	mispredict bool
}

type storeQEntry struct {
	seq       uint64
	addr      uint64
	addrKnown bool
}

// CPU is one simulation instance; build with New and execute with Run.
type CPU struct {
	cfg    Config
	stream isa.Stream

	pred *bpred.Predictor
	mem  *cache.Hierarchy
	itlb *tlb.TLB
	dtlb *tlb.TLB

	intRen, fpRen *renamer
	rob           *reorderBuffer
	fus           *fuPool
	mult          *unitPool
	fpalu         *unitPool
	fpmult        *unitPool

	intIQCount, fpIQCount int
	lqCount               int
	storeQ                []storeQEntry

	fetchQ []fetchEntry

	completions map[uint64][]int

	cycle            uint64
	fetchBlockedTill uint64
	redirectPending  bool
	lastFetchLine    uint64
	haveFetchLine    bool

	peeked    *isa.Inst
	eof       bool
	committed uint64
	fetched   uint64

	loadForwards  uint64
	mispredStalls uint64
	classCounts   [16]uint64
	lastProgress  uint64
	stopRequested bool
	wordAddrShift uint // store-forwarding match granularity (8B words)
}

// ErrDeadlock is returned when the pipeline stops making progress, which
// indicates a modeling bug rather than a workload property.
var ErrDeadlock = errors.New("pipeline: no forward progress")

// deadlockWindow is the progress watchdog horizon in cycles.
const deadlockWindow = 1_000_000

// New builds a CPU over the given trace stream.
func New(cfg Config, stream isa.Stream) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, errors.New("pipeline: nil stream")
	}
	pred, err := bpred.New(cfg.Bpred)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	itlb, err := tlb.New(cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := tlb.New(cfg.DTLB)
	if err != nil {
		return nil, err
	}
	intRen, err := newRenamer(isa.NumIntRegs, cfg.IntPhysRegs)
	if err != nil {
		return nil, err
	}
	fpRen, err := newRenamer(isa.NumFPRegs, cfg.FPPhysRegs)
	if err != nil {
		return nil, err
	}
	return &CPU{
		cfg:           cfg,
		stream:        stream,
		pred:          pred,
		mem:           mem,
		itlb:          itlb,
		dtlb:          dtlb,
		intRen:        intRen,
		fpRen:         fpRen,
		rob:           newROB(cfg.ROBSize),
		fus:           newFUPool(cfg.IntALUs),
		mult:          newUnitPool(cfg.IntMults),
		fpalu:         newUnitPool(cfg.FPALUs),
		fpmult:        newUnitPool(cfg.FPMults),
		storeQ:        make([]storeQEntry, 0, cfg.StoreQSize),
		fetchQ:        make([]fetchEntry, 0, cfg.FetchQueueSize),
		completions:   make(map[uint64][]int),
		wordAddrShift: 3,
	}, nil
}

// ctxCheckMask throttles context polling in the run loop: the context is
// consulted once every ctxCheckMask+1 cycles, keeping the per-cycle cost
// negligible while still stopping a multi-million-cycle run within
// microseconds of cancellation.
const ctxCheckMask = 8191

// Run executes the simulation to trace exhaustion (or cfg.MaxInsts) and
// returns the measurement results.
func (c *CPU) Run() (Result, error) { return c.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the loop polls ctx
// periodically and returns ctx.Err() (wrapped) as soon as it is done,
// discarding the partial measurement.
func (c *CPU) RunContext(ctx context.Context) (Result, error) {
	defer c.stream.Close()
	for !c.finished() {
		c.commit()
		if c.stopRequested {
			break
		}
		c.complete()
		c.issue()
		c.dispatch()
		c.fetch()
		c.fus.tick(c.cycle)
		c.cycle++
		if c.cycle&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("pipeline: run aborted at cycle %d (committed %d): %w",
					c.cycle, c.committed, err)
			}
		}
		if c.cycle-c.lastProgress > deadlockWindow {
			return Result{}, fmt.Errorf("%w at cycle %d (committed %d)", ErrDeadlock, c.cycle, c.committed)
		}
	}
	c.fus.flush()
	return c.result(), nil
}

func (c *CPU) finished() bool {
	return c.eof && c.peeked == nil && len(c.fetchQ) == 0 && c.rob.count == 0
}

func (c *CPU) result() Result {
	res := Result{
		Cycles:                c.cycle,
		Committed:             c.committed,
		Fetched:               c.fetched,
		Bpred:                 c.pred.Stats(),
		L1I:                   c.mem.L1I.Stats(),
		L1D:                   c.mem.L1D.Stats(),
		L2:                    c.mem.L2.Stats(),
		ITLB:                  c.itlb.Stats(),
		DTLB:                  c.dtlb.Stats(),
		LoadForwards:          c.loadForwards,
		FetchMispredictStalls: c.mispredStalls,
		ClassCounts:           c.classCounts,
	}
	for _, rec := range c.fus.rec {
		// Copy interval maps so the Result is self-contained.
		iv := make(map[int]uint64, len(rec.Intervals()))
		for l, n := range rec.Intervals() {
			iv[l] = n
		}
		res.FUs = append(res.FUs, FUProfile{ActiveCycles: rec.ActiveCycles(), Intervals: iv})
	}
	return res
}

func (c *CPU) peek() (isa.Inst, bool) {
	if c.peeked != nil {
		return *c.peeked, true
	}
	if c.eof {
		return isa.Inst{}, false
	}
	in, ok := c.stream.Next()
	if !ok {
		c.eof = true
		return isa.Inst{}, false
	}
	c.peeked = &in
	return in, true
}

func (c *CPU) consume() { c.peeked = nil }

// ---- fetch ----

func (c *CPU) fetch() {
	if c.redirectPending {
		c.mispredStalls++
		return
	}
	if c.cycle < c.fetchBlockedTill {
		c.mispredStalls++
		return
	}
	lineSize := uint64(c.cfg.Mem.L1I.LineSize)
	slots := c.cfg.FetchWidth
	for slots > 0 && len(c.fetchQ) < c.cfg.FetchQueueSize {
		in, ok := c.peek()
		if !ok {
			return
		}
		line := in.PC / lineSize
		if !c.haveFetchLine || line != c.lastFetchLine {
			lat := c.mem.L1I.Access(in.PC, false) + c.itlb.Access(in.PC)
			c.lastFetchLine = line
			c.haveFetchLine = true
			if extra := lat - c.cfg.Mem.L1I.Latency; extra > 0 {
				// Miss: stall fetch; the line is filled, so the retry
				// proceeds without re-access.
				c.fetchBlockedTill = c.cycle + uint64(extra)
				return
			}
		}
		c.consume()
		c.fetched++
		fe := fetchEntry{inst: in}
		if in.Class.IsCtrl() {
			r := c.pred.Predict(in)
			c.pred.Update(in, r)
			if bpred.Mispredicted(in, r) {
				fe.mispredict = true
				c.fetchQ = append(c.fetchQ, fe)
				c.redirectPending = true
				return
			}
			c.fetchQ = append(c.fetchQ, fe)
			slots--
			if r.PredTaken {
				// Correctly predicted taken control flow ends the fetch
				// group; the redirected group starts next cycle.
				return
			}
			continue
		}
		c.fetchQ = append(c.fetchQ, fe)
		slots--
	}
}

// ---- dispatch (decode + rename) ----

func (c *CPU) ref(r isa.Reg) physRef {
	if r == isa.RegNone {
		return noReg
	}
	if r.IsFP() {
		return physRef{idx: c.fpRen.lookup(int(r) - isa.NumIntRegs), fp: true}
	}
	return physRef{idx: c.intRen.lookup(int(r))}
}

func (c *CPU) renamerFor(r isa.Reg) (*renamer, int) {
	if r.IsFP() {
		return c.fpRen, int(r) - isa.NumIntRegs
	}
	return c.intRen, int(r)
}

func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.DecodeWidth && len(c.fetchQ) > 0; n++ {
		fe := c.fetchQ[0]
		in := fe.inst
		if c.rob.full() {
			return
		}
		switch {
		case in.Class == isa.Load:
			if c.lqCount >= c.cfg.LoadQSize {
				return
			}
		case in.Class == isa.Store:
			if len(c.storeQ) >= c.cfg.StoreQSize {
				return
			}
		case in.Class.IsFP():
			if c.fpIQCount >= c.cfg.FPIQSize {
				return
			}
		case in.Class != isa.Nop:
			if c.intIQCount >= c.cfg.IntIQSize {
				return
			}
		}
		e := robEntry{
			inst:       in,
			state:      stWaiting,
			src1:       c.ref(in.Src1),
			src2:       c.ref(in.Src2),
			dest:       noReg,
			oldPhys:    -1,
			mispredict: fe.mispredict,
		}
		if in.Dest != isa.RegNone {
			ren, arch := c.renamerFor(in.Dest)
			if !ren.canAllocate() {
				return
			}
			newPhys, oldPhys, _ := ren.allocate(arch)
			e.dest = physRef{idx: newPhys, fp: in.Dest.IsFP()}
			e.oldPhys = oldPhys
		}
		idx := c.rob.push(e)
		switch {
		case in.Class == isa.Nop:
			c.rob.entries[idx].state = stExecuting
			c.schedule(idx, 1)
		case in.Class == isa.Load:
			c.lqCount++
		case in.Class == isa.Store:
			c.storeQ = append(c.storeQ, storeQEntry{seq: in.Seq, addr: in.Addr})
		case in.Class.IsFP():
			c.fpIQCount++
		default:
			c.intIQCount++
		}
		c.fetchQ = c.fetchQ[1:]
	}
}

// ---- issue + execute ----

func (c *CPU) ready(r physRef) bool {
	if r.idx < 0 {
		return true
	}
	if r.fp {
		return c.fpRen.isReady(r.idx)
	}
	return c.intRen.isReady(r.idx)
}

func (c *CPU) schedule(robIdx int, lat int) {
	at := c.cycle + uint64(lat)
	c.completions[at] = append(c.completions[at], robIdx)
}

func (c *CPU) issue() {
	budget := c.cfg.IssueWidth
	ports := c.cfg.MemPorts
	for i := 0; i < c.rob.count && budget > 0; i++ {
		idx := (c.rob.head + i) % len(c.rob.entries)
		e := &c.rob.entries[idx]
		if e.state != stWaiting {
			continue
		}
		if !c.ready(e.src1) || !c.ready(e.src2) {
			continue
		}
		switch e.inst.Class {
		case isa.IntALU, isa.Branch, isa.Jump, isa.Call, isa.Return:
			if _, ok := c.fus.tryAllocate(c.cycle, LatIntALU); !ok {
				continue
			}
			c.schedule(idx, LatIntALU)
			c.intIQCount--
		case isa.IntMult:
			if !c.mult.tryAllocate(c.cycle, LatIntMult) {
				continue
			}
			c.schedule(idx, LatIntMult)
			c.intIQCount--
		case isa.IntDiv:
			if !c.mult.tryAllocate(c.cycle, LatIntDiv) {
				continue
			}
			c.schedule(idx, LatIntDiv)
			c.intIQCount--
		case isa.Load:
			// Address generation occupies an integer unit for one cycle
			// (21264-style: memory ops issue down the integer pipes), and
			// the access needs a cache port.
			if ports == 0 {
				continue
			}
			if _, ok := c.fus.tryAllocate(c.cycle, LatAGU); !ok {
				continue
			}
			ports--
			c.schedule(idx, c.loadLatency(e.inst))
		case isa.Store:
			if ports == 0 {
				continue
			}
			if _, ok := c.fus.tryAllocate(c.cycle, LatAGU); !ok {
				continue
			}
			ports--
			pen := c.dtlb.Access(e.inst.Addr)
			c.markStoreAddrKnown(e.inst.Seq)
			c.schedule(idx, LatAGU+pen)
		case isa.FPALU:
			if !c.fpalu.tryAllocate(c.cycle, LatFPALU) {
				continue
			}
			c.schedule(idx, LatFPALU)
			c.fpIQCount--
		case isa.FPMult:
			if !c.fpmult.tryAllocate(c.cycle, LatFPMult) {
				continue
			}
			c.schedule(idx, LatFPMult)
			c.fpIQCount--
		case isa.FPDiv:
			if !c.fpmult.tryAllocate(c.cycle, LatFPDiv) {
				continue
			}
			c.schedule(idx, LatFPDiv)
			c.fpIQCount--
		default:
			// Nop never reaches the waiting state.
			continue
		}
		e.state = stExecuting
		budget--
	}
}

// loadLatency models address generation followed by either store-queue
// forwarding (when an older store to the same word has resolved its
// address) or a TLB-translated data cache access.
func (c *CPU) loadLatency(in isa.Inst) int {
	if c.forwardingStore(in.Seq, in.Addr) {
		c.loadForwards++
		return LatAGU + LatForward
	}
	pen := c.dtlb.Access(in.Addr)
	return LatAGU + pen + c.mem.L1D.Access(in.Addr, false)
}

func (c *CPU) forwardingStore(loadSeq, addr uint64) bool {
	word := addr >> c.wordAddrShift
	for i := len(c.storeQ) - 1; i >= 0; i-- {
		s := c.storeQ[i]
		if s.seq >= loadSeq {
			continue
		}
		if s.addrKnown && s.addr>>c.wordAddrShift == word {
			return true
		}
	}
	return false
}

func (c *CPU) markStoreAddrKnown(seq uint64) {
	for i := range c.storeQ {
		if c.storeQ[i].seq == seq {
			c.storeQ[i].addrKnown = true
			return
		}
	}
}

// ---- completion ----

func (c *CPU) complete() {
	list, ok := c.completions[c.cycle]
	if !ok {
		return
	}
	delete(c.completions, c.cycle)
	for _, idx := range list {
		e := &c.rob.entries[idx]
		e.state = stDone
		if e.dest.idx >= 0 {
			if e.dest.fp {
				c.fpRen.markReady(e.dest.idx)
			} else {
				c.intRen.markReady(e.dest.idx)
			}
		}
		if e.mispredict {
			// The mispredicted control instruction has resolved: redirect
			// fetch after the recovery penalty.
			c.fetchBlockedTill = c.cycle + uint64(c.cfg.MispredictPenalty)
			c.redirectPending = false
			c.haveFetchLine = false
		}
	}
}

// ---- commit ----

func (c *CPU) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.rob.count > 0; n++ {
		e := c.rob.at(0)
		if e.state != stDone {
			return
		}
		switch e.inst.Class {
		case isa.Store:
			c.mem.L1D.Access(e.inst.Addr, true)
			if len(c.storeQ) == 0 || c.storeQ[0].seq != e.inst.Seq {
				panic("pipeline: store queue out of sync with ROB")
			}
			c.storeQ = c.storeQ[1:]
		case isa.Load:
			c.lqCount--
		}
		if e.oldPhys >= 0 {
			if e.dest.fp {
				c.fpRen.release(e.oldPhys)
			} else {
				c.intRen.release(e.oldPhys)
			}
		}
		if int(e.inst.Class) < len(c.classCounts) {
			c.classCounts[e.inst.Class]++
		}
		c.rob.popFront()
		c.committed++
		c.lastProgress = c.cycle
		if c.cfg.MaxInsts > 0 && c.committed >= c.cfg.MaxInsts {
			c.stopRequested = true
			return
		}
	}
}
